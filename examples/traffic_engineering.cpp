// The paper's running example end-to-end: Traffic Engineering on a
// simulated SDN, with the platform's instrumentation feedback.
//
// Phase 1 runs the *naive* TE of Figure 2 and prints the feedback a
// developer would get: the app collapsed to one bee, most control traffic
// involves one hive — the design bottleneck of §5.
// Phase 2 runs the *decoupled* redesign and shows the same metrics healthy,
// plus the optimizer live-migrating stat bees next to their switches.
//
// Build & run:  ./build/examples/traffic_engineering
// Pass --trace <path.json> to record every span of the third phase and
// export a Chrome trace-event file (open in Perfetto / chrome://tracing).
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/discovery.h"
#include "apps/te_decoupled.h"
#include "apps/te_naive.h"
#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/trace.h"
#include "net/driver.h"
#include "net/fabric.h"

using namespace beehive;

namespace {

struct Outcome {
  std::size_t te_bees = 0;
  double hotspot = 0.0;
  double locality = 0.0;
  std::uint64_t wire_kb = 0;
  std::uint64_t migrations = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t queue_p50 = 0;
  std::uint64_t queue_p99 = 0;
  std::uint64_t e2e_p50 = 0;
  std::uint64_t e2e_p99 = 0;
};

Outcome run(bool decoupled, bool optimize, bool pin_to_one_hive = false,
            const std::string& trace_path = {}) {
  constexpr std::size_t kHives = 10;
  constexpr std::size_t kSwitches = 100;

  AppSet apps;
  TreeTopology topology(kSwitches, 4, kHives);
  NetworkFabric fabric{TreeTopology(topology)};
  apps.emplace<OpenFlowDriverApp>(&fabric);
  apps.emplace<DiscoveryApp>(&topology);
  std::string te_name;
  if (decoupled) {
    apps.emplace<TEDecoupledApp>();
    te_name = "te.decoupled";
  } else {
    apps.emplace<TENaiveApp>();
    te_name = "te.naive";
  }
  std::shared_ptr<PlacementStrategy> strategy;
  if (optimize) {
    strategy = std::make_shared<GreedyFollowSources>(
        GreedyConfig{.min_messages = 2});
  } else {
    strategy = std::make_shared<NoopStrategy>();
  }
  apps.emplace<CollectorApp>(strategy, kHives,
                             CollectorConfig{5 * kSecond});

  ClusterConfig config;
  config.n_hives = kHives;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 20 * kSecond;
  config.tracing = !trace_path.empty();
  SimCluster sim(config, apps);
  if (pin_to_one_hive) {
    // Paper §5, "Optimization": start from a pathological placement —
    // every stat cell on hive 1 — and let the optimizer fix it.
    const AppId te_id = apps.find_by_name(te_name)->id();
    sim.registry().set_placement_hook(
        [te_id](AppId app, const CellSet& cells, HiveId requester) -> HiveId {
          if (app == te_id && !cells.empty() &&
              cells.begin()->dict == TEDecoupledApp::kStatsDict) {
            return 1;
          }
          return requester;
        });
  }
  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });
  sim.run_until(20 * kSecond);
  sim.run_to_idle();

  Outcome out;
  AppId te = apps.find_by_name(te_name)->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == te) ++out.te_bees;
  }
  std::uint64_t local = 0, remote = 0;
  for (HiveId h = 0; h < kHives; ++h) {
    local += sim.hive(h).counters().routed_local;
    remote += sim.hive(h).counters().routed_remote;
    out.migrations += sim.hive(h).counters().migrations_in;
  }
  out.locality = (local + remote) == 0
                     ? 0.0
                     : static_cast<double>(local) /
                           static_cast<double>(local + remote);
  out.hotspot = sim.meter().hotspot_share();
  out.wire_kb = sim.meter().total_bytes() / 1024;
  out.flow_mods = fabric.total_flow_mods();
  LatencyHistogram queue, e2e;
  for (HiveId h = 0; h < kHives; ++h) {
    queue.merge(sim.hive(h).queue_latency());
    e2e.merge(sim.hive(h).e2e_latency());
  }
  out.queue_p50 = queue.p50();
  out.queue_p99 = queue.p99();
  out.e2e_p50 = e2e.p50();
  out.e2e_p99 = e2e.p99();
  if (!trace_path.empty()) {
    if (write_chrome_trace(trace_path, sim.trace_events())) {
      std::printf("  (wrote Chrome trace JSON: %s)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "  (failed to write Chrome trace to %s)\n",
                   trace_path.c_str());
    }
  }
  return out;
}

void report(const char* title, const Outcome& o) {
  std::printf("%s\n", title);
  std::printf("  TE bees:               %zu\n", o.te_bees);
  std::printf("  busiest hive's share:  %.0f%% of control traffic\n",
              o.hotspot * 100);
  std::printf("  locally processed:     %.0f%% of messages\n",
              o.locality * 100);
  std::printf("  control channel used:  %llu KB\n",
              static_cast<unsigned long long>(o.wire_kb));
  std::printf("  bee migrations:        %llu\n",
              static_cast<unsigned long long>(o.migrations));
  std::printf("  flows re-routed:       %llu\n",
              static_cast<unsigned long long>(o.flow_mods));
  std::printf("  queue latency (us):    p50=%llu p99=%llu\n",
              static_cast<unsigned long long>(o.queue_p50),
              static_cast<unsigned long long>(o.queue_p99));
  std::printf("  e2e latency (us):      p50=%llu p99=%llu\n\n",
              static_cast<unsigned long long>(o.e2e_p50),
              static_cast<unsigned long long>(o.e2e_p99));
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 < argc) {
        trace_path = argv[++i];
      } else {
        std::fprintf(stderr, "--trace requires a path; running untraced\n");
      }
    }
  }
  std::printf("Traffic Engineering on Beehive: 10 controllers, 100 "
              "switches, 100 flows each, 20 s\n\n");

  Outcome naive = run(/*decoupled=*/false, /*optimize=*/false);
  report("[1/3] naive TE (Figure 2, verbatim):", naive);
  std::printf("  >> feedback: Route maps to (S,*) and (T,*); every stats "
              "cell was collocated\n"
              "     with it. The app is effectively centralized — redesign "
              "needed (paper §5).\n\n");

  Outcome decoupled = run(/*decoupled=*/true, /*optimize=*/false);
  report("[2/3] decoupled TE (Collect -> FlowRateAlarm -> Route):",
         decoupled);
  std::printf("  >> stat cells stayed per-switch; Route only receives rare "
              "aggregated alarms.\n\n");

  Outcome optimized = run(/*decoupled=*/true, /*optimize=*/true,
                          /*pin_to_one_hive=*/true, trace_path);
  report(
      "[3/3] decoupled TE, stat cells artificially pinned to hive 1, then "
      "greedy runtime optimization:",
      optimized);
  std::printf("  >> the platform migrated stat bees toward the hives whose "
              "drivers feed them,\n     with no manual intervention (paper "
              "§5, 'Optimization').\n");
  return 0;
}
