// ONIX NIB emulation (paper §4, "ONIX's NIB"): the Network Information
// Base — an abstract graph of network elements — distributed over the
// cluster with one bee per node. All queries and updates for a node are
// handled by that node's bee, wherever the platform placed it, and the
// example walks the graph hop by hop through asynchronous queries.
//
// Build & run:  ./build/examples/onix_nib
#include <cstdio>
#include <functional>

#include "apps/messages.h"
#include "apps/nib.h"
#include "cluster/sim.h"
#include "core/context.h"

using namespace beehive;

namespace {

/// Walks the NIB graph: on each NibReply, prints the node and queries the
/// first unvisited neighbor. A whole-dict cell keeps the walk state.
class GraphWalkerApp : public App {
 public:
  GraphWalkerApp() : App("nib_walker") {
    on<NibReply>(
        [](const NibReply&) { return CellSet::whole_dict("walk"); },
        [](AppContext& ctx, const NibReply& m) {
          if (!m.found) {
            std::printf("  node %llu: not in NIB\n",
                        static_cast<unsigned long long>(m.query_id));
            return;
          }
          std::printf("  node %llu:", static_cast<unsigned long long>(
                                          m.query_id));
          for (const std::string& attr : m.attrs) {
            std::printf(" [%s]", attr.c_str());
          }
          std::printf(" -> %zu neighbors\n", m.neighbors.size());
          for (NodeId next : m.neighbors) {
            std::string key = "seen:" + std::to_string(next);
            if (ctx.state().contains("walk", key)) continue;
            ctx.state().put_as("walk", key, NibQuery{next, next});
            ctx.emit(NibQuery{next, next});
            break;  // depth-first, one hop per reply
          }
        });
  }
};

}  // namespace

int main() {
  AppSet apps;
  apps.emplace<NibApp>();
  apps.emplace<GraphWalkerApp>();

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster cluster(config, apps);
  cluster.start();

  auto inject = [&cluster](HiveId hive, auto msg) {
    cluster.hive(hive).inject(MessageEnvelope::make(
        std::move(msg), 0, kNoBee, hive, cluster.now()));
  };

  // Build a small topology graph in the NIB, updates arriving at whatever
  // controller happens to see each element (round-robin here).
  std::printf("populating the NIB from 4 controllers...\n");
  struct Edge {
    NodeId from, to;
  };
  const Edge edges[] = {{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}, {5, 1}};
  int i = 0;
  for (NodeId node = 1; node <= 5; ++node) {
    inject(static_cast<HiveId>(i++ % 4),
           NibNodeUpdate{node, "kind", node <= 4 ? "switch" : "host"});
    inject(static_cast<HiveId>(i++ % 4),
           NibNodeUpdate{node, "dpid", "0x" + std::to_string(node * 111)});
  }
  for (const Edge& e : edges) {
    inject(static_cast<HiveId>(i++ % 4), NibLinkAdd{e.from, e.to});
  }
  cluster.run_to_idle();

  // The platform derived one bee per node, spread over the cluster.
  AppId nib = apps.find_by_name("nib")->id();
  std::printf("NIB sharding: ");
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app != nib) continue;
    std::printf("node %s on hive %u; ", rec.cells.front().key.c_str(),
                rec.hive);
  }
  std::printf("\n\nwalking the graph from node 1:\n");
  inject(2, NibQuery{1, 1});
  cluster.run_to_idle();

  std::printf("\ncontrol-channel bytes: %llu\n",
              static_cast<unsigned long long>(
                  cluster.meter().total_bytes()));
  return 0;
}
