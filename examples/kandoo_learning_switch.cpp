// Kandoo-style local control application (paper §4) on the *threaded*
// runtime: every controller runs on its own OS thread, and the learning
// switch's per-switch cells keep all packet processing local to each
// switch's master hive — Kandoo's "local controllers close to switches"
// emerges from the Map functions alone.
//
// Build & run:  ./build/examples/kandoo_learning_switch
#include <cstdio>

#include "apps/learning_switch.h"
#include "apps/messages.h"
#include "cluster/thread_cluster.h"
#include "core/context.h"
#include "util/rng.h"

using namespace beehive;

int main() {
  constexpr std::size_t kHives = 4;
  constexpr std::size_t kSwitches = 16;
  constexpr int kPackets = 4000;

  AppSet apps;
  apps.emplace<LearningSwitchApp>();

  ThreadClusterConfig config;
  config.n_hives = kHives;
  config.hive.metrics_period = 0;
  ThreadCluster cluster(config, apps);
  cluster.start();

  std::printf("Injecting %d PacketIns for %zu switches across %zu "
              "controller threads...\n",
              kPackets, kSwitches, kHives);

  Xoshiro256 rng(2024);
  for (int i = 0; i < kPackets; ++i) {
    auto sw = static_cast<SwitchId>(rng.next_below(kSwitches));
    auto master = static_cast<HiveId>(sw * kHives / kSwitches);
    PacketIn pkt{sw, rng.next_below(64), rng.next_below(64),
                 static_cast<std::uint16_t>(rng.next_below(24))};
    cluster.post(master, [&cluster, master, pkt]() {
      cluster.hive(master).inject(
          MessageEnvelope::make(pkt, 0, kNoBee, master, cluster.now()));
    });
  }
  cluster.wait_idle();

  std::size_t bees = cluster.registry().live_bee_count();
  std::uint64_t handled = 0;
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  for (HiveId h = 0; h < kHives; ++h) {
    handled += cluster.hive(h).counters().handler_runs;
    local += cluster.hive(h).counters().routed_local;
    remote += cluster.hive(h).counters().routed_remote;
  }

  std::printf("done.\n");
  std::printf("  bees (one per switch): %zu\n", bees);
  std::printf("  handler invocations:   %llu\n",
              static_cast<unsigned long long>(handled));
  std::printf("  locally processed:     %.1f%%  (Kandoo's locality, derived "
              "from the Map function)\n",
              100.0 * static_cast<double>(local) /
                  static_cast<double>(local + remote));
  std::printf("  control-channel bytes: %llu (registry RPCs only)\n",
              static_cast<unsigned long long>(
                  cluster.meter().total_bytes()));

  // Show one learned table.
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    Bee* bee = cluster.hive(rec.hive).find_bee(rec.id);
    if (bee == nullptr) continue;
    if (const Dict* macs = bee->store().find_dict(LearningSwitchApp::kDict)) {
      macs->for_each([&rec](const std::string& sw, const Bytes& value) {
        MacTable table = decode_from_bytes<MacTable>(value);
        std::printf("  switch %s (hive %u): %zu MACs learned\n", sw.c_str(),
                    rec.hive, table.entries.size());
      });
    }
    break;  // one sample is enough
  }

  cluster.stop();
  return 0;
}
