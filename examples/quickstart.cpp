// Quickstart: write a Beehive control application in ~30 lines and run it
// distributed over four controllers — without writing any distribution
// code.
//
// The app below is a word-count service. The *only* distribution-relevant
// thing it declares is each handler's Map function: Count needs the cell
// ("words", word); TopWord scans the whole dictionary. From that, the
// platform shards the word cells over the hives that first see each word,
// and automatically centralizes TopWord's bee (whole-dict access — exactly
// the trade-off the paper's Figure 2 Route function makes).
//
// Build & run:  ./build/examples/quickstart
//
// `--serve [seconds]` runs the same app on the threaded runtime instead,
// with the StatusApp on board and the HTTP exposition endpoint live:
//   curl http://127.0.0.1:9780/metrics      # Prometheus text format
//   curl http://127.0.0.1:9780/status.json  # per-hive / per-bee snapshot
//   curl http://127.0.0.1:9780/traces.json  # tail-sampled slowest traces
//
// `--faults` (serve mode) makes the wire lossy (drop/duplicate/reorder),
// arms the reliable transport with a tight credit window and bounds the
// word app's mailbox — so retransmits, credit stalls and sheds actually
// happen and /traces.json + `beectl trace` have tail latency to explain.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "cluster/sim.h"
#include "cluster/thread_cluster.h"
#include "core/context.h"
#include "instrument/collector.h"
#include "instrument/status_app.h"
#include "net/http_export.h"
#include "placement/strategy.h"

using namespace beehive;

// -- Messages ---------------------------------------------------------------

struct Word {
  static constexpr std::string_view kTypeName = "wc.word";
  std::string word;

  void encode(ByteWriter& w) const { w.str(word); }
  static Word decode(ByteReader& r) { return {r.str()}; }
};

struct TopWordQuery {
  static constexpr std::string_view kTypeName = "wc.top_query";
  std::uint32_t nonce = 0;

  void encode(ByteWriter& w) const { w.u32(nonce); }
  static TopWordQuery decode(ByteReader& r) { return {r.u32()}; }
};

struct Count {
  static constexpr std::string_view kTypeName = "wc.count";
  std::uint64_t n = 0;

  void encode(ByteWriter& w) const { w.varint(n); }
  static Count decode(ByteReader& r) { return {r.varint()}; }
};

// -- The application ----------------------------------------------------------

class WordCountApp : public App {
 public:
  WordCountApp() : App("wordcount") {
    // `on Word with words[word]` — one cell per word.
    on<Word>(
        [](const Word& m) { return CellSet::single("words", m.word); },
        [](AppContext& ctx, const Word& m) {
          Count c =
              ctx.state().get_as<Count>("words", m.word).value_or(Count{});
          c.n += 1;
          ctx.state().put_as("words", m.word, c);
        });

    // `on TopWordQuery with words` — whole dictionary: centralized.
    on<TopWordQuery>(
        [](const TopWordQuery&) { return CellSet::whole_dict("words"); },
        [](AppContext& ctx, const TopWordQuery&) {
          std::string best;
          std::uint64_t best_n = 0;
          ctx.state().for_each(
              "words", [&](const std::string& word, const Bytes& value) {
                std::uint64_t n = decode_from_bytes<Count>(value).n;
                if (n > best_n) {
                  best_n = n;
                  best = word;
                }
              });
          std::printf("[hive %u, %s] top word: '%s' x%llu\n", ctx.hive(),
                      to_string_bee(ctx.self()).c_str(), best.c_str(),
                      static_cast<unsigned long long>(best_n));
        });
  }
};

// -- Serve mode: ThreadCluster + StatusApp + HTTP exposition ----------------

/// Builds /status.json on the status bee's own loop thread (posted task,
/// so it serializes with handlers) and hands the result to the HTTP
/// thread. Falls back to "{}" when the bee isn't up yet or is slow.
std::string status_json_from(ThreadCluster& cluster, AppId status_app) {
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app != status_app) continue;
    auto promise = std::make_shared<std::promise<std::string>>();
    auto future = promise->get_future();
    const HiveId hive = rec.hive;
    const BeeId bee_id = rec.id;
    cluster.post(hive, [&cluster, hive, bee_id, promise] {
      Bee* bee = cluster.hive(hive).find_bee(bee_id);
      promise->set_value(
          bee == nullptr
              ? std::string("{}\n")
              : StatusApp::report_from_store(bee->store(), cluster.now())
                    .to_json());
    });
    if (future.wait_for(std::chrono::seconds(2)) ==
        std::future_status::ready) {
      return future.get();
    }
    return "{}\n";
  }
  return "{}\n";
}

int serve(Duration run_for, std::uint16_t port, bool faulted) {
  AppSet apps;
  WordCountApp& wc = apps.emplace<WordCountApp>();
  if (faulted) {
    // A small mailbox bound makes overload sheds reachable by the skewed
    // word stream, so shed-terminated traces show up in /traces.json.
    wc.set_overload({.bounded = true,
                     .mailbox_limit = 64,
                     .policy = OverloadPolicy::kShedNewest});
  }
  apps.emplace<StatusApp>();
  // The optimizer rides along as a plain control app: it folds the
  // per-hive reports (now carrying sampled handler cost and queue
  // pressure) and ranks migrations by cost x pressure.
  CollectorConfig collector_config;
  collector_config.optimize_period = 2 * kSecond;
  apps.emplace<CollectorApp>(std::make_shared<CostPressureStrategy>(), 4,
                             collector_config);
  const AppId status_app = apps.find_by_name("platform.status")->id();

  ThreadClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = kSecond / 2;
  // Sample handler thread-CPU cost so /status.json, /health.json and the
  // optimizer all see measured cost instead of raw message counts.
  config.hive.profiler.enabled = true;
  config.hive.profiler.sample_every = 16;
  config.flight_recorder = true;
  // Tail-latency attribution (DESIGN.md §11): spans on, full detail kept
  // only for traces that end slow (>5ms wall), shed or failed — the ones
  // /traces.json and `beectl trace` are for.
  config.tracing = true;
  config.tail.enabled = true;
  config.tail.latency_threshold = 5 * kMillisecond;
  if (faulted) {
    // Reliable transport with a tight window: drops force retransmits,
    // the window forces credit stalls — both then show up as blame.
    config.hive.transport.enabled = true;
    config.hive.transport.credit_window = 4;
  }
  ThreadCluster cluster(config, apps);
  if (faulted) {
    LinkFaults lossy;
    lossy.drop = 0.15;
    lossy.duplicate = 0.05;
    lossy.reorder = 0.05;
    cluster.faults().set_default_link(lossy);
  }
  cluster.start();

  HttpExportServer server(*cluster.metrics(), port);
  server.set_status_source(
      [&cluster, status_app] { return status_json_from(cluster, status_app); });
  server.set_health_source([&cluster] { return cluster.health_json(); });
  server.set_traces_source([&cluster] { return cluster.traces_json(20); });
  if (FlightRecorder* recorder = cluster.flight_recorder()) {
    recorder->set_health_source([&cluster] { return cluster.health_json(); });
  }
  std::printf("serving http://127.0.0.1:%u/metrics, /status.json, "
              "/health.json and /traces.json for %.0f s%s  "
              "(try: beectl top --port %u, beectl trace --port %u)\n",
              server.port(),
              static_cast<double>(run_for) / static_cast<double>(kSecond),
              faulted ? "  [lossy wire + credit window + bounded mailbox]"
                      : "",
              server.port(), server.port());
  std::fflush(stdout);

  // A steady trickle of words keeps the counters, rate rings and the
  // StatusApp's windows moving while scrapers watch. The stream is
  // deliberately skewed ("bee" dominates) so one word cell runs hot and
  // the cost x pressure optimizer has a real signal to act on.
  const char* stream[] = {"bee", "bee", "or", "not", "bee", "bee",
                          "that", "is", "bee", "question", "bee"};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(run_for);
  std::size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const HiveId hive = static_cast<HiveId>(i % 4);
    const std::string word = stream[i % (sizeof(stream) / sizeof(*stream))];
    ++i;
    cluster.post(hive, [&cluster, hive, word] {
      cluster.hive(hive).inject(MessageEnvelope::make(
          Word{word}, 0, kNoBee, hive, cluster.now()));
    });
    if (i == 16) {
      // Force the whole-dict query once so the app centralizes and the
      // status view shows the merged bee.
      cluster.post(0, [&cluster] {
        cluster.hive(0).inject(MessageEnvelope::make(TopWordQuery{1}, 0,
                                                     kNoBee, 0,
                                                     cluster.now()));
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::printf("served %llu request(s); shutting down\n",
              static_cast<unsigned long long>(server.requests_served()));
  // Detach before tearing the cluster down: late scrapers get a clean 503
  // instead of racing the registry's destruction.
  server.detach();
  server.stop();
  cluster.stop();
  return 0;
}

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      Duration run_for = 30 * kSecond;
      std::uint16_t port = 9780;
      bool faulted = false;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        run_for = static_cast<Duration>(std::atoi(argv[i + 1])) * kSecond;
      }
      for (int j = 1; j < argc; ++j) {
        if (std::strcmp(argv[j], "--port") == 0 && j + 1 < argc) {
          port = static_cast<std::uint16_t>(std::atoi(argv[j + 1]));
        } else if (std::strcmp(argv[j], "--faults") == 0) {
          faulted = true;
        }
      }
      return serve(run_for, port, faulted);
    }
  }

  AppSet apps;
  apps.emplace<WordCountApp>();

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster cluster(config, apps);
  cluster.start();

  // Feed words in at different controllers — as if four frontends each
  // received part of the stream.
  const char* stream[] = {"to", "bee", "or", "not", "to", "bee",
                          "that", "is", "the", "question", "bee"};
  std::size_t i = 0;
  for (const char* word : stream) {
    HiveId hive = static_cast<HiveId>(i++ % 4);
    cluster.hive(hive).inject(MessageEnvelope::make(
        Word{word}, 0, kNoBee, hive, cluster.now()));
  }
  cluster.run_to_idle();

  std::printf("%zu live bees before the whole-dict query\n",
              cluster.registry().live_bee_count());

  // The query forces the collocation obligation: every word cell merges
  // onto one bee, which then answers.
  cluster.hive(0).inject(MessageEnvelope::make(TopWordQuery{1}, 0, kNoBee, 0,
                                               cluster.now()));
  cluster.run_to_idle();

  std::printf("%zu live bee(s) after it (the platform centralized the app, "
              "exactly as declared)\n",
              cluster.registry().live_bee_count());
  std::printf("control-channel bytes spent: %llu\n",
              static_cast<unsigned long long>(cluster.meter().total_bytes()));
  return 0;
}
