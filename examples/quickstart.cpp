// Quickstart: write a Beehive control application in ~30 lines and run it
// distributed over four controllers — without writing any distribution
// code.
//
// The app below is a word-count service. The *only* distribution-relevant
// thing it declares is each handler's Map function: Count needs the cell
// ("words", word); TopWord scans the whole dictionary. From that, the
// platform shards the word cells over the hives that first see each word,
// and automatically centralizes TopWord's bee (whole-dict access — exactly
// the trade-off the paper's Figure 2 Route function makes).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "cluster/sim.h"
#include "core/context.h"

using namespace beehive;

// -- Messages ---------------------------------------------------------------

struct Word {
  static constexpr std::string_view kTypeName = "wc.word";
  std::string word;

  void encode(ByteWriter& w) const { w.str(word); }
  static Word decode(ByteReader& r) { return {r.str()}; }
};

struct TopWordQuery {
  static constexpr std::string_view kTypeName = "wc.top_query";
  std::uint32_t nonce = 0;

  void encode(ByteWriter& w) const { w.u32(nonce); }
  static TopWordQuery decode(ByteReader& r) { return {r.u32()}; }
};

struct Count {
  static constexpr std::string_view kTypeName = "wc.count";
  std::uint64_t n = 0;

  void encode(ByteWriter& w) const { w.varint(n); }
  static Count decode(ByteReader& r) { return {r.varint()}; }
};

// -- The application ----------------------------------------------------------

class WordCountApp : public App {
 public:
  WordCountApp() : App("wordcount") {
    // `on Word with words[word]` — one cell per word.
    on<Word>(
        [](const Word& m) { return CellSet::single("words", m.word); },
        [](AppContext& ctx, const Word& m) {
          Count c =
              ctx.state().get_as<Count>("words", m.word).value_or(Count{});
          c.n += 1;
          ctx.state().put_as("words", m.word, c);
        });

    // `on TopWordQuery with words` — whole dictionary: centralized.
    on<TopWordQuery>(
        [](const TopWordQuery&) { return CellSet::whole_dict("words"); },
        [](AppContext& ctx, const TopWordQuery&) {
          std::string best;
          std::uint64_t best_n = 0;
          ctx.state().for_each(
              "words", [&](const std::string& word, const Bytes& value) {
                std::uint64_t n = decode_from_bytes<Count>(value).n;
                if (n > best_n) {
                  best_n = n;
                  best = word;
                }
              });
          std::printf("[hive %u, %s] top word: '%s' x%llu\n", ctx.hive(),
                      to_string_bee(ctx.self()).c_str(), best.c_str(),
                      static_cast<unsigned long long>(best_n));
        });
  }
};

int main() {
  AppSet apps;
  apps.emplace<WordCountApp>();

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster cluster(config, apps);
  cluster.start();

  // Feed words in at different controllers — as if four frontends each
  // received part of the stream.
  const char* stream[] = {"to", "bee", "or", "not", "to", "bee",
                          "that", "is", "the", "question", "bee"};
  std::size_t i = 0;
  for (const char* word : stream) {
    HiveId hive = static_cast<HiveId>(i++ % 4);
    cluster.hive(hive).inject(MessageEnvelope::make(
        Word{word}, 0, kNoBee, hive, cluster.now()));
  }
  cluster.run_to_idle();

  std::printf("%zu live bees before the whole-dict query\n",
              cluster.registry().live_bee_count());

  // The query forces the collocation obligation: every word cell merges
  // onto one bee, which then answers.
  cluster.hive(0).inject(MessageEnvelope::make(TopWordQuery{1}, 0, kNoBee, 0,
                                               cluster.now()));
  cluster.run_to_idle();

  std::printf("%zu live bee(s) after it (the platform centralized the app, "
              "exactly as declared)\n",
              cluster.registry().live_bee_count());
  std::printf("control-channel bytes spent: %llu\n",
              static_cast<unsigned long long>(cluster.meter().total_bytes()));
  return 0;
}
