// Fault tolerance end-to-end (the paper's §7 next step, implemented):
// replication keeps every bee's state on a neighbour hive; the heartbeat
// failure detector (itself a Beehive app) notices a crashed controller and
// triggers failover; the workload continues with state intact.
//
// Build & run:  ./build/examples/fault_tolerant_cluster
#include <cstdio>

#include "apps/learning_switch.h"
#include "apps/messages.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "instrument/failure_detector.h"
#include "util/rng.h"

using namespace beehive;

int main() {
  constexpr std::size_t kHives = 5;
  constexpr std::size_t kSwitches = 20;

  AppSet apps;
  apps.emplace<LearningSwitchApp>();

  SimCluster* cluster_ptr = nullptr;
  apps.emplace<FailureDetectorApp>(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 3 * kSecond},
      [&cluster_ptr](HiveId hive) {
        std::printf("t=%llds  detector: hive %u is silent — failing its "
                    "bees over to replicas\n",
                    static_cast<long long>(cluster_ptr->now() / kSecond),
                    hive);
        // Post-mortem first: dump the flight recorder's recent per-hive
        // activity (including the optimizer/migration lines leading up to
        // the crash) before mutating anything.
        if (FlightRecorder* fr = cluster_ptr->flight_recorder()) {
          const std::string path = "fault_tolerant_flight.txt";
          if (fr->dump(path,
                       "hive " + std::to_string(hive) + " suspected")) {
            std::printf("         flight recorder dumped to %s\n",
                        path.c_str());
          }
        }
        std::size_t recovered = cluster_ptr->recover_hive(hive);
        std::printf("         %zu bees recovered with replicated state\n",
                    recovered);
      });

  ClusterConfig config;
  config.n_hives = kHives;
  config.hive.metrics_period = kSecond;
  config.hive.replication = true;
  config.hive.timers_until = 20 * kSecond;
  config.flight_recorder = true;
  SimCluster cluster(config, apps);
  cluster_ptr = &cluster;
  cluster.start();

  // Build MAC tables on every switch (learning happens per-switch bee).
  Xoshiro256 rng(5);
  auto punt = [&cluster, &rng](TimePoint until) {
    while (cluster.now() < until) {
      auto sw = static_cast<SwitchId>(rng.next_below(kSwitches));
      auto master = static_cast<HiveId>(sw * kHives / kSwitches);
      if (!cluster.hive_alive(master)) continue;
      PacketIn pkt{sw, rng.next_below(32), rng.next_below(32),
                   static_cast<std::uint16_t>(rng.next_below(24))};
      cluster.hive(master).inject(
          MessageEnvelope::make(pkt, 0, kNoBee, master, cluster.now()));
      cluster.run_for(20 * kMillisecond);
    }
  };

  std::printf("phase 1: learning MACs on %zu switches over %zu hives\n",
              kSwitches, kHives);
  punt(5 * kSecond);

  auto table_sizes = [&cluster]() {
    std::size_t macs = 0, bees = 0;
    for (const BeeRecord& rec : cluster.registry().live_bees()) {
      Bee* bee = cluster.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      const Dict* dict = bee->store().find_dict(LearningSwitchApp::kDict);
      if (dict == nullptr) continue;
      ++bees;
      dict->for_each([&macs](const std::string&, const Bytes& v) {
        macs += decode_from_bytes<MacTable>(v).entries.size();
      });
    }
    return std::make_pair(bees, macs);
  };
  auto [bees_before, macs_before] = table_sizes();
  std::printf("         %zu learning-switch bees hold %zu learned MACs\n\n",
              bees_before, macs_before);

  std::printf("phase 2: hive 2 crashes (no manual recovery call — the "
              "detector handles it)\n");
  cluster.fail_hive(2);
  cluster.run_until(10 * kSecond);

  auto [bees_after, macs_after] = table_sizes();
  std::printf("\nphase 3: after failover, %zu bees hold %zu MACs "
              "(%s)\n",
              bees_after, macs_after,
              macs_after == macs_before ? "no state lost"
                                        : "state diverged!");

  std::printf("phase 4: traffic continues against the recovered bees\n");
  punt(15 * kSecond);
  cluster.run_to_idle();
  std::printf("done: cluster processed traffic across the crash; control "
              "bytes spent: %llu KB\n",
              static_cast<unsigned long long>(
                  cluster.meter().total_bytes() / 1024));

  // Second dump, now that failover has run: the replica hives' adoption
  // lines (and any migration activity) are in the ring by this point.
  if (FlightRecorder* fr = cluster.flight_recorder()) {
    if (fr->dump("fault_tolerant_flight.txt", "post-failover")) {
      std::printf("flight recorder (post-failover) dumped to "
                  "fault_tolerant_flight.txt\n");
    }
  }
  return macs_after == macs_before ? 0 : 1;
}
