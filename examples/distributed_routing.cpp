// Distributed routing (paper §4, "Routing"): a RIB stored on a prefix
// basis, automatically sharded across controllers — plus a resolver app
// that consumes the RouteResult answers, showing app-to-app composition
// through messages only.
//
// Build & run:  ./build/examples/distributed_routing
#include <cstdio>

#include "apps/messages.h"
#include "apps/routing.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "util/rng.h"

using namespace beehive;

namespace {

constexpr std::uint32_t ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

std::string ip_str(std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", addr >> 24,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

/// Consumes RouteResults; counts hits/misses in its own cell.
class ResolverApp : public App {
 public:
  ResolverApp() : App("resolver") {
    on<RouteResult>(
        [](const RouteResult&) { return CellSet::whole_dict("res"); },
        [](AppContext& ctx, const RouteResult& m) {
          RouteResult last = m;
          ctx.state().put_as("res", "last", last);
          std::printf("  query %llu -> %s\n",
                      static_cast<unsigned long long>(m.query_id),
                      m.found ? (ip_str(m.prefix) + "/" +
                                 std::to_string(m.mask_len) + " via " +
                                 ip_str(m.next_hop))
                                    .c_str()
                              : "no route");
        });
  }
};

}  // namespace

int main() {
  AppSet apps;
  apps.emplace<RoutingApp>();
  apps.emplace<ResolverApp>();

  ClusterConfig config;
  config.n_hives = 5;
  config.hive.metrics_period = 0;
  SimCluster cluster(config, apps);
  cluster.start();

  auto inject = [&cluster](HiveId hive, auto msg) {
    cluster.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive,
                              cluster.now()));
  };

  // 2000 announcements over 40 /8 buckets, fed in round-robin across the
  // five controllers, as if each peers with different BGP speakers.
  std::printf("announcing 2000 prefixes across 5 controllers...\n");
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    auto octet = static_cast<int>(rng.next_below(40)) + 10;
    std::uint32_t prefix =
        ip(octet, static_cast<int>(rng.next_below(256)), 0, 0);
    inject(static_cast<HiveId>(i % 5),
           RouteAnnounce{prefix, 16, ip(192, 168, 0, octet),
                         static_cast<std::uint32_t>(rng.next_below(100))});
  }
  // Default routes for two /8s.
  inject(0, RouteAnnounce{ip(10, 0, 0, 0), 8, ip(192, 168, 255, 1), 1});
  cluster.run_to_idle();

  AppId routing = apps.find_by_name("routing")->id();
  std::size_t shards = 0;
  std::size_t hives_used = 0;
  std::vector<int> per_hive(5, 0);
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app != routing) continue;
    ++shards;
    ++per_hive[rec.hive];
  }
  for (int n : per_hive) hives_used += (n > 0);
  std::printf("RIB sharded into %zu /8 cells over %zu hives (", shards,
              hives_used);
  for (std::size_t h = 0; h < 5; ++h) {
    std::printf("%s%d", h ? ", " : "", per_hive[h]);
  }
  std::printf(" shards per hive)\n\nresolving:\n");

  inject(3, RouteQuery{ip(10, 77, 1, 2), 1});
  inject(4, RouteQuery{ip(25, 3, 9, 9), 2});
  inject(0, RouteQuery{ip(99, 9, 9, 9), 3});  // unannounced /8
  cluster.run_to_idle();

  inject(2, RouteWithdraw{ip(10, 0, 0, 0), 8});
  inject(2, RouteQuery{ip(10, 200, 0, 1), 4});  // may still hit a /16
  cluster.run_to_idle();

  std::printf("\ncontrol-channel bytes: %llu\n",
              static_cast<unsigned long long>(
                  cluster.meter().total_bytes()));
  return 0;
}
