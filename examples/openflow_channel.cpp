// The byte-level substrate: a controller endpoint and a simulated switch
// speaking actual OpenFlow 1.0 over an in-memory byte stream — handshake,
// stats polling, flow re-routing and keepalives, with real wire sizes.
//
// This is the protocol layer beneath the platform's logical driver
// messages; EXPERIMENTS.md uses its sizes to sanity-check the simulator's
// byte accounting.
//
// Build & run:  ./build/examples/openflow_channel
#include <cstdio>
#include <deque>

#include "net/connection.h"

using namespace beehive;
using namespace beehive::of;

int main() {
  Xoshiro256 rng(1);
  SwitchConfig sw_config;
  SimSwitch sw(1, sw_config, rng);
  TimePoint now = 0;

  // Two endpoints joined by in-memory queues (stand-ins for TCP sockets).
  std::deque<Bytes> to_switch;
  std::deque<Bytes> to_controller;
  SwitchConnection controller(
      1, [&to_switch](Bytes b) { to_switch.push_back(std::move(b)); });
  SwitchAgent agent(
      &sw, [&to_controller](Bytes b) { to_controller.push_back(std::move(b)); },
      [&now]() { return now; });
  auto pump = [&]() {
    while (!to_switch.empty() || !to_controller.empty()) {
      if (!to_switch.empty()) {
        agent.on_bytes(to_switch.front());
        to_switch.pop_front();
      }
      if (!to_controller.empty()) {
        controller.on_bytes(to_controller.front());
        to_controller.pop_front();
      }
    }
  };

  controller.on_ready = []() {
    std::printf("handshake: HELLO exchanged, channel ready\n");
  };
  controller.on_stats = [&controller, &sw](const FlowStatReply& reply) {
    std::size_t hot = 0;
    // Derive hot flows from the switch's ground truth for display; a real
    // controller would compare byte counters across polls.
    for (const FlowStat& s : reply.stats) {
      if (sw.flow(s.flow) != nullptr &&
          sw.effective_rate_kbps(*sw.flow(s.flow), 10 * kSecond) >
              sw.config().delta_kbps) {
        ++hot;
        controller.send_flow_mod(FlowMod{1, s.flow, 2});
      }
    }
    std::printf("stats reply: %zu flows, %zu above threshold -> FLOW_MODs "
                "sent\n",
                reply.stats.size(), hot);
  };

  controller.start();
  pump();

  now = 10 * kSecond;
  std::printf("\npolling flow stats (OFPST_FLOW)...\n");
  controller.request_stats();
  pump();

  std::printf("switch applied %llu FLOW_MODs; flow 0 now on path %u\n",
              static_cast<unsigned long long>(sw.flow_mods_applied()),
              sw.flow(0)->path);

  std::printf("\nkeepalive: ECHO round trip... ");
  controller.on_echo_reply = [](std::uint32_t xid) {
    std::printf("reply xid=%u\n", xid);
  };
  controller.send_echo_request();
  pump();

  std::printf("\nwire totals: controller tx=%llu B rx=%llu B over %llu "
              "messages\n",
              static_cast<unsigned long long>(controller.tx_bytes()),
              static_cast<unsigned long long>(controller.rx_bytes()),
              static_cast<unsigned long long>(controller.rx_messages()));
  std::printf("(one 100-flow OFPST_FLOW reply = %zu bytes on the real "
              "wire)\n",
              wire_size(FlowStatReply{1, sw.stats(now)}));
  return 0;
}
