// Network virtualization (paper §4, in the style of NVP): per-VN sharding
// with a tunnel-programming pipeline — NetVirtApp computes the overlay
// mesh, and a tunnel installer app consumes TunnelInstall events, showing
// two applications cooperating purely through messages.
//
// This example also demonstrates the paper's virtual-network-migration
// motivation for runtime optimization: after attaching a VN's workloads
// near one hive, we ask the platform to migrate the VN's bee there.
//
// Build & run:  ./build/examples/network_virtualization
#include <cstdio>

#include "apps/messages.h"
#include "apps/netvirt.h"
#include "cluster/sim.h"
#include "core/context.h"

using namespace beehive;

namespace {

/// Counts installed tunnels per VN (whole-dict cell: one installer bee).
class TunnelInstallerApp : public App {
 public:
  TunnelInstallerApp() : App("tunnel_installer") {
    on<TunnelInstall>(
        [](const TunnelInstall&) { return CellSet::whole_dict("tun"); },
        [](AppContext& ctx, const TunnelInstall& m) {
          std::string key = "vn" + std::to_string(m.vn);
          auto n = ctx.state().get_as<VnCreate>("tun", key);
          // Reuse VnCreate's codec as a tiny counter container.
          VnCreate counter{n ? n->vn + 1 : 1};
          ctx.state().put_as("tun", key, counter);
          std::printf("  tunnel vn=%u: sw%u <-> sw%u\n", m.vn, m.sw_a,
                      m.sw_b);
        });
  }
};

}  // namespace

int main() {
  AppSet apps;
  apps.emplace<NetVirtApp>();
  apps.emplace<TunnelInstallerApp>();

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster cluster(config, apps);
  cluster.start();

  auto inject = [&cluster](HiveId hive, auto msg) {
    cluster.hive(hive).inject(MessageEnvelope::make(
        std::move(msg), 0, kNoBee, hive, cluster.now()));
  };

  std::printf("creating two virtual networks on different controllers\n");
  inject(0, VnCreate{1});
  inject(2, VnCreate{2});
  cluster.run_to_idle();

  std::printf("\nattaching workloads to vn1 (expect incremental mesh):\n");
  inject(0, VnAttach{1, /*sw=*/10, /*port=*/1, /*mac=*/0xa1});
  inject(0, VnAttach{1, 11, 1, 0xa2});
  inject(0, VnAttach{1, 12, 1, 0xa3});
  cluster.run_to_idle();

  std::printf("\nattaching workloads to vn2 (independent bee, no "
              "interference):\n");
  inject(2, VnAttach{2, 20, 1, 0xb1});
  inject(2, VnAttach{2, 21, 1, 0xb2});
  cluster.run_to_idle();

  std::printf("\nsecond MAC on an already-meshed switch adds no tunnel:\n");
  inject(0, VnAttach{1, 10, 2, 0xa9});
  cluster.run_to_idle();
  std::printf("  (none printed — correct)\n");

  // The paper's motivating scenario for dynamic optimization: "if a
  // virtual network is migrated to another data center, the functions
  // controlling that virtual network should also be moved with it".
  AppId nv = apps.find_by_name("netvirt")->id();
  BeeId vn1_bee = kNoBee;
  HiveId vn1_hive = 0;
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app == nv &&
        rec.cells.contains({std::string(NetVirtApp::kDict), "1"})) {
      vn1_bee = rec.id;
      vn1_hive = rec.hive;
    }
  }
  std::printf("\nvn1's bee lives on hive %u; its workloads moved near hive "
              "3 — migrating the control function with them\n",
              vn1_hive);
  cluster.hive(vn1_hive).request_migration(vn1_bee, 3);
  cluster.run_to_idle();
  std::printf("vn1's bee now on hive %u; state intact:\n",
              *cluster.registry().hive_of(vn1_bee));
  Bee* bee = cluster.hive(3).find_bee(vn1_bee);
  auto state = bee->store().dict(NetVirtApp::kDict).get_as<VnState>("1");
  std::printf("  vn1 endpoints after migration: %zu\n",
              state->endpoints.size());

  inject(3, VnAttach{1, 13, 1, 0xa4});  // still fully functional
  cluster.run_to_idle();
  return 0;
}
