file(REMOVE_RECURSE
  "CMakeFiles/causation_report.dir/causation_report.cpp.o"
  "CMakeFiles/causation_report.dir/causation_report.cpp.o.d"
  "causation_report"
  "causation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
