# Empty dependencies file for causation_report.
# This may be replaced when dependencies are built.
