file(REMOVE_RECURSE
  "CMakeFiles/micro_registry.dir/micro_registry.cpp.o"
  "CMakeFiles/micro_registry.dir/micro_registry.cpp.o.d"
  "micro_registry"
  "micro_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
