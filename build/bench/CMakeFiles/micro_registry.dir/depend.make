# Empty dependencies file for micro_registry.
# This may be replaced when dependencies are built.
