# Empty compiler generated dependencies file for usecase_apps.
# This may be replaced when dependencies are built.
