file(REMOVE_RECURSE
  "CMakeFiles/usecase_apps.dir/usecase_apps.cpp.o"
  "CMakeFiles/usecase_apps.dir/usecase_apps.cpp.o.d"
  "usecase_apps"
  "usecase_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
