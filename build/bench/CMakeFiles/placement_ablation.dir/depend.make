# Empty dependencies file for placement_ablation.
# This may be replaced when dependencies are built.
