file(REMOVE_RECURSE
  "CMakeFiles/placement_ablation.dir/placement_ablation.cpp.o"
  "CMakeFiles/placement_ablation.dir/placement_ablation.cpp.o.d"
  "placement_ablation"
  "placement_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
