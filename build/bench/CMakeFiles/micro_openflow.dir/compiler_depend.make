# Empty compiler generated dependencies file for micro_openflow.
# This may be replaced when dependencies are built.
