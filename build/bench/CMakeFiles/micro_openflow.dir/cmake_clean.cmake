file(REMOVE_RECURSE
  "CMakeFiles/micro_openflow.dir/micro_openflow.cpp.o"
  "CMakeFiles/micro_openflow.dir/micro_openflow.cpp.o.d"
  "micro_openflow"
  "micro_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
