# Empty compiler generated dependencies file for kandoo_emulation.
# This may be replaced when dependencies are built.
