file(REMOVE_RECURSE
  "CMakeFiles/kandoo_emulation.dir/kandoo_emulation.cpp.o"
  "CMakeFiles/kandoo_emulation.dir/kandoo_emulation.cpp.o.d"
  "kandoo_emulation"
  "kandoo_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kandoo_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
