# Empty compiler generated dependencies file for micro_migration.
# This may be replaced when dependencies are built.
