file(REMOVE_RECURSE
  "CMakeFiles/micro_migration.dir/micro_migration.cpp.o"
  "CMakeFiles/micro_migration.dir/micro_migration.cpp.o.d"
  "micro_migration"
  "micro_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
