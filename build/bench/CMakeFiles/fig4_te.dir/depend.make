# Empty dependencies file for fig4_te.
# This may be replaced when dependencies are built.
