file(REMOVE_RECURSE
  "CMakeFiles/fig4_te.dir/fig4_te.cpp.o"
  "CMakeFiles/fig4_te.dir/fig4_te.cpp.o.d"
  "fig4_te"
  "fig4_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
