file(REMOVE_RECURSE
  "CMakeFiles/network_virtualization.dir/network_virtualization.cpp.o"
  "CMakeFiles/network_virtualization.dir/network_virtualization.cpp.o.d"
  "network_virtualization"
  "network_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
