# Empty dependencies file for network_virtualization.
# This may be replaced when dependencies are built.
