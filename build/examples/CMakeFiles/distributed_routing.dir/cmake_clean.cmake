file(REMOVE_RECURSE
  "CMakeFiles/distributed_routing.dir/distributed_routing.cpp.o"
  "CMakeFiles/distributed_routing.dir/distributed_routing.cpp.o.d"
  "distributed_routing"
  "distributed_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
