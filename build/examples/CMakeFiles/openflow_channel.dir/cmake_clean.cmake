file(REMOVE_RECURSE
  "CMakeFiles/openflow_channel.dir/openflow_channel.cpp.o"
  "CMakeFiles/openflow_channel.dir/openflow_channel.cpp.o.d"
  "openflow_channel"
  "openflow_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openflow_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
