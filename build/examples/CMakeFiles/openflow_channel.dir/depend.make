# Empty dependencies file for openflow_channel.
# This may be replaced when dependencies are built.
