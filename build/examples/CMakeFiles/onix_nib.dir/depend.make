# Empty dependencies file for onix_nib.
# This may be replaced when dependencies are built.
