file(REMOVE_RECURSE
  "CMakeFiles/onix_nib.dir/onix_nib.cpp.o"
  "CMakeFiles/onix_nib.dir/onix_nib.cpp.o.d"
  "onix_nib"
  "onix_nib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onix_nib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
