file(REMOVE_RECURSE
  "CMakeFiles/kandoo_learning_switch.dir/kandoo_learning_switch.cpp.o"
  "CMakeFiles/kandoo_learning_switch.dir/kandoo_learning_switch.cpp.o.d"
  "kandoo_learning_switch"
  "kandoo_learning_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kandoo_learning_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
