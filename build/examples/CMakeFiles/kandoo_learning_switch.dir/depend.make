# Empty dependencies file for kandoo_learning_switch.
# This may be replaced when dependencies are built.
