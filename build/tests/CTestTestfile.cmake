# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_foundation[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_thread_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fig4_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_host_location[1]_include.cmake")
include("/root/repo/build/tests/test_core_units[1]_include.cmake")
include("/root/repo/build/tests/test_te_apps[1]_include.cmake")
include("/root/repo/build/tests/test_kandoo[1]_include.cmake")
include("/root/repo/build/tests/test_failure_detector[1]_include.cmake")
include("/root/repo/build/tests/test_openflow[1]_include.cmake")
include("/root/repo/build/tests/test_connection[1]_include.cmake")
include("/root/repo/build/tests/test_sim_failures[1]_include.cmake")
