file(REMOVE_RECURSE
  "CMakeFiles/test_failure_detector.dir/test_failure_detector.cpp.o"
  "CMakeFiles/test_failure_detector.dir/test_failure_detector.cpp.o.d"
  "test_failure_detector"
  "test_failure_detector.pdb"
  "test_failure_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
