# Empty compiler generated dependencies file for test_failure_detector.
# This may be replaced when dependencies are built.
