file(REMOVE_RECURSE
  "CMakeFiles/test_host_location.dir/test_host_location.cpp.o"
  "CMakeFiles/test_host_location.dir/test_host_location.cpp.o.d"
  "test_host_location"
  "test_host_location.pdb"
  "test_host_location[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
