# Empty dependencies file for test_host_location.
# This may be replaced when dependencies are built.
