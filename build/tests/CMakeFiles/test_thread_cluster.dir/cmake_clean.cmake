file(REMOVE_RECURSE
  "CMakeFiles/test_thread_cluster.dir/test_thread_cluster.cpp.o"
  "CMakeFiles/test_thread_cluster.dir/test_thread_cluster.cpp.o.d"
  "test_thread_cluster"
  "test_thread_cluster.pdb"
  "test_thread_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
