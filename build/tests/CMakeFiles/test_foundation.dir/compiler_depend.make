# Empty compiler generated dependencies file for test_foundation.
# This may be replaced when dependencies are built.
