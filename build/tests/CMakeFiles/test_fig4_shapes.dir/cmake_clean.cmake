file(REMOVE_RECURSE
  "CMakeFiles/test_fig4_shapes.dir/test_fig4_shapes.cpp.o"
  "CMakeFiles/test_fig4_shapes.dir/test_fig4_shapes.cpp.o.d"
  "test_fig4_shapes"
  "test_fig4_shapes.pdb"
  "test_fig4_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig4_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
