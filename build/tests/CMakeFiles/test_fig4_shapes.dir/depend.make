# Empty dependencies file for test_fig4_shapes.
# This may be replaced when dependencies are built.
