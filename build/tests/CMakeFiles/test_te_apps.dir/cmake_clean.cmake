file(REMOVE_RECURSE
  "CMakeFiles/test_te_apps.dir/test_te_apps.cpp.o"
  "CMakeFiles/test_te_apps.dir/test_te_apps.cpp.o.d"
  "test_te_apps"
  "test_te_apps.pdb"
  "test_te_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_te_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
