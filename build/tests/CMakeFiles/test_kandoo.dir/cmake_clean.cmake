file(REMOVE_RECURSE
  "CMakeFiles/test_kandoo.dir/test_kandoo.cpp.o"
  "CMakeFiles/test_kandoo.dir/test_kandoo.cpp.o.d"
  "test_kandoo"
  "test_kandoo.pdb"
  "test_kandoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kandoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
