# Empty compiler generated dependencies file for test_kandoo.
# This may be replaced when dependencies are built.
