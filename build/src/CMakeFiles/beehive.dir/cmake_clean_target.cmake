file(REMOVE_RECURSE
  "libbeehive.a"
)
