
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/discovery.cpp" "src/CMakeFiles/beehive.dir/apps/discovery.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/discovery.cpp.o.d"
  "/root/repo/src/apps/host_location.cpp" "src/CMakeFiles/beehive.dir/apps/host_location.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/host_location.cpp.o.d"
  "/root/repo/src/apps/kandoo_elephant.cpp" "src/CMakeFiles/beehive.dir/apps/kandoo_elephant.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/kandoo_elephant.cpp.o.d"
  "/root/repo/src/apps/learning_switch.cpp" "src/CMakeFiles/beehive.dir/apps/learning_switch.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/learning_switch.cpp.o.d"
  "/root/repo/src/apps/messages.cpp" "src/CMakeFiles/beehive.dir/apps/messages.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/messages.cpp.o.d"
  "/root/repo/src/apps/netvirt.cpp" "src/CMakeFiles/beehive.dir/apps/netvirt.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/netvirt.cpp.o.d"
  "/root/repo/src/apps/nib.cpp" "src/CMakeFiles/beehive.dir/apps/nib.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/nib.cpp.o.d"
  "/root/repo/src/apps/routing.cpp" "src/CMakeFiles/beehive.dir/apps/routing.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/routing.cpp.o.d"
  "/root/repo/src/apps/te_decoupled.cpp" "src/CMakeFiles/beehive.dir/apps/te_decoupled.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/te_decoupled.cpp.o.d"
  "/root/repo/src/apps/te_naive.cpp" "src/CMakeFiles/beehive.dir/apps/te_naive.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/apps/te_naive.cpp.o.d"
  "/root/repo/src/cluster/channel.cpp" "src/CMakeFiles/beehive.dir/cluster/channel.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/cluster/channel.cpp.o.d"
  "/root/repo/src/cluster/registry.cpp" "src/CMakeFiles/beehive.dir/cluster/registry.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/cluster/registry.cpp.o.d"
  "/root/repo/src/cluster/sim.cpp" "src/CMakeFiles/beehive.dir/cluster/sim.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/cluster/sim.cpp.o.d"
  "/root/repo/src/cluster/thread_cluster.cpp" "src/CMakeFiles/beehive.dir/cluster/thread_cluster.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/cluster/thread_cluster.cpp.o.d"
  "/root/repo/src/core/app.cpp" "src/CMakeFiles/beehive.dir/core/app.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/core/app.cpp.o.d"
  "/root/repo/src/core/hive.cpp" "src/CMakeFiles/beehive.dir/core/hive.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/core/hive.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/CMakeFiles/beehive.dir/core/migration.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/core/migration.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/CMakeFiles/beehive.dir/core/replication.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/core/replication.cpp.o.d"
  "/root/repo/src/instrument/collector.cpp" "src/CMakeFiles/beehive.dir/instrument/collector.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/instrument/collector.cpp.o.d"
  "/root/repo/src/instrument/failure_detector.cpp" "src/CMakeFiles/beehive.dir/instrument/failure_detector.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/instrument/failure_detector.cpp.o.d"
  "/root/repo/src/instrument/metrics.cpp" "src/CMakeFiles/beehive.dir/instrument/metrics.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/instrument/metrics.cpp.o.d"
  "/root/repo/src/msg/registry.cpp" "src/CMakeFiles/beehive.dir/msg/registry.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/msg/registry.cpp.o.d"
  "/root/repo/src/net/connection.cpp" "src/CMakeFiles/beehive.dir/net/connection.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/connection.cpp.o.d"
  "/root/repo/src/net/driver.cpp" "src/CMakeFiles/beehive.dir/net/driver.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/driver.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/beehive.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/openflow.cpp" "src/CMakeFiles/beehive.dir/net/openflow.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/openflow.cpp.o.d"
  "/root/repo/src/net/switch_sim.cpp" "src/CMakeFiles/beehive.dir/net/switch_sim.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/switch_sim.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/beehive.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/net/topology.cpp.o.d"
  "/root/repo/src/placement/strategy.cpp" "src/CMakeFiles/beehive.dir/placement/strategy.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/placement/strategy.cpp.o.d"
  "/root/repo/src/state/dict.cpp" "src/CMakeFiles/beehive.dir/state/dict.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/state/dict.cpp.o.d"
  "/root/repo/src/state/store.cpp" "src/CMakeFiles/beehive.dir/state/store.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/state/store.cpp.o.d"
  "/root/repo/src/state/txn.cpp" "src/CMakeFiles/beehive.dir/state/txn.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/state/txn.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/beehive.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/beehive.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/beehive.dir/util/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
