# Empty dependencies file for beehive.
# This may be replaced when dependencies are built.
