#include "instrument/status_app.h"

#include <algorithm>

#include "core/context.h"

namespace beehive {

namespace {

CellSet status_cells() {
  return CellSet{{std::string(StatusApp::kHivesDict), std::string(kAllKeys)},
                 {std::string(StatusApp::kBeesDict), std::string(kAllKeys)},
                 {std::string(StatusApp::kMetaDict), std::string(kAllKeys)}};
}

std::string suspected_key(HiveId hive) {
  return "suspected:" + std::to_string(hive);
}

void append_json_ring(std::string& out, const TimeSeriesRing& ring) {
  out += "[";
  bool first = true;
  for (const TimeSeriesRing::Sample& s : ring.snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(s.at) + ", " +
           std::to_string(static_cast<std::uint64_t>(s.value)) + "]";
  }
  out += "]";
}

}  // namespace

StatusApp::StatusApp(StatusAppConfig config) : App("platform.status") {
  register_metrics_messages();
  MsgTypeRegistry::instance().ensure<HiveStatus>();
  MsgTypeRegistry::instance().ensure<BeeStatus>();
  MsgTypeRegistry::instance().ensure<StatusReport>();
  MsgTypeRegistry::instance().ensure<HiveSuspected>();

  // Fold: every hive's heartbeat report refreshes its own row and its
  // bees' rows. Whole-dict cells centralize the app on one bee.
  on<LocalMetricsReport>(
      [](const LocalMetricsReport&) { return status_cells(); },
      [config](AppContext& ctx, const LocalMetricsReport& report) {
        const std::string hives(kHivesDict);
        const std::string bees(kBeesDict);
        const std::string hive_key = std::to_string(report.hive);

        std::uint64_t window_msgs = 0;
        std::uint64_t queue_depth = 0;
        for (const BeeMetricsSample& s : report.bees) {
          window_msgs += s.msgs_in;
          queue_depth += s.holdback;
        }

        HiveStatus hs =
            ctx.state().get_as<HiveStatus>(hives, hive_key).value_or(
                HiveStatus{});
        if (hs.at == 0) hs.msgs_window = TimeSeriesRing(config.ring_windows);
        const TimePoint prev_at = hs.at;
        const std::uint64_t prev_shed = hs.shed;
        hs.hive = report.hive;
        hs.at = report.at;
        hs.bees = report.bees.size();
        hs.cells = report.hive_cells;
        hs.queue_depth = queue_depth;
        hs.e2e_p50_us = report.e2e_latency.p50();
        hs.e2e_p99_us = report.e2e_latency.p99();
        hs.transport = report.transport;
        hs.migration_aborts = report.migration_aborts;
        hs.partitions_active = report.partitions_active;
        hs.pressure = report.pressure;
        hs.cost_us = report.cost_us;
        // Shed rate: delta against the previous folded report for this hive.
        if (prev_at > 0 && report.at > prev_at &&
            report.shed_total >= prev_shed) {
          hs.shed_per_s = static_cast<double>(report.shed_total - prev_shed) *
                          1e6 / static_cast<double>(report.at - prev_at);
        } else {
          hs.shed_per_s = 0.0;
        }
        hs.shed = report.shed_total;
        hs.credits = report.credits;
        hs.stalled = report.stalled_frames;
        hs.degraded = report.degraded;
        hs.suspected = ctx.state()
                           .get_as<HiveSuspected>(std::string(kMetaDict),
                                                  suspected_key(report.hive))
                           .has_value();
        hs.msgs_window.push(report.at, static_cast<double>(window_msgs));
        ctx.state().put_as(hives, hive_key, hs);

        for (const BeeMetricsSample& sample : report.bees) {
          const std::string bee_key = std::to_string(sample.bee);
          BeeStatus bs = ctx.state()
                             .get_as<BeeStatus>(bees, bee_key)
                             .value_or(BeeStatus{});
          if (bs.at == 0) {
            bs.msgs_window = TimeSeriesRing(config.ring_windows);
          }
          bs.bee = sample.bee;
          bs.app = sample.app;
          bs.app_name = sample.app_name;
          bs.hive = sample.hive;
          bs.at = report.at;
          bs.pinned = sample.pinned;
          bs.cells = sample.cells;
          bs.state_bytes = sample.state_bytes;
          bs.queue_depth = sample.holdback;
          bs.msgs_in_window = sample.msgs_in;
          bs.cost_us = sample.cost_us;
          bs.handler_p99_us = sample.handler_latency.p99();
          bs.msgs_window.push(report.at, static_cast<double>(sample.msgs_in));
          ctx.state().put_as(bees, bee_key, bs);
        }

        // Age out rows for bees that merged away or whose hive stopped
        // reporting; they would otherwise linger forever.
        std::vector<std::string> stale;
        ctx.state().for_each(
            bees, [&](const std::string& key, const Bytes& value) {
              BeeStatus bs = decode_from_bytes<BeeStatus>(value);
              if (bs.at + config.stale_after < report.at) {
                stale.push_back(key);
              }
            });
        for (const std::string& key : stale) ctx.state().erase(bees, key);
      });

  on<HiveSuspected>(
      [](const HiveSuspected&) { return status_cells(); },
      [](AppContext& ctx, const HiveSuspected& m) {
        ctx.state().put_as(std::string(kMetaDict), suspected_key(m.hive), m);
        const std::string hives(kHivesDict);
        const std::string key = std::to_string(m.hive);
        if (auto hs = ctx.state().get_as<HiveStatus>(hives, key)) {
          hs->suspected = true;
          ctx.state().put_as(hives, key, *hs);
        }
      });

  on<HiveRecovered>(
      [](const HiveRecovered&) { return status_cells(); },
      [](AppContext& ctx, const HiveRecovered& m) {
        ctx.state().erase(std::string(kMetaDict), suspected_key(m.hive));
        const std::string hives(kHivesDict);
        const std::string key = std::to_string(m.hive);
        if (auto hs = ctx.state().get_as<HiveStatus>(hives, key)) {
          hs->suspected = false;
          ctx.state().put_as(hives, key, *hs);
        }
      });

  // Query: assemble the snapshot and emit it back into the cluster; any
  // app subscribed to StatusReport (a driver, a test sink, the HTTP
  // bridge) receives it.
  on<StatusQuery>(
      [](const StatusQuery&) { return status_cells(); },
      [](AppContext& ctx, const StatusQuery& q) {
        StatusReport report;
        report.token = q.token;
        report.at = ctx.now();
        ctx.state().for_each(
            std::string(kHivesDict),
            [&report](const std::string&, const Bytes& value) {
              report.hives.push_back(decode_from_bytes<HiveStatus>(value));
            });
        ctx.state().for_each(
            std::string(kBeesDict),
            [&report](const std::string&, const Bytes& value) {
              report.bees.push_back(decode_from_bytes<BeeStatus>(value));
            });
        ctx.state().for_each(
            std::string(kMetaDict),
            [&report](const std::string&, const Bytes& value) {
              report.suspected.push_back(
                  decode_from_bytes<HiveSuspected>(value).hive);
            });
        std::sort(report.hives.begin(), report.hives.end(),
                  [](const HiveStatus& a, const HiveStatus& b) {
                    return a.hive < b.hive;
                  });
        std::sort(report.bees.begin(), report.bees.end(),
                  [](const BeeStatus& a, const BeeStatus& b) {
                    return a.bee < b.bee;
                  });
        std::sort(report.suspected.begin(), report.suspected.end());
        ctx.emit(std::move(report));
      });
}

StatusReport StatusApp::report_from_store(const StateStore& store,
                                          TimePoint at,
                                          std::uint64_t token) {
  StatusReport report;
  report.token = token;
  report.at = at;
  if (const Dict* d = store.find_dict(kHivesDict)) {
    d->for_each([&report](const std::string&, const Bytes& value) {
      report.hives.push_back(decode_from_bytes<HiveStatus>(value));
    });
  }
  if (const Dict* d = store.find_dict(kBeesDict)) {
    d->for_each([&report](const std::string&, const Bytes& value) {
      report.bees.push_back(decode_from_bytes<BeeStatus>(value));
    });
  }
  if (const Dict* d = store.find_dict(kMetaDict)) {
    d->for_each([&report](const std::string&, const Bytes& value) {
      report.suspected.push_back(
          decode_from_bytes<HiveSuspected>(value).hive);
    });
  }
  std::sort(report.hives.begin(), report.hives.end(),
            [](const HiveStatus& a, const HiveStatus& b) {
              return a.hive < b.hive;
            });
  std::sort(report.bees.begin(), report.bees.end(),
            [](const BeeStatus& a, const BeeStatus& b) {
              return a.bee < b.bee;
            });
  std::sort(report.suspected.begin(), report.suspected.end());
  return report;
}

std::string StatusReport::to_json() const {
  std::string out = "{\n  \"token\": " + std::to_string(token) +
                    ",\n  \"at\": " + std::to_string(at) +
                    ",\n  \"hives\": [";
  bool first = true;
  for (const HiveStatus& h : hives) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"hive\": " + std::to_string(h.hive) +
           ", \"at\": " + std::to_string(h.at) +
           ", \"bees\": " + std::to_string(h.bees) +
           ", \"cells\": " + std::to_string(h.cells) +
           ", \"queue_depth\": " + std::to_string(h.queue_depth) +
           ", \"e2e_p50_us\": " + std::to_string(h.e2e_p50_us) +
           ", \"e2e_p99_us\": " + std::to_string(h.e2e_p99_us) +
           ", \"retransmits\": " + std::to_string(h.transport.retransmits) +
           ", \"migration_aborts\": " + std::to_string(h.migration_aborts) +
           ", \"partitions_active\": " +
           std::to_string(h.partitions_active) +
           ", \"suspected\": " + (h.suspected ? "true" : "false") +
           ", \"pressure\": " + std::to_string(h.pressure) +
           ", \"cost_us\": " + std::to_string(h.cost_us) +
           ", \"shed\": " + std::to_string(h.shed) +
           ", \"shed_per_s\": " + std::to_string(h.shed_per_s) +
           ", \"credits\": " + std::to_string(h.credits) +
           ", \"stalled\": " + std::to_string(h.stalled) +
           ", \"degraded\": " + (h.degraded ? "true" : "false") +
           ", \"msgs_window\": ";
    append_json_ring(out, h.msgs_window);
    out += "}";
  }
  out += "\n  ],\n  \"bees\": [";
  first = true;
  for (const BeeStatus& b : bees) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"bee\": " + std::to_string(b.bee) +
           ", \"app\": " + std::to_string(b.app) +
           ", \"app_name\": \"" + b.app_name + "\"" +
           ", \"hive\": " + std::to_string(b.hive) +
           ", \"pinned\": " + (b.pinned ? "true" : "false") +
           ", \"cells\": " + std::to_string(b.cells) +
           ", \"queue_depth\": " + std::to_string(b.queue_depth) +
           ", \"msgs_in_window\": " + std::to_string(b.msgs_in_window) +
           ", \"cost_us\": " + std::to_string(b.cost_us) +
           ", \"handler_p99_us\": " + std::to_string(b.handler_p99_us) +
           ", \"msgs_window\": ";
    append_json_ring(out, b.msgs_window);
    out += "}";
  }
  out += "\n  ],\n  \"suspected\": [";
  first = true;
  for (HiveId h : suspected) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(h);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace beehive
