// Distributed message tracing (the causal complement of metrics.h).
//
// Every message carries a trace_id minted deterministically at IO ingress
// and a causal_depth that grows by one per emission hop, so one external
// event's entire fan-out — across bees, hives and the control channel —
// shares an id. Each hive owns a TraceRecorder: a fixed-capacity ring
// buffer of span events stamped with the runtime clock. Recording is O(1),
// allocation-free after construction, and compiled down to a single branch
// when disabled, so the dispatch path is unaffected by default.
//
// Recorded runs export as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing): one process per hive, one track per bee, one track
// per control-channel direction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace beehive {

enum class SpanKind : std::uint8_t {
  kIngress = 1,       ///< Message entered the platform on an IO channel.
  kEnqueue = 2,       ///< Emission buffered for deferred routing.
  kDequeue = 3,       ///< Deferred emission picked up for routing.
  kRegistryResolve = 4,  ///< Map cells resolved to a bee (aux = owner hive).
  kHandlerStart = 5,  ///< Handler invocation began on a bee.
  kHandlerEnd = 6,    ///< Handler returned (aux = emitted count, aux2 = 1
                      ///< on failure/rollback).
  kHold = 7,          ///< Message held behind a transfer fence.
  kChannelSend = 8,   ///< Frame left a hive (hive = from, aux2 = to hive,
                      ///< aux = frame sequence for send/recv pairing,
                      ///< type = FrameKind byte, depth = frame bytes).
  kChannelRecv = 9,   ///< Frame arrived (same fields as kChannelSend).
  kMigrateStart = 10,  ///< Source hive froze a bee (aux = target hive).
  kMigrateIn = 11,     ///< Target hive installed a migrated bee.
  kMigrateOut = 12,    ///< Source hive retired the bee after the ack.
  kDecision = 13,      ///< Optimizer placement decision (bee = subject,
                       ///< aux = target hive, aux2 = 1 if accepted).
};

std::string_view to_string(SpanKind kind);

struct TraceEvent {
  TimePoint at = 0;
  SpanKind kind = SpanKind::kIngress;
  std::uint32_t depth = 0;
  std::uint64_t trace_id = 0;
  HiveId hive = 0;
  BeeId bee = kNoBee;
  AppId app = 0;
  MsgTypeId type = 0;
  std::uint64_t aux = 0;
  std::uint64_t aux2 = 0;
  std::uint64_t seq = 0;  ///< Recorder-local order (ties on `at`).
};

/// Fixed-capacity ring buffer of TraceEvents. Not thread-safe: each hive
/// (single-threaded by construction in both runtimes) owns its own.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(TraceEvent event) {
    if (!enabled_) return;
    event.seq = next_seq_++;
    if (size_ < ring_.size()) {
      ring_[(head_ + size_) % ring_.size()] = event;
      ++size_;
    } else {
      ring_[head_] = event;  // full: overwrite the oldest
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  void clear();

  /// Events in recording order (oldest first).
  std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
};

/// Merges per-hive event streams into one, ordered by (at, hive, seq) —
/// deterministic for the simulated runtime.
std::vector<TraceEvent> merge_trace_events(
    const std::vector<const TraceRecorder*>& recorders);

/// Renders events as Chrome trace-event JSON ("traceEvents" array format):
/// handler invocations become complete ("X") spans on a per-bee track,
/// channel frames become spans on per-link tracks under a synthetic
/// "control channel" process, everything else becomes instant events.
/// Message-type names resolve through MsgTypeRegistry.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Writes to_chrome_trace(events) to `path`. Returns false on IO error.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace beehive
