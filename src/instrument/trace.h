// Distributed message tracing (the causal complement of metrics.h).
//
// Every message carries a trace_id minted deterministically at IO ingress
// and a causal_depth that grows by one per emission hop, so one external
// event's entire fan-out — across bees, hives and the control channel —
// shares an id. Each hive owns a TraceRecorder: a fixed-capacity ring
// buffer of span events stamped with the runtime clock. Recording is O(1),
// allocation-free after construction, and compiled down to a single branch
// when disabled, so the dispatch path is unaffected by default.
//
// Recorded runs export as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing): one process per hive, one track per bee, one track
// per control-channel direction.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace beehive {

enum class SpanKind : std::uint8_t {
  kIngress = 1,       ///< Message entered the platform on an IO channel.
  kEnqueue = 2,       ///< Emission buffered for deferred routing.
  kDequeue = 3,       ///< Deferred emission picked up for routing.
  kRegistryResolve = 4,  ///< Map cells resolved to a bee (aux = owner hive).
  kHandlerStart = 5,  ///< Handler invocation began on a bee.
  kHandlerEnd = 6,    ///< Handler returned (aux = emitted count, aux2 = 1
                      ///< on failure/rollback).
  kHold = 7,          ///< Message held behind a transfer fence.
  kChannelSend = 8,   ///< Frame left a hive (hive = from, aux2 = to hive,
                      ///< aux = frame sequence for send/recv pairing,
                      ///< type = FrameKind byte, depth = frame bytes).
  kChannelRecv = 9,   ///< Frame arrived (same fields as kChannelSend).
  kMigrateStart = 10,  ///< Source hive froze a bee (aux = target hive).
  kMigrateIn = 11,     ///< Target hive installed a migrated bee.
  kMigrateOut = 12,    ///< Source hive retired the bee after the ack.
  kDecision = 13,      ///< Optimizer placement decision (bee = subject,
                       ///< aux = target hive, aux2 = 1 if accepted).
  kCreditStall = 14,   ///< A credit-stalled frame finally shipped (hive =
                       ///< sender, aux = microseconds spent waiting for
                       ///< window credit, aux2 = destination hive).
  kRetransmit = 15,    ///< Frame re-sent on ack timeout (hive = sender,
                       ///< aux = transport sequence, aux2 = destination,
                       ///< depth = retransmit round).
  kStallQueued = 16,   ///< Frame entered the credit stall queue (hive =
                       ///< sender, aux = stall-queue depth after the
                       ///< enqueue, aux2 = destination hive).
  kShed = 17,          ///< Load was dropped by an overload policy. Mailbox
                       ///< sheds carry the victim message's trace context;
                       ///< link-level sheds are trace 0 with aux2 = the
                       ///< destination hive.
  kBatchFlush = 18,    ///< An egress batch left the hive at end of turn
                       ///< (aux = frames coalesced, aux2 = destination).
};

std::string_view to_string(SpanKind kind);

/// Human label for a FrameKind byte as recorded in channel-span `type`.
std::string_view frame_kind_name(std::uint32_t kind);

struct TraceEvent {
  TimePoint at = 0;
  SpanKind kind = SpanKind::kIngress;
  std::uint32_t depth = 0;
  std::uint64_t trace_id = 0;
  HiveId hive = 0;
  BeeId bee = kNoBee;
  AppId app = 0;
  MsgTypeId type = 0;
  std::uint64_t aux = 0;
  std::uint64_t aux2 = 0;
  std::uint64_t seq = 0;  ///< Recorder-local order (ties on `at`).
};

/// Tail-based retention policy (the Dapper tail-at-scale lesson): every
/// message records cheap span headers into the ring, but full detail is
/// copied aside — surviving ring overwrites — only for traces that end
/// slow, shed, or failed. The decision is made once, at trace end.
struct TailSamplerConfig {
  bool enabled = false;
  /// Retain a trace whose end-to-end latency is at least this.
  Duration latency_threshold = 20 * kMillisecond;
  /// Retained-trace budget per recorder (slowest win; ties keep first).
  std::size_t max_traces = 16;
  /// Span budget per retained trace (oldest spans win on overflow).
  std::size_t max_spans_per_trace = 192;
};

/// Fixed-capacity ring buffer of TraceEvents. Not thread-safe: each hive
/// (single-threaded by construction in both runtimes) owns its own. The
/// drop counters are atomics so scrape threads may read them while the
/// owning loop records.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(TraceEvent event) {
    if (!enabled_) return;
    event.seq = next_seq_++;
    if (size_ < ring_.size()) {
      ring_[(head_ + size_) & mask_] = event;
      ++size_;
    } else {
      ring_[head_] = event;  // full: overwrite the oldest
      head_ = (head_ + 1) & mask_;
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void clear();

  /// Events in recording order (oldest first).
  std::vector<TraceEvent> events() const;

  /// Preallocates retained-trace storage. Call before traffic; recording
  /// and note_trace_end never allocate afterwards.
  void configure_tail(const TailSamplerConfig& config);
  const TailSamplerConfig& tail_config() const { return tail_; }

  /// Tail-sampling decision point, called when a trace reaches a terminal
  /// (no further emissions / handler failure / shed). Fast path — trace
  /// under threshold and healthy — is a couple of inlined branches, no
  /// call, no allocation. Slow/errored traces get their spans copied from
  /// the ring into a preallocated retained slot; when the budget is full
  /// the least-slow retained trace is evicted iff the new one is slower,
  /// and either way the loser counts into tail_rejected().
  void note_trace_end(std::uint64_t trace_id, Duration e2e, bool errored) {
    if (!tail_.enabled || !enabled_ || trace_id == 0) return;
    if (!errored && e2e < tail_.latency_threshold) return;
    retain_trace(trace_id, e2e, errored);
  }

  /// Number of traces currently retained by the tail sampler.
  std::size_t tail_retained() const { return slots_used_; }
  /// Traces that hit the threshold but lost the budget contest (either the
  /// newcomer was not slower than every retained trace, or it evicted one).
  std::uint64_t tail_rejected() const {
    return tail_rejected_.load(std::memory_order_relaxed);
  }
  /// Satellite counter: total trace loss = ring overwrites + budget losses.
  std::uint64_t trace_dropped_total() const {
    return dropped() + tail_rejected();
  }

  /// Spans of all retained traces, in retention-slot order.
  std::vector<TraceEvent> retained_events() const;

  /// Ring events plus retained spans that have already been overwritten in
  /// the ring (deduped by recorder-local seq; ascending seq order).
  std::vector<TraceEvent> events_with_retained() const;

 private:
  struct RetainedTrace {
    std::uint64_t trace_id = 0;
    Duration e2e = 0;
    bool errored = false;
    std::uint32_t count = 0;  ///< Spans captured into this slot.
  };

  /// Slow half of note_trace_end: slot lookup / budget contest / ring scan.
  void retain_trace(std::uint64_t trace_id, Duration e2e, bool errored);

  std::vector<TraceEvent> ring_;  ///< Power-of-two sized (index by mask_).
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
  bool enabled_ = true;

  TailSamplerConfig tail_;
  std::vector<RetainedTrace> slots_;
  std::vector<TraceEvent> slot_events_;  ///< max_traces × max_spans_per_trace.
  std::size_t slots_used_ = 0;
  std::atomic<std::uint64_t> tail_rejected_{0};
};

/// Merges per-hive event streams into one, ordered by (at, hive, seq) —
/// deterministic for the simulated runtime.
std::vector<TraceEvent> merge_trace_events(
    const std::vector<const TraceRecorder*>& recorders);

/// Renders events as Chrome trace-event JSON ("traceEvents" array format):
/// handler invocations become complete ("X") spans on a per-bee track,
/// channel frames become spans on per-link tracks under a synthetic
/// "control channel" process, everything else becomes instant events.
/// Message-type names resolve through MsgTypeRegistry.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Writes to_chrome_trace(events) to `path`. Returns false on IO error.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace beehive
