#include "instrument/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace beehive {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

double HiveHealth::score() const {
  double s = 100.0;
  // Pressure is already normalized to [0, 1).
  s -= 40.0 * std::clamp(pressure, 0.0, 1.0);
  // A 20% retransmit rate (or worse) costs the full reliability deduction.
  s -= 30.0 * std::clamp(retransmit_rate * 5.0, 0.0, 1.0);
  if (suspected) s -= 20.0;
  // Handler tail: 10ms p99 starts hurting, 100ms+ costs the full 10.
  if (handler_p99_us > 10'000) {
    const double over =
        std::log10(static_cast<double>(handler_p99_us) / 10'000.0);
    s -= 10.0 * std::clamp(over, 0.0, 1.0);
  }
  return std::clamp(s, 0.0, 100.0);
}

double HealthReport::min_score() const {
  double min = 100.0;
  for (const HiveHealth& h : hives) min = std::min(min, h.score());
  return min;
}

std::string HealthReport::to_json() const {
  std::string out = "{\n  \"at\": " + std::to_string(at) +
                    ",\n  \"min_score\": " + fmt_double(min_score()) +
                    ",\n  \"hives\": [";
  bool first = true;
  for (const HiveHealth& h : hives) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"hive\": " + std::to_string(h.hive) +
           ", \"score\": " + fmt_double(h.score()) +
           ", \"pressure\": " + fmt_double(h.pressure) +
           ", \"retransmit_rate\": " + fmt_double(h.retransmit_rate) +
           ", \"suspected\": " + (h.suspected ? "true" : "false") +
           ", \"handler_p99_us\": " + std::to_string(h.handler_p99_us) +
           ", \"queue_depth\": " + std::to_string(h.queue_depth) +
           ", \"runq_depth\": " + std::to_string(h.runq_depth) +
           ", \"ringq_hwm\": " + std::to_string(h.ringq_hwm) +
           ", \"handler_failures\": " + std::to_string(h.handler_failures) +
           ", \"cost_us_window\": " + std::to_string(h.cost_us_window) +
           ", \"shed_total\": " + std::to_string(h.shed_total) +
           ", \"shed_per_s\": " + fmt_double(h.shed_per_s) +
           ", \"credits\": " + std::to_string(h.credits) +
           ", \"stalled\": " + std::to_string(h.stalled) +
           ", \"degraded\": " + (h.degraded ? "true" : "false") +
           ", \"trace_dropped\": " + std::to_string(h.trace_dropped) + "}";
  }
  out += "\n  ],\n  \"registry_shards\": [";
  first = true;
  for (const RegistryShardHealth& s : registry_shards) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"shard\": " + std::to_string(s.shard) +
           ", \"ops\": " + std::to_string(s.ops) +
           ", \"lock_waits\": " + std::to_string(s.lock_waits) +
           ", \"lock_wait_us\": " + std::to_string(s.lock_wait_us) +
           ", \"invalidations\": " + std::to_string(s.invalidations) +
           ", \"resolves\": " + std::to_string(s.resolves) +
           ", \"lease_term\": " + std::to_string(s.lease_term) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string HealthReport::to_text() const {
  std::string out;
  for (const HiveHealth& h : hives) {
    out += "hive " + std::to_string(h.hive) +
           " score=" + fmt_double(h.score()) +
           " pressure=" + fmt_double(h.pressure) +
           " retx=" + fmt_double(h.retransmit_rate) +
           " p99us=" + std::to_string(h.handler_p99_us) +
           " runq=" + std::to_string(h.runq_depth) +
           " ringq=" + std::to_string(h.ringq_hwm) +
           " holdback=" + std::to_string(h.queue_depth) +
           " cost_us=" + std::to_string(h.cost_us_window) +
           " shed=" + std::to_string(h.shed_total) +
           " credits=" + std::to_string(h.credits) +
           " trace_drop=" + std::to_string(h.trace_dropped) +
           (h.degraded ? " DEGRADED" : "") +
           (h.suspected ? " SUSPECTED" : "") + "\n";
  }
  return out;
}

}  // namespace beehive
