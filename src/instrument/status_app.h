// In-band cluster introspection — the `hive-top` view, implemented as a
// Beehive control application exactly like the collector (paper §3's
// pattern: platform services are just apps).
//
// Every hive's periodic LocalMetricsReport folds into whole-dictionary
// status cells (so the platform centralizes the app on one bee, under both
// runtimes); failure-detector events mark hives suspected. Any client —
// tests, examples, the HTTP /status.json endpoint under ThreadCluster —
// injects a StatusQuery and gets back a StatusReport: per-hive and per-bee
// snapshots with queue depths, windowed rate rings, latency digests,
// transport health and the suspected set.
#pragma once

#include <string>
#include <vector>

#include "core/app.h"
#include "instrument/failure_detector.h"
#include "instrument/metrics.h"
#include "instrument/registry.h"
#include "state/store.h"

namespace beehive {

/// Ask the cluster for a status snapshot. `token` is echoed in the report
/// so concurrent queriers can match answers.
struct StatusQuery {
  static constexpr std::string_view kTypeName = "platform.status_query";
  std::uint64_t token = 0;

  void encode(ByteWriter& w) const { w.varint(token); }
  static StatusQuery decode(ByteReader& r) { return {r.varint()}; }
};

/// One hive's row in the status view (also the value of one "status.hives"
/// cell, so the report is assembled by direct dictionary scan).
struct HiveStatus {
  static constexpr std::string_view kTypeName = "platform.hive_status";

  HiveId hive = 0;
  TimePoint at = 0;  ///< timestamp of the latest folded report
  std::uint64_t bees = 0;
  std::uint64_t cells = 0;
  std::uint64_t queue_depth = 0;  ///< held-back messages across local bees
  std::uint64_t e2e_p50_us = 0;
  std::uint64_t e2e_p99_us = 0;
  TransportCounters transport;
  std::uint64_t migration_aborts = 0;
  std::uint32_t partitions_active = 0;
  bool suspected = false;
  /// Queue-pressure score from the hive's latest report (DESIGN.md §9).
  double pressure = 0.0;
  /// Profiler estimate of handler CPU microseconds over the last window.
  std::uint64_t cost_us = 0;
  // -- Overload control (DESIGN.md §10) --
  std::uint64_t shed = 0;   ///< lifetime messages/frames shed by policy
  double shed_per_s = 0.0;  ///< shed rate between the last two reports
  /// Smallest remaining credit across outbound links (-1 = no credited link).
  std::int64_t credits = -1;
  std::uint64_t stalled = 0;  ///< frames parked awaiting credit
  bool degraded = false;      ///< hive advertises reduced credit
  /// Messages received per reporting window, last N windows.
  TimeSeriesRing msgs_window;

  void encode(ByteWriter& w) const {
    w.u32(hive);
    w.i64(at);
    w.varint(bees);
    w.varint(cells);
    w.varint(queue_depth);
    w.varint(e2e_p50_us);
    w.varint(e2e_p99_us);
    transport.encode(w);
    w.varint(migration_aborts);
    w.u32(partitions_active);
    w.boolean(suspected);
    w.f64(pressure);
    w.varint(cost_us);
    w.varint(shed);
    w.f64(shed_per_s);
    w.i64(credits);
    w.varint(stalled);
    w.boolean(degraded);
    msgs_window.encode(w);
  }
  static HiveStatus decode(ByteReader& r) {
    HiveStatus s;
    s.hive = r.u32();
    s.at = r.i64();
    s.bees = r.varint();
    s.cells = r.varint();
    s.queue_depth = r.varint();
    s.e2e_p50_us = r.varint();
    s.e2e_p99_us = r.varint();
    s.transport = TransportCounters::decode(r);
    s.migration_aborts = r.varint();
    s.partitions_active = r.u32();
    s.suspected = r.boolean();
    s.pressure = r.f64();
    s.cost_us = r.varint();
    s.shed = r.varint();
    s.shed_per_s = r.f64();
    s.credits = r.i64();
    s.stalled = r.varint();
    s.degraded = r.boolean();
    s.msgs_window = TimeSeriesRing::decode(r);
    return s;
  }
};

/// One bee's row (the value of one "status.bees" cell).
struct BeeStatus {
  static constexpr std::string_view kTypeName = "platform.bee_status";

  BeeId bee = kNoBee;
  AppId app = 0;
  std::string app_name;
  HiveId hive = 0;
  TimePoint at = 0;
  bool pinned = false;
  std::uint64_t cells = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t queue_depth = 0;  ///< holdback length at report time
  std::uint64_t msgs_in_window = 0;
  /// Profiler estimate of this bee's handler CPU microseconds, last window.
  std::uint64_t cost_us = 0;
  /// Handler-latency p99 (microseconds) over the last window.
  std::uint64_t handler_p99_us = 0;
  /// Messages received per reporting window, last N windows.
  TimeSeriesRing msgs_window;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.str(app_name);
    w.u32(hive);
    w.i64(at);
    w.boolean(pinned);
    w.varint(cells);
    w.varint(state_bytes);
    w.varint(queue_depth);
    w.varint(msgs_in_window);
    w.varint(cost_us);
    w.varint(handler_p99_us);
    msgs_window.encode(w);
  }
  static BeeStatus decode(ByteReader& r) {
    BeeStatus s;
    s.bee = r.u64();
    s.app = r.u32();
    s.app_name = r.str();
    s.hive = r.u32();
    s.at = r.i64();
    s.pinned = r.boolean();
    s.cells = r.varint();
    s.state_bytes = r.varint();
    s.queue_depth = r.varint();
    s.msgs_in_window = r.varint();
    s.cost_us = r.varint();
    s.handler_p99_us = r.varint();
    s.msgs_window = TimeSeriesRing::decode(r);
    return s;
  }
};

/// The answer to a StatusQuery.
struct StatusReport {
  static constexpr std::string_view kTypeName = "platform.status_report";

  std::uint64_t token = 0;
  TimePoint at = 0;
  std::vector<HiveStatus> hives;
  std::vector<BeeStatus> bees;
  std::vector<HiveId> suspected;

  void encode(ByteWriter& w) const {
    w.varint(token);
    w.i64(at);
    encode_vector(w, hives);
    encode_vector(w, bees);
    w.varint(suspected.size());
    for (HiveId h : suspected) w.u32(h);
  }
  static StatusReport decode(ByteReader& r) {
    StatusReport s;
    s.token = r.varint();
    s.at = r.i64();
    s.hives = decode_vector<HiveStatus>(r);
    s.bees = decode_vector<BeeStatus>(r);
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) s.suspected.push_back(r.u32());
    return s;
  }

  /// Human/CI-friendly JSON rendering (served at /status.json when a
  /// StatusApp feeds the HTTP exporter).
  std::string to_json() const;
};

struct StatusAppConfig {
  /// Windows retained per rate ring (hive and bee rows).
  std::size_t ring_windows = 16;
  /// Bee rows older than this many report periods are dropped from the
  /// snapshot on fold (bees that merged away or whose hive died).
  Duration stale_after = 10 * kSecond;
};

class StatusApp : public App {
 public:
  explicit StatusApp(StatusAppConfig config = {});

  static constexpr std::string_view kHivesDict = "status.hives";
  static constexpr std::string_view kBeesDict = "status.bees";
  /// Suspected-hive markers, keyed "suspected:<hive>".
  static constexpr std::string_view kMetaDict = "status.meta";

  /// Assembles a StatusReport straight from the status bee's store (tests
  /// and SimCluster callers that don't want the emit round-trip).
  static StatusReport report_from_store(const StateStore& store,
                                        TimePoint at,
                                        std::uint64_t token = 0);
};

}  // namespace beehive
