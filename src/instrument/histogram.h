// Log-bucketed latency histogram (HDR-style).
//
// Values are microsecond durations. Buckets are exact below 16 us and
// thereafter split each power-of-two octave into 16 sub-buckets, so the
// relative quantization error is bounded by ~3% while the whole table is a
// fixed 448-slot array: recording is two integer ops and one increment —
// no allocation, safe on the per-message dispatch path. The histogram is
// WireEncodable (sparse: only non-empty buckets are serialized) so per-bee
// windows ship to the collector inside BeeMetricsSample, and mergeable so
// the collector and the benches can aggregate across bees and hives.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>

#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

class LatencyHistogram {
 public:
  static constexpr std::string_view kTypeName = "platform.latency_hist";

  /// 16 sub-buckets per octave -> worst-case relative error 1/32.
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  /// Largest shift kept distinct; values beyond ~2^30 us (~18 min) clamp
  /// into the top bucket. Far above any latency this platform produces.
  static constexpr std::uint32_t kMaxShift = 26;
  static constexpr std::uint32_t kBuckets = (kMaxShift + 2) * kSubBuckets;

  void record(Duration v) {
    const std::uint64_t value = v < 0 ? 0 : static_cast<std::uint64_t>(v);
    record_at(index(value), value);
  }

  /// record() with the bucket index precomputed by the caller. The dispatch
  /// hot path records one latency value into several histograms (bee window,
  /// bee total, hive total); computing index() once and fanning out the
  /// increments keeps the per-message cost at one bucket computation.
  void record_at(std::uint32_t idx, std::uint64_t value) {
    buckets_[idx] += 1;
    count_ += 1;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(std::uint32_t i) const { return buckets_[i]; }

  /// Adds `c` samples directly into bucket `i` (registry snapshots fold
  /// atomic bucket arrays in this way); the sum and max are approximated
  /// with the bucket midpoint since the original values are gone.
  void add_bucket_count(std::uint32_t i, std::uint64_t c) {
    if (c == 0) return;
    buckets_[i] += c;
    count_ += c;
    sum_ += bucket_mid(i) * c;
    if (bucket_mid(i) > max_) max_ = bucket_mid(i);
  }
  double mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile `q` in [0, 1]: the representative (midpoint) of the
  /// first bucket whose cumulative count reaches q * count. 0 when empty.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return bucket_mid(i);
    }
    return bucket_mid(kBuckets - 1);
  }

  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p90() const { return percentile(0.90); }
  std::uint64_t p99() const { return percentile(0.99); }

  void merge(const LatencyHistogram& other) {
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() { *this = LatencyHistogram{}; }

  bool operator==(const LatencyHistogram&) const = default;

  // -- Wire codec (sparse: only non-empty buckets) -------------------------

  void encode(ByteWriter& w) const {
    w.varint(sum_);
    w.varint(max_);
    std::uint32_t non_empty = 0;
    for (std::uint64_t c : buckets_) non_empty += c != 0;
    w.varint(non_empty);
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      w.varint(i);
      w.varint(buckets_[i]);
    }
  }
  static LatencyHistogram decode(ByteReader& r) {
    LatencyHistogram h;
    h.sum_ = r.varint();
    h.max_ = r.varint();
    std::uint64_t non_empty = r.varint();
    for (std::uint64_t i = 0; i < non_empty; ++i) {
      std::uint64_t idx = r.varint();
      std::uint64_t c = r.varint();
      if (idx >= kBuckets) throw DecodeError("histogram bucket out of range");
      h.buckets_[idx] = c;
      h.count_ += c;
    }
    return h;
  }

  // -- Bucket geometry (exposed for tests) ---------------------------------

  static std::uint32_t index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
    std::uint32_t shift = static_cast<std::uint32_t>(std::bit_width(v)) - 1 -
                          kSubBits;
    if (shift > kMaxShift) {
      shift = kMaxShift;
      v = (static_cast<std::uint64_t>(2 * kSubBuckets) << kMaxShift) - 1;
    }
    std::uint32_t sub =
        static_cast<std::uint32_t>(v >> shift) & (kSubBuckets - 1);
    return (shift + 1) * kSubBuckets + sub;
  }

  /// Lower bound of bucket `i` (inclusive).
  static std::uint64_t bucket_low(std::uint32_t i) {
    if (i < kSubBuckets) return i;
    std::uint32_t shift = i / kSubBuckets - 1;
    std::uint64_t sub = i % kSubBuckets;
    return (sub + kSubBuckets) << shift;
  }

  /// Representative value of bucket `i` (midpoint of its range).
  static std::uint64_t bucket_mid(std::uint32_t i) {
    if (i < kSubBuckets) return i;
    std::uint32_t shift = i / kSubBuckets - 1;
    return bucket_low(i) + (static_cast<std::uint64_t>(1) << shift) / 2;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace beehive
