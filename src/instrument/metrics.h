// Per-bee runtime instrumentation (paper §3, "Runtime Instrumentation").
//
// Each bee records how many messages/bytes it handles, where they came
// from (per-source-bee provenance — the input to the placement optimizer's
// "majority of messages" rule) and message causation (which input types
// produce which output types). Hives aggregate these locally and
// periodically report them to the collector application.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "instrument/histogram.h"
#include "msg/codec.h"
#include "util/types.h"

namespace beehive {

struct BeeMetrics {
  std::uint64_t msgs_in = 0;
  std::uint64_t msgs_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t handler_invocations = 0;
  std::uint64_t handler_failures = 0;

  /// Cost profiler (instrument/profiler.h): thread-CPU nanoseconds of the
  /// *sampled* handler runs (unscaled — multiply by the sampling period for
  /// the window estimate), how many runs were sampled, and the committed
  /// write records the bee's transactions produced. All zero with the
  /// profiler off.
  std::uint64_t cost_ns_sampled = 0;
  std::uint64_t cost_samples = 0;
  std::uint64_t txn_ops = 0;

  /// Messages received, keyed by the emitting bee (kNoBee = IO channel).
  std::unordered_map<BeeId, std::uint64_t> inbound_from;

  /// Messages received keyed by (emitting bee, hive it emitted from) — the
  /// provenance the optimizer's "majority of messages from hive H2" rule
  /// consumes. Deterministically ordered for reporting.
  std::map<std::pair<BeeId, HiveId>, std::uint64_t> inbound_hive;

  /// Causation: (input type, output type) -> count. "packet_out messages
  /// are emitted upon receiving 80% of packet_in's" comes from this table.
  std::map<std::pair<MsgTypeId, MsgTypeId>, std::uint64_t> causation;

  /// Messages received per input type (the denominator of causation
  /// ratios).
  std::map<MsgTypeId, std::uint64_t> inbound_types;

  /// Emission -> handler-start latency (queueing + channel transit; the
  /// dominant term under the simulated runtime).
  LatencyHistogram queue_latency;
  /// Handler-start -> handler-end duration (wall time under the threaded
  /// runtime; zero under the simulator, whose handlers are instantaneous).
  LatencyHistogram handler_latency;

  void on_receive(BeeId from, std::size_t bytes, MsgTypeId type = 0) {
    ++msgs_in;
    bytes_in += bytes;
    ++inbound_from[from];
    if (type != 0) ++inbound_types[type];
  }

  void on_emit(MsgTypeId in_reply_to, MsgTypeId emitted, std::size_t bytes) {
    ++msgs_out;
    bytes_out += bytes;
    ++causation[{in_reply_to, emitted}];
  }
};

/// Lifetime totals of one hive's reliable control-channel transport
/// (core/transport.h). All-zero when the transport is disabled. Shipped
/// inside every LocalMetricsReport so the collector can chart what the
/// robustness machinery costs in Figure-4 units.
struct TransportCounters {
  std::uint64_t data_frames = 0;        ///< reliable frames first-sent
  std::uint64_t retransmits = 0;        ///< frames re-sent on ack timeout
  std::uint64_t acks_sent = 0;          ///< standalone ack frames
  std::uint64_t dup_frames_dropped = 0; ///< receive-side dedup discards
  std::uint64_t reorder_buffered = 0;   ///< frames held for in-order delivery
  std::uint64_t frames_abandoned = 0;   ///< gave up after the retransmit cap
  std::uint64_t frames_stalled = 0;     ///< frames that waited for credit
  std::uint64_t frames_shed = 0;        ///< frames dropped at the credit gate

  void encode(ByteWriter& w) const {
    w.varint(data_frames);
    w.varint(retransmits);
    w.varint(acks_sent);
    w.varint(dup_frames_dropped);
    w.varint(reorder_buffered);
    w.varint(frames_abandoned);
    w.varint(frames_stalled);
    w.varint(frames_shed);
  }
  static TransportCounters decode(ByteReader& r) {
    TransportCounters c;
    c.data_frames = r.varint();
    c.retransmits = r.varint();
    c.acks_sent = r.varint();
    c.dup_frames_dropped = r.varint();
    c.reorder_buffered = r.varint();
    c.frames_abandoned = r.varint();
    c.frames_stalled = r.varint();
    c.frames_shed = r.varint();
    return c;
  }
};

/// One bee's flattened metrics snapshot as shipped to the collector.
struct BeeMetricsSample {
  static constexpr std::string_view kTypeName = "platform.bee_metrics_sample";

  BeeId bee = kNoBee;
  AppId app = 0;
  /// Human-readable app name, resolved by the reporting hive so viewers
  /// (StatusApp, beectl) need no AppSet of their own.
  std::string app_name;
  HiveId hive = 0;
  std::uint64_t msgs_in = 0;
  std::uint64_t msgs_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t handler_invocations = 0;
  std::uint64_t handler_failures = 0;
  std::uint64_t cells = 0;
  std::uint64_t state_bytes = 0;
  /// Messages held behind the bee's transfer fence at report time — the
  /// instantaneous queue depth the StatusApp surfaces.
  std::uint64_t holdback = 0;
  bool pinned = false;
  /// Profiler estimate of this bee's handler CPU microseconds over the
  /// window (sampled ns x sampling period / 1000; 0 with the profiler off).
  std::uint64_t cost_us = 0;
  std::uint64_t cost_samples = 0;
  /// Committed transaction write records this window.
  std::uint64_t txn_ops = 0;

  /// Windowed latency distributions (see BeeMetrics for semantics).
  LatencyHistogram queue_latency;
  LatencyHistogram handler_latency;

  struct SourceCount {
    static constexpr std::string_view kTypeName = "platform.source_count";
    BeeId from = kNoBee;
    HiveId from_hive = 0;
    std::uint64_t count = 0;

    void encode(ByteWriter& w) const {
      w.u64(from);
      w.u32(from_hive);
      w.varint(count);
    }
    static SourceCount decode(ByteReader& r) {
      SourceCount s;
      s.from = r.u64();
      s.from_hive = r.u32();
      s.count = r.varint();
      return s;
    }
  };
  std::vector<SourceCount> sources;

  /// Provenance: inputs by type and (input type -> output type) emission
  /// counts, for the collector's causation analytics.
  struct TypeCount {
    static constexpr std::string_view kTypeName = "platform.type_count";
    MsgTypeId type = 0;
    std::uint64_t count = 0;

    void encode(ByteWriter& w) const {
      w.u32(type);
      w.varint(count);
    }
    static TypeCount decode(ByteReader& r) {
      TypeCount t;
      t.type = r.u32();
      t.count = r.varint();
      return t;
    }
  };
  struct CausationCount {
    static constexpr std::string_view kTypeName = "platform.causation_count";
    MsgTypeId in = 0;
    MsgTypeId out = 0;
    std::uint64_t count = 0;

    void encode(ByteWriter& w) const {
      w.u32(in);
      w.u32(out);
      w.varint(count);
    }
    static CausationCount decode(ByteReader& r) {
      CausationCount c;
      c.in = r.u32();
      c.out = r.u32();
      c.count = r.varint();
      return c;
    }
  };
  std::vector<TypeCount> in_types;
  std::vector<CausationCount> causations;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.str(app_name);
    w.u32(hive);
    w.varint(msgs_in);
    w.varint(msgs_out);
    w.varint(bytes_in);
    w.varint(bytes_out);
    w.varint(handler_invocations);
    w.varint(handler_failures);
    w.varint(cells);
    w.varint(state_bytes);
    w.varint(holdback);
    w.boolean(pinned);
    w.varint(cost_us);
    w.varint(cost_samples);
    w.varint(txn_ops);
    queue_latency.encode(w);
    handler_latency.encode(w);
    encode_vector(w, sources);
    encode_vector(w, in_types);
    encode_vector(w, causations);
  }
  static BeeMetricsSample decode(ByteReader& r) {
    BeeMetricsSample s;
    s.bee = r.u64();
    s.app = r.u32();
    s.app_name = r.str();
    s.hive = r.u32();
    s.msgs_in = r.varint();
    s.msgs_out = r.varint();
    s.bytes_in = r.varint();
    s.bytes_out = r.varint();
    s.handler_invocations = r.varint();
    s.handler_failures = r.varint();
    s.cells = r.varint();
    s.state_bytes = r.varint();
    s.holdback = r.varint();
    s.pinned = r.boolean();
    s.cost_us = r.varint();
    s.cost_samples = r.varint();
    s.txn_ops = r.varint();
    s.queue_latency = LatencyHistogram::decode(r);
    s.handler_latency = LatencyHistogram::decode(r);
    s.sources = decode_vector<BeeMetricsSample::SourceCount>(r);
    s.in_types = decode_vector<BeeMetricsSample::TypeCount>(r);
    s.causations = decode_vector<BeeMetricsSample::CausationCount>(r);
    return s;
  }
};

/// Periodic report from one hive to the collector: a delta since the
/// previous report for every local bee.
struct LocalMetricsReport {
  static constexpr std::string_view kTypeName = "platform.local_metrics";

  HiveId hive = 0;
  TimePoint at = 0;
  std::uint64_t hive_cells = 0;
  /// End-to-end latency (trace ingress -> terminal handler) of traces that
  /// ended on this hive during the window.
  LatencyHistogram e2e_latency;
  /// Reliable-transport lifetime totals (zeros when disabled).
  TransportCounters transport;
  /// Migrations this hive gave up on after the retry cap (lifetime).
  std::uint64_t migration_aborts = 0;
  /// Partitions currently injected by the cluster's FaultPlan.
  std::uint32_t partitions_active = 0;

  // -- Queue pressure (see DESIGN.md §9) ----------------------------------
  /// backlog / (backlog + drained_window + 1) in [0, 1), where backlog is
  /// run-queue depth + holdback + pending egress frames at report time.
  double pressure = 0.0;
  std::uint64_t runq_depth = 0;       ///< run-queue tasks at report time
  std::uint64_t runq_hwm = 0;         ///< run-queue depth hwm, window (resets on read)
  std::uint64_t drained_window = 0;   ///< run-queue tasks executed, window
  std::uint64_t egress_hwm = 0;       ///< pending egress frames hwm, window
  /// Lock-free run-queue ring occupancy hwm, window (DESIGN.md §12; zero
  /// under runtimes without a ring, e.g. the simulator).
  std::uint64_t ringq_hwm = 0;
  /// Pushes that missed the ring and took the overflow lane (lifetime).
  std::uint64_t ring_overflowed = 0;
  /// Profiler: summed estimated handler CPU microseconds this window.
  std::uint64_t cost_us = 0;

  // -- Overload control (DESIGN.md §10) ------------------------------------
  /// Messages/frames shed by this hive's overload policies (lifetime).
  std::uint64_t shed_total = 0;
  /// Outbound frames waiting for link credit at report time.
  std::uint64_t stalled_frames = 0;
  /// Smallest remaining credit across outbound links; -1 = unlimited (no
  /// credit window configured on any link).
  std::int64_t credits = -1;
  /// True while the hive advertises its degraded (reduced) credit window.
  bool degraded = false;

  std::vector<BeeMetricsSample> bees;

  void encode(ByteWriter& w) const {
    w.u32(hive);
    w.i64(at);
    w.varint(hive_cells);
    e2e_latency.encode(w);
    transport.encode(w);
    w.varint(migration_aborts);
    w.u32(partitions_active);
    w.f64(pressure);
    w.varint(runq_depth);
    w.varint(runq_hwm);
    w.varint(drained_window);
    w.varint(egress_hwm);
    w.varint(ringq_hwm);
    w.varint(ring_overflowed);
    w.varint(cost_us);
    w.varint(shed_total);
    w.varint(stalled_frames);
    w.i64(credits);
    w.boolean(degraded);
    encode_vector(w, bees);
  }
  static LocalMetricsReport decode(ByteReader& r) {
    LocalMetricsReport rep;
    rep.hive = r.u32();
    rep.at = r.i64();
    rep.hive_cells = r.varint();
    rep.e2e_latency = LatencyHistogram::decode(r);
    rep.transport = TransportCounters::decode(r);
    rep.migration_aborts = r.varint();
    rep.partitions_active = r.u32();
    rep.pressure = r.f64();
    rep.runq_depth = r.varint();
    rep.runq_hwm = r.varint();
    rep.drained_window = r.varint();
    rep.egress_hwm = r.varint();
    rep.ringq_hwm = r.varint();
    rep.ring_overflowed = r.varint();
    rep.cost_us = r.varint();
    rep.shed_total = r.varint();
    rep.stalled_frames = r.varint();
    rep.credits = r.i64();
    rep.degraded = r.boolean();
    rep.bees = decode_vector<BeeMetricsSample>(r);
    return rep;
  }
};

void register_metrics_messages();

}  // namespace beehive
