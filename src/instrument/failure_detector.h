// Heartbeat-based hive failure detection (fault-tolerance extension,
// paper §7).
//
// Every hive's periodic LocalMetricsReport doubles as a heartbeat. The
// detector — a Beehive app centralized by its whole-dict map, like the
// collector — tracks the last report time per hive and, when a hive stays
// silent past the timeout, emits a HiveSuspected event and invokes the
// harness-provided recovery callback (which, in the simulator, triggers
// SimCluster::recover_hive failover onto replicas).
#pragma once

#include <functional>

#include "core/app.h"
#include "instrument/metrics.h"

namespace beehive {

/// Broadcast when the detector declares a hive dead.
struct HiveSuspected {
  static constexpr std::string_view kTypeName = "platform.hive_suspected";
  HiveId hive = 0;
  TimePoint last_seen = 0;

  void encode(ByteWriter& w) const {
    w.u32(hive);
    w.i64(last_seen);
  }
  static HiveSuspected decode(ByteReader& r) {
    HiveSuspected m;
    m.hive = r.u32();
    m.last_seen = r.i64();
    return m;
  }
};

struct FailureDetectorConfig {
  Duration check_period = 2 * kSecond;
  /// A hive is suspected after this much silence. Must comfortably exceed
  /// the hives' metrics_period.
  Duration suspect_after = 3 * kSecond;
};

class FailureDetectorApp : public App {
 public:
  /// `on_suspect` runs (once per failed hive) inside the detector bee's
  /// handler; the simulator binds it to its failover routine. May be null.
  FailureDetectorApp(FailureDetectorConfig config,
                     std::function<void(HiveId)> on_suspect);

  static constexpr std::string_view kDict = "fd.hives";
};

}  // namespace beehive
