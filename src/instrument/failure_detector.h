// Heartbeat-based hive failure detection (fault-tolerance extension,
// paper §7).
//
// Every hive's periodic LocalMetricsReport doubles as a heartbeat. The
// detector — a Beehive app centralized by its whole-dict map, like the
// collector — tracks the last report time per hive and, when a hive stays
// silent past the timeout, emits a HiveSuspected event and invokes the
// harness-provided recovery callback (which, in the simulator, triggers
// SimCluster::recover_hive failover onto replicas).
#pragma once

#include <functional>

#include "core/app.h"
#include "instrument/metrics.h"

namespace beehive {

/// Broadcast when the detector declares a hive dead.
struct HiveSuspected {
  static constexpr std::string_view kTypeName = "platform.hive_suspected";
  HiveId hive = 0;
  TimePoint last_seen = 0;

  void encode(ByteWriter& w) const {
    w.u32(hive);
    w.i64(last_seen);
  }
  static HiveSuspected decode(ByteReader& r) {
    HiveSuspected m;
    m.hive = r.u32();
    m.last_seen = r.i64();
    return m;
  }
};

/// Broadcast when a previously-suspected hive heartbeats again (e.g. a
/// healed partition, or SimCluster::recover_hive bringing its bees back):
/// consumers that reacted to HiveSuspected can un-quarantine it.
struct HiveRecovered {
  static constexpr std::string_view kTypeName = "platform.hive_recovered";
  HiveId hive = 0;
  /// How long the hive had been silent when it reappeared.
  Duration down_for = 0;

  void encode(ByteWriter& w) const {
    w.u32(hive);
    w.i64(down_for);
  }
  static HiveRecovered decode(ByteReader& r) {
    HiveRecovered m;
    m.hive = r.u32();
    m.down_for = r.i64();
    return m;
  }
};

struct FailureDetectorConfig {
  Duration check_period = 2 * kSecond;
  /// A hive is suspected after this much silence. Must comfortably exceed
  /// `metrics_period` or healthy hives get suspected between heartbeats;
  /// the constructor clamps it to at least twice that, with a warning.
  Duration suspect_after = 3 * kSecond;
  /// The hives' heartbeat (metrics report) period, for the sanity clamp.
  Duration metrics_period = kSecond;
};

class FailureDetectorApp : public App {
 public:
  /// `on_suspect` runs (once per failed hive) inside the detector bee's
  /// handler; the simulator binds it to its failover routine. May be null.
  FailureDetectorApp(FailureDetectorConfig config,
                     std::function<void(HiveId)> on_suspect);

  /// The validated (possibly clamped) configuration actually in force.
  const FailureDetectorConfig& config() const { return config_; }

  static constexpr std::string_view kDict = "fd.hives";

 private:
  FailureDetectorConfig config_;
};

}  // namespace beehive
