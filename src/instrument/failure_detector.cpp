#include "instrument/failure_detector.h"

#include "core/context.h"
#include "msg/registry.h"
#include "util/logging.h"

namespace beehive {

namespace {

/// Per-hive liveness record: last heartbeat time + suspected flag.
struct HiveLiveness {
  static constexpr std::string_view kTypeName = "fd.liveness";
  TimePoint last_seen = 0;
  bool suspected = false;

  void encode(ByteWriter& w) const {
    w.i64(last_seen);
    w.boolean(suspected);
  }
  static HiveLiveness decode(ByteReader& r) {
    HiveLiveness l;
    l.last_seen = r.i64();
    l.suspected = r.boolean();
    return l;
  }
};

}  // namespace

FailureDetectorApp::FailureDetectorApp(
    FailureDetectorConfig config, std::function<void(HiveId)> on_suspect)
    : App("platform.failure_detector"), config_(config) {
  // Sanity-check the timeout against the heartbeat period: anything at or
  // under one period suspects healthy hives between two reports. Clamp to
  // two periods — the tightest setting with any slack for channel delay.
  if (config_.metrics_period > 0 &&
      config_.suspect_after < 2 * config_.metrics_period) {
    BH_WARN << "failure detector: suspect_after (" << config_.suspect_after
            << "us) does not exceed twice the heartbeat period ("
            << config_.metrics_period << "us); clamping to "
            << 2 * config_.metrics_period << "us";
    config_.suspect_after = 2 * config_.metrics_period;
  }
  config = config_;
  register_metrics_messages();
  MsgTypeRegistry::instance().ensure<HiveSuspected>();
  MsgTypeRegistry::instance().ensure<HiveRecovered>();
  MsgTypeRegistry::instance().ensure<HiveLiveness>();
  const std::string dict(kDict);

  // Heartbeat ingestion: any report refreshes its hive, and a heartbeat
  // from a suspected hive announces the recovery (resumed after a healed
  // partition, a failover, or plain slowness).
  on<LocalMetricsReport>(
      [dict](const LocalMetricsReport&) { return CellSet::whole_dict(dict); },
      [dict](AppContext& ctx, const LocalMetricsReport& report) {
        const std::string key = std::to_string(report.hive);
        bool was_suspected = false;
        TimePoint last_seen = 0;
        if (auto prev = ctx.state().get(dict, key); prev.has_value()) {
          HiveLiveness before = decode_from_bytes<HiveLiveness>(*prev);
          was_suspected = before.suspected;
          last_seen = before.last_seen;
        }
        HiveLiveness liveness;
        liveness.last_seen = ctx.now();
        liveness.suspected = false;
        ctx.state().put_as(dict, key, liveness);
        if (was_suspected) {
          ctx.emit(HiveRecovered{report.hive, ctx.now() - last_seen});
        }
      });

  // Detection sweep.
  every(
      config.check_period,
      [dict](const MessageEnvelope&) { return CellSet::whole_dict(dict); },
      [dict, config, on_suspect](AppContext& ctx, const MessageEnvelope&) {
        struct Suspect {
          HiveId hive;
          HiveLiveness liveness;
        };
        std::vector<Suspect> suspects;
        ctx.state().for_each(
            dict, [&](const std::string& key, const Bytes& value) {
              HiveLiveness liveness = decode_from_bytes<HiveLiveness>(value);
              if (liveness.suspected) return;
              if (ctx.now() - liveness.last_seen >= config.suspect_after) {
                suspects.push_back(
                    {static_cast<HiveId>(std::stoul(key)), liveness});
              }
            });
        for (Suspect& s : suspects) {
          s.liveness.suspected = true;
          ctx.state().put_as(dict, std::to_string(s.hive), s.liveness);
          ctx.emit(HiveSuspected{s.hive, s.liveness.last_seen});
          if (on_suspect) on_suspect(s.hive);
        }
      });
}

}  // namespace beehive
