#include "instrument/failure_detector.h"

#include "core/context.h"
#include "msg/registry.h"

namespace beehive {

namespace {

/// Per-hive liveness record: last heartbeat time + suspected flag.
struct HiveLiveness {
  static constexpr std::string_view kTypeName = "fd.liveness";
  TimePoint last_seen = 0;
  bool suspected = false;

  void encode(ByteWriter& w) const {
    w.i64(last_seen);
    w.boolean(suspected);
  }
  static HiveLiveness decode(ByteReader& r) {
    HiveLiveness l;
    l.last_seen = r.i64();
    l.suspected = r.boolean();
    return l;
  }
};

}  // namespace

FailureDetectorApp::FailureDetectorApp(
    FailureDetectorConfig config, std::function<void(HiveId)> on_suspect)
    : App("platform.failure_detector") {
  register_metrics_messages();
  MsgTypeRegistry::instance().ensure<HiveSuspected>();
  MsgTypeRegistry::instance().ensure<HiveLiveness>();
  const std::string dict(kDict);

  // Heartbeat ingestion: any report refreshes (and un-suspects) its hive.
  on<LocalMetricsReport>(
      [dict](const LocalMetricsReport&) { return CellSet::whole_dict(dict); },
      [dict](AppContext& ctx, const LocalMetricsReport& report) {
        HiveLiveness liveness;
        liveness.last_seen = ctx.now();
        liveness.suspected = false;
        ctx.state().put_as(dict, std::to_string(report.hive), liveness);
      });

  // Detection sweep.
  every(
      config.check_period,
      [dict](const MessageEnvelope&) { return CellSet::whole_dict(dict); },
      [dict, config, on_suspect](AppContext& ctx, const MessageEnvelope&) {
        struct Suspect {
          HiveId hive;
          HiveLiveness liveness;
        };
        std::vector<Suspect> suspects;
        ctx.state().for_each(
            dict, [&](const std::string& key, const Bytes& value) {
              HiveLiveness liveness = decode_from_bytes<HiveLiveness>(value);
              if (liveness.suspected) return;
              if (ctx.now() - liveness.last_seen >= config.suspect_after) {
                suspects.push_back(
                    {static_cast<HiveId>(std::stoul(key)), liveness});
              }
            });
        for (Suspect& s : suspects) {
          s.liveness.suspected = true;
          ctx.state().put_as(dict, std::to_string(s.hive), s.liveness);
          ctx.emit(HiveSuspected{s.hive, s.liveness.last_seen});
          if (on_suspect) on_suspect(s.hive);
        }
      });
}

}  // namespace beehive
