#include "instrument/metrics.h"

#include "msg/registry.h"

namespace beehive {

void register_metrics_messages() {
  MsgTypeRegistry::instance().ensure<BeeMetricsSample>();
  MsgTypeRegistry::instance().ensure<LocalMetricsReport>();
}

}  // namespace beehive
