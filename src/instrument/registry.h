// Cluster-wide metrics registry: the pull side of the observability layer.
//
// The existing instrumentation (BeeMetrics, Hive::Counters, transport and
// channel accounting) is write-only: values accumulate and ship to the
// collector, but nothing outside the platform can *ask* for them. The
// MetricsRegistry turns those counters into named, labelled metrics that a
// scraper (net/http_export.h serves them in Prometheus text format), the
// StatusApp, and tests can read at any time — including while hive threads
// are running, which is why every readable cell here is an atomic.
//
// Hot-path contract: updating a registered metric (Counter::inc,
// Gauge::set, HistogramMetric::record, TimeSeriesRing::push) is O(1) and
// allocation-free — asserted by tests/test_introspection.cpp with a
// counting operator new. All allocation happens at registration time,
// which runs once at cluster construction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "instrument/histogram.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

/// One metric's label set, e.g. {{"hive", "3"}}. Order is preserved into
/// the exposition output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter. Single atomic cell; writers may be
/// any thread (hive loops), readers the scrape thread. Relaxed ordering is
/// sufficient: monitoring tolerates staleness, never tearing.
///
/// The cell doubles as a drop-in replacement for the plain uint64_t
/// counters it re-plumbs (Hive::Counters): ++, += and implicit conversion
/// keep every existing call site source-compatible.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

  /// Single-writer increment: plain load + store instead of an atomic RMW.
  /// Valid only when exactly one thread ever writes this counter (each
  /// hive's Counters are written solely by its loop thread); concurrent
  /// readers still see untorn, monotonic values. Saves the locked-op cost
  /// on the per-message dispatch path.
  void bump(std::uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }

  Counter& operator++() {
    inc();
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    inc(n);
    return *this;
  }
  operator std::uint64_t() const { return get(); }  // NOLINT: by design

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A gauge: a value that can go up and down (queue depth, partitions
/// active, last-window rate).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    // fetch_add on atomic<double> needs C++20 library support that is
    // uneven; a CAS loop is equivalent and still lock-free on x86/ARM.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// A scrape-safe histogram sharing LatencyHistogram's bucket geometry
/// (log-bucketed microseconds) but with atomic slots, so hive threads can
/// record while the exposition thread reads. record() is two integer ops
/// and three relaxed atomic adds — O(1), allocation-free.
class HistogramMetric {
 public:
  void record(Duration v) {
    const std::uint64_t value = v < 0 ? 0 : static_cast<std::uint64_t>(v);
    buckets_[LatencyHistogram::index(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Folds a whole (plain) histogram in — used by hives to publish each
  /// report window's distribution without touching the dispatch hot path.
  void merge(const LatencyHistogram& h);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count_relaxed(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Snapshot into a plain histogram (quantiles, exposition).
  LatencyHistogram snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Fixed-capacity ring of (timestamp, value) samples: one per reporting
/// window, so the last N windows of any per-hive rate stay queryable after
/// the instantaneous counters have moved on. push() is O(1) and
/// allocation-free after construction; a mutex (uncontended — one writer
/// per ring, pushes once per metrics window) makes snapshots safe from the
/// scrape thread.
///
/// The ring is WireEncodable so the StatusApp can keep one per hive inside
/// a state cell and ship it in StatusReports.
class TimeSeriesRing {
 public:
  static constexpr std::string_view kTypeName = "platform.tsring";
  static constexpr std::size_t kDefaultWindows = 64;

  explicit TimeSeriesRing(std::size_t capacity = kDefaultWindows)
      : samples_(capacity == 0 ? 1 : capacity) {}

  TimeSeriesRing(const TimeSeriesRing& other) { copy_from(other); }
  TimeSeriesRing& operator=(const TimeSeriesRing& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

  struct Sample {
    TimePoint at = 0;
    double value = 0.0;
  };

  void push(TimePoint at, double value) {
    std::lock_guard lock(mutex_);
    samples_[(head_ + size_) % samples_.size()] = Sample{at, value};
    if (size_ < samples_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % samples_.size();
    }
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return size_;
  }
  std::size_t capacity() const { return samples_.size(); }

  /// Samples oldest-first.
  std::vector<Sample> snapshot() const;

  /// Mean value per second over the retained samples: (sum of values) /
  /// (newest.at - oldest.at). 0 with fewer than two samples.
  double rate_per_second() const;

  /// Most recent sample's value (0 when empty).
  double last() const;

  void encode(ByteWriter& w) const;
  static TimeSeriesRing decode(ByteReader& r);

 private:
  void copy_from(const TimeSeriesRing& other);

  mutable std::mutex mutex_;
  std::vector<Sample> samples_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Sanitizes a metric or label name to the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* (invalid characters become '_'; a leading
/// digit gets a '_' prefix).
std::string prometheus_sanitize(std::string_view name);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // -- Registration (allocates; call at startup, not on hot paths) --------
  // Registering the same (name, labels) twice returns the same object, so
  // re-created hives (tests constructing clusters in a loop over one
  // registry) keep accumulating instead of colliding.

  Counter& counter(const std::string& name, MetricLabels labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, MetricLabels labels = {},
               const std::string& help = "");
  HistogramMetric& histogram(const std::string& name,
                             MetricLabels labels = {},
                             const std::string& help = "");
  TimeSeriesRing& ring(const std::string& name, MetricLabels labels = {},
                       std::size_t capacity = TimeSeriesRing::kDefaultWindows);

  /// Re-plumbs an externally owned counter cell (e.g. a Hive::Counters
  /// field) into the exposition without moving it. The cell must outlive
  /// the registry or be unregistered first (clusters own both, in order).
  void expose_counter(const std::string& name, MetricLabels labels,
                      const Counter* cell, const std::string& help = "");

  /// Pull-style metric: `fn` is evaluated at scrape time (for sources with
  /// their own locking, e.g. ChannelMeter totals). `counter_semantics`
  /// picks the TYPE line (counter vs gauge).
  void gauge_fn(const std::string& name, MetricLabels labels,
                std::function<double()> fn, const std::string& help = "",
                bool counter_semantics = false);

  // -- Exposition ---------------------------------------------------------

  /// Prometheus text exposition format 0.0.4: families sorted by name,
  /// with # HELP / # TYPE headers and histograms rendered as cumulative
  /// `_bucket{le=...}` series on power-of-4 bounds.
  std::string prometheus_text() const;

  /// The same snapshot as JSON (served at /status.json): metric values
  /// keyed by name{labels}, plus ring series under "series".
  std::string status_json() const;

  /// Number of registered metric series (tests).
  std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kFn, kRing };

  struct Entry {
    std::string name;
    MetricLabels labels;
    std::string help;
    Kind kind = Kind::kCounter;
    bool counter_semantics = false;   // for kFn
    Counter* counter = nullptr;       // kCounter (owned or exposed)
    Gauge* gauge = nullptr;           // kGauge
    HistogramMetric* histogram = nullptr;  // kHistogram
    TimeSeriesRing* ring = nullptr;   // kRing
    std::function<double()> fn;       // kFn
  };

  /// Finds the entry for (name, labels), or nullptr. Throws
  /// std::logic_error when the pair exists with a different kind — e.g.
  /// counter("x") after gauge("x") — instead of handing back a reference
  /// into the wrong cell (a null dereference waiting to happen).
  Entry* find_locked(const std::string& name, const MetricLabels& labels,
                     Kind kind);

  mutable std::mutex mutex_;
  // Deques: stable addresses for handed-out references as entries grow.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
  std::deque<TimeSeriesRing> rings_;
  std::vector<Entry> entries_;
};

}  // namespace beehive
