#include "instrument/blame.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "msg/registry.h"

namespace beehive {

namespace {

std::uint64_t ud(Duration d) {
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string msg_name(MsgTypeId type) {
  if (type == 0) return "?";
  return std::string(MsgTypeRegistry::instance().name_of(type));
}

/// True for trace-0 spans that describe the wire between two hives rather
/// than one message's journey. (Mailbox kShed carries a trace id and stays
/// a trace span; transport-level kShed is trace 0 and is simply ignored
/// here — it has no message identity to attach to.)
bool is_link_kind(SpanKind k) {
  switch (k) {
    case SpanKind::kChannelSend:
    case SpanKind::kChannelRecv:
    case SpanKind::kCreditStall:
    case SpanKind::kRetransmit:
    case SpanKind::kStallQueued:
    case SpanKind::kBatchFlush:
      return true;
    default:
      return false;
  }
}

/// Per-(from,to) link timeline: transmissions and credit stalls, in time
/// order, plus aux -> earliest receive time for send/recv pairing.
struct LinkLane {
  std::vector<TraceEvent> sends;
  std::vector<TraceEvent> stalls;  ///< kCreditStall (aux = wait us)
  std::unordered_map<std::uint64_t, TimePoint> recv_at;  ///< by frame seq
};

using LinkIndex = std::map<std::pair<HiveId, HiveId>, LinkLane>;

std::string hop_text(HiveId from, HiveId to) {
  return "h" + std::to_string(from) + "->h" + std::to_string(to);
}

/// Decomposes one critical-path hop [t0, t1] (departure-point time to
/// handler-start time). Same-hive hops are pure queueing. Cross-hive hops
/// find the carrying transmission — the earliest frame sent after t0 and
/// received by t1 — and split the interval into serialize (dequeue->wire,
/// net of stalls/losses), stall (credit-gate waits), retransmit (time lost
/// to a transmission that never arrived), wire (send->receive transit) and
/// receiver-side queue (receive->handler start). Missing link spans (ring
/// overwritten) degrade to queue time rather than inventing detail.
void attribute_hop(AssembledTrace& t, HiveId from, HiveId to, TimePoint t0,
                   TimePoint t1, const LinkIndex& links) {
  if (t1 < t0) t1 = t0;
  if (from == to) {
    t.blame.queue_us += ud(t1 - t0);
    return;
  }
  ++t.hops;
  const auto it = links.find({from, to});
  if (it == links.end()) {
    t.blame.queue_us += ud(t1 - t0);
    return;
  }
  const LinkLane& lane = it->second;

  // The carrier is the LATEST send in [t0, t1] whose receive is still by
  // t1: the handler starts right after its own frame arrives, so earlier
  // arrived frames are other traffic, while the message's frame — possibly
  // held back by credit stalls or retransmissions — is the last one in.
  const TraceEvent* carrier = nullptr;
  TimePoint carrier_recv = 0;
  const TraceEvent* lost = nullptr;  // earliest send after t0 that did not
  for (const TraceEvent& send : lane.sends) {
    if (send.at < t0) continue;
    if (send.at > t1) break;
    const auto rx = lane.recv_at.find(send.aux);
    if (rx == lane.recv_at.end() || rx->second > t1) {
      if (lost == nullptr) lost = &send;
      continue;
    }
    carrier = &send;
    carrier_recv = rx->second;
  }
  if (carrier == nullptr) {
    t.blame.queue_us += ud(t1 - t0);
    return;
  }

  const std::uint64_t budget = ud(carrier->at - t0);
  std::uint64_t stall = 0;
  for (const TraceEvent& st : lane.stalls) {
    if (st.at <= t0) continue;
    if (st.at > carrier->at) break;
    TimePoint begin = st.at - static_cast<Duration>(st.aux);
    if (begin < t0) begin = t0;
    const std::uint64_t waited = ud(st.at - begin);
    if (waited == 0) continue;
    stall += waited;
    t.rows.push_back(TraceRow{begin, static_cast<Duration>(waited), from,
                              "stall", "credit stall " + hop_text(from, to),
                              true});
  }
  if (stall > budget) stall = budget;

  std::uint64_t retrans = 0;
  if (lost != nullptr && lost->at < carrier->at) {
    retrans = ud(carrier->at - lost->at);
    if (retrans > budget - stall) retrans = budget - stall;
    if (retrans > 0) {
      t.rows.push_back(TraceRow{lost->at,
                                static_cast<Duration>(carrier->at - lost->at),
                                from, "retransmit",
                                "lost transmission " + hop_text(from, to),
                                true});
    }
  }

  const std::uint64_t serialize = budget - stall - retrans;
  const std::uint64_t wire = ud(carrier_recv - carrier->at);
  const std::uint64_t recv_wait = ud(t1 - carrier_recv);

  if (serialize > 0) {
    t.rows.push_back(TraceRow{t0, static_cast<Duration>(serialize), from,
                              "serialize", "egress " + hop_text(from, to),
                              true});
  }
  t.rows.push_back(TraceRow{
      carrier->at, static_cast<Duration>(wire), from, "wire",
      "wire " + hop_text(from, to) + " (" +
          std::string(frame_kind_name(carrier->type)) + ")",
      true});
  if (recv_wait > 0) {
    t.rows.push_back(TraceRow{carrier_recv, static_cast<Duration>(recv_wait),
                              to, "queue",
                              "recv queue h" + std::to_string(to), true});
  }

  t.blame.serialize_us += serialize;
  t.blame.stall_us += stall;
  t.blame.retransmit_us += retrans;
  t.blame.wire_us += wire;
  t.blame.queue_us += recv_wait;
}

/// Backward critical-path walk: terminal handler end (or shed) -> its
/// handler start -> the dequeue/enqueue pair that delivered the message ->
/// the parent handler at depth-1, recursing until the depth-0 ingress.
/// Every selection takes the latest qualifying span at or before the
/// current point, so the walk is deterministic and robust to unrelated
/// concurrent traffic sharing the ring.
void walk_critical(AssembledTrace& t, std::size_t term,
                   const LinkIndex& links) {
  const std::vector<TraceEvent>& spans = t.spans;
  const auto latest = [&spans](std::size_t before,
                               auto&& pred) -> std::ptrdiff_t {
    for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(before) - 1; j >= 0;
         --j) {
      if (pred(spans[static_cast<std::size_t>(j)])) return j;
    }
    return -1;
  };

  std::size_t cur = term;
  t.critical.push_back(cur);
  if (spans[term].kind == SpanKind::kHandlerEnd) {
    const TraceEvent& end = spans[term];
    const std::ptrdiff_t j = latest(term, [&end](const TraceEvent& e) {
      return e.kind == SpanKind::kHandlerStart && e.hive == end.hive &&
             e.bee == end.bee && e.depth == end.depth;
    });
    if (j < 0) return;
    t.blame.handler_us += ud(end.at - spans[j].at);
    t.critical.push_back(static_cast<std::size_t>(j));
    cur = static_cast<std::size_t>(j);
  }

  while (true) {
    const TraceEvent ev = spans[cur];  // copy: spans is stable but be safe
    if (ev.kind == SpanKind::kIngress) break;
    if (ev.depth == 0) {
      // Delivered straight from the ingress (possibly relayed cross-hive
      // without an emission hop).
      const std::ptrdiff_t j = latest(cur, [](const TraceEvent& e) {
        return e.kind == SpanKind::kIngress;
      });
      if (j < 0) break;
      attribute_hop(t, spans[j].hive, ev.hive, spans[j].at, ev.at, links);
      t.critical.push_back(static_cast<std::size_t>(j));
      break;
    }
    // The dequeue that routed this delivery (on the emitting hive).
    const std::ptrdiff_t deq = latest(cur, [&ev](const TraceEvent& e) {
      return e.kind == SpanKind::kDequeue && e.depth == ev.depth &&
             e.type == ev.type;
    });
    if (deq < 0) break;
    attribute_hop(t, spans[deq].hive, ev.hive, spans[deq].at, ev.at, links);
    t.critical.push_back(static_cast<std::size_t>(deq));
    // The matching enqueue (same emitting hive + bee): the dispatch delay
    // between them is queue time.
    const TraceEvent& dq = spans[deq];
    const std::ptrdiff_t enq =
        latest(static_cast<std::size_t>(deq), [&dq](const TraceEvent& e) {
          return e.kind == SpanKind::kEnqueue && e.depth == dq.depth &&
                 e.type == dq.type && e.hive == dq.hive && e.bee == dq.bee;
        });
    if (enq < 0) break;
    t.blame.queue_us += ud(dq.at - spans[enq].at);
    t.critical.push_back(static_cast<std::size_t>(enq));
    // The parent handler that emitted it, one causal level up.
    const TraceEvent& eq = spans[enq];
    const std::ptrdiff_t pend =
        latest(static_cast<std::size_t>(enq) + 1, [&eq](const TraceEvent& e) {
          return e.kind == SpanKind::kHandlerEnd && e.depth == eq.depth - 1 &&
                 e.hive == eq.hive && e.bee == eq.bee;
        });
    if (pend < 0) break;
    t.critical.push_back(static_cast<std::size_t>(pend));
    const TraceEvent& pe = spans[pend];
    const std::ptrdiff_t pstart =
        latest(static_cast<std::size_t>(pend), [&pe](const TraceEvent& e) {
          return e.kind == SpanKind::kHandlerStart && e.depth == pe.depth &&
                 e.hive == pe.hive && e.bee == pe.bee;
        });
    if (pstart < 0) break;
    t.blame.handler_us += ud(pe.at - spans[pstart].at);
    t.critical.push_back(static_cast<std::size_t>(pstart));
    cur = static_cast<std::size_t>(pstart);
  }
}

/// Pairs the trace's own spans into waterfall rows (the hop decomposition
/// rows were already appended by attribute_hop).
void build_rows(AssembledTrace& t) {
  const std::set<std::size_t> on_path(t.critical.begin(), t.critical.end());
  std::map<std::pair<HiveId, BeeId>, std::size_t> open_handlers;
  std::map<std::tuple<HiveId, BeeId, std::uint32_t, MsgTypeId>, std::size_t>
      open_queues;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const TraceEvent& e = t.spans[i];
    const bool crit = on_path.count(i) > 0;
    switch (e.kind) {
      case SpanKind::kHandlerStart:
        open_handlers[{e.hive, e.bee}] = i;
        break;
      case SpanKind::kHandlerEnd: {
        const auto it = open_handlers.find({e.hive, e.bee});
        if (it == open_handlers.end()) break;
        const TraceEvent& start = t.spans[it->second];
        t.rows.push_back(TraceRow{
            start.at, e.at - start.at, e.hive, "handler",
            "handle " + msg_name(start.type) +
                (e.aux2 != 0 ? " FAILED" : ""),
            crit || on_path.count(it->second) > 0});
        open_handlers.erase(it);
        break;
      }
      case SpanKind::kEnqueue:
        open_queues[{e.hive, e.bee, e.depth, e.type}] = i;
        break;
      case SpanKind::kDequeue: {
        const auto it = open_queues.find({e.hive, e.bee, e.depth, e.type});
        if (it == open_queues.end()) break;
        const TraceEvent& enq = t.spans[it->second];
        t.rows.push_back(TraceRow{enq.at, e.at - enq.at, e.hive, "queue",
                                  "queue " + msg_name(e.type),
                                  crit || on_path.count(it->second) > 0});
        open_queues.erase(it);
        break;
      }
      case SpanKind::kIngress:
        t.rows.push_back(TraceRow{e.at, 0, e.hive, "ingress",
                                  "ingress " + msg_name(e.type), crit});
        break;
      case SpanKind::kShed:
        t.rows.push_back(TraceRow{e.at, 0, e.hive, "shed",
                                  "shed " + msg_name(e.type), crit});
        break;
      case SpanKind::kHold:
        t.rows.push_back(TraceRow{e.at, 0, e.hive, "hold",
                                  "held " + msg_name(e.type), crit});
        break;
      default:
        break;  // resolve/migrate/decision markers add noise, not time
    }
  }
  std::sort(t.rows.begin(), t.rows.end(),
            [](const TraceRow& a, const TraceRow& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.dur > b.dur;
            });
}

AssembledTrace assemble_one(std::uint64_t id, std::vector<TraceEvent> spans,
                            const LinkIndex& links) {
  AssembledTrace t;
  t.trace_id = id;
  t.spans = std::move(spans);
  t.root_at = t.spans.front().at;
  for (const TraceEvent& e : t.spans) {
    if (e.kind == SpanKind::kHandlerEnd && e.aux2 != 0) t.failed = true;
    if (e.kind == SpanKind::kShed) t.shed = true;
  }
  std::ptrdiff_t term = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(t.spans.size()) - 1;
       i >= 0; --i) {
    const SpanKind k = t.spans[static_cast<std::size_t>(i)].kind;
    if (k == SpanKind::kHandlerEnd || k == SpanKind::kShed) {
      term = i;
      break;
    }
  }
  if (term < 0) {
    // No terminal in view (spans lost or trace still in flight): report
    // the observable span range, with nothing to blame.
    t.e2e = t.spans.back().at - t.root_at;
    build_rows(t);
    return t;
  }
  t.e2e = t.spans[static_cast<std::size_t>(term)].at - t.root_at;
  walk_critical(t, static_cast<std::size_t>(term), links);
  std::reverse(t.critical.begin(), t.critical.end());
  build_rows(t);
  return t;
}

std::string blame_json(const TraceBlame& b) {
  return "{\"queue_us\": " + std::to_string(b.queue_us) +
         ", \"handler_us\": " + std::to_string(b.handler_us) +
         ", \"serialize_us\": " + std::to_string(b.serialize_us) +
         ", \"wire_us\": " + std::to_string(b.wire_us) +
         ", \"retransmit_us\": " + std::to_string(b.retransmit_us) +
         ", \"stall_us\": " + std::to_string(b.stall_us) + "}";
}

}  // namespace

TraceBlame& TraceBlame::operator+=(const TraceBlame& o) {
  queue_us += o.queue_us;
  handler_us += o.handler_us;
  serialize_us += o.serialize_us;
  wire_us += o.wire_us;
  retransmit_us += o.retransmit_us;
  stall_us += o.stall_us;
  return *this;
}

std::vector<AssembledTrace> assemble_traces(std::vector<TraceEvent> events,
                                            std::size_t top_n) {
  // Ring snapshots and tail-retained copies overlap: dedupe by the
  // recorder-local (recorder, seq) identity, then restore global time
  // order. The recorder is the event's hive for every kind except
  // kChannelRecv, which the *receiving* hive records with hive = sender
  // (mirroring the send's fields for pairing) — keying those on `hive`
  // would collide them with the sender's own seq space and erase them.
  const auto recorder_of = [](const TraceEvent& e) -> HiveId {
    return e.kind == SpanKind::kChannelRecv ? static_cast<HiveId>(e.aux2)
                                            : e.hive;
  };
  std::sort(events.begin(), events.end(),
            [&recorder_of](const TraceEvent& a, const TraceEvent& b) {
              const HiveId ra = recorder_of(a), rb = recorder_of(b);
              if (ra != rb) return ra < rb;
              return a.seq < b.seq;
            });
  events.erase(std::unique(events.begin(), events.end(),
                           [&recorder_of](const TraceEvent& a,
                                          const TraceEvent& b) {
                             return recorder_of(a) == recorder_of(b) &&
                                    a.seq == b.seq;
                           }),
               events.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.hive != b.hive) return a.hive < b.hive;
                     return a.seq < b.seq;
                   });

  LinkIndex links;
  std::map<std::uint64_t, std::vector<TraceEvent>> by_trace;  // ordered
  for (const TraceEvent& ev : events) {
    if (is_link_kind(ev.kind)) {
      LinkLane& lane = links[{ev.hive, static_cast<HiveId>(ev.aux2)}];
      switch (ev.kind) {
        case SpanKind::kChannelSend:
          lane.sends.push_back(ev);
          break;
        case SpanKind::kChannelRecv: {
          const auto [it, inserted] = lane.recv_at.emplace(ev.aux, ev.at);
          if (!inserted && ev.at < it->second) it->second = ev.at;
          break;
        }
        case SpanKind::kCreditStall:
          lane.stalls.push_back(ev);
          break;
        default:
          break;  // kRetransmit/kStallQueued/kBatchFlush: markers only
      }
    } else if (ev.trace_id != 0) {
      by_trace[ev.trace_id].push_back(ev);
    }
  }

  std::vector<AssembledTrace> out;
  out.reserve(by_trace.size());
  for (auto& [id, spans] : by_trace) {
    out.push_back(assemble_one(id, std::move(spans), links));
  }
  std::sort(out.begin(), out.end(),
            [](const AssembledTrace& a, const AssembledTrace& b) {
              if (a.e2e != b.e2e) return a.e2e > b.e2e;
              return a.trace_id < b.trace_id;
            });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::vector<AssembledTrace> assemble_from_recorders(
    const std::vector<const TraceRecorder*>& recorders, std::size_t top_n) {
  std::vector<TraceEvent> all;
  for (const TraceRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    std::vector<TraceEvent> part = rec->events_with_retained();
    all.insert(all.end(), part.begin(), part.end());
  }
  return assemble_traces(std::move(all), top_n);
}

TraceBlame blame_totals(const std::vector<AssembledTrace>& traces) {
  TraceBlame total;
  for (const AssembledTrace& t : traces) total += t.blame;
  return total;
}

std::string traces_json(const std::vector<AssembledTrace>& traces,
                        TimePoint now) {
  std::string out = "{\n  \"at\": " + std::to_string(now) +
                    ",\n  \"count\": " + std::to_string(traces.size()) +
                    ",\n  \"blame_totals\": " +
                    blame_json(blame_totals(traces)) + ",\n  \"traces\": [";
  bool first_t = true;
  for (const AssembledTrace& t : traces) {
    out += first_t ? "\n" : ",\n";
    first_t = false;
    const std::uint64_t attributed = t.blame.total();
    const std::uint64_t e2e = ud(t.e2e);
    out += "    {\"trace_id\": " + std::to_string(t.trace_id) +
           ", \"root_at\": " + std::to_string(t.root_at) +
           ", \"e2e_us\": " + std::to_string(e2e) +
           ", \"shed\": " + (t.shed ? "true" : "false") +
           ", \"failed\": " + (t.failed ? "true" : "false") +
           ", \"hops\": " + std::to_string(t.hops) +
           ", \"spans\": " + std::to_string(t.spans.size()) +
           ",\n     \"blame\": " + blame_json(t.blame) +
           ", \"unattributed_us\": " +
           std::to_string(e2e > attributed ? e2e - attributed : 0) +
           ",\n     \"rows\": [";
    bool first_r = true;
    for (const TraceRow& r : t.rows) {
      out += first_r ? "\n" : ",\n";
      first_r = false;
      out += "       {\"t_us\": " + std::to_string(r.start - t.root_at) +
             ", \"dur_us\": " + std::to_string(r.dur < 0 ? 0 : r.dur) +
             ", \"hive\": " + std::to_string(r.hive) + ", \"kind\": \"" +
             json_escape(r.kind) + "\", \"label\": \"" +
             json_escape(r.label) + "\", \"critical\": " +
             (r.critical ? "true" : "false") + "}";
    }
    out += first_r ? "]}" : "\n     ]}";
  }
  out += first_t ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string blame_summary_text(const std::vector<AssembledTrace>& traces) {
  std::string out = std::to_string(traces.size()) +
                    " assembled trace(s), slowest first\n";
  for (const AssembledTrace& t : traces) {
    const TraceBlame& b = t.blame;
    out += "trace " + std::to_string(t.trace_id) +
           " e2e_us=" + std::to_string(ud(t.e2e)) +
           " hops=" + std::to_string(t.hops) +
           " queue=" + std::to_string(b.queue_us) +
           " handler=" + std::to_string(b.handler_us) +
           " serialize=" + std::to_string(b.serialize_us) +
           " wire=" + std::to_string(b.wire_us) +
           " retransmit=" + std::to_string(b.retransmit_us) +
           " stall=" + std::to_string(b.stall_us) +
           (t.shed ? " SHED" : "") + (t.failed ? " FAILED" : "") + "\n";
  }
  return out;
}

}  // namespace beehive
