// Cross-hive trace assembly and critical-path blame (DESIGN.md §11).
//
// The per-hive TraceRecorders hold flat span streams; this collector-side
// module stitches them back into causal, per-trace timelines and answers
// the question tail latency actually poses: *where did this slow message
// spend its time?* For each assembled trace a backward critical-path walk
// — terminal handler (or shed) back through dequeue/enqueue hops to the
// ingress — attributes every microsecond of wall time to one of six
// buckets: queue, handler, serialize, wire, retransmit, stall.
//
// Link-level spans (kChannelSend/Recv, kCreditStall, kRetransmit) are
// trace-0 by construction — a wire frame aggregates many messages — so
// cross-hive hops are decomposed by interval overlap: the frame pair whose
// send follows the message's dequeue and whose receive precedes its
// handler start is the transmission that carried it. All selection is by
// (at, hive, seq), so assembly is deterministic for deterministic runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/trace.h"
#include "util/types.h"

namespace beehive {

/// Wall-time attribution buckets for one trace's critical path, in
/// microseconds. `queue` covers dispatch delay, holdback waits and
/// receiver-side queueing; `serialize` is dequeue-to-wire time not
/// explained by stalls or retransmits (egress batching + encoding).
struct TraceBlame {
  std::uint64_t queue_us = 0;
  std::uint64_t handler_us = 0;
  std::uint64_t serialize_us = 0;
  std::uint64_t wire_us = 0;
  std::uint64_t retransmit_us = 0;
  std::uint64_t stall_us = 0;

  std::uint64_t total() const {
    return queue_us + handler_us + serialize_us + wire_us + retransmit_us +
           stall_us;
  }
  TraceBlame& operator+=(const TraceBlame& o);
};

/// One renderable waterfall segment (pre-paired server-side so clients —
/// beectl, CI scripts — never re-derive span pairing from raw events).
struct TraceRow {
  TimePoint start = 0;  ///< absolute runtime microseconds
  Duration dur = 0;     ///< 0 = instant marker
  HiveId hive = 0;
  std::string kind;   ///< handler | queue | wire | stall | retransmit | ...
  std::string label;  ///< human text, e.g. "handle wc.word"
  bool critical = false;
};

struct AssembledTrace {
  std::uint64_t trace_id = 0;
  TimePoint root_at = 0;  ///< earliest span (the ingress, when present)
  Duration e2e = 0;       ///< root -> terminal handler end / shed
  bool shed = false;      ///< trace ended in an overload shed
  bool failed = false;    ///< some handler on the trace rolled back
  std::uint32_t hops = 0; ///< cross-hive hops on the critical path
  std::vector<TraceEvent> spans;      ///< trace-carrying spans, time order
  std::vector<std::size_t> critical;  ///< indices into `spans`, root first
  std::vector<TraceRow> rows;         ///< waterfall segments, time order
  TraceBlame blame;
};

/// Stitches a merged multi-hive event stream (ring + tail-retained;
/// duplicates by (hive, seq) are removed) into per-trace timelines, walks
/// each critical path, and returns the `top_n` slowest traces, slowest
/// first (ties break on trace id).
std::vector<AssembledTrace> assemble_traces(std::vector<TraceEvent> events,
                                            std::size_t top_n);

/// Convenience for the cluster runtimes: gathers events_with_retained()
/// from every recorder and assembles.
std::vector<AssembledTrace> assemble_from_recorders(
    const std::vector<const TraceRecorder*>& recorders, std::size_t top_n);

/// Sum of per-trace blame (the beehive_blame_* Prometheus families).
TraceBlame blame_totals(const std::vector<AssembledTrace>& traces);

/// The /traces.json body: slowest-first trace list with blame breakdowns
/// and pre-paired waterfall rows.
std::string traces_json(const std::vector<AssembledTrace>& traces,
                        TimePoint now);

/// Compact one-line-per-trace rendering for flight-recorder dumps.
std::string blame_summary_text(const std::vector<AssembledTrace>& traces);

}  // namespace beehive
