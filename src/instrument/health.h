// Per-hive health scoring: one derived number (0..100) summarizing the
// pressure, reliability and latency signals the rest of the introspection
// layer measures, plus the raw inputs so an operator (or beectl) can see
// *why* a hive is unhealthy.
//
// The inputs are all last-reported-window values published by each hive at
// metrics-report time into scrape-safe atomic cells, so building a
// HealthReport never touches a hive's dispatch path or its loop thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace beehive {

struct HiveHealth {
  HiveId hive = 0;
  /// Run-queue pressure score in [0, 1): backlog / (backlog + drained + 1)
  /// over the last metrics window. 0 = keeping up, ->1 = falling behind.
  double pressure = 0.0;
  /// Reliable-transport retransmits / data frames (lifetime ratio).
  double retransmit_rate = 0.0;
  /// Failure-detector suspicion (set by the cluster-level assembler).
  bool suspected = false;
  std::uint64_t handler_p99_us = 0;  ///< last window's handler duration p99
  std::uint64_t queue_depth = 0;     ///< holdback behind transfer fences
  std::uint64_t runq_depth = 0;      ///< run-queue tasks at report time
  /// Lock-free ring occupancy high-watermark over the last metrics window
  /// (DESIGN.md §12; zero under runtimes without a ring).
  std::uint64_t ringq_hwm = 0;
  std::uint64_t handler_failures = 0;  ///< lifetime rolled-back handlers
  std::uint64_t cost_us_window = 0;  ///< profiler: estimated CPU us, last window
  // -- Overload control (DESIGN.md §10) --
  std::uint64_t shed_total = 0;  ///< lifetime messages/frames shed by policy
  double shed_per_s = 0.0;       ///< shed rate over the last metrics window
  /// Smallest remaining credit across outbound links (-1 = no credited link).
  std::int64_t credits = -1;
  std::uint64_t stalled = 0;  ///< frames parked awaiting credit right now
  bool degraded = false;      ///< advertising reduced credit (low health)
  /// Trace events lost: span-ring overwrites + tail-sampler rejections.
  std::uint64_t trace_dropped = 0;

  /// 0..100. Deductions: up to 40 for pressure, 30 for retransmit rate,
  /// 20 for suspicion, 10 for handler p99 beyond 10ms (see DESIGN.md §9).
  double score() const;
};

/// One registry shard's contention snapshot as carried in health reports
/// (fed from RegistryService::shard_stats; DESIGN.md §13).
struct RegistryShardHealth {
  std::uint32_t shard = 0;
  std::uint64_t ops = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t lock_wait_us = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t resolves = 0;
  std::uint64_t lease_term = 0;
};

struct HealthReport {
  TimePoint at = 0;
  std::vector<HiveHealth> hives;
  /// Per-shard registry contention; empty when the cluster didn't fill it.
  std::vector<RegistryShardHealth> registry_shards;

  /// Lowest hive score (100 when empty) — the cluster's headline number.
  double min_score() const;

  std::string to_json() const;

  /// Compact one-line-per-hive rendering for flight-recorder dumps.
  std::string to_text() const;
};

}  // namespace beehive
