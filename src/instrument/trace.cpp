#include "instrument/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "msg/registry.h"

namespace beehive {

namespace {

/// Chrome trace pid for the synthetic "control channel" process; hive pids
/// start at 0, so keep the channel process far away.
constexpr std::uint64_t kChannelPid = 1u << 20;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome-trace tid for a bee track. Bee ids are 64-bit but trace viewers
/// want small ints; the per-hive counter is unique within a hive's process
/// and the home hive disambiguates foreign bees.
std::uint64_t bee_tid(BeeId bee) {
  if (bee == kNoBee) return 0;
  return static_cast<std::uint64_t>(bee_counter(bee)) +
         (static_cast<std::uint64_t>(bee_home_hive(bee)) << 24);
}

std::uint64_t channel_tid(HiveId from, std::uint64_t to) {
  return (static_cast<std::uint64_t>(from) << 16) | (to & 0xffff);
}

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += "  ";
  out += body;
}

std::string common_args(const TraceEvent& e) {
  std::string args = "\"trace\":" + std::to_string(e.trace_id) +
                     ",\"depth\":" + std::to_string(e.depth);
  if (e.type != 0) {
    args += ",\"msg\":\"" +
            json_escape(MsgTypeRegistry::instance().name_of(e.type)) + "\"";
  }
  return args;
}

}  // namespace

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIngress: return "ingress";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kDequeue: return "dequeue";
    case SpanKind::kRegistryResolve: return "registry_resolve";
    case SpanKind::kHandlerStart: return "handler_start";
    case SpanKind::kHandlerEnd: return "handler_end";
    case SpanKind::kHold: return "hold";
    case SpanKind::kChannelSend: return "channel_send";
    case SpanKind::kChannelRecv: return "channel_recv";
    case SpanKind::kMigrateStart: return "migrate_start";
    case SpanKind::kMigrateIn: return "migrate_in";
    case SpanKind::kMigrateOut: return "migrate_out";
    case SpanKind::kDecision: return "decision";
    case SpanKind::kCreditStall: return "credit_stall";
    case SpanKind::kRetransmit: return "retransmit";
    case SpanKind::kStallQueued: return "stall_queued";
    case SpanKind::kShed: return "shed";
    case SpanKind::kBatchFlush: return "batch_flush";
  }
  return "?";
}

std::string_view frame_kind_name(std::uint32_t kind) {
  switch (kind) {
    case 1: return "app_msg";
    case 2: return "batch";
    case 3: return "merge_cmd";
    case 4: return "migrate_xfer";
    case 5: return "migrate_ack";
    case 6: return "migration_order";
    case 7: return "replica_txn";
    case 8: return "replica_snapshot";
    case 9: return "reliable";
    case 10: return "ack";
  }
  return "frame";
}

namespace {
/// Smallest power of two >= n: the ring is mask-indexed so the record()
/// hot path pays two ANDs instead of two integer divisions.
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1) {}

void TraceRecorder::clear() {
  head_ = 0;
  size_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  slots_used_ = 0;
  tail_rejected_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) & mask_]);
  }
  return out;
}

void TraceRecorder::configure_tail(const TailSamplerConfig& config) {
  tail_ = config;
  if (tail_.max_traces == 0) tail_.max_traces = 1;
  if (tail_.max_spans_per_trace == 0) tail_.max_spans_per_trace = 1;
  slots_used_ = 0;
  if (tail_.enabled) {
    slots_.assign(tail_.max_traces, RetainedTrace{});
    slot_events_.assign(tail_.max_traces * tail_.max_spans_per_trace,
                        TraceEvent{});
  } else {
    slots_.clear();
    slots_.shrink_to_fit();
    slot_events_.clear();
    slot_events_.shrink_to_fit();
  }
}

void TraceRecorder::retain_trace(std::uint64_t trace_id, Duration e2e,
                                 bool errored) {
  // Fan-out traces reach a terminal more than once; refresh the existing
  // slot (keeping the worst e2e) so late spans survive too.
  std::size_t slot = slots_used_;
  for (std::size_t i = 0; i < slots_used_; ++i) {
    if (slots_[i].trace_id == trace_id) {
      slot = i;
      break;
    }
  }
  if (slot == slots_used_) {
    if (slots_used_ < tail_.max_traces) {
      ++slots_used_;
    } else {
      // Budget contest: evict the least-slow retained trace iff the
      // newcomer is strictly slower; the loser counts as rejected.
      std::size_t min_i = 0;
      for (std::size_t i = 1; i < slots_.size(); ++i) {
        if (slots_[i].e2e < slots_[min_i].e2e) min_i = i;
      }
      tail_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (slots_[min_i].e2e >= e2e) return;
      slot = min_i;
    }
    slots_[slot] = RetainedTrace{};
    slots_[slot].trace_id = trace_id;
  }

  RetainedTrace& rt = slots_[slot];
  if (e2e > rt.e2e) rt.e2e = e2e;
  rt.errored = rt.errored || errored;
  rt.count = 0;
  TraceEvent* dst = slot_events_.data() + slot * tail_.max_spans_per_trace;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& ev = ring_[(head_ + i) & mask_];
    if (ev.trace_id != trace_id) continue;
    if (rt.count >= tail_.max_spans_per_trace) break;
    dst[rt.count++] = ev;
  }
}

std::vector<TraceEvent> TraceRecorder::retained_events() const {
  std::vector<TraceEvent> out;
  for (std::size_t s = 0; s < slots_used_; ++s) {
    const TraceEvent* src = slot_events_.data() + s * tail_.max_spans_per_trace;
    out.insert(out.end(), src, src + slots_[s].count);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::events_with_retained() const {
  std::vector<TraceEvent> out = events();
  // The ring holds the contiguous seq window [next_seq_ - size_, next_seq_);
  // any retained span below it has been overwritten and must be re-added.
  const std::uint64_t ring_floor = next_seq_ - size_;
  for (const TraceEvent& ev : retained_events()) {
    if (ev.seq < ring_floor) out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<TraceEvent> merge_trace_events(
    const std::vector<const TraceRecorder*>& recorders) {
  std::vector<TraceEvent> all;
  for (const TraceRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    std::vector<TraceEvent> part = rec->events();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.hive != b.hive) return a.hive < b.hive;
                     return a.seq < b.seq;
                   });
  return all;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Metadata: name hive processes and bee/channel tracks.
  std::set<HiveId> hives;
  std::set<std::pair<HiveId, BeeId>> bees;
  std::set<std::pair<HiveId, std::uint64_t>> links;
  for (const TraceEvent& e : events) {
    if (e.kind == SpanKind::kChannelSend || e.kind == SpanKind::kChannelRecv) {
      links.insert({e.hive, e.aux2});
    } else {
      hives.insert(e.hive);
      bees.insert({e.hive, e.bee});
    }
  }
  for (HiveId h : hives) {
    append_event(out, first,
                 "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                     std::to_string(h) +
                     ",\"tid\":0,\"args\":{\"name\":\"hive " +
                     std::to_string(h) + "\"}}");
  }
  for (const auto& [hive, bee] : bees) {
    std::string label = bee == kNoBee ? "io/platform" : to_string_bee(bee);
    append_event(out, first,
                 "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                     std::to_string(hive) +
                     ",\"tid\":" + std::to_string(bee_tid(bee)) +
                     ",\"args\":{\"name\":\"" + json_escape(label) + "\"}}");
  }
  if (!links.empty()) {
    append_event(out, first,
                 "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                     std::to_string(kChannelPid) +
                     ",\"tid\":0,\"args\":{\"name\":\"control channel\"}}");
    for (const auto& [from, to] : links) {
      append_event(
          out, first,
          "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
              std::to_string(kChannelPid) +
              ",\"tid\":" + std::to_string(channel_tid(from, to)) +
              ",\"args\":{\"name\":\"hive " + std::to_string(from) +
              " -> hive " + std::to_string(to) + "\"}}");
    }
  }

  // Handler start/end pairs become complete spans; channel send/recv pairs
  // become spans on the link track; the rest are instants. A hive runs one
  // handler at a time, so the last unmatched start per (hive, bee) pairs
  // with the next end.
  std::map<std::pair<HiveId, BeeId>, TraceEvent> open_handlers;
  std::map<std::uint64_t, TraceEvent> open_frames;  // keyed by frame seq

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case SpanKind::kHandlerStart:
        open_handlers[{e.hive, e.bee}] = e;
        break;
      case SpanKind::kHandlerEnd: {
        auto it = open_handlers.find({e.hive, e.bee});
        if (it == open_handlers.end()) break;
        const TraceEvent& start = it->second;
        std::string name =
            "handle " +
            std::string(MsgTypeRegistry::instance().name_of(start.type));
        append_event(
            out, first,
            "{\"ph\":\"X\",\"name\":\"" + json_escape(name) +
                "\",\"cat\":\"handler\",\"pid\":" + std::to_string(e.hive) +
                ",\"tid\":" + std::to_string(bee_tid(e.bee)) +
                ",\"ts\":" + std::to_string(start.at) +
                ",\"dur\":" + std::to_string(e.at - start.at) + ",\"args\":{" +
                common_args(start) + ",\"emitted\":" + std::to_string(e.aux) +
                ",\"failed\":" + (e.aux2 != 0 ? "true" : "false") + "}}");
        open_handlers.erase(it);
        break;
      }
      case SpanKind::kChannelSend:
        open_frames[e.aux] = e;
        break;
      case SpanKind::kChannelRecv: {
        auto it = open_frames.find(e.aux);
        if (it == open_frames.end()) break;
        const TraceEvent& send = it->second;
        append_event(
            out, first,
            std::string("{\"ph\":\"X\",\"name\":\"") +
                std::string(frame_kind_name(send.type)) +
                "\",\"cat\":\"channel\",\"pid\":" + std::to_string(kChannelPid) +
                ",\"tid\":" + std::to_string(channel_tid(send.hive, send.aux2)) +
                ",\"ts\":" + std::to_string(send.at) +
                ",\"dur\":" + std::to_string(e.at - send.at) +
                ",\"args\":{\"bytes\":" + std::to_string(send.depth) + "}}");
        open_frames.erase(it);
        break;
      }
      default:
        append_event(
            out, first,
            "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" +
                std::string(to_string(e.kind)) +
                "\",\"cat\":\"platform\",\"pid\":" + std::to_string(e.hive) +
                ",\"tid\":" + std::to_string(bee_tid(e.bee)) +
                ",\"ts\":" + std::to_string(e.at) + ",\"args\":{" +
                common_args(e) + ",\"aux\":" + std::to_string(e.aux) + "}}");
    }
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = to_chrome_trace(events);
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace beehive
