#include "instrument/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.h"

namespace beehive {

namespace {

// Crash-handler state: plain pointers set before handlers are installed,
// read from the signal handler. Intentionally leaked references — the
// process is about to die when they are used.
FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[512] = {0};

extern "C" void crash_signal_handler(int sig) {
  if (g_crash_recorder != nullptr && g_crash_path[0] != '\0') {
    g_crash_recorder->crash_dump_unsafe(g_crash_path, sig);
  }
  // Restore the default handler and re-raise so the exit status and core
  // dump behave as if we were never here.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::note(HiveId hive, std::string line) {
  std::lock_guard lock(mutex_);
  Ring& ring = ring_for_locked(hive);
  if (ring.size < ring.lines.size()) {
    ring.lines[(ring.head + ring.size) % ring.lines.size()] =
        std::move(line);
    ++ring.size;
  } else {
    ring.lines[ring.head] = std::move(line);
    ring.head = (ring.head + 1) % ring.lines.size();
  }
}

void FlightRecorder::tee_logger() {
  Logger::instance().set_sink([this](LogLevel level, const std::string& line) {
    // Attribute to hive 0: the logger has no hive context; hives that want
    // precise attribution call note() directly.
    note(0, line);
    std::fprintf(stderr, "%s\n", line.c_str());
    (void)level;
  });
}

void FlightRecorder::set_span_source(SpanSource source) {
  std::lock_guard lock(mutex_);
  span_source_ = std::move(source);
}

void FlightRecorder::set_health_source(HealthSource source) {
  std::lock_guard lock(mutex_);
  health_source_ = std::move(source);
}

void FlightRecorder::set_trace_source(TraceSource source) {
  std::lock_guard lock(mutex_);
  trace_source_ = std::move(source);
}

FlightRecorder::Ring& FlightRecorder::ring_for_locked(HiveId hive) {
  for (Ring& r : rings_) {
    if (r.hive == hive) return r;
  }
  if (rings_.size() == max_hives_) {
    // The table is full and must not reallocate (crash_dump_unsafe walks
    // it without the mutex); overflow hives share the first ring.
    return rings_.front();
  }
  Ring& r = rings_.emplace_back();
  r.hive = hive;
  r.lines.resize(lines_per_hive_);
  // Publish only after the ring is fully built: the crash handler reads
  // rings_[0..ring_count_) with no lock.
  ring_count_.store(rings_.size(), std::memory_order_release);
  return r;
}

std::string FlightRecorder::render_locked(const std::string& reason) const {
  std::string out = "=== flight recorder dump (" + reason + ") ===\n";
  for (const Ring& ring : rings_) {
    out += "--- hive " + std::to_string(ring.hive) + " (" +
           std::to_string(ring.size) + " lines) ---\n";
    for (std::size_t i = 0; i < ring.size; ++i) {
      out += ring.lines[(ring.head + i) % ring.lines.size()];
      out += '\n';
    }
  }
  if (span_source_) {
    out += "--- recent trace spans ---\n";
    for (const TraceEvent& e : span_source_()) {
      out += "at=" + std::to_string(e.at) + " hive=" +
             std::to_string(e.hive) + " " + std::string(to_string(e.kind)) +
             " bee=" + std::to_string(e.bee) + " trace=" +
             std::to_string(e.trace_id) + " aux=" + std::to_string(e.aux) +
             " aux2=" + std::to_string(e.aux2) + "\n";
    }
  }
  return out;
}

std::string FlightRecorder::render(const std::string& reason) const {
  std::string out;
  HealthSource health;
  TraceSource traces;
  {
    std::lock_guard lock(mutex_);
    out = render_locked(reason);
    health = health_source_;
    traces = trace_source_;
  }
  // The health and trace sources run outside the mutex: they may note()
  // into the recorder or take cluster locks. Never invoked on the crash
  // path (crash_dump_unsafe), which must stay lock- and allocation-free.
  if (health) {
    out += "--- health ---\n";
    out += health();
  }
  if (traces) {
    out += "--- slowest traces ---\n";
    out += traces();
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path,
                          const std::string& reason) const {
  const std::string content = render(reason);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::size_t FlightRecorder::line_count(HiveId hive) const {
  std::lock_guard lock(mutex_);
  for (const Ring& r : rings_) {
    if (r.hive == hive) return r.size;
  }
  return 0;
}

void FlightRecorder::install_crash_handler(const std::string& path) {
  g_crash_recorder = this;
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  std::signal(SIGSEGV, crash_signal_handler);
  std::signal(SIGABRT, crash_signal_handler);
  std::signal(SIGFPE, crash_signal_handler);
  std::signal(SIGBUS, crash_signal_handler);
}

void FlightRecorder::crash_dump_unsafe(const char* path, int sig) const {
  // Async-signal-safe path: open(2)/write(2) only, no locking, no
  // allocation. The ring table's storage is reserved at construction and
  // ring_count_ is only advanced after a ring is fully built, so walking
  // rings_[0..ring_count_) never touches reallocated or half-constructed
  // memory. Individual lines may still race a writer mid-crash; a torn
  // line is acceptable in a crash artifact.
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  auto put = [fd](const char* s, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      ssize_t w = ::write(fd, s + off, n - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  };
  auto put_str = [&put](const char* s) { put(s, std::strlen(s)); };
  auto put_num = [&put](std::uint64_t v) {
    char buf[24];
    char* p = buf + sizeof(buf);
    *--p = '\0';
    do {
      *--p = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    put(p, std::strlen(p));
  };

  put_str("=== flight recorder crash dump (signal ");
  put_num(static_cast<std::uint64_t>(sig));
  put_str(") ===\n");
  const std::size_t n_rings = ring_count_.load(std::memory_order_acquire);
  for (std::size_t ri = 0; ri < n_rings; ++ri) {
    const Ring& ring = rings_[ri];
    put_str("--- hive ");
    put_num(ring.hive);
    put_str(" ---\n");
    const std::size_t cap = ring.lines.size();
    if (cap == 0) continue;
    const std::size_t n = ring.size < cap ? ring.size : cap;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& line = ring.lines[(ring.head + i) % cap];
      put(line.data(), line.size());
      put("\n", 1);
    }
  }
  ::close(fd);
}

}  // namespace beehive
