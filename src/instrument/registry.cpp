#include "instrument/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>

namespace beehive {

namespace {

/// Formats a double the way Prometheus expects: integers without a
/// fraction, everything else with enough digits to round-trip.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes HELP text: the exposition format spec escapes backslash and
/// newline there (quotes are legal verbatim in help lines, unlike label
/// values).
std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Escapes a label value: backslash, double-quote and newline per the
/// exposition format spec.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += prometheus_sanitize(k);
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels plus one extra pair — used for histogram `le` buckets.
std::string render_labels_with(const MetricLabels& labels,
                               const std::string& extra_key,
                               const std::string& extra_value) {
  MetricLabels all = labels;
  all.emplace_back(extra_key, extra_value);
  return render_labels(all);
}

/// Coarse exposition bounds (microseconds): powers of 4 from 1us up to
/// ~4.4 min, then +Inf. The native 448-bucket resolution stays available
/// through snapshot()/percentiles; exposition trades it for scrape size.
const std::uint64_t kExpoBoundsUs[] = {
    1,        4,        16,        64,        256,       1024,     4096,
    16384,    65536,    262144,    1048576,   4194304,   16777216, 67108864,
    268435456};

/// JSON string escaping (control chars, quote, backslash).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return format_value(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramMetric

void HistogramMetric::merge(const LatencyHistogram& h) {
  if (h.count() == 0) return;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (std::uint64_t c = h.bucket_count(i)) {
      buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(h.count(), std::memory_order_relaxed);
  sum_.fetch_add(h.sum(), std::memory_order_relaxed);
}

LatencyHistogram HistogramMetric::snapshot() const {
  LatencyHistogram out;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    out.add_bucket_count(static_cast<std::uint32_t>(i),
                         buckets_[i].load(std::memory_order_relaxed));
  }
  return out;
}

// ---------------------------------------------------------------------------
// TimeSeriesRing

std::vector<TimeSeriesRing::Sample> TimeSeriesRing::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(samples_[(head_ + i) % samples_.size()]);
  }
  return out;
}

double TimeSeriesRing::rate_per_second() const {
  std::lock_guard lock(mutex_);
  if (size_ < 2) return 0.0;
  const Sample& oldest = samples_[head_];
  const Sample& newest = samples_[(head_ + size_ - 1) % samples_.size()];
  const double span_us = static_cast<double>(newest.at - oldest.at);
  if (span_us <= 0) return 0.0;
  double sum = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    sum += samples_[(head_ + i) % samples_.size()].value;
  }
  return sum / (span_us / 1e6);
}

double TimeSeriesRing::last() const {
  std::lock_guard lock(mutex_);
  if (size_ == 0) return 0.0;
  return samples_[(head_ + size_ - 1) % samples_.size()].value;
}

void TimeSeriesRing::encode(ByteWriter& w) const {
  std::lock_guard lock(mutex_);
  w.varint(samples_.size());
  w.varint(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample& s = samples_[(head_ + i) % samples_.size()];
    w.i64(s.at);
    w.f64(s.value);
  }
}

TimeSeriesRing TimeSeriesRing::decode(ByteReader& r) {
  const std::size_t capacity = r.varint();
  TimeSeriesRing ring(capacity);
  const std::size_t n = r.varint();
  for (std::size_t i = 0; i < n; ++i) {
    TimePoint at = r.i64();
    double value = r.f64();
    ring.push(at, value);
  }
  return ring;
}

void TimeSeriesRing::copy_from(const TimeSeriesRing& other) {
  std::scoped_lock lock(mutex_, other.mutex_);
  samples_ = other.samples_;
  head_ = other.head_;
  size_ = other.size_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

std::string prometheus_sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (digit && i > 0)) {
      out += c;
    } else if (digit) {  // leading digit
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(
    const std::string& name, const MetricLabels& labels, Kind kind) {
  for (Entry& e : entries_) {
    if (e.name != name || e.labels != labels) continue;
    if (e.kind != kind) {
      throw std::logic_error(
          "metrics registry: series '" + name +
          "' is already registered with a different metric kind");
    }
    return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name, MetricLabels labels,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kCounter)) {
    return *e->counter;
  }
  Counter& c = counters_.emplace_back();
  entries_.push_back(
      {name, std::move(labels), help, Kind::kCounter, false, &c});
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels,
                              const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kGauge)) return *e->gauge;
  Gauge& g = gauges_.emplace_back();
  Entry e{name, std::move(labels), help, Kind::kGauge};
  e.gauge = &g;
  entries_.push_back(std::move(e));
  return g;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            MetricLabels labels,
                                            const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kHistogram)) {
    return *e->histogram;
  }
  HistogramMetric& h = histograms_.emplace_back();
  Entry e{name, std::move(labels), help, Kind::kHistogram};
  e.histogram = &h;
  entries_.push_back(std::move(e));
  return h;
}

TimeSeriesRing& MetricsRegistry::ring(const std::string& name,
                                      MetricLabels labels,
                                      std::size_t capacity) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kRing)) return *e->ring;
  TimeSeriesRing& r = rings_.emplace_back(capacity);
  Entry e{name, std::move(labels), "", Kind::kRing};
  e.ring = &r;
  entries_.push_back(std::move(e));
  return r;
}

void MetricsRegistry::expose_counter(const std::string& name,
                                     MetricLabels labels, const Counter* cell,
                                     const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kCounter)) {
    e->counter = const_cast<Counter*>(cell);
    return;
  }
  Entry e{name, std::move(labels), help, Kind::kCounter};
  e.counter = const_cast<Counter*>(cell);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::gauge_fn(const std::string& name, MetricLabels labels,
                               std::function<double()> fn,
                               const std::string& help,
                               bool counter_semantics) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, labels, Kind::kFn)) {
    e->fn = std::move(fn);
    return;
  }
  Entry e{name, std::move(labels), help, Kind::kFn, counter_semantics};
  e.fn = std::move(fn);
  entries_.push_back(std::move(e));
}

std::string MetricsRegistry::prometheus_text() const {
  // Copy the entry list under the lock, then render without it: pull
  // gauges (kFn) run user callbacks that may themselves touch the
  // registry, which would self-deadlock on the non-recursive mutex. The
  // copied entries point at deque cells that are never removed, so they
  // stay valid after release.
  std::vector<Entry> entries;
  {
    std::lock_guard lock(mutex_);
    entries = entries_;
  }

  // Group series by (sanitized) family name so HELP/TYPE print once.
  std::map<std::string, std::vector<const Entry*>> families;
  for (const Entry& e : entries) {
    if (e.kind == Kind::kRing) continue;  // rings go to /status.json only
    families[prometheus_sanitize(e.name)].push_back(&e);
  }

  std::string out;
  for (const auto& [name, series] : families) {
    const Entry* first = series.front();
    const char* type = "gauge";
    if (first->kind == Kind::kCounter ||
        (first->kind == Kind::kFn && first->counter_semantics)) {
      type = "counter";
    } else if (first->kind == Kind::kHistogram) {
      type = "histogram";
    }
    // Every family gets a HELP line (scrapers and linters expect the
    // pair): the first series with a non-empty help string wins; families
    // registered without one get an explicit placeholder.
    std::string help;
    for (const Entry* e : series) {
      if (!e->help.empty()) {
        help = e->help;
        break;
      }
    }
    if (help.empty()) help = "(no description registered)";
    out += "# HELP " + name + " " + escape_help(help) + "\n";
    out += "# TYPE " + name + " " + type + "\n";

    for (const Entry* e : series) {
      switch (e->kind) {
        case Kind::kCounter:
          out += name + render_labels(e->labels) + " " +
                 std::to_string(e->counter->get()) + "\n";
          break;
        case Kind::kGauge:
          out += name + render_labels(e->labels) + " " +
                 format_value(e->gauge->get()) + "\n";
          break;
        case Kind::kFn:
          out += name + render_labels(e->labels) + " " +
                 format_value(e->fn ? e->fn() : 0.0) + "\n";
          break;
        case Kind::kHistogram: {
          // Cumulative buckets over the coarse exposition bounds. A
          // native bucket [low, high) folds into le=bound only when it is
          // fully covered — its largest value high-1 is <= bound — else
          // its counts would overstate the cumulative total at this
          // bound; partially covered buckets wait for the next one.
          const auto native_high = [](std::size_t i) {
            return i + 1 < LatencyHistogram::kBuckets
                       ? LatencyHistogram::bucket_low(
                             static_cast<std::uint32_t>(i + 1))
                       : std::numeric_limits<std::uint64_t>::max();
          };
          std::uint64_t cumulative = 0;
          std::size_t native = 0;
          for (std::uint64_t bound : kExpoBoundsUs) {
            while (native < LatencyHistogram::kBuckets &&
                   native_high(native) <= bound + 1) {
              cumulative += e->histogram->bucket_count_relaxed(native);
              ++native;
            }
            out += name + "_bucket" +
                   render_labels_with(e->labels, "le",
                                      std::to_string(bound)) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += name + "_bucket" +
                 render_labels_with(e->labels, "le", "+Inf") + " " +
                 std::to_string(e->histogram->count()) + "\n";
          out += name + "_sum" + render_labels(e->labels) + " " +
                 std::to_string(e->histogram->sum()) + "\n";
          out += name + "_count" + render_labels(e->labels) + " " +
                 std::to_string(e->histogram->count()) + "\n";
          break;
        }
        case Kind::kRing:
          break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::status_json() const {
  // Same locking discipline as prometheus_text(): snapshot the entries,
  // then run callbacks and render with the mutex released.
  std::vector<Entry> entries;
  {
    std::lock_guard lock(mutex_);
    entries = entries_;
  }
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const Entry& e : entries) {
    if (e.kind == Kind::kRing) continue;
    std::string key = e.name;
    for (const auto& [k, v] : e.labels) key += "," + k + "=" + v;
    std::string value;
    switch (e.kind) {
      case Kind::kCounter:
        value = std::to_string(e.counter->get());
        break;
      case Kind::kGauge:
        value = json_number(e.gauge->get());
        break;
      case Kind::kFn:
        value = json_number(e.fn ? e.fn() : 0.0);
        break;
      case Kind::kHistogram: {
        LatencyHistogram snap = e.histogram->snapshot();
        value = "{\"count\": " + std::to_string(e.histogram->count()) +
                ", \"sum\": " + std::to_string(e.histogram->sum()) +
                ", \"p50\": " + json_number(static_cast<double>(snap.p50())) +
                ", \"p99\": " + json_number(static_cast<double>(snap.p99())) +
                "}";
        break;
      }
      case Kind::kRing:
        break;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": " + value;
  }
  out += "\n  },\n  \"series\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != Kind::kRing) continue;
    std::string key = e.name;
    for (const auto& [k, v] : e.labels) key += "," + k + "=" + v;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": {\"rate_per_second\": " +
           json_number(e.ring->rate_per_second()) + ", \"samples\": [";
    bool fs = true;
    for (const TimeSeriesRing::Sample& s : e.ring->snapshot()) {
      if (!fs) out += ", ";
      fs = false;
      out += "[" + std::to_string(s.at) + ", " + json_number(s.value) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace beehive
