// Sampling cost profiler: turns "how many messages" into "how much work".
//
// The optimizer's original signal (ChannelMeter + per-bee message counts)
// says nothing about what a message *costs* — a bee handling 100 cheap
// timer ticks looks identical to one running 100 expensive route
// recomputations. The profiler closes that gap without touching the hot
// path's allocation contract: every handler activation pays one counter
// increment and one mask test; every Nth activation additionally reads the
// thread CPU clock around the handler and charges the measured nanoseconds
// (scaled by the sampling period) to the bee and to the cells the handler
// mapped. Aggregates flow out through the existing LocalMetricsReport
// pipeline, so the collector and the placement strategies see measured
// cost with no extra wire machinery.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "state/txn.h"
#include "util/types.h"

namespace beehive {

struct ProfilerConfig {
  /// Master switch. Off: tick() is one load + one branch, nothing else.
  bool enabled = false;
  /// Sample every Nth handler activation (rounded up to a power of two so
  /// the tick test is a mask, not a modulo). 1 = measure every handler.
  std::uint32_t sample_every = 64;
  /// Distinct cells tracked by the heat table before overflow folds into
  /// the "(other)" bucket. Bounds profiler memory on cell-per-entity apps.
  std::size_t heat_capacity = 128;
};

/// Current thread's consumed CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID;
/// 0 if the platform clock is unavailable).
std::uint64_t thread_cpu_now_ns();

/// Bounded per-cell cost attribution ("which cells are hot"). Updated only
/// on sampled activations — allocation there is fine — and read by the
/// health/report path, so a mutex (uncontended: one writer, rare readers)
/// is sufficient.
class CellHeatTable {
 public:
  explicit CellHeatTable(std::size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Row {
    std::string cell;  ///< "dict/key", or "(other)" for the overflow bucket
    AppId app = 0;
    std::uint64_t cost_ns = 0;  ///< scaled estimate (sample * period)
    std::uint64_t samples = 0;
  };

  /// Charges `cost_ns` to `cell` (creating its row while capacity lasts;
  /// folding into "(other)" afterwards).
  void add(const std::string& cell, AppId app, std::uint64_t cost_ns);

  /// Rows sorted hottest-first, at most `n`.
  std::vector<Row> top(std::size_t n) const;

  std::size_t size() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Row> rows_;
};

/// Per-hive profiler state. Owned by the Hive; tick() runs on the hive's
/// loop thread only, so the activation counter is a plain integer.
class CostProfiler {
 public:
  explicit CostProfiler(ProfilerConfig config)
      : config_(config), heat_(config.heat_capacity) {
    // Round the period up to a power of two: the hot-path test becomes
    // (++n & mask) == 0.
    std::uint32_t period = config.sample_every == 0 ? 1 : config.sample_every;
    std::uint32_t pow2 = 1;
    while (pow2 < period) pow2 <<= 1;
    mask_ = pow2 - 1;
  }

  bool enabled() const { return config_.enabled; }

  /// Hot path: true when this activation should be timed. One increment,
  /// one mask test.
  bool tick() { return config_.enabled && ((++activations_ & mask_) == 0); }

  /// Multiplier turning one sampled measurement into the estimated cost of
  /// the whole sampling period.
  std::uint64_t scale() const { return static_cast<std::uint64_t>(mask_) + 1; }

  /// Charges one sampled handler run to the cells its policy granted
  /// (sampled path only — allocates freely). The scaled cost is split
  /// evenly across the policy's cells; foreach policies charge "dict/*".
  void attribute(const AccessPolicy& policy, AppId app,
                 std::uint64_t sampled_ns);

  CellHeatTable& heat() { return heat_; }
  const CellHeatTable& heat() const { return heat_; }

  std::uint64_t activations() const { return activations_; }

 private:
  ProfilerConfig config_;
  std::uint32_t mask_ = 0;
  std::uint64_t activations_ = 0;
  CellHeatTable heat_;
};

}  // namespace beehive
