// The metrics collector / placement optimizer — itself a Beehive control
// application, exactly as the paper does it: "We measure runtime metrics on
// each hive locally, and periodically aggregate them on a single hive ...
// We implemented this mechanism using the proposed abstraction as a control
// application."
//
// Every hive's platform timer emits a LocalMetricsReport; the collector
// maps all reports (and its own optimization timer) to whole-dictionary
// cells, so the platform centralizes it on one bee. Each optimization round
// it hands the aggregated ClusterView to a pluggable PlacementStrategy and
// turns the decisions into migration orders.
#pragma once

#include <memory>
#include <string>

#include "core/app.h"
#include "instrument/metrics.h"
#include "placement/strategy.h"
#include "state/store.h"

namespace beehive {

/// Aggregated per-bee record: the value of one "stats.bees" cell.
struct BeeAgg {
  static constexpr std::string_view kTypeName = "stats.bee_agg";

  BeeId bee = kNoBee;
  AppId app = 0;
  HiveId hive = 0;
  bool pinned = false;
  std::uint64_t cells = 0;
  std::uint64_t msgs_in_window = 0;
  std::uint64_t handler_invocations = 0;
  std::uint64_t handler_failures = 0;
  /// Profiler-estimated handler CPU microseconds accumulated since the
  /// last optimization round (0 when the profiler is off).
  std::uint64_t cost_us_window = 0;
  std::vector<std::pair<HiveId, std::uint64_t>> inbound_by_hive;

  void add_inbound(HiveId from, std::uint64_t count) {
    for (auto& [hive, c] : inbound_by_hive) {
      if (hive == from) {
        c += count;
        return;
      }
    }
    inbound_by_hive.emplace_back(from, count);
  }

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.u32(hive);
    w.boolean(pinned);
    w.varint(cells);
    w.varint(msgs_in_window);
    w.varint(handler_invocations);
    w.varint(handler_failures);
    w.varint(cost_us_window);
    w.varint(inbound_by_hive.size());
    for (const auto& [hive, count] : inbound_by_hive) {
      w.u32(hive);
      w.varint(count);
    }
  }
  static BeeAgg decode(ByteReader& r) {
    BeeAgg a;
    a.bee = r.u64();
    a.app = r.u32();
    a.hive = r.u32();
    a.pinned = r.boolean();
    a.cells = r.varint();
    a.msgs_in_window = r.varint();
    a.handler_invocations = r.varint();
    a.handler_failures = r.varint();
    a.cost_us_window = r.varint();
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      HiveId hive = r.u32();
      a.inbound_by_hive.emplace_back(hive, r.varint());
    }
    return a;
  }
};

struct CollectorConfig {
  Duration optimize_period = 5 * kSecond;
  /// Run a full optimization round (re-score every bee) every Nth round;
  /// the rounds in between are incremental — they re-score only the dirty
  /// set (bees whose traffic-matrix or cost rows changed since the last
  /// round), which at large bee counts is the difference between O(bees)
  /// and O(active bees) per round. 1 (or 0) = every round full. The
  /// periodic full round is the drift guard: it also ages out rows of
  /// bees that merged away, which incremental rounds never visit.
  std::uint64_t full_round_every = 8;
};

class CollectorApp : public App {
 public:
  /// `strategy` decides migrations each optimization round (NoopStrategy
  /// collects analytics without ever migrating). `n_hives` sizes the view.
  CollectorApp(std::shared_ptr<PlacementStrategy> strategy,
               std::size_t n_hives, CollectorConfig config = {});

  static constexpr std::string_view kBeesDict = "stats.bees";
  static constexpr std::string_view kHivesDict = "stats.hives";
  /// Cumulative analytics: inputs per (app, message type) and causation
  /// per (app, input type, output type).
  static constexpr std::string_view kInTypesDict = "stats.intypes";
  static constexpr std::string_view kCausationDict = "stats.causation";
  /// Cumulative latency histograms: "e2e" plus per-app "queue:<app>" and
  /// "handler:<app>" distributions, merged from every report.
  static constexpr std::string_view kLatencyDict = "stats.latency";
  /// Per-hive reliability health, one cell per hive: latest cumulative
  /// transport totals plus migration aborts and the partition gauge.
  static constexpr std::string_view kTransportDict = "stats.transport";
  /// Explained optimizer decisions, one PlacementRound cell per
  /// optimization round that considered at least one candidate (keys
  /// "r<round>", plus "next" holding the round counter). Only the last
  /// kDecisionRoundsKept rounds are retained.
  static constexpr std::string_view kDecisionsDict = "stats.decisions";
  static constexpr std::uint64_t kDecisionRoundsKept = 8;
  /// Latest queue-pressure score per hive (one cell per hive, overwritten
  /// each report) — the signal CostPressureStrategy folds into its ranking.
  static constexpr std::string_view kPressureDict = "stats.pressure";
  /// Dirty-set marks: one cell per bee whose "stats.bees" row changed
  /// since the last optimization round (keyed like kBeesDict). Incremental
  /// rounds iterate THIS dict — O(active bees) — and point-look-up only
  /// the marked aggregate rows, never sweeping the full bee table.
  static constexpr std::string_view kDirtyDict = "stats.dirty";

  /// Rebuilds the optimizer's input from a collector bee's state store
  /// (used by tests and by benches for analytics output).
  static ClusterView view_from_store(const StateStore& store,
                                     std::size_t n_hives);

  /// One row of the causation analytics the paper describes ("packet out
  /// messages are emitted by the learning switch application upon
  /// receiving 80% of packet in's").
  struct CausationRow {
    AppId app = 0;
    MsgTypeId in = 0;
    MsgTypeId out = 0;
    std::uint64_t emitted = 0;
    std::uint64_t inputs = 0;  ///< messages of type `in` received by `app`
    double ratio = 0.0;        ///< emitted / inputs
  };
  static std::vector<CausationRow> causation_from_store(
      const StateStore& store);

  /// One hive's reliability record as stored in "stats.transport".
  struct TransportRow {
    HiveId hive = 0;
    TransportCounters transport;
    std::uint64_t migration_aborts = 0;
    std::uint32_t partitions_active = 0;
  };
  static std::vector<TransportRow> transport_from_store(
      const StateStore& store);

  /// Retained decision rounds, oldest first (tests, benches, StatusApp).
  static std::vector<PlacementRound> decisions_from_store(
      const StateStore& store);
};

}  // namespace beehive
