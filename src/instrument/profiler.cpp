#include "instrument/profiler.h"

#include <algorithm>
#include <ctime>

namespace beehive {

std::uint64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

void CellHeatTable::add(const std::string& cell, AppId app,
                        std::uint64_t cost_ns) {
  std::lock_guard lock(mutex_);
  for (Row& row : rows_) {
    if (row.cell == cell) {
      row.cost_ns += cost_ns;
      row.samples += 1;
      return;
    }
  }
  if (rows_.size() < capacity_) {
    rows_.push_back(Row{cell, app, cost_ns, 1});
    return;
  }
  // Table full: fold into the shared overflow bucket so memory stays
  // bounded however many cells the application mints.
  for (Row& row : rows_) {
    if (row.cell == "(other)") {
      row.cost_ns += cost_ns;
      row.samples += 1;
      return;
    }
  }
  // Capacity is full of named cells; evict nothing, repurpose the coldest
  // row as the overflow bucket (its history folds in).
  auto coldest = std::min_element(
      rows_.begin(), rows_.end(),
      [](const Row& a, const Row& b) { return a.cost_ns < b.cost_ns; });
  coldest->cell = "(other)";
  coldest->app = 0;
  coldest->cost_ns += cost_ns;
  coldest->samples += 1;
}

std::vector<CellHeatTable::Row> CellHeatTable::top(std::size_t n) const {
  std::vector<Row> out;
  {
    std::lock_guard lock(mutex_);
    out = rows_;
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.cost_ns != b.cost_ns) return a.cost_ns > b.cost_ns;
    return a.cell < b.cell;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::size_t CellHeatTable::size() const {
  std::lock_guard lock(mutex_);
  return rows_.size();
}

void CellHeatTable::clear() {
  std::lock_guard lock(mutex_);
  rows_.clear();
}

void CostProfiler::attribute(const AccessPolicy& policy, AppId app,
                             std::uint64_t sampled_ns) {
  const std::uint64_t scaled = sampled_ns * scale();
  const CellSet& cells = policy.effective();
  if (!cells.empty()) {
    const std::uint64_t share = scaled / cells.size();
    for (const CellKey& cell : cells) {
      heat_.add(cell.to_string(), app, share);
    }
    return;
  }
  if (!policy.scan_dicts.empty()) {
    const std::uint64_t share = scaled / policy.scan_dicts.size();
    for (const std::string& dict : policy.scan_dicts) {
      heat_.add(dict + "/*", app, share);
    }
    return;
  }
  heat_.add("(unmapped)", app, scaled);
}

}  // namespace beehive
