#include "instrument/collector.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/context.h"

namespace beehive {

namespace {

/// Tiny codec wrapper for the per-hive cell count.
struct HiveCells {
  static constexpr std::string_view kTypeName = "stats.hive_cells";
  std::uint64_t cells = 0;

  void encode(ByteWriter& w) const { w.varint(cells); }
  static HiveCells decode(ByteReader& r) { return {r.varint()}; }
};

std::string bee_key(BeeId bee) { return std::to_string(bee); }

/// Codec for one "stats.pressure" cell (latest score per hive; overwrite,
/// don't accumulate — pressure is an instantaneous reading).
struct HivePressure {
  static constexpr std::string_view kTypeName = "stats.hive_pressure";
  double pressure = 0.0;
  /// The hive entered graceful degradation (advertising reduced credit;
  /// DESIGN.md §10) — placement must not move work onto it.
  bool degraded = false;

  void encode(ByteWriter& w) const {
    w.f64(pressure);
    w.boolean(degraded);
  }
  static HivePressure decode(ByteReader& r) {
    HivePressure p;
    p.pressure = r.f64();
    p.degraded = r.boolean();
    return p;
  }
};

/// Codec for one "stats.transport" cell (latest snapshot per hive; the
/// counters are lifetime totals so overwrite, don't accumulate).
struct TransportAgg {
  static constexpr std::string_view kTypeName = "stats.transport_agg";
  TransportCounters transport;
  std::uint64_t migration_aborts = 0;
  std::uint32_t partitions_active = 0;

  void encode(ByteWriter& w) const {
    transport.encode(w);
    w.varint(migration_aborts);
    w.u32(partitions_active);
  }
  static TransportAgg decode(ByteReader& r) {
    TransportAgg a;
    a.transport = TransportCounters::decode(r);
    a.migration_aborts = r.varint();
    a.partitions_active = r.u32();
    return a;
  }
};

CellSet collector_cells() {
  return CellSet{
      {std::string(CollectorApp::kBeesDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kHivesDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kInTypesDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kCausationDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kLatencyDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kTransportDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kDecisionsDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kPressureDict), std::string(kAllKeys)},
      {std::string(CollectorApp::kDirtyDict), std::string(kAllKeys)}};
}

void bump_counter(Txn& txn, std::string_view dict, const std::string& key,
                  std::uint64_t delta) {
  HiveCells counter = txn.get_as<HiveCells>(dict, key).value_or(HiveCells{});
  counter.cells += delta;
  txn.put_as(dict, key, counter);
}

void merge_hist(Txn& txn, const std::string& key,
                const LatencyHistogram& delta) {
  if (delta.count() == 0) return;
  LatencyHistogram h =
      txn.get_as<LatencyHistogram>(CollectorApp::kLatencyDict, key)
          .value_or(LatencyHistogram{});
  h.merge(delta);
  txn.put_as(CollectorApp::kLatencyDict, key, h);
}

/// Folds "stats.latency" cells into the digest strategies consume; works
/// over both a live Txn and a raw StateStore.
struct LatencyFold {
  LatencyView out;
  LatencyHistogram queue;
  LatencyHistogram handler;

  void add(const std::string& key, const Bytes& value) {
    LatencyHistogram h = decode_from_bytes<LatencyHistogram>(value);
    if (key == "e2e") {
      out.e2e_count = h.count();
      out.e2e_p50 = h.p50();
      out.e2e_p99 = h.p99();
    } else if (key.starts_with("queue:")) {
      queue.merge(h);
    } else if (key.starts_with("handler:")) {
      handler.merge(h);
    }
  }
  LatencyView finish() {
    out.queue_p99 = queue.p99();
    out.handler_p99 = handler.p99();
    return out;
  }
};

}  // namespace

CollectorApp::CollectorApp(std::shared_ptr<PlacementStrategy> strategy,
                           std::size_t n_hives, CollectorConfig config)
    : App("platform.collector") {
  register_metrics_messages();
  MsgTypeRegistry::instance().ensure<BeeAgg>();
  MsgTypeRegistry::instance().ensure<HiveCells>();
  MsgTypeRegistry::instance().ensure<TransportAgg>();
  MsgTypeRegistry::instance().ensure<PlacementRound>();
  MsgTypeRegistry::instance().ensure<HivePressure>();
  const std::string bees(kBeesDict);
  const std::string hives(kHivesDict);

  // Aggregation: every hive's periodic report folds into the whole-dict
  // cells, centralizing the collector on one bee by construction.
  on<LocalMetricsReport>(
      [](const LocalMetricsReport&) { return collector_cells(); },
      [bees, hives](AppContext& ctx, const LocalMetricsReport& report) {
        ctx.state().put_as(hives, std::to_string(report.hive),
                           HiveCells{report.hive_cells});
        ctx.state().put_as(
            CollectorApp::kTransportDict, std::to_string(report.hive),
            TransportAgg{report.transport, report.migration_aborts,
                         report.partitions_active});
        ctx.state().put_as(CollectorApp::kPressureDict,
                           std::to_string(report.hive),
                           HivePressure{report.pressure, report.degraded});
        merge_hist(ctx.state(), "e2e", report.e2e_latency);
        for (const BeeMetricsSample& sample : report.bees) {
          BeeAgg agg = ctx.state()
                           .get_as<BeeAgg>(bees, bee_key(sample.bee))
                           .value_or(BeeAgg{});
          agg.bee = sample.bee;
          agg.app = sample.app;
          agg.hive = sample.hive;
          agg.pinned = sample.pinned;
          agg.cells = sample.cells;
          agg.msgs_in_window += sample.msgs_in;
          agg.handler_invocations += sample.handler_invocations;
          agg.handler_failures += sample.handler_failures;
          agg.cost_us_window += sample.cost_us;
          for (const BeeMetricsSample::SourceCount& src : sample.sources) {
            agg.add_inbound(src.from_hive, src.count);
          }
          ctx.state().put_as(bees, bee_key(sample.bee), agg);
          if (sample.msgs_in > 0 || sample.cost_us > 0) {
            // The traffic-matrix (or cost) row changed: mark the bee dirty
            // so the next incremental round re-scores it.
            ctx.state().put_as(CollectorApp::kDirtyDict,
                               bee_key(sample.bee), HiveCells{1});
          }

          // Cumulative provenance analytics (never windowed).
          const std::string app_prefix = std::to_string(sample.app) + ":";
          merge_hist(ctx.state(), "queue:" + std::to_string(sample.app),
                     sample.queue_latency);
          merge_hist(ctx.state(), "handler:" + std::to_string(sample.app),
                     sample.handler_latency);
          for (const BeeMetricsSample::TypeCount& t : sample.in_types) {
            bump_counter(ctx.state(), CollectorApp::kInTypesDict,
                         app_prefix + std::to_string(t.type), t.count);
          }
          for (const BeeMetricsSample::CausationCount& c :
               sample.causations) {
            bump_counter(ctx.state(), CollectorApp::kCausationDict,
                         app_prefix + std::to_string(c.in) + ":" +
                             std::to_string(c.out),
                         c.count);
          }
        }
      });

  // Optimization round: view -> strategy -> migration orders, then clear
  // the consumed window entries (they rebuild from the next reports).
  // Every Nth round is FULL: it sweeps the whole bee table (which also
  // ages out bees that merged away) and acts as the drift guard. The
  // rounds in between are INCREMENTAL: they iterate only the dirty marks
  // and point-look-up those aggregate rows, so round cost scales with the
  // active set, not the bee population. Both modes see identical window
  // data for every bee with traffic, so they pick the same moves — the
  // logged PlacementRound carries mode+scored to make that checkable.
  every(
      config.optimize_period,
      [](const MessageEnvelope&) { return collector_cells(); },
      [strategy, n_hives, bees,
       full_every = config.full_round_every](AppContext& ctx,
                                             const MessageEnvelope&) {
        const std::string dict(CollectorApp::kDecisionsDict);
        const std::string dirty_dict(CollectorApp::kDirtyDict);
        HiveCells tick =
            ctx.state().get_as<HiveCells>(dict, "tick").value_or(HiveCells{});
        const bool full = full_every <= 1 || tick.cells % full_every == 0;
        ctx.state().put_as(dict, "tick", HiveCells{tick.cells + 1});
        const auto wall_start = std::chrono::steady_clock::now();

        ClusterView view;
        view.n_hives = n_hives;
        view.mode = full ? RoundMode::kFull : RoundMode::kIncremental;
        ctx.state().for_each(
            std::string(kHivesDict),
            [&view](const std::string& key, const Bytes& value) {
              view.hive_cells[static_cast<HiveId>(std::stoul(key))] =
                  decode_from_bytes<HiveCells>(value).cells;
            });
        ctx.state().for_each(
            std::string(CollectorApp::kPressureDict),
            [&view](const std::string& key, const Bytes& value) {
              const HivePressure p = decode_from_bytes<HivePressure>(value);
              const auto hive = static_cast<HiveId>(std::stoul(key));
              view.hive_pressure[hive] = p.pressure;
              if (p.degraded) view.hive_degraded[hive] = true;
            });
        auto view_bee = [&view](BeeAgg agg, bool dirty) {
          BeeView bee;
          bee.bee = agg.bee;
          bee.app = agg.app;
          bee.hive = agg.hive;
          bee.pinned = agg.pinned;
          bee.dirty = dirty;
          bee.cells = agg.cells;
          bee.msgs_in = agg.msgs_in_window;
          bee.handler_invocations = agg.handler_invocations;
          bee.handler_failures = agg.handler_failures;
          bee.cost_us = agg.cost_us_window;
          for (const auto& [hive, count] : agg.inbound_by_hive) {
            bee.inbound_by_hive[hive] += count;
          }
          view.bees.push_back(std::move(bee));
        };
        std::vector<std::string> keys;        // consumed agg rows
        std::vector<std::string> dirty_keys;  // consumed dirty marks
        if (full) {
          ctx.state().for_each(
              bees,
              [&](const std::string& key, const Bytes& value) {
                BeeAgg agg = decode_from_bytes<BeeAgg>(value);
                const bool dirty =
                    agg.msgs_in_window > 0 || agg.cost_us_window > 0;
                view_bee(std::move(agg), dirty);
                keys.push_back(key);
              });
          ctx.state().for_each(dirty_dict,
                               [&dirty_keys](const std::string& key,
                                             const Bytes&) {
                                 dirty_keys.push_back(key);
                               });
        } else {
          ctx.state().for_each(
              dirty_dict, [&](const std::string& key, const Bytes&) {
                dirty_keys.push_back(key);
                auto agg = ctx.state().get_as<BeeAgg>(bees, key);
                if (!agg.has_value()) return;  // merged away mid-window
                view_bee(std::move(*agg), /*dirty=*/true);
                keys.push_back(key);
              });
        }
        LatencyFold fold;
        ctx.state().for_each(
            std::string(CollectorApp::kLatencyDict),
            [&fold](const std::string& key, const Bytes& value) {
              fold.add(key, value);
            });
        view.latency = fold.finish();

        std::vector<PlacementDecision> decision_log;
        std::vector<MigrationDecision> moves =
            strategy->decide_explained(view, &decision_log);
        // The measured latency covers view assembly + scoring — the part
        // incremental rounds shrink. It flows only into metrics (via
        // note_round), never into state, keeping replays deterministic.
        const auto wall_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        for (const MigrationDecision& d : moves) {
          ctx.order_migration(d.bee, d.to);
        }
        if (!decision_log.empty()) {
          // Persist the explained round (bounded history) and hand the
          // records to the hive for tracing/flight-recording.
          HiveCells next =
              ctx.state().get_as<HiveCells>(dict, "next").value_or(
                  HiveCells{});
          PlacementRound round;
          round.round = next.cells;
          round.at = ctx.now();
          round.strategy = std::string(strategy->name());
          round.mode = full ? "full" : "incremental";
          round.scored = view.bees.size();
          round.decisions = decision_log;
          ctx.state().put_as(dict, "r" + std::to_string(round.round), round);
          next.cells += 1;
          ctx.state().put_as(dict, "next", next);
          if (round.round >= CollectorApp::kDecisionRoundsKept) {
            ctx.state().erase(
                dict, "r" + std::to_string(
                          round.round - CollectorApp::kDecisionRoundsKept));
          }
          for (PlacementDecision& d : decision_log) {
            ctx.note_decision(std::move(d));
          }
        }
        ctx.note_round({full ? "full" : "incremental", view.bees.size(),
                        static_cast<std::uint64_t>(wall_us), moves.size()});
        for (const std::string& key : keys) {
          ctx.state().erase(bees, key);
        }
        for (const std::string& key : dirty_keys) {
          ctx.state().erase(dirty_dict, key);
        }
      });
}

std::vector<CollectorApp::CausationRow> CollectorApp::causation_from_store(
    const StateStore& store) {
  // First index the per-(app, input type) counts.
  std::map<std::pair<AppId, MsgTypeId>, std::uint64_t> inputs;
  if (const Dict* in_types = store.find_dict(kInTypesDict)) {
    in_types->for_each([&inputs](const std::string& key, const Bytes& v) {
      auto colon = key.find(':');
      AppId app = static_cast<AppId>(std::stoul(key.substr(0, colon)));
      auto type = static_cast<MsgTypeId>(std::stoul(key.substr(colon + 1)));
      inputs[{app, type}] = decode_from_bytes<HiveCells>(v).cells;
    });
  }

  std::vector<CausationRow> rows;
  if (const Dict* causation = store.find_dict(kCausationDict)) {
    causation->for_each([&rows, &inputs](const std::string& key,
                                         const Bytes& v) {
      auto c1 = key.find(':');
      auto c2 = key.find(':', c1 + 1);
      CausationRow row;
      row.app = static_cast<AppId>(std::stoul(key.substr(0, c1)));
      row.in =
          static_cast<MsgTypeId>(std::stoul(key.substr(c1 + 1, c2 - c1 - 1)));
      row.out = static_cast<MsgTypeId>(std::stoul(key.substr(c2 + 1)));
      row.emitted = decode_from_bytes<HiveCells>(v).cells;
      auto it = inputs.find({row.app, row.in});
      row.inputs = it == inputs.end() ? 0 : it->second;
      row.ratio = row.inputs == 0 ? 0.0
                                  : static_cast<double>(row.emitted) /
                                        static_cast<double>(row.inputs);
      rows.push_back(row);
    });
  }
  return rows;
}

std::vector<CollectorApp::TransportRow> CollectorApp::transport_from_store(
    const StateStore& store) {
  std::vector<TransportRow> rows;
  if (const Dict* d = store.find_dict(kTransportDict)) {
    d->for_each([&rows](const std::string& key, const Bytes& value) {
      TransportAgg agg = decode_from_bytes<TransportAgg>(value);
      rows.push_back({static_cast<HiveId>(std::stoul(key)), agg.transport,
                      agg.migration_aborts, agg.partitions_active});
    });
  }
  return rows;
}

std::vector<PlacementRound> CollectorApp::decisions_from_store(
    const StateStore& store) {
  std::vector<PlacementRound> rounds;
  if (const Dict* d = store.find_dict(kDecisionsDict)) {
    d->for_each([&rounds](const std::string& key, const Bytes& value) {
      if (key == "next" || key == "tick") return;
      rounds.push_back(decode_from_bytes<PlacementRound>(value));
    });
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const PlacementRound& a, const PlacementRound& b) {
              return a.round < b.round;
            });
  return rounds;
}

ClusterView CollectorApp::view_from_store(const StateStore& store,
                                          std::size_t n_hives) {
  ClusterView view;
  view.n_hives = n_hives;
  if (const Dict* hives = store.find_dict(kHivesDict)) {
    hives->for_each([&view](const std::string& key, const Bytes& value) {
      view.hive_cells[static_cast<HiveId>(std::stoul(key))] =
          decode_from_bytes<HiveCells>(value).cells;
    });
  }
  if (const Dict* bees = store.find_dict(kBeesDict)) {
    bees->for_each([&view](const std::string&, const Bytes& value) {
      BeeAgg agg = decode_from_bytes<BeeAgg>(value);
      BeeView bee;
      bee.bee = agg.bee;
      bee.app = agg.app;
      bee.hive = agg.hive;
      bee.pinned = agg.pinned;
      bee.cells = agg.cells;
      bee.msgs_in = agg.msgs_in_window;
      bee.handler_invocations = agg.handler_invocations;
      bee.handler_failures = agg.handler_failures;
      bee.cost_us = agg.cost_us_window;
      for (const auto& [hive, count] : agg.inbound_by_hive) {
        bee.inbound_by_hive[hive] += count;
      }
      view.bees.push_back(std::move(bee));
    });
  }
  if (const Dict* pressure = store.find_dict(kPressureDict)) {
    pressure->for_each([&view](const std::string& key, const Bytes& value) {
      const HivePressure p = decode_from_bytes<HivePressure>(value);
      const auto hive = static_cast<HiveId>(std::stoul(key));
      view.hive_pressure[hive] = p.pressure;
      if (p.degraded) view.hive_degraded[hive] = true;
    });
  }
  if (const Dict* latency = store.find_dict(kLatencyDict)) {
    LatencyFold fold;
    latency->for_each([&fold](const std::string& key, const Bytes& value) {
      fold.add(key, value);
    });
    view.latency = fold.finish();
  }
  return view;
}

}  // namespace beehive
