// Post-mortem flight recorder: a bounded ring of recent log lines per hive
// that can be dumped to disk when something goes wrong.
//
// Traces answer "what happened across the cluster"; the flight recorder
// answers the narrower operational question "what was *this hive* doing in
// the seconds before the crash / suspicion / hang" — without keeping logs
// at debug verbosity all the time. Lines are recorded pre-formatted, so a
// dump is readable with no tooling.
//
// Dump triggers:
//   - on demand (StatusApp, tests, examples call dump()),
//   - fault-detector suspicion (examples wire on_suspect to dump()),
//   - process crash: install_crash_handler() registers SIGSEGV/SIGABRT/
//     SIGFPE handlers that write the rings with async-signal-safe IO
//     before re-raising.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "instrument/trace.h"
#include "util/types.h"

namespace beehive {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultMaxHives = 64;

  /// `lines_per_hive` bounds each hive's ring; a ring's line storage is
  /// allocated lazily on the hive's first note(). `max_hives` bounds the
  /// number of rings — storage for the ring table is reserved up front so
  /// it never reallocates, which is what lets the crash handler walk it
  /// without locking. Notes from hives beyond the bound share the first
  /// ring rather than growing the table.
  explicit FlightRecorder(std::size_t lines_per_hive = 256,
                          std::size_t max_hives = kDefaultMaxHives)
      : lines_per_hive_(lines_per_hive == 0 ? 1 : lines_per_hive),
        max_hives_(max_hives == 0 ? 1 : max_hives) {
    rings_.reserve(max_hives_);
  }

  /// Appends one line to `hive`'s ring. O(1); the only allocation is the
  /// line string itself (already built by the caller) moving into the slot.
  void note(HiveId hive, std::string line);

  /// Tees the global Logger into this recorder *and* the previous sink
  /// behaviour (stderr). Lines written outside handler scope attribute to
  /// hive 0. Restore with Logger::set_sink({}).
  void tee_logger();

  /// Optional span source: when set, dumps append the most recent trace
  /// events (per hive) after the log lines. Bound by clusters to their
  /// recorders' events().
  using SpanSource = std::function<std::vector<TraceEvent>()>;
  void set_span_source(SpanSource source);

  /// Optional health source: when set, dump()/render() append its text
  /// (e.g. HealthReport::to_text()) after the log rings, so a post-mortem
  /// shows the cluster's last health picture next to what each hive was
  /// doing. Runs OUTSIDE the recorder mutex (a source that notes into the
  /// recorder must not deadlock) and never on the crash-signal path.
  using HealthSource = std::function<std::string()>;
  void set_health_source(HealthSource source);

  /// Optional trace source: when set, dump()/render() append its text
  /// (e.g. blame_summary_text() over the slowest assembled traces) after
  /// the health section, so a post-mortem names the tail-latency culprits
  /// alongside the last health picture. Same contract as the health
  /// source: runs OUTSIDE the recorder mutex, never on the crash path.
  using TraceSource = std::function<std::string()>;
  void set_trace_source(TraceSource source);

  /// Writes every hive's ring (oldest line first) to `path`, prefixed with
  /// `reason`. Returns false on IO error. Thread-safe.
  bool dump(const std::string& path, const std::string& reason) const;

  /// Renders the same content as a string (tests, /status endpoints).
  std::string render(const std::string& reason) const;

  /// Registers crash-signal handlers (SIGSEGV, SIGABRT, SIGFPE, SIGBUS)
  /// that write this recorder's rings to `path` and re-raise. Only one
  /// recorder can be the crash recorder per process; calling again
  /// rebinds. The handler writes with write(2) and reads the rings
  /// without locking — best-effort by design: a torn line in a crash dump
  /// beats a deadlock on a mutex the crashing thread may hold.
  void install_crash_handler(const std::string& path);

  std::size_t line_count(HiveId hive) const;

  /// Signal-handler path: writes the rings with open(2)/write(2), no
  /// locking, no allocation. Public only for the installed handler.
  void crash_dump_unsafe(const char* path, int sig) const;

 private:
  struct Ring {
    HiveId hive = 0;
    std::vector<std::string> lines;  // capacity-bounded circular buffer
    std::size_t head = 0;
    std::size_t size = 0;
  };

  Ring& ring_for_locked(HiveId hive);
  std::string render_locked(const std::string& reason) const;

  const std::size_t lines_per_hive_;
  const std::size_t max_hives_;
  mutable std::mutex mutex_;
  // Reserved to max_hives_ at construction and never grown past that, so
  // element addresses and the data pointer are stable for the lifetime of
  // the recorder — the crash handler depends on this.
  std::vector<Ring> rings_;
  // Count of fully initialized rings, published with release ordering so
  // crash_dump_unsafe (which cannot take mutex_) only ever reads rings
  // whose construction completed.
  std::atomic<std::size_t> ring_count_{0};
  SpanSource span_source_;
  HealthSource health_source_;
  TraceSource trace_source_;
};

}  // namespace beehive
