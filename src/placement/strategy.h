// Placement optimization strategies (paper §3, "On Optimal Placement").
//
// Optimal bee placement is NP-hard (facility location reduces to it), so
// the paper uses a greedy heuristic aiming to process messages close to
// their source: migrate bee B from H1 to H2 when the majority of B's
// messages come from bees on H2 and H2 has capacity. The strategy
// interface makes the heuristic pluggable — the paper notes "it is
// straightforward to implement other optimization strategies" — and the
// ablation bench compares greedy vs. none vs. random.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace beehive {

struct BeeView {
  BeeId bee = kNoBee;
  AppId app = 0;
  HiveId hive = 0;
  bool pinned = false;
  /// False when this bee's traffic-matrix row (messages, profiler cost)
  /// did not change since the last optimization round. Incremental rounds
  /// (ClusterView::mode) skip clean bees entirely: a clean bee has zero
  /// window traffic, so no strategy could have produced a move for it.
  bool dirty = true;
  std::uint64_t cells = 0;
  std::uint64_t msgs_in = 0;
  std::uint64_t handler_invocations = 0;
  std::uint64_t handler_failures = 0;
  /// Profiler-estimated handler CPU microseconds since the last round
  /// (instrument/profiler.h); 0 when the profiler is off, in which case
  /// cost-aware strategies fall back to message counts.
  std::uint64_t cost_us = 0;
  /// Messages received since the last optimization round, by source hive.
  std::map<HiveId, std::uint64_t> inbound_by_hive;
};

/// Cluster-wide latency digest (microseconds), aggregated by the collector
/// from every hive's report. Strategies can use it as a health signal —
/// e.g. refuse to churn placement while tail latency is already degraded.
struct LatencyView {
  std::uint64_t e2e_count = 0;
  std::uint64_t e2e_p50 = 0;
  std::uint64_t e2e_p99 = 0;
  std::uint64_t queue_p99 = 0;
  std::uint64_t handler_p99 = 0;
};

/// How an optimization round scores the view. A full round re-scores every
/// bee; an incremental round re-scores only the dirty set (bees whose
/// traffic-matrix rows changed since the last round). Because a clean bee
/// has no window traffic, both modes pick the same moves over the same
/// window data — periodic full rounds remain as the drift guard, and the
/// decision log records the mode so the equivalence is checkable.
enum class RoundMode { kFull, kIncremental };

/// Summary of one optimizer round, buffered through AppContext::note_round
/// so the hosting hive can export round latency without the wall-clock
/// measurement ever entering deterministic state.
struct PlacementRoundNote {
  std::string mode;  ///< "full" | "incremental"
  std::uint64_t scored = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t moves = 0;
};

struct ClusterView {
  std::size_t n_hives = 0;
  RoundMode mode = RoundMode::kFull;
  std::map<HiveId, std::uint64_t> hive_cells;
  /// Latest queue-pressure score per hive in [0,1) (LocalMetricsReport);
  /// absent hives read as 0 (unpressured).
  std::map<HiveId, double> hive_pressure;
  /// Hives currently in graceful degradation (advertising reduced credit;
  /// DESIGN.md §10). Absent hives read as healthy. Pressure-aware
  /// strategies treat a degraded hive as a hard migration veto.
  std::map<HiveId, bool> hive_degraded;
  std::vector<BeeView> bees;
  LatencyView latency;
};

struct MigrationDecision {
  BeeId bee = kNoBee;
  HiveId to = 0;

  bool operator==(const MigrationDecision&) const = default;
};

/// One explained optimizer decision: why a bee was (or was not) migrated.
/// Wire-encodable so the collector can store rounds in its
/// "stats.decisions" dictionary and ship them in status snapshots.
struct PlacementDecision {
  static constexpr std::string_view kTypeName = "stats.decision";

  BeeId bee = kNoBee;
  HiveId from = 0;
  HiveId to = 0;  ///< Candidate target (== from when no candidate existed).
  bool accepted = false;
  std::uint64_t msgs_total = 0;        ///< Bee's inbound total this window.
  std::uint64_t msgs_from_target = 0;  ///< Of which, from the candidate.
  double score = 0.0;  ///< Strategy-specific, e.g. source fraction.
  std::string reason;  ///< "majority", "no_majority", "capacity", ...
  /// Which measurement ranked this bee: "cost" (profiler CPU estimate) or
  /// "msgs" (message-count fallback). Empty for strategies that predate
  /// the cost profiler.
  std::string signal;
  /// The bee's measured handler CPU microseconds this window (0 when the
  /// profiler is off or the strategy ranked by messages).
  std::uint64_t cost_us = 0;
  /// Queue-pressure scores of the source and candidate target hives at
  /// decision time.
  double pressure_from = 0.0;
  double pressure_to = 0.0;
  /// The traffic-matrix slice that drove the decision: this bee's inbound
  /// counts by source hive.
  std::vector<std::pair<HiveId, std::uint64_t>> inbound;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(from);
    w.u32(to);
    w.boolean(accepted);
    w.varint(msgs_total);
    w.varint(msgs_from_target);
    w.f64(score);
    w.str(reason);
    w.str(signal);
    w.varint(cost_us);
    w.f64(pressure_from);
    w.f64(pressure_to);
    w.varint(inbound.size());
    for (const auto& [hive, count] : inbound) {
      w.u32(hive);
      w.varint(count);
    }
  }
  static PlacementDecision decode(ByteReader& r) {
    PlacementDecision d;
    d.bee = r.u64();
    d.from = r.u32();
    d.to = r.u32();
    d.accepted = r.boolean();
    d.msgs_total = r.varint();
    d.msgs_from_target = r.varint();
    d.score = r.f64();
    d.reason = r.str();
    d.signal = r.str();
    d.cost_us = r.varint();
    d.pressure_from = r.f64();
    d.pressure_to = r.f64();
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      HiveId hive = r.u32();
      d.inbound.emplace_back(hive, r.varint());
    }
    return d;
  }
};

/// One optimization round's worth of explained decisions — the value of
/// one "stats.decisions" cell.
struct PlacementRound {
  static constexpr std::string_view kTypeName = "stats.decision_round";

  std::uint64_t round = 0;
  TimePoint at = 0;
  std::string strategy;
  /// "full" | "incremental": whether this round re-scored every bee or
  /// only the dirty set. Lets tests/benches verify incremental rounds
  /// pick the same moves as the periodic full rounds.
  std::string mode = "full";
  /// How many bees this round actually scored (the view size it saw).
  std::uint64_t scored = 0;
  std::vector<PlacementDecision> decisions;

  void encode(ByteWriter& w) const {
    w.varint(round);
    w.i64(at);
    w.str(strategy);
    w.str(mode);
    w.varint(scored);
    w.varint(decisions.size());
    for (const PlacementDecision& d : decisions) d.encode(w);
  }
  static PlacementRound decode(ByteReader& r) {
    PlacementRound p;
    p.round = r.varint();
    p.at = r.i64();
    p.strategy = r.str();
    p.mode = r.str();
    p.scored = r.varint();
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      p.decisions.push_back(PlacementDecision::decode(r));
    }
    return p;
  }
};

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual std::vector<MigrationDecision> decide(const ClusterView& view) = 0;

  /// Like decide(), but also appends one PlacementDecision per considered
  /// candidate to `log` (when non-null) explaining why it was accepted or
  /// rejected. The base implementation delegates to decide() and records
  /// the accepted moves only; strategies that evaluate candidates override
  /// it to expose their full reasoning.
  virtual std::vector<MigrationDecision> decide_explained(
      const ClusterView& view, std::vector<PlacementDecision>* log);
};

/// The paper's heuristic: follow the message sources.
struct GreedyConfig {
  /// Required share of a bee's inbound messages from the candidate hive.
  double majority_fraction = 0.5;
  /// Ignore bees with fewer inbound messages than this (noise floor).
  std::uint64_t min_messages = 8;
  /// Per-hive cell capacity; moves that would exceed it are skipped.
  std::uint64_t hive_cell_capacity = UINT64_MAX;
};

class GreedyFollowSources final : public PlacementStrategy {
 public:
  explicit GreedyFollowSources(GreedyConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "greedy"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;
  std::vector<MigrationDecision> decide_explained(
      const ClusterView& view, std::vector<PlacementDecision>* log) override;

 private:
  GreedyConfig config_;
};

/// Closes the instrumentation loop (DESIGN.md §9): ranks candidate moves
/// by *measured* handler cost x source-hive queue pressure instead of raw
/// message counts. Each bee's weight is its profiler CPU estimate when one
/// exists (signal "cost"), falling back to its message count when the
/// profiler is off (signal "msgs"); weights are scaled by (1 + pressure of
/// the bee's hive) so pressured hives shed work first. Targets follow the
/// paper's majority-source rule, with one extra veto: never move onto a
/// hive meaningfully more pressured than the source.
struct CostPressureConfig {
  /// Required share of a bee's inbound messages from the candidate hive.
  double majority_fraction = 0.5;
  /// Ignore bees with fewer inbound messages than this (noise floor).
  std::uint64_t min_messages = 8;
  /// Per-hive cell capacity; moves that would exceed it are skipped.
  std::uint64_t hive_cell_capacity = UINT64_MAX;
  /// Reject a move whose target's pressure exceeds the source's by more
  /// than this slack ("pressure_inverted").
  double pressure_slack = 0.25;
  /// Safety valve: at most this many moves per round.
  std::size_t max_moves = 64;
};

class CostPressureStrategy final : public PlacementStrategy {
 public:
  explicit CostPressureStrategy(CostPressureConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "costpressure"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;
  std::vector<MigrationDecision> decide_explained(
      const ClusterView& view, std::vector<PlacementDecision>* log) override;

 private:
  CostPressureConfig config_;
};

/// Never migrates (the "no optimization" baseline).
class NoopStrategy final : public PlacementStrategy {
 public:
  std::string_view name() const override { return "noop"; }
  std::vector<MigrationDecision> decide(const ClusterView&) override {
    return {};
  }
};

/// A "smarter optimization strategy" (paper §7 future work): balances
/// message-processing load across hives. Hives whose bees process more
/// than `overload_factor` x the cluster mean shed their busiest movable
/// bees to the least-loaded hives; among equally-loaded targets, a hive
/// that is also a message source for the bee is preferred, so balancing
/// degrades locality as little as possible.
struct LoadBalanceConfig {
  double overload_factor = 1.25;
  std::uint64_t min_messages = 8;
  std::uint64_t hive_cell_capacity = UINT64_MAX;
  /// Safety valve: at most this many moves per round.
  std::size_t max_moves = 64;
};

class LoadBalanceStrategy final : public PlacementStrategy {
 public:
  explicit LoadBalanceStrategy(LoadBalanceConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "loadbalance"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;

 private:
  LoadBalanceConfig config_;
};

/// Moves a random eligible bee to a random hive each round — the sanity
/// baseline showing that migration alone (without following sources) does
/// not localize traffic.
class RandomStrategy final : public PlacementStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed, double move_fraction = 0.1)
      : rng_(seed), move_fraction_(move_fraction) {}

  std::string_view name() const override { return "random"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;

 private:
  Xoshiro256 rng_;
  double move_fraction_;
};

}  // namespace beehive
