// Placement optimization strategies (paper §3, "On Optimal Placement").
//
// Optimal bee placement is NP-hard (facility location reduces to it), so
// the paper uses a greedy heuristic aiming to process messages close to
// their source: migrate bee B from H1 to H2 when the majority of B's
// messages come from bees on H2 and H2 has capacity. The strategy
// interface makes the heuristic pluggable — the paper notes "it is
// straightforward to implement other optimization strategies" — and the
// ablation bench compares greedy vs. none vs. random.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace beehive {

struct BeeView {
  BeeId bee = kNoBee;
  AppId app = 0;
  HiveId hive = 0;
  bool pinned = false;
  std::uint64_t cells = 0;
  std::uint64_t msgs_in = 0;
  std::uint64_t handler_invocations = 0;
  std::uint64_t handler_failures = 0;
  /// Messages received since the last optimization round, by source hive.
  std::map<HiveId, std::uint64_t> inbound_by_hive;
};

/// Cluster-wide latency digest (microseconds), aggregated by the collector
/// from every hive's report. Strategies can use it as a health signal —
/// e.g. refuse to churn placement while tail latency is already degraded.
struct LatencyView {
  std::uint64_t e2e_count = 0;
  std::uint64_t e2e_p50 = 0;
  std::uint64_t e2e_p99 = 0;
  std::uint64_t queue_p99 = 0;
  std::uint64_t handler_p99 = 0;
};

struct ClusterView {
  std::size_t n_hives = 0;
  std::map<HiveId, std::uint64_t> hive_cells;
  std::vector<BeeView> bees;
  LatencyView latency;
};

struct MigrationDecision {
  BeeId bee = kNoBee;
  HiveId to = 0;

  bool operator==(const MigrationDecision&) const = default;
};

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual std::vector<MigrationDecision> decide(const ClusterView& view) = 0;
};

/// The paper's heuristic: follow the message sources.
struct GreedyConfig {
  /// Required share of a bee's inbound messages from the candidate hive.
  double majority_fraction = 0.5;
  /// Ignore bees with fewer inbound messages than this (noise floor).
  std::uint64_t min_messages = 8;
  /// Per-hive cell capacity; moves that would exceed it are skipped.
  std::uint64_t hive_cell_capacity = UINT64_MAX;
};

class GreedyFollowSources final : public PlacementStrategy {
 public:
  explicit GreedyFollowSources(GreedyConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "greedy"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;

 private:
  GreedyConfig config_;
};

/// Never migrates (the "no optimization" baseline).
class NoopStrategy final : public PlacementStrategy {
 public:
  std::string_view name() const override { return "noop"; }
  std::vector<MigrationDecision> decide(const ClusterView&) override {
    return {};
  }
};

/// A "smarter optimization strategy" (paper §7 future work): balances
/// message-processing load across hives. Hives whose bees process more
/// than `overload_factor` x the cluster mean shed their busiest movable
/// bees to the least-loaded hives; among equally-loaded targets, a hive
/// that is also a message source for the bee is preferred, so balancing
/// degrades locality as little as possible.
struct LoadBalanceConfig {
  double overload_factor = 1.25;
  std::uint64_t min_messages = 8;
  std::uint64_t hive_cell_capacity = UINT64_MAX;
  /// Safety valve: at most this many moves per round.
  std::size_t max_moves = 64;
};

class LoadBalanceStrategy final : public PlacementStrategy {
 public:
  explicit LoadBalanceStrategy(LoadBalanceConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "loadbalance"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;

 private:
  LoadBalanceConfig config_;
};

/// Moves a random eligible bee to a random hive each round — the sanity
/// baseline showing that migration alone (without following sources) does
/// not localize traffic.
class RandomStrategy final : public PlacementStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed, double move_fraction = 0.1)
      : rng_(seed), move_fraction_(move_fraction) {}

  std::string_view name() const override { return "random"; }
  std::vector<MigrationDecision> decide(const ClusterView& view) override;

 private:
  Xoshiro256 rng_;
  double move_fraction_;
};

}  // namespace beehive
