#include "placement/strategy.h"

#include <algorithm>

namespace beehive {

std::vector<MigrationDecision> PlacementStrategy::decide_explained(
    const ClusterView& view, std::vector<PlacementDecision>* log) {
  std::vector<MigrationDecision> decisions = decide(view);
  if (log != nullptr) {
    for (const MigrationDecision& d : decisions) {
      PlacementDecision rec;
      rec.bee = d.bee;
      rec.to = d.to;
      rec.accepted = true;
      rec.reason = std::string(name());
      for (const BeeView& bee : view.bees) {
        if (bee.bee != d.bee) continue;
        rec.from = bee.hive;
        rec.msgs_total = bee.msgs_in;
        rec.inbound.assign(bee.inbound_by_hive.begin(),
                           bee.inbound_by_hive.end());
        if (auto it = bee.inbound_by_hive.find(d.to);
            it != bee.inbound_by_hive.end()) {
          rec.msgs_from_target = it->second;
        }
        break;
      }
      log->push_back(std::move(rec));
    }
  }
  return decisions;
}

std::vector<MigrationDecision> GreedyFollowSources::decide(
    const ClusterView& view) {
  return decide_explained(view, nullptr);
}

std::vector<MigrationDecision> GreedyFollowSources::decide_explained(
    const ClusterView& view, std::vector<PlacementDecision>* log) {
  std::vector<MigrationDecision> decisions;
  // Tentative occupancy so one round's decisions respect capacity jointly.
  std::map<HiveId, std::uint64_t> occupancy = view.hive_cells;

  for (const BeeView& bee : view.bees) {
    if (bee.pinned) continue;
    // Incremental rounds re-score only the dirty set. A clean bee has no
    // window traffic (msgs_in == 0 ⇒ total == 0), so the full round would
    // have skipped it below anyway — same moves, less scoring.
    if (view.mode == RoundMode::kIncremental && !bee.dirty) continue;
    if (bee.msgs_in < config_.min_messages) continue;

    std::uint64_t total = 0;
    HiveId best_hive = bee.hive;
    std::uint64_t best_count = 0;
    for (const auto& [hive, count] : bee.inbound_by_hive) {
      total += count;
      if (count > best_count) {
        best_count = count;
        best_hive = hive;
      }
    }
    if (total == 0) continue;

    // The explained record: every bee that cleared the noise floor and
    // had traffic gets one, accepted or not.
    PlacementDecision rec;
    rec.bee = bee.bee;
    rec.from = bee.hive;
    rec.to = best_hive;
    rec.msgs_total = total;
    rec.msgs_from_target = best_count;
    rec.score = static_cast<double>(best_count) / static_cast<double>(total);
    rec.inbound.assign(bee.inbound_by_hive.begin(),
                       bee.inbound_by_hive.end());
    auto reject = [&](const char* why) {
      if (log != nullptr) {
        rec.reason = why;
        log->push_back(std::move(rec));
      }
    };

    if (best_hive == bee.hive) {
      reject("local_majority");
      continue;
    }
    if (static_cast<double>(best_count) <
        config_.majority_fraction * static_cast<double>(total)) {
      reject("no_majority");
      continue;
    }
    if (occupancy[best_hive] + bee.cells > config_.hive_cell_capacity) {
      reject("capacity");  // H2 lacks capacity (paper's constraint).
      continue;
    }
    occupancy[best_hive] += bee.cells;
    if (occupancy[bee.hive] >= bee.cells) occupancy[bee.hive] -= bee.cells;
    decisions.push_back({bee.bee, best_hive});
    if (log != nullptr) {
      rec.accepted = true;
      rec.reason = "majority";
      log->push_back(std::move(rec));
    }
  }
  return decisions;
}

std::vector<MigrationDecision> CostPressureStrategy::decide(
    const ClusterView& view) {
  return decide_explained(view, nullptr);
}

std::vector<MigrationDecision> CostPressureStrategy::decide_explained(
    const ClusterView& view, std::vector<PlacementDecision>* log) {
  std::vector<MigrationDecision> decisions;
  std::map<HiveId, std::uint64_t> occupancy = view.hive_cells;
  const auto pressure_of = [&](HiveId h) {
    auto it = view.hive_pressure.find(h);
    return it == view.hive_pressure.end() ? 0.0 : it->second;
  };

  // Rank every movable bee by measured weight x (1 + source pressure):
  // the costliest bees on the most pressured hives are considered first,
  // so the per-round move cap spends itself where it relieves most.
  struct Candidate {
    const BeeView* bee;
    const char* signal;
    double rank;
  };
  std::vector<Candidate> candidates;
  for (const BeeView& bee : view.bees) {
    if (bee.pinned) continue;
    // Clean bees carry neither messages nor cost this window: their rank
    // would be 0 and their total 0, so skipping them in incremental mode
    // changes nothing but the scoring work.
    if (view.mode == RoundMode::kIncremental && !bee.dirty) continue;
    if (bee.msgs_in < config_.min_messages) continue;
    const bool measured = bee.cost_us > 0;
    const std::uint64_t weight = measured ? bee.cost_us : bee.msgs_in;
    candidates.push_back(
        {&bee, measured ? "cost" : "msgs",
         static_cast<double>(weight) * (1.0 + pressure_of(bee.hive))});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.bee->bee < b.bee->bee;
            });

  for (const Candidate& c : candidates) {
    if (decisions.size() >= config_.max_moves) break;
    const BeeView& bee = *c.bee;

    // Target selection is still the paper's majority-source rule — cost
    // and pressure decide *which* bees move and *whether* the move is
    // worth it, locality decides *where to*.
    std::uint64_t total = 0;
    HiveId best_hive = bee.hive;
    std::uint64_t best_count = 0;
    for (const auto& [hive, count] : bee.inbound_by_hive) {
      total += count;
      if (count > best_count) {
        best_count = count;
        best_hive = hive;
      }
    }
    if (total == 0) continue;

    PlacementDecision rec;
    rec.bee = bee.bee;
    rec.from = bee.hive;
    rec.to = best_hive;
    rec.msgs_total = total;
    rec.msgs_from_target = best_count;
    rec.score = c.rank;
    rec.signal = c.signal;
    rec.cost_us = bee.cost_us;
    rec.pressure_from = pressure_of(bee.hive);
    rec.pressure_to = pressure_of(best_hive);
    rec.inbound.assign(bee.inbound_by_hive.begin(),
                       bee.inbound_by_hive.end());
    auto reject = [&](const char* why) {
      if (log != nullptr) {
        rec.reason = why;
        log->push_back(std::move(rec));
      }
    };

    if (best_hive == bee.hive) {
      reject("local_majority");
      continue;
    }
    if (static_cast<double>(best_count) <
        config_.majority_fraction * static_cast<double>(total)) {
      reject("no_majority");
      continue;
    }
    if (occupancy[best_hive] + bee.cells > config_.hive_cell_capacity) {
      reject("capacity");
      continue;
    }
    if (auto it = view.hive_degraded.find(best_hive);
        it != view.hive_degraded.end() && it->second) {
      // Hard veto (DESIGN.md §10): a degraded hive is advertising reduced
      // credit to shed load — migrating more work onto it would defeat the
      // overload control no matter how good the locality looks.
      reject("degraded_target");
      continue;
    }
    if (rec.pressure_to > rec.pressure_from + config_.pressure_slack) {
      // Moving onto a hive already drowning would trade locality for a
      // longer queue — the one trade this strategy exists to refuse.
      reject("pressure_inverted");
      continue;
    }
    occupancy[best_hive] += bee.cells;
    if (occupancy[bee.hive] >= bee.cells) occupancy[bee.hive] -= bee.cells;
    decisions.push_back({bee.bee, best_hive});
    if (log != nullptr) {
      rec.accepted = true;
      rec.reason = "majority";
      log->push_back(std::move(rec));
    }
  }
  return decisions;
}

std::vector<MigrationDecision> LoadBalanceStrategy::decide(
    const ClusterView& view) {
  std::vector<MigrationDecision> decisions;
  if (view.n_hives < 2 || view.bees.empty()) return decisions;

  // Current per-hive load (messages processed this window) and occupancy.
  std::map<HiveId, std::uint64_t> load;
  std::map<HiveId, std::uint64_t> occupancy = view.hive_cells;
  for (HiveId h = 0; h < view.n_hives; ++h) load[h];  // ensure all present
  for (const BeeView& bee : view.bees) load[bee.hive] += bee.msgs_in;

  std::uint64_t total = 0;
  for (const auto& [_, l] : load) total += l;
  const double mean =
      static_cast<double>(total) / static_cast<double>(view.n_hives);
  if (mean <= 0.0) return decisions;
  const double threshold = config_.overload_factor * mean;

  // Busiest movable bees first: moving them rebalances fastest.
  std::vector<const BeeView*> candidates;
  for (const BeeView& bee : view.bees) {
    if (bee.pinned) continue;
    if (view.mode == RoundMode::kIncremental && !bee.dirty) continue;
    // A zero-traffic bee can never improve the imbalance — moving it is
    // pure churn (and would make incremental rounds diverge from full
    // ones when min_messages is 0).
    if (bee.msgs_in == 0) continue;
    if (bee.msgs_in >= config_.min_messages) candidates.push_back(&bee);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const BeeView* a, const BeeView* b) {
              if (a->msgs_in != b->msgs_in) return a->msgs_in > b->msgs_in;
              return a->bee < b->bee;
            });

  for (const BeeView* bee : candidates) {
    if (decisions.size() >= config_.max_moves) break;
    if (static_cast<double>(load[bee->hive]) <= threshold) continue;
    // Least-loaded target with room; prefer a source hive on ties.
    HiveId best = bee->hive;
    for (HiveId h = 0; h < view.n_hives; ++h) {
      if (h == bee->hive) continue;
      if (occupancy[h] + bee->cells > config_.hive_cell_capacity) continue;
      if (best == bee->hive || load[h] < load[best] ||
          (load[h] == load[best] &&
           bee->inbound_by_hive.contains(h) &&
           !bee->inbound_by_hive.contains(best))) {
        best = h;
      }
    }
    if (best == bee->hive) continue;
    // Only move if it actually improves the imbalance.
    if (load[best] + bee->msgs_in >= load[bee->hive]) continue;
    load[bee->hive] -= bee->msgs_in;
    load[best] += bee->msgs_in;
    occupancy[best] += bee->cells;
    if (occupancy[bee->hive] >= bee->cells) occupancy[bee->hive] -= bee->cells;
    decisions.push_back({bee->bee, best});
  }
  return decisions;
}

std::vector<MigrationDecision> RandomStrategy::decide(
    const ClusterView& view) {
  std::vector<MigrationDecision> decisions;
  if (view.n_hives < 2) return decisions;
  for (const BeeView& bee : view.bees) {
    if (bee.pinned) continue;
    if (rng_.next_double() >= move_fraction_) continue;
    auto to = static_cast<HiveId>(rng_.next_below(view.n_hives));
    if (to == bee.hive) continue;
    decisions.push_back({bee.bee, to});
  }
  return decisions;
}

}  // namespace beehive
