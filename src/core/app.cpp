#include "core/app.h"

#include <stdexcept>

namespace beehive {

App& AppSet::add(std::unique_ptr<App> app) {
  for (const auto& existing : apps_) {
    if (existing->id() == app->id()) {
      throw std::invalid_argument("duplicate app name/id: " + app->name());
    }
  }
  apps_.push_back(std::move(app));
  return *apps_.back();
}

App* AppSet::find(AppId id) const {
  for (const auto& app : apps_) {
    if (app->id() == id) return app.get();
  }
  return nullptr;
}

App* AppSet::find_by_name(std::string_view name) const {
  for (const auto& app : apps_) {
    if (app->name() == name) return app.get();
  }
  return nullptr;
}

std::vector<std::pair<App*, const HandlerBinding*>> AppSet::subscribers(
    MsgTypeId type) const {
  std::vector<std::pair<App*, const HandlerBinding*>> out;
  for (const auto& app : apps_) {
    if (const HandlerBinding* b = app->binding_for(type)) {
      out.emplace_back(app.get(), b);
    }
  }
  return out;
}

}  // namespace beehive
