// A bee: the exclusive thread of execution for a set of collocated cells
// (paper §3, "Bees").
//
// The Bee object itself is passive data — its mailbox, state store and
// metrics. Execution discipline (exactly one handler at a time per bee) is
// provided by the owning hive: the simulated runtime is sequential per
// hive, and the threaded runtime runs each hive's dispatch loop on a single
// thread, so a bee can never process two messages concurrently.
#pragma once

#include <deque>
#include <memory>
#include <utility>

#include "core/overload.h"
#include "instrument/metrics.h"
#include "msg/message.h"
#include "state/cell.h"
#include "state/store.h"
#include "util/types.h"

namespace beehive {

class Bee {
 public:
  Bee(BeeId id, AppId app) : id_(id), app_(app) {}

  Bee(const Bee&) = delete;
  Bee& operator=(const Bee&) = delete;

  BeeId id() const { return id_; }
  AppId app() const { return app_; }

  StateStore& store() { return store_; }
  const StateStore& store() const { return store_; }

  // -- Transfer fence & holdback ---------------------------------------------
  // A bee is blocked while it waits for state to arrive: either its own
  // migration is in flight, or merge transfers decided in the registry have
  // not landed yet. Every routed message carries the registry's
  // transfers_expected count observed at resolve time; the bee holds
  // messages until its applied-transfer counter catches up, then drains the
  // holdback in arrival order — preserving per-bee processing order across
  // merges and migrations (invariant #4 in DESIGN.md).

  bool blocked() const {
    return migrating_ || transfers_applied_ < transfers_required_;
  }

  /// Raises the fence: this bee must not process further messages until it
  /// has applied at least `min_transfers` state transfers.
  void note_required_transfers(std::uint64_t min_transfers) {
    if (min_transfers > transfers_required_) {
      transfers_required_ = min_transfers;
    }
  }

  /// Records applied state transfers. A merge payload counts as one plus
  /// the loser's own applied count (already folded into its snapshot).
  void note_transfers_applied(std::uint64_t n = 1) {
    transfers_applied_ += n;
  }

  std::uint64_t transfers_applied() const { return transfers_applied_; }
  std::uint64_t transfers_required() const { return transfers_required_; }

  /// Restores fence counters after a whole-bee migration.
  void restore_transfer_counters(std::uint64_t applied,
                                 std::uint64_t required) {
    transfers_applied_ = applied;
    transfers_required_ = required;
  }

  void hold(MessageEnvelope env) { holdback_.push_back(std::move(env)); }
  std::deque<MessageEnvelope> take_holdback() {
    return std::exchange(holdback_, {});
  }
  std::size_t holdback_size() const { return holdback_.size(); }

  // -- Bounded mailbox (DESIGN.md §10) --------------------------------------
  // The holdback is the bee's mailbox; the owning app's OverloadConfig
  // bounds it. The bound is only consulted on the hold path (a fenced or
  // backlogged bee), never on the dispatch fast path.

  /// The owning app's mailbox bound; null = unbounded (set by the hive at
  /// bee creation — the config lives on the shared, immutable App).
  const OverloadConfig* overload() const { return overload_; }
  void set_overload(const OverloadConfig* config) { overload_ = config; }

  enum class HoldOutcome : std::uint8_t {
    kHeld,     ///< message queued (possibly over-limit under kBlockSender)
    kShedNew,  ///< the incoming message was dropped
    kShedOld,  ///< an older held message was dropped to admit this one
  };

  /// Holds `env` subject to the mailbox bound `oc` (which the caller has
  /// already found exceeded). `is_priority(MsgTypeId)` classifies messages
  /// that must never be shed; the caller accounts for sheds.
  template <typename PriorityFn>
  HoldOutcome hold_bounded(MessageEnvelope env, const OverloadConfig& oc,
                           PriorityFn&& is_priority) {
    // Priority traffic always lands, whatever the policy: the priority
    // lane is retained unconditionally, mirroring the run queues' split.
    if (is_priority(env.type())) {
      hold(std::move(env));
      return HoldOutcome::kHeld;
    }
    switch (oc.policy) {
      case OverloadPolicy::kBlockSender:
        // Never shed; the hive raises its saturation flag instead and
        // upstream admission control stops the producer.
        hold(std::move(env));
        return HoldOutcome::kHeld;
      case OverloadPolicy::kShedNewest:
      case OverloadPolicy::kPriorityLanes:
        return HoldOutcome::kShedNew;
      case OverloadPolicy::kShedOldest:
        for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
          if (!is_priority(it->type())) {
            holdback_.erase(it);
            hold(std::move(env));
            return HoldOutcome::kShedOld;
          }
        }
        // Everything held is priority: shed the (non-priority) newcomer.
        return HoldOutcome::kShedNew;
    }
    return HoldOutcome::kShedNew;
  }

  bool migrating() const { return migrating_; }
  HiveId migration_target() const { return migration_target_; }
  void begin_migration(HiveId target) {
    migrating_ = true;
    migration_target_ = target;
  }
  /// Unfreezes a bee whose outbound migration timed out: it stays live at
  /// its origin (the caller drains the holdback afterwards).
  void abort_migration() {
    migrating_ = false;
    migration_target_ = 0;
  }

  // -- Instrumentation ------------------------------------------------------
  // `window` is the delta since the last metrics report (reset on report);
  // `total` accumulates for the bee's lifetime (tests, analytics).

  BeeMetrics& window() { return window_; }
  BeeMetrics& total() { return total_; }
  const BeeMetrics& window() const { return window_; }
  const BeeMetrics& total() const { return total_; }

  /// `count_provenance` is false for platform-generated inputs (timer
  /// ticks): they count as load but not as inter-bee traffic, so they never
  /// skew the optimizer's "where do my messages come from" statistics.
  ///
  /// Steady-state traffic is overwhelmingly "same source, same type, again",
  /// so the per-source/per-type counter slots are memoized: a repeat of the
  /// previous (from, hive, type) combination bumps cached counters directly
  /// instead of re-running six associative lookups per message. Map and
  /// unordered_map element addresses are stable under insertion, so the
  /// cached pointers stay valid until reset_window() replaces the maps
  /// (which invalidates the memo).
  void note_receive(BeeId from, HiveId from_hive, std::size_t bytes,
                    bool count_provenance = true, MsgTypeId type = 0) {
    window_.msgs_in += 1;
    window_.bytes_in += bytes;
    total_.msgs_in += 1;
    total_.bytes_in += bytes;
    if (memo_.valid && memo_.from == from && memo_.from_hive == from_hive &&
        memo_.type == type && memo_.provenance == count_provenance) {
      ++*memo_.w_from;
      ++*memo_.t_from;
      if (memo_.w_type != nullptr) {
        ++*memo_.w_type;
        ++*memo_.t_type;
      }
      if (memo_.w_hive != nullptr) {
        ++*memo_.w_hive;
        ++*memo_.t_hive;
      }
      return;
    }
    memo_.from = from;
    memo_.from_hive = from_hive;
    memo_.type = type;
    memo_.provenance = count_provenance;
    memo_.w_from = &++window_.inbound_from[from];
    memo_.t_from = &++total_.inbound_from[from];
    memo_.w_type = nullptr;
    memo_.t_type = nullptr;
    memo_.w_hive = nullptr;
    memo_.t_hive = nullptr;
    if (type != 0) {
      memo_.w_type = &++window_.inbound_types[type];
      memo_.t_type = &++total_.inbound_types[type];
    }
    if (count_provenance) {
      memo_.w_hive = &++window_.inbound_hive[{from, from_hive}];
      memo_.t_hive = &++total_.inbound_hive[{from, from_hive}];
    }
    memo_.valid = true;
  }

  void note_emit(MsgTypeId in_reply_to, MsgTypeId emitted, std::size_t bytes) {
    window_.on_emit(in_reply_to, emitted, bytes);
    total_.on_emit(in_reply_to, emitted, bytes);
  }

  /// Records one handler run's latency pair: `queued` = emission to
  /// handler-start, `ran` = handler-start to handler-end.
  void note_latency(Duration queued, Duration ran) {
    window_.queue_latency.record(queued);
    total_.queue_latency.record(queued);
    window_.handler_latency.record(ran);
    total_.handler_latency.record(ran);
  }

  /// note_latency() with bucket indices precomputed by the hive, which
  /// records the same two values into its own totals — four histograms, two
  /// index computations per message instead of six.
  void note_latency_at(std::uint32_t qidx, std::uint64_t queued,
                       std::uint32_t ridx, std::uint64_t ran) {
    window_.queue_latency.record_at(qidx, queued);
    total_.queue_latency.record_at(qidx, queued);
    window_.handler_latency.record_at(ridx, ran);
    total_.handler_latency.record_at(ridx, ran);
  }

  /// Charges one sampled handler run's thread-CPU nanoseconds (profiler;
  /// see instrument/profiler.h for the sampling discipline).
  void note_cost(std::uint64_t sampled_ns) {
    window_.cost_ns_sampled += sampled_ns;
    window_.cost_samples += 1;
    total_.cost_ns_sampled += sampled_ns;
    total_.cost_samples += 1;
  }

  /// Counts one transaction's committed write records.
  void note_txn_ops(std::uint64_t n) {
    window_.txn_ops += n;
    total_.txn_ops += n;
  }

  void reset_window() {
    window_ = BeeMetrics{};
    memo_.valid = false;  // the cached window_ slots were just destroyed
  }

 private:
  /// Cached counter slots for the last (from, hive, type) combination seen
  /// by note_receive. See that method for the validity argument.
  struct ReceiveMemo {
    BeeId from = kNoBee;
    HiveId from_hive = 0;
    MsgTypeId type = 0;
    bool provenance = false;
    bool valid = false;
    std::uint64_t* w_from = nullptr;
    std::uint64_t* t_from = nullptr;
    std::uint64_t* w_type = nullptr;
    std::uint64_t* t_type = nullptr;
    std::uint64_t* w_hive = nullptr;
    std::uint64_t* t_hive = nullptr;
  };
  ReceiveMemo memo_;

  BeeId id_;
  AppId app_;
  const OverloadConfig* overload_ = nullptr;
  StateStore store_;
  std::uint64_t transfers_applied_ = 0;
  std::uint64_t transfers_required_ = 0;
  bool migrating_ = false;
  HiveId migration_target_ = 0;
  std::deque<MessageEnvelope> holdback_;
  BeeMetrics window_;
  BeeMetrics total_;
};

}  // namespace beehive
