// Reliable at-least-once frame transport between hives.
//
// The cluster runtimes model a lossy channel (cluster/faults.h): frames
// can be dropped, duplicated, delayed or reordered, and links can be
// partitioned outright. This sublayer sits between Hive::send_frame /
// Hive::on_wire and the raw channel and restores the delivery contract the
// platform protocols were written against — effectively-once, per-pair
// FIFO — as long as the fault is transient:
//
//   * every data frame to a peer carries a per-(src,dst) sequence number
//     and is buffered until cumulatively acked;
//   * acks are cumulative, piggybacked on every reverse data frame and
//     otherwise sent as delayed standalone ack frames;
//   * unacked frames are retransmitted on a per-peer timer with
//     exponential backoff, up to a round cap — past it the frames are
//     abandoned (the link is treated as dead; higher layers such as the
//     migration retry protocol decide what that means);
//   * the receiver delivers frames strictly in sequence order, buffering
//     early arrivals and discarding duplicates, so handlers never observe
//     the network's duplication or reordering.
//
// Retransmissions and acks go through RuntimeEnv::send_frame like any
// other frame, so the robustness overhead is billed to the ChannelMeter
// and visible in Figure-4 bandwidth terms.
//
// The transport is opt-in (TransportConfig::enabled); a hive built without
// it sends raw frames exactly as before, with zero bookkeeping on the
// dispatch hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "cluster/runtime_env.h"
#include "instrument/metrics.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

struct TransportConfig {
  /// Off by default: frames bypass the transport entirely.
  bool enabled = false;
  /// First retransmit fires this long after a send; should comfortably
  /// exceed one round trip of the wire latency.
  Duration rto_initial = 2 * kMillisecond;
  /// Backoff cap for the per-peer retransmit timer.
  Duration rto_max = 64 * kMillisecond;
  /// Retransmit rounds before the peer's unacked frames are abandoned.
  int max_rounds = 10;
  /// Standalone acks are delayed this long, giving reverse traffic a
  /// chance to piggyback the ack for free.
  Duration ack_delay = 400 * kMicrosecond;
};

class ReliableTransport {
 public:
  ReliableTransport(HiveId self, RuntimeEnv& env, TransportConfig config);

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Wraps `inner` (a platform frame, kind byte first) in a reliable
  /// header and ships it; keeps a copy for retransmission until acked.
  void send(HiveId to, Bytes inner);

  /// Entry point for kReliable / kAck frames. Frames that complete an
  /// in-order run are handed to `deliver` (the hive's frame demux), in
  /// sequence order.
  using DeliverFn = std::function<void(std::string_view)>;
  void on_wire(std::string_view frame, const DeliverFn& deliver);

  const TransportCounters& counters() const { return counters_; }

  /// Frames currently buffered awaiting ack, across all peers (tests).
  std::size_t unacked_frames() const;

 private:
  struct Peer {
    // Outbound.
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Bytes> unacked;  ///< seq -> inner frame
    Duration rto = 0;
    int rounds = 0;
    bool rtx_armed = false;
    // Inbound.
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Bytes> reorder;  ///< seq -> inner frame
    bool ack_pending = false;
    bool ack_armed = false;
  };

  void ship(HiveId to, Peer& peer, std::uint64_t seq, const Bytes& inner);
  void arm_retransmit(HiveId to, Peer& peer);
  void retransmit_fired(HiveId to);
  void arm_ack(HiveId to, Peer& peer);
  void ack_fired(HiveId to);
  void process_ack(Peer& peer, std::uint64_t cum_ack);

  HiveId self_;
  RuntimeEnv& env_;
  TransportConfig config_;
  std::map<HiveId, Peer> peers_;  ///< ordered: deterministic iteration
  TransportCounters counters_;
};

}  // namespace beehive
