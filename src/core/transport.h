// Reliable at-least-once frame transport between hives.
//
// The cluster runtimes model a lossy channel (cluster/faults.h): frames
// can be dropped, duplicated, delayed or reordered, and links can be
// partitioned outright. This sublayer sits between Hive::send_frame /
// Hive::on_wire and the raw channel and restores the delivery contract the
// platform protocols were written against — effectively-once, per-pair
// FIFO — as long as the fault is transient:
//
//   * every data frame to a peer carries a per-(src,dst) sequence number
//     and is buffered until cumulatively acked;
//   * acks are cumulative, piggybacked on every reverse data frame and
//     otherwise sent as delayed standalone ack frames;
//   * unacked frames are retransmitted on a per-peer timer with
//     exponential backoff, up to a round cap — past it the frames are
//     abandoned (the link is treated as dead; higher layers such as the
//     migration retry protocol decide what that means);
//   * the receiver delivers frames strictly in sequence order, buffering
//     early arrivals and discarding duplicates, so handlers never observe
//     the network's duplication or reordering.
//
// Retransmissions and acks go through RuntimeEnv::send_frame like any
// other frame, so the robustness overhead is billed to the ChannelMeter
// and visible in Figure-4 bandwidth terms.
//
// Credit-based flow control (DESIGN.md §10) rides the same framing: every
// reliable frame and every ack additionally carries the sender's own
// advertised receive window — the same piggyback trick as the cumulative
// ack. A sender caps its unacked frames per link at
// min(credit_window, peer's advertisement); frames beyond the cap wait in
// a per-peer stalled queue (sequence numbers are assigned at ship time, so
// per-pair FIFO survives the stall) and drain as acks return credit. Past
// `stall_limit` the link's OverloadPolicy applies — with the invariant
// that frames carrying control traffic (merge/migrate/replica/registry)
// are never shed, only pure app-message batches are.
//
// The transport is opt-in (TransportConfig::enabled); a hive built without
// it sends raw frames exactly as before, with zero bookkeeping on the
// dispatch hot path. Flow control is a second opt-in (credit_window > 0,
// or a peer advertising a finite window): with both off, send() costs one
// emptiness check more than PR 2's transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "cluster/runtime_env.h"
#include "core/overload.h"
#include "instrument/metrics.h"
#include "instrument/registry.h"
#include "instrument/trace.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

struct TransportConfig {
  /// Off by default: frames bypass the transport entirely.
  bool enabled = false;
  /// First retransmit fires this long after a send; should comfortably
  /// exceed one round trip of the wire latency.
  Duration rto_initial = 2 * kMillisecond;
  /// Backoff cap for the per-peer retransmit timer.
  Duration rto_max = 64 * kMillisecond;
  /// Retransmit rounds before the peer's unacked frames are abandoned.
  int max_rounds = 10;
  /// Standalone acks are delayed this long, giving reverse traffic a
  /// chance to piggyback the ack for free.
  Duration ack_delay = 400 * kMicrosecond;

  // -- Credit-based flow control (DESIGN.md §10) --------------------------
  /// Per-link credit window: max unacked data frames in flight to one
  /// peer, and the window this hive advertises to its peers while
  /// healthy. 0 = unlimited (flow control off unless a peer advertises).
  std::uint32_t credit_window = 0;
  /// Frames queued awaiting credit per link before `overload` applies.
  std::size_t stall_limit = 1024;
  /// Window advertised while the hive is degraded (health score under the
  /// low-water mark). Clamped to >= 1 so links always make progress.
  std::uint32_t degraded_window = 1;
  /// What to do with sheddable frames once the stalled queue overflows.
  /// kBlockSender lets the queue grow and relies on Hive::overloaded()
  /// admission upstream; the shed policies drop app-message batches.
  OverloadPolicy overload = OverloadPolicy::kBlockSender;
};

class ReliableTransport {
 public:
  ReliableTransport(HiveId self, RuntimeEnv& env, TransportConfig config);

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Wraps `inner` (a platform frame, kind byte first) in a reliable
  /// header and ships it; keeps a copy for retransmission until acked.
  void send(HiveId to, Bytes inner);

  /// Entry point for kReliable / kAck frames. Frames that complete an
  /// in-order run are handed to `deliver` (the hive's frame demux), in
  /// sequence order.
  using DeliverFn = std::function<void(std::string_view)>;
  void on_wire(std::string_view frame, const DeliverFn& deliver);

  const TransportCounters& counters() const { return counters_; }

  /// Frames currently buffered awaiting ack, across all peers (tests).
  std::size_t unacked_frames() const;

  // -- Flow control ---------------------------------------------------------

  /// Frames waiting for credit right now, across all peers. Relaxed
  /// atomic: safe from any thread (Hive::overloaded() admission checks).
  std::uint64_t stalled_now() const {
    return stalled_now_.load(std::memory_order_relaxed);
  }

  /// Smallest remaining credit across links with a finite effective
  /// window; -1 when no link is credit-limited. Hive-thread only.
  std::int64_t credits_available() const;

  /// Switches the advertised receive window between credit_window and
  /// degraded_window; on a change, arms an ack to every known peer so the
  /// new advertisement propagates without waiting for data traffic.
  void set_degraded(bool degraded);
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// The receive window this hive currently advertises (0 = unlimited).
  std::uint64_t advertised_window() const;

  /// Link sheds also bump this external counter when set (the hive wires
  /// its shed_total cell here so mailbox and link sheds share one metric).
  void set_shed_counter(Counter* counter) { shed_counter_ = counter; }

  /// When set, the transport records link-level spans (kStallQueued,
  /// kCreditStall, kRetransmit, kShed) into the hive's recorder. These are
  /// trace-0 spans — a frame aggregates many messages — stitched back onto
  /// message timelines by interval overlap in the trace assembler.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  /// The last window advertised by `peer` (tests; 0 = none/unlimited).
  std::uint64_t peer_window(HiveId peer) const;

 private:
  struct Peer {
    // Outbound.
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Bytes> unacked;  ///< seq -> inner frame
    Duration rto = 0;
    int rounds = 0;
    bool rtx_armed = false;
    /// Receive window the peer advertised (0 = none yet / unlimited).
    std::uint64_t window = 0;
    /// A frame waiting for credit, stamped with when its wait began so
    /// the ship-time kCreditStall span can carry the full stall duration.
    struct StalledFrame {
      Bytes frame;
      TimePoint since = 0;
    };
    /// Frames waiting for credit, in send order. Sequence numbers are
    /// assigned when a frame leaves this queue, so FIFO holds.
    std::deque<StalledFrame> stalled;
    // Inbound.
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Bytes> reorder;  ///< seq -> inner frame
    bool ack_pending = false;
    bool ack_armed = false;
  };

  void ship(HiveId to, Peer& peer, std::uint64_t seq, const Bytes& inner);
  /// Assigns a sequence number and puts `inner` on the wire (the moment a
  /// frame consumes one credit).
  void ship_new(HiveId to, Peer& peer, Bytes inner);
  /// min(config credit_window, peer advertisement); 0 = unlimited.
  std::uint64_t effective_window(const Peer& peer) const;
  /// Queues a frame that found no credit, applying the overload policy
  /// once the stall limit is exceeded.
  void enqueue_stalled(HiveId to, Peer& peer, Bytes inner);
  /// Ships stalled frames while credit is available.
  void drain_stalled(HiveId to, Peer& peer);
  void note_shed(HiveId to);
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }
  /// Records a trace-0 link span on this hive's recorder.
  void trace_link(SpanKind kind, HiveId to, std::uint64_t aux,
                  std::uint32_t depth = 0);
  void arm_retransmit(HiveId to, Peer& peer);
  void retransmit_fired(HiveId to);
  void arm_ack(HiveId to, Peer& peer);
  void ack_fired(HiveId to);
  void process_ack(Peer& peer, std::uint64_t cum_ack);

  HiveId self_;
  RuntimeEnv& env_;
  TransportConfig config_;
  std::map<HiveId, Peer> peers_;  ///< ordered: deterministic iteration
  TransportCounters counters_;
  std::atomic<std::uint64_t> stalled_now_{0};
  std::atomic<bool> degraded_{false};
  Counter* shed_counter_ = nullptr;
  TraceRecorder* tracer_ = nullptr;
};

/// True when `frame` may be dropped by a link-level shed policy: a bare
/// AppMsg frame or a kBatch whose every inner frame is an AppMsg. Control
/// frames (merge, migration, replication) make a frame unsheddable.
bool frame_is_sheddable(const Bytes& frame);

}  // namespace beehive
