// State replication for fault tolerance (paper §7 lists fault-tolerance as
// the framework's next foundation; this is that extension).
//
// When enabled, every committed handler transaction is shipped — write by
// write — to the bee's replica hive (the ring successor of its home), and
// bulk state changes (merges, migrations, adoptions) refresh the replica
// with a full snapshot. Replication traffic rides the metered control
// channel, so its overhead is measurable in the same units as Figure 4.
//
// On a hive failure, SimCluster::fail_hive + recover_hive re-point every
// bee of the failed hive at its replica hive, which adopts the bee from
// the replicated state and establishes a new replica downstream.
#include "core/hive.h"
#include "instrument/flight_recorder.h"
#include "util/logging.h"

namespace beehive {

void Hive::replicate_txn(const Bee& bee, const Txn& txn) {
  if (!config_.replication || config_.n_hives < 2) return;
  if (txn.writes().empty()) return;
  HiveId target = replica_target_of(id_);
  if (target == id_) return;

  ReplicaTxnFrame frame;
  frame.bee = bee.id();
  frame.app = bee.app();
  frame.writes.reserve(txn.writes().size());
  for (const Txn::WriteRecord& w : txn.writes()) {
    frame.writes.push_back({w.dict, w.key, w.erased, w.value});
  }
  send_frame(target, encode_frame(FrameKind::kReplicaTxn, frame));
}

void Hive::replicate_snapshot(const Bee& bee) {
  if (!config_.replication || config_.n_hives < 2) return;
  HiveId target = replica_target_of(id_);
  if (target == id_) return;
  ReplicaSnapshotFrame frame;
  frame.bee = bee.id();
  frame.app = bee.app();
  frame.snapshot = bee.store().snapshot();
  send_frame(target, encode_frame(FrameKind::kReplicaSnapshot, frame));
}

void Hive::handle_replica_txn(const ReplicaTxnFrame& frame) {
  Replica& replica = replicas_[frame.bee];
  replica.app = frame.app;
  for (const ReplicaTxnFrame::Write& w : frame.writes) {
    if (w.erased) {
      replica.store.dict(w.dict).erase(w.key);
    } else {
      replica.store.dict(w.dict).put(w.key, w.value);
    }
  }
}

void Hive::handle_replica_snapshot(const ReplicaSnapshotFrame& frame) {
  Replica& replica = replicas_[frame.bee];
  replica.app = frame.app;
  replica.store = StateStore::from_snapshot(frame.snapshot);
}

bool Hive::adopt_from_replica(BeeId bee_id, AppId app) {
  Bee& bee = ensure_local_bee(bee_id, app);
  auto it = replicas_.find(bee_id);
  bool found = it != replicas_.end();
  if (found) {
    bee.store().merge_from(std::move(it->second.store));
    replicas_.erase(it);
  } else {
    BH_WARN << "hive " << id_ << ": adopting " << to_string_bee(bee_id)
            << " with no replica — state lost";
  }
  if (config_.recorder != nullptr) {
    config_.recorder->note(id_, "adopted bee=" + to_string_bee(bee_id) +
                                    (found ? " from replica"
                                           : " WITHOUT replica (state lost)"));
  }
  // Establish the bee's new replica downstream of its new home.
  replicate_snapshot(bee);
  return found;
}

const StateStore* Hive::replica_store(BeeId bee) const {
  auto it = replicas_.find(bee);
  return it == replicas_.end() ? nullptr : &it->second.store;
}

}  // namespace beehive
