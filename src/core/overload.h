// Overload-control policy shared by the two enforcement points of the
// backpressure layer (DESIGN.md §10):
//
//   * the reliable transport's per-link credit gate, which decides what to
//     do with outbound frames once the stalled queue overflows, and
//   * a bee's bounded mailbox, which decides what to do with a newly held
//     message once the holdback reaches the app's mailbox limit.
//
// Control traffic is exempt everywhere: platform frames (merge, migration,
// replication) are never shed at the link, and platform-typed messages
// ("platform.*" / "stats.*") are never shed from a mailbox — the priority
// lane is the same two-lane split the run queues use for immediate vs.
// timed work, applied to retention instead of ordering.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace beehive {

enum class OverloadPolicy : std::uint8_t {
  /// Never drop: queues keep growing locally while the saturation signal
  /// (Hive::overloaded()) tells upstream admission control to stop
  /// producing. Zero loss; bounded only with a cooperating producer.
  kBlockSender,
  /// Drop the newly arriving message/frame once the bound is hit (tail
  /// drop). Freshest data is lost first; the backlog keeps its head.
  kShedNewest,
  /// Drop the oldest queued message/frame to admit the new one (head
  /// drop). The backlog stays fresh; stale work is lost first.
  kShedOldest,
  /// Two lanes: priority (platform/control) traffic is always retained,
  /// the non-priority lane sheds newest beyond the bound.
  kPriorityLanes,
};

constexpr std::string_view to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kBlockSender: return "block";
    case OverloadPolicy::kShedNewest: return "shed-newest";
    case OverloadPolicy::kShedOldest: return "shed-oldest";
    case OverloadPolicy::kPriorityLanes: return "priority";
  }
  return "?";
}

inline std::optional<OverloadPolicy> overload_policy_from_string(
    std::string_view s) {
  if (s == "block") return OverloadPolicy::kBlockSender;
  if (s == "shed-newest") return OverloadPolicy::kShedNewest;
  if (s == "shed-oldest") return OverloadPolicy::kShedOldest;
  if (s == "priority") return OverloadPolicy::kPriorityLanes;
  return std::nullopt;
}

/// Per-app mailbox bound. Unbounded by default — enabling it costs nothing
/// on the dispatch fast path (the bound is only consulted on the hold
/// path, which steady-state traffic never takes).
struct OverloadConfig {
  bool bounded = false;
  /// Maximum held-back messages per bee before `policy` applies.
  std::size_t mailbox_limit = 1024;
  OverloadPolicy policy = OverloadPolicy::kBlockSender;
  /// Run-queue occupancy gate (DESIGN.md §12): when non-zero and the
  /// hive's run queue (the lock-free ring under the threaded runtime)
  /// holds at least this many pending tasks at delivery time, non-priority
  /// messages for this app are shed at admission — the queue is visibly
  /// saturated, so dropping before the handler beats queueing further
  /// behind the backlog. Control traffic ("platform.*"/"stats.*") is
  /// always exempt. 0 disables the gate.
  std::size_t ring_limit = 0;
};

}  // namespace beehive
