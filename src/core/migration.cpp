// Bee merge and live-migration protocols (paper §3, "Migration of Bees").
//
// Merge (collocation obligation): when a resolve finds a message's mapped
// cells spread over several bees, the registry atomically re-points all
// cells at a winner, bumps the winner's transfers_expected fence (one per
// loser), and reports the losers. The resolving hive commands each loser's
// hive to ship its state (MergeCmd -> MigrateXfer), then routes the
// triggering message stamped with the post-decision fence value; the
// winner holds it until that many transfers have landed. The fence —
// rather than a separate announcement — makes the protocol immune to frame
// ordering between resolver, losers and winner.
//
// Migration (optimizer move): the source hive freezes the bee, ships a
// state snapshot, the target installs it and commits the new location to
// the registry, acks, and the source drains the held-back messages to the
// new home. Stale frames that still arrive at the source are forwarded via
// the registry lookup in handle_app_msg.
#include <cassert>

#include "core/hive.h"
#include "instrument/flight_recorder.h"
#include "util/logging.h"

namespace beehive {

void Hive::start_merges(AppId app, const ResolveOutcome& outcome) {
  for (const ResolveOutcome::Loser& loser : outcome.losers) {
    MergeCmdFrame cmd{loser.bee, app, outcome.bee, outcome.hive,
                      outcome.transfers_expected};
    if (loser.hive == id_) {
      handle_merge_cmd(cmd);
    } else {
      send_frame(loser.hive, encode_frame(FrameKind::kMergeCmd, cmd));
    }
  }
}

void Hive::handle_merge_cmd(const MergeCmdFrame& frame) {
  Bytes snapshot;
  std::deque<MessageEnvelope> held;
  std::uint64_t loser_applied = 0;
  auto it = bees_.find(frame.loser);
  if (it != bees_.end() && it->second->migrating()) {
    // The loser's state snapshot is already in flight to its migration
    // target; that hive will discover the bee died and forward it to the
    // winner as the counted transfer (see handle_migrate_xfer). Nothing to
    // ship from here — just retire the local shell and re-route its queue.
    held = it->second->take_holdback();
    bees_.erase(it);
    ++bees_epoch_;
    for (MessageEnvelope& env : held) {
      deliver(frame.winner, frame.app, frame.winner_hive, env,
              frame.winner_expected);
    }
    return;
  }
  if (it != bees_.end()) {
    snapshot = it->second->store().snapshot();
    held = it->second->take_holdback();
    loser_applied = it->second->transfers_applied();
    bees_.erase(it);
    ++bees_epoch_;
  } else {
    // The loser was never instantiated here (its cells were registered but
    // no message reached it yet): ship an empty store. No transfer ever
    // landed here, so its applied count is zero.
    snapshot = StateStore{}.snapshot();
  }

  MigrateXferFrame xfer;
  xfer.bee = frame.loser;
  xfer.app = frame.app;
  xfer.is_merge = true;
  xfer.merge_target = frame.winner;
  xfer.src_hive = id_;
  // For merge payloads, transfers_applied carries the loser's applied
  // count: state from those transfers is already inside the snapshot.
  xfer.transfers_applied = loser_applied;
  xfer.winner_expected = frame.winner_expected;
  xfer.snapshot = std::move(snapshot);
  if (frame.winner_hive == id_) {
    handle_migrate_xfer(xfer);
  } else {
    send_frame(frame.winner_hive,
               encode_frame(FrameKind::kMigrateXfer, xfer));
  }

  // Re-route the loser's queued messages to the winner, fenced behind
  // every transfer of the merge decision (including this snapshot), so
  // they cannot be processed against partially-arrived state.
  for (MessageEnvelope& env : held) {
    deliver(frame.winner, frame.app, frame.winner_hive, env,
            frame.winner_expected);
  }
}

void Hive::handle_migrate_xfer(const MigrateXferFrame& frame) {
  if (frame.is_merge) {
    // The winner may have lost a superseding merge (or migrated) while
    // this transfer was in flight: chase the live successor.
    BeeId target = registry_.live_successor(frame.merge_target);
    if (target == kNoBee) {
      BH_ERROR << "hive " << id_ << ": merge transfer for vanished bee "
               << to_string_bee(frame.merge_target) << " dropped";
      return;
    }
    auto hive = registry_client_.hive_of(target, env_.now());
    if (!hive.has_value()) return;
    if (*hive != id_) {
      MigrateXferFrame fwd = frame;
      fwd.merge_target = target;
      fwd.src_hive = id_;
      if (target != frame.merge_target) {
        fwd.winner_expected = registry_.expected_transfers(target);
      }
      send_frame(*hive, encode_frame(FrameKind::kMigrateXfer, fwd));
      return;
    }
    Bee& winner = ensure_local_bee(target, frame.app);
    if (target != frame.merge_target) {
      // Re-targeted at a successor: re-fence at its current ledger.
      winner.note_required_transfers(registry_.expected_transfers(target));
    }
    if (winner.migrating()) {
      // The winner's own snapshot is already in flight to its migration
      // target; merging here would be lost when the bee retires on ack.
      // Chase the bee: the transfer arrives after the migration payload
      // (FIFO per hive pair), so the target hive merges it post-move.
      MigrateXferFrame fwd = frame;
      fwd.merge_target = target;
      fwd.src_hive = id_;
      send_frame(winner.migration_target(),
                 encode_frame(FrameKind::kMigrateXfer, fwd));
      return;
    }
    winner.store().merge_from(StateStore::from_snapshot(frame.snapshot));
    replicate_snapshot(winner);
    // Raise the fence first: a transfer decided after others announces
    // them, so out-of-order arrivals cannot unblock the winner early.
    winner.note_required_transfers(frame.winner_expected);
    winner.note_transfers_applied(1 + frame.transfers_applied);
    if (!winner.blocked()) drain(winner);
    return;
  }

  // Whole-bee migration: the bee keeps its identity, only its home moves —
  // unless it lost a merge while its snapshot was in flight, in which case
  // the state belongs to the merge winner now.
  BeeId successor = registry_.live_successor(frame.bee);
  if (successor != frame.bee) {
    // Zombie guard: if the origin aborted this migration before the merge,
    // the bee kept running there and this snapshot is stale — forwarding
    // it would graft outdated state onto the merge winner. Only a current
    // epoch proves the bee really was frozen when it merged away.
    if (frame.mig_epoch != 0) {
      const BeeRecord* rec = registry_.find(frame.bee);
      if (rec == nullptr || rec->mig_epoch != frame.mig_epoch) {
        BH_WARN << "hive " << id_ << ": stale migration transfer for "
                << "merged-away bee " << to_string_bee(frame.bee)
                << " dropped";
        return;
      }
    }
    if (successor != kNoBee) {
      auto hive = registry_client_.hive_of(successor, env_.now());
      if (hive.has_value()) {
        // This snapshot is the loser's counted transfer (its hive shipped
        // nothing for a migrating loser); its applied count rides along.
        MigrateXferFrame fwd;
        fwd.bee = frame.bee;
        fwd.app = frame.app;
        fwd.is_merge = true;
        fwd.merge_target = successor;
        fwd.src_hive = id_;
        fwd.transfers_applied = frame.transfers_applied;
        fwd.winner_expected = registry_.expected_transfers(successor);
        fwd.snapshot = frame.snapshot;
        if (*hive == id_) {
          handle_migrate_xfer(fwd);
        } else {
          send_frame(*hive, encode_frame(FrameKind::kMigrateXfer, fwd));
        }
      }
    }
    MigrateAckFrame ack{frame.bee};
    send_frame(frame.src_hive, encode_frame(FrameKind::kMigrateAck, ack));
    return;
  }

  // Commit the move conditionally on the migration epoch: a transfer whose
  // migration the origin has since aborted must not re-home the bee
  // (split-brain guard). Duplicates of a committed transfer re-commit
  // idempotently and re-ack — the first ack may have been lost.
  if (frame.mig_epoch != 0) {
    if (!registry_.commit_migration(frame.bee, id_, frame.mig_epoch, id_,
                                    env_.now())) {
      BH_WARN << "hive " << id_ << ": stale migration transfer for bee "
              << to_string_bee(frame.bee) << " (epoch " << frame.mig_epoch
              << ") dropped";
      return;
    }
  } else {
    registry_.move_bee_rpc(frame.bee, id_, id_, env_.now());
  }
  Bee& bee = ensure_local_bee(frame.bee, frame.app);
  bee.store().merge_from(StateStore::from_snapshot(frame.snapshot));
  bee.restore_transfer_counters(frame.transfers_applied,
                                frame.transfers_required);
  ++counters_.migrations_in;
  if (config_.recorder != nullptr) {
    config_.recorder->note(id_, "migrate in bee=" + to_string_bee(frame.bee) +
                                    " from=" +
                                    std::to_string(frame.src_hive) +
                                    " snapshot_bytes=" +
                                    std::to_string(frame.snapshot.size()));
  }
  if (tracing()) {
    config_.tracer->record(TraceEvent{env_.now(), SpanKind::kMigrateIn, 0, 0,
                                      id_, frame.bee, frame.app, 0,
                                      frame.snapshot.size(), frame.src_hive});
  }
  replicate_snapshot(bee);
  MigrateAckFrame ack{frame.bee};
  send_frame(frame.src_hive, encode_frame(FrameKind::kMigrateAck, ack));
}

void Hive::handle_migrate_ack(const MigrateAckFrame& frame) {
  complete_migration(frame.bee);
}

/// Retires a migrated-out bee: drops the local shell and re-routes its
/// held-back messages to the new home. Safe to call more than once (late
/// duplicate acks, ack racing the retry timer's own registry probe).
void Hive::complete_migration(BeeId bee_id) {
  migrations_.erase(bee_id);
  auto it = bees_.find(bee_id);
  if (it == bees_.end()) return;
  Bee& bee = *it->second;
  if (!bee.migrating()) return;  // aborted before the (late) ack landed
  auto held = bee.take_holdback();
  AppId app = bee.app();
  std::uint64_t required = bee.transfers_required();
  ++counters_.migrations_out;
  if (config_.recorder != nullptr) {
    config_.recorder->note(id_, "migrate out bee=" + to_string_bee(bee_id) +
                                    " to=" +
                                    std::to_string(bee.migration_target()) +
                                    " held_msgs=" +
                                    std::to_string(held.size()));
  }
  if (tracing()) {
    config_.tracer->record(TraceEvent{env_.now(), SpanKind::kMigrateOut, 0, 0,
                                      id_, bee_id, app, 0, held.size(),
                                      bee.migration_target()});
  }
  bees_.erase(it);
  ++bees_epoch_;

  auto hive = registry_client_.hive_of(bee_id, env_.now());
  if (!hive.has_value()) {
    BH_ERROR << "hive " << id_ << ": migrated bee "
             << to_string_bee(bee_id) << " vanished from registry";
    return;
  }
  for (MessageEnvelope& env : held) {
    deliver(bee_id, app, *hive, env, required);
  }
}

void Hive::request_migration(BeeId bee_id, HiveId to) {
  Bee* bee = find_bee(bee_id);
  if (bee == nullptr) {
    // Not ours: forward the order to the bee's current hive.
    auto hive = registry_client_.hive_of(bee_id, env_.now());
    if (hive.has_value() && *hive != id_) {
      MigrationOrderFrame order{bee_id, to};
      send_frame(*hive, encode_frame(FrameKind::kMigrationOrder, order));
    }
    return;
  }
  if (to == id_) return;
  if (bee->migrating() || bee->blocked()) return;  // busy; retry next round.
  if (const App* app = apps_.find(bee->app()); app != nullptr &&
                                               app->pinned()) {
    return;  // pinned bees (drivers) are anchored to their IO channel.
  }

  const std::uint64_t epoch =
      registry_.begin_migration(bee_id, id_, env_.now());
  if (epoch == 0) return;  // registry does not know a live bee by this id

  bee->begin_migration(to);  // freezes the bee (blocked() is now true)
  if (tracing()) {
    config_.tracer->record(TraceEvent{env_.now(), SpanKind::kMigrateStart, 0,
                                      0, id_, bee_id, bee->app(), 0, to});
  }
  migrations_[bee_id] = MigrationRetry{
      to, epoch, /*attempt=*/0,
      std::max(config_.migrate_max_attempts, 1), config_.migrate_timeout};
  send_migrate_xfer(*bee, to, epoch);
  arm_migration_timer(bee_id);
}

void Hive::send_migrate_xfer(Bee& bee, HiveId to, std::uint64_t epoch) {
  MigrateXferFrame xfer;
  xfer.bee = bee.id();
  xfer.app = bee.app();
  xfer.is_merge = false;
  xfer.src_hive = id_;
  xfer.mig_epoch = epoch;
  xfer.transfers_applied = bee.transfers_applied();
  xfer.transfers_required = bee.transfers_required();
  xfer.snapshot = bee.store().snapshot();
  send_frame(to, encode_frame(FrameKind::kMigrateXfer, xfer));
}

void Hive::arm_migration_timer(BeeId bee) {
  auto it = migrations_.find(bee);
  if (it == migrations_.end() || it->second.timeout <= 0) return;
  const std::uint64_t attempt = it->second.attempt;
  env_.schedule_after(id_, it->second.timeout, [this, bee, attempt]() {
    check_migration(bee, attempt);
  });
}

/// Ack-timeout handler for one in-flight outbound migration. Reconciles
/// with the registry (the ack, not the move, may be what got lost), then
/// either re-sends the transfer or — once the attempt budget is spent —
/// cancels the migration and unfreezes the bee at its origin.
void Hive::check_migration(BeeId bee_id, std::uint64_t attempt_epoch) {
  auto it = migrations_.find(bee_id);
  if (it == migrations_.end()) return;           // acked or cleaned up
  if (it->second.attempt != attempt_epoch) return;  // superseded timer
  Bee* bee = find_bee(bee_id);
  if (bee == nullptr || !bee->migrating()) {
    // The bee merged away (or was otherwise retired) while frozen; the
    // transfer's fate is the merge protocol's problem now.
    migrations_.erase(it);
    return;
  }
  // Authoritative probe: did the target commit but lose the ack?
  if (auto hive = registry_.hive_of(bee_id); hive.has_value() &&
                                             *hive != id_) {
    complete_migration(bee_id);
    return;
  }
  MigrationRetry& mr = it->second;
  if (mr.attempts_left <= 1) {
    if (!registry_.cancel_migration(bee_id, id_, id_, env_.now())) {
      // A commit won the race against our cancel: the move happened.
      complete_migration(bee_id);
      return;
    }
    migrations_.erase(it);
    abort_migration(*bee);
    return;
  }
  --mr.attempts_left;
  mr.timeout *= 2;  // exponential backoff on the ack timeout
  ++mr.attempt;
  ++counters_.migration_retries;
  if (config_.recorder != nullptr) {
    config_.recorder->note(id_, "migrate retry bee=" + to_string_bee(bee_id) +
                                    " to=" + std::to_string(mr.to) +
                                    " attempts_left=" +
                                    std::to_string(mr.attempts_left));
  }
  send_migrate_xfer(*bee, mr.to, mr.mig_epoch);
  arm_migration_timer(bee_id);
}

/// Gives up on an outbound migration: the epoch is already cancelled in
/// the registry, so in-flight transfers cannot commit. The bee thaws and
/// keeps living at its origin; its held-back messages drain locally.
void Hive::abort_migration(Bee& bee) {
  ++counters_.migration_aborts;
  if (config_.recorder != nullptr) {
    config_.recorder->note(
        id_, "migrate abort bee=" + to_string_bee(bee.id()) + " to=" +
                 std::to_string(bee.migration_target()) + "; bee stays local");
  }
  BH_WARN << "hive " << id_ << ": migration of bee "
          << to_string_bee(bee.id()) << " to hive "
          << bee.migration_target() << " aborted; bee stays local";
  bee.abort_migration();
  if (!bee.blocked()) drain(bee);
}

void Hive::drain(Bee& bee) {
  auto held = bee.take_holdback();
  for (MessageEnvelope& env : held) {
    if (bee.blocked()) {
      bee.hold(std::move(env));  // re-blocked mid-drain (nested merge)
      continue;
    }
    process(bee, env);
  }
  // A fully drained mailbox lifts the kBlockSender saturation flag early
  // (report_metrics() would also clear it at the next window).
  if (bee.holdback_size() == 0) {
    mailbox_overrun_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace beehive
