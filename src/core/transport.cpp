#include "core/transport.h"

#include "core/wire.h"
#include "util/logging.h"

namespace beehive {

// Reliable header: kind | src hive | seq | cumulative ack | inner frame
// (raw to the end of the buffer — the channel preserves frame bounds).
// Standalone ack: kind | src hive | cumulative ack.

ReliableTransport::ReliableTransport(HiveId self, RuntimeEnv& env,
                                     TransportConfig config)
    : self_(self), env_(env), config_(config) {}

std::size_t ReliableTransport::unacked_frames() const {
  std::size_t n = 0;
  for (const auto& [_, peer] : peers_) n += peer.unacked.size();
  return n;
}

void ReliableTransport::ship(HiveId to, Peer& peer, std::uint64_t seq,
                             const Bytes& inner) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kReliable));
  w.u32(self_);
  w.varint(seq);
  // Piggyback the freshest cumulative ack for the reverse direction; any
  // data frame then doubles as an ack and the standalone timer no-ops.
  w.varint(peer.next_expected - 1);
  w.raw(inner);
  peer.ack_pending = false;
  env_.send_frame(self_, to, std::move(w).take());
}

void ReliableTransport::send(HiveId to, Bytes inner) {
  Peer& peer = peers_[to];
  const std::uint64_t seq = peer.next_seq++;
  ++counters_.data_frames;
  ship(to, peer, seq, inner);
  peer.unacked.emplace(seq, std::move(inner));
  arm_retransmit(to, peer);
}

void ReliableTransport::arm_retransmit(HiveId to, Peer& peer) {
  if (peer.rtx_armed) return;
  peer.rtx_armed = true;
  if (peer.rto <= 0) peer.rto = config_.rto_initial;
  env_.schedule_after(self_, peer.rto, [this, to]() { retransmit_fired(to); });
}

void ReliableTransport::retransmit_fired(HiveId to) {
  Peer& peer = peers_[to];
  peer.rtx_armed = false;
  if (peer.unacked.empty()) {
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
    return;
  }
  if (++peer.rounds > config_.max_rounds) {
    counters_.frames_abandoned += peer.unacked.size();
    BH_ERROR << "transport on hive " << self_ << ": abandoning "
             << peer.unacked.size() << " unacked frame(s) to hive " << to
             << " after " << config_.max_rounds << " retransmit rounds";
    peer.unacked.clear();
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
    return;
  }
  for (const auto& [seq, inner] : peer.unacked) {
    ++counters_.retransmits;
    ship(to, peer, seq, inner);
  }
  peer.rto = std::min(peer.rto * 2, config_.rto_max);
  arm_retransmit(to, peer);
}

void ReliableTransport::arm_ack(HiveId to, Peer& peer) {
  peer.ack_pending = true;
  if (peer.ack_armed) return;
  peer.ack_armed = true;
  env_.schedule_after(self_, config_.ack_delay, [this, to]() { ack_fired(to); });
}

void ReliableTransport::ack_fired(HiveId to) {
  Peer& peer = peers_[to];
  peer.ack_armed = false;
  if (!peer.ack_pending) return;  // a data frame piggybacked it already
  peer.ack_pending = false;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kAck));
  w.u32(self_);
  w.varint(peer.next_expected - 1);
  ++counters_.acks_sent;
  env_.send_frame(self_, to, std::move(w).take());
}

void ReliableTransport::process_ack(Peer& peer, std::uint64_t cum_ack) {
  bool progressed = false;
  while (!peer.unacked.empty() && peer.unacked.begin()->first <= cum_ack) {
    peer.unacked.erase(peer.unacked.begin());
    progressed = true;
  }
  if (progressed) {
    // The link is moving again: restart backoff for what remains.
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
  }
}

void ReliableTransport::on_wire(std::string_view frame,
                                const DeliverFn& deliver) {
  ByteReader r(frame);
  const auto kind = static_cast<FrameKind>(r.u8());
  const HiveId src = r.u32();
  if (kind == FrameKind::kAck) {
    process_ack(peers_[src], r.varint());
    return;
  }
  const std::uint64_t seq = r.varint();
  const std::uint64_t ack = r.varint();
  Peer& peer = peers_[src];
  process_ack(peer, ack);

  if (seq < peer.next_expected) {
    // Duplicate of something already delivered; the sender keeps
    // retransmitting it because our ack was lost — re-ack.
    ++counters_.dup_frames_dropped;
    arm_ack(src, peer);
    return;
  }
  if (seq > peer.next_expected) {
    // Early arrival: hold it so handlers see per-pair FIFO order.
    auto [it, inserted] = peer.reorder.emplace(seq, Bytes(r.view(r.remaining())));
    (void)it;
    if (inserted) {
      ++counters_.reorder_buffered;
    } else {
      ++counters_.dup_frames_dropped;
    }
    arm_ack(src, peer);
    return;
  }

  // In sequence: deliver, then drain any buffered run behind it. Delivery
  // can trigger sends back to `src`, which re-enter peers_ — take copies
  // out of the map before each up-call.
  deliver(r.view(r.remaining()));
  peer.next_expected++;
  while (true) {
    auto it = peer.reorder.find(peer.next_expected);
    if (it == peer.reorder.end()) break;
    Bytes inner = std::move(it->second);
    peer.reorder.erase(it);
    peer.next_expected++;
    deliver(inner);
  }
  arm_ack(src, peer);
}

}  // namespace beehive
