#include "core/transport.h"

#include <algorithm>

#include "core/wire.h"
#include "util/logging.h"

namespace beehive {

// Reliable header: kind | src hive | seq | cumulative ack | advertised
// window | inner frame (raw to the end of the buffer — the channel
// preserves frame bounds).
// Standalone ack: kind | src hive | cumulative ack | advertised window.
//
// The advertised window is the receiver's half of the credit loop: every
// frame a hive emits tells its peers how many unacked frames it is willing
// to absorb (0 = unlimited). Senders cap in-flight frames per link at
// min(own credit_window, peer advertisement) and park the excess in
// Peer::stalled until acks return credit.

ReliableTransport::ReliableTransport(HiveId self, RuntimeEnv& env,
                                     TransportConfig config)
    : self_(self), env_(env), config_(config) {
  if (config_.degraded_window == 0) config_.degraded_window = 1;
}

std::size_t ReliableTransport::unacked_frames() const {
  std::size_t n = 0;
  for (const auto& [_, peer] : peers_) n += peer.unacked.size();
  return n;
}

std::uint64_t ReliableTransport::advertised_window() const {
  if (degraded_.load(std::memory_order_relaxed)) {
    return config_.degraded_window;
  }
  return config_.credit_window;
}

std::uint64_t ReliableTransport::effective_window(const Peer& peer) const {
  const std::uint64_t own = config_.credit_window;
  const std::uint64_t adv = peer.window;
  if (own == 0) return adv;
  if (adv == 0) return own;
  return std::min(own, adv);
}

std::int64_t ReliableTransport::credits_available() const {
  std::int64_t min_credit = -1;
  for (const auto& [_, peer] : peers_) {
    const std::uint64_t win = effective_window(peer);
    if (win == 0) continue;
    const std::uint64_t in_flight = peer.unacked.size();
    const std::int64_t credit =
        in_flight >= win ? 0 : static_cast<std::int64_t>(win - in_flight);
    if (min_credit < 0 || credit < min_credit) min_credit = credit;
  }
  return min_credit;
}

std::uint64_t ReliableTransport::peer_window(HiveId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.window;
}

void ReliableTransport::set_degraded(bool degraded) {
  const bool was = degraded_.exchange(degraded, std::memory_order_relaxed);
  if (was == degraded) return;
  // Push the new advertisement: arm a (delayed, piggyback-preferring) ack
  // to every peer we have ever talked to. Without this, an idle reverse
  // direction would leave peers on the stale window indefinitely.
  for (auto& [to, peer] : peers_) arm_ack(to, peer);
}

void ReliableTransport::ship(HiveId to, Peer& peer, std::uint64_t seq,
                             const Bytes& inner) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kReliable));
  w.u32(self_);
  w.varint(seq);
  // Piggyback the freshest cumulative ack for the reverse direction; any
  // data frame then doubles as an ack and the standalone timer no-ops.
  w.varint(peer.next_expected - 1);
  w.varint(advertised_window());
  w.raw(inner);
  peer.ack_pending = false;
  env_.send_frame(self_, to, std::move(w).take());
}

void ReliableTransport::ship_new(HiveId to, Peer& peer, Bytes inner) {
  const std::uint64_t seq = peer.next_seq++;
  ++counters_.data_frames;
  ship(to, peer, seq, inner);
  peer.unacked.emplace(seq, std::move(inner));
  arm_retransmit(to, peer);
}

void ReliableTransport::send(HiveId to, Bytes inner) {
  Peer& peer = peers_[to];
  const std::uint64_t win = effective_window(peer);
  // Stall behind an existing stall unconditionally (FIFO), and behind a
  // full window. With flow control off on both sides this is one empty
  // check and one zero compare.
  if (!peer.stalled.empty() || (win != 0 && peer.unacked.size() >= win)) {
    enqueue_stalled(to, peer, std::move(inner));
    return;
  }
  ship_new(to, peer, std::move(inner));
}

void ReliableTransport::note_shed(HiveId to) {
  ++counters_.frames_shed;
  if (shed_counter_ != nullptr) ++*shed_counter_;
  if (tracing()) trace_link(SpanKind::kShed, to, 0);
}

void ReliableTransport::trace_link(SpanKind kind, HiveId to, std::uint64_t aux,
                                   std::uint32_t depth) {
  TraceEvent ev;
  ev.at = env_.now();
  ev.kind = kind;
  ev.depth = depth;
  ev.hive = self_;
  ev.aux = aux;
  ev.aux2 = to;
  tracer_->record(ev);
}

void ReliableTransport::enqueue_stalled(HiveId to, Peer& peer, Bytes inner) {
  ++counters_.frames_stalled;
  const auto queue_frame = [&](Bytes frame) {
    peer.stalled.push_back(Peer::StalledFrame{std::move(frame), env_.now()});
    stalled_now_.fetch_add(1, std::memory_order_relaxed);
    if (tracing()) trace_link(SpanKind::kStallQueued, to, peer.stalled.size());
  };
  if (peer.stalled.size() < config_.stall_limit ||
      config_.overload == OverloadPolicy::kBlockSender) {
    // kBlockSender grows past the limit on purpose: stalled_now() > 0 is
    // the saturation signal admission control reads; losing frames is the
    // one thing this policy never does.
    queue_frame(std::move(inner));
    return;
  }
  switch (config_.overload) {
    case OverloadPolicy::kBlockSender:
      break;  // handled above
    case OverloadPolicy::kShedNewest:
    case OverloadPolicy::kPriorityLanes:
      // Tail drop — but only pure app-message batches; control frames
      // always queue (the priority lane, in both policies).
      if (frame_is_sheddable(inner)) {
        note_shed(to);
        return;
      }
      queue_frame(std::move(inner));
      break;
    case OverloadPolicy::kShedOldest: {
      // Head drop: evict the oldest sheddable frame to admit the new one.
      for (auto it = peer.stalled.begin(); it != peer.stalled.end(); ++it) {
        if (frame_is_sheddable(it->frame)) {
          peer.stalled.erase(it);
          stalled_now_.fetch_sub(1, std::memory_order_relaxed);
          note_shed(to);
          queue_frame(std::move(inner));
          return;
        }
      }
      // Nothing old is sheddable (all control): shed the newcomer if it
      // is, otherwise queue it — control traffic is never lost here.
      if (frame_is_sheddable(inner)) {
        note_shed(to);
        return;
      }
      queue_frame(std::move(inner));
      break;
    }
  }
}

void ReliableTransport::drain_stalled(HiveId to, Peer& peer) {
  while (!peer.stalled.empty()) {
    const std::uint64_t win = effective_window(peer);
    if (win != 0 && peer.unacked.size() >= win) break;
    Peer::StalledFrame entry = std::move(peer.stalled.front());
    peer.stalled.pop_front();
    stalled_now_.fetch_sub(1, std::memory_order_relaxed);
    if (tracing()) {
      const Duration waited = env_.now() - entry.since;
      trace_link(SpanKind::kCreditStall, to,
                 waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
    }
    ship_new(to, peer, std::move(entry.frame));
  }
}

void ReliableTransport::arm_retransmit(HiveId to, Peer& peer) {
  if (peer.rtx_armed) return;
  peer.rtx_armed = true;
  if (peer.rto <= 0) peer.rto = config_.rto_initial;
  env_.schedule_after(self_, peer.rto, [this, to]() { retransmit_fired(to); });
}

void ReliableTransport::retransmit_fired(HiveId to) {
  Peer& peer = peers_[to];
  peer.rtx_armed = false;
  if (peer.unacked.empty()) {
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
    return;
  }
  if (++peer.rounds > config_.max_rounds) {
    counters_.frames_abandoned += peer.unacked.size();
    BH_ERROR << "transport on hive " << self_ << ": abandoning "
             << peer.unacked.size() << " unacked frame(s) to hive " << to
             << " after " << config_.max_rounds << " retransmit rounds";
    peer.unacked.clear();
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
    // Abandoning freed the whole window; stalled frames (if any) ship now
    // rather than waiting for an ack that will never come.
    drain_stalled(to, peer);
    return;
  }
  for (const auto& [seq, inner] : peer.unacked) {
    ++counters_.retransmits;
    if (tracing()) {
      trace_link(SpanKind::kRetransmit, to, seq,
                 static_cast<std::uint32_t>(peer.rounds));
    }
    ship(to, peer, seq, inner);
  }
  peer.rto = std::min(peer.rto * 2, config_.rto_max);
  arm_retransmit(to, peer);
}

void ReliableTransport::arm_ack(HiveId to, Peer& peer) {
  peer.ack_pending = true;
  if (peer.ack_armed) return;
  peer.ack_armed = true;
  env_.schedule_after(self_, config_.ack_delay, [this, to]() { ack_fired(to); });
}

void ReliableTransport::ack_fired(HiveId to) {
  Peer& peer = peers_[to];
  peer.ack_armed = false;
  if (!peer.ack_pending) return;  // a data frame piggybacked it already
  peer.ack_pending = false;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kAck));
  w.u32(self_);
  w.varint(peer.next_expected - 1);
  w.varint(advertised_window());
  ++counters_.acks_sent;
  env_.send_frame(self_, to, std::move(w).take());
}

void ReliableTransport::process_ack(Peer& peer, std::uint64_t cum_ack) {
  bool progressed = false;
  while (!peer.unacked.empty() && peer.unacked.begin()->first <= cum_ack) {
    peer.unacked.erase(peer.unacked.begin());
    progressed = true;
  }
  if (progressed) {
    // The link is moving again: restart backoff for what remains.
    peer.rounds = 0;
    peer.rto = config_.rto_initial;
  }
}

void ReliableTransport::on_wire(std::string_view frame,
                                const DeliverFn& deliver) {
  ByteReader r(frame);
  const auto kind = static_cast<FrameKind>(r.u8());
  const HiveId src = r.u32();
  if (kind == FrameKind::kAck) {
    Peer& peer = peers_[src];
    process_ack(peer, r.varint());
    peer.window = r.varint();
    drain_stalled(src, peer);
    return;
  }
  const std::uint64_t seq = r.varint();
  const std::uint64_t ack = r.varint();
  const std::uint64_t window = r.varint();
  Peer& peer = peers_[src];
  process_ack(peer, ack);
  peer.window = window;
  drain_stalled(src, peer);

  if (seq < peer.next_expected) {
    // Duplicate of something already delivered; the sender keeps
    // retransmitting it because our ack was lost — re-ack.
    ++counters_.dup_frames_dropped;
    arm_ack(src, peer);
    return;
  }
  if (seq > peer.next_expected) {
    // Early arrival: hold it so handlers see per-pair FIFO order.
    auto [it, inserted] = peer.reorder.emplace(seq, Bytes(r.view(r.remaining())));
    (void)it;
    if (inserted) {
      ++counters_.reorder_buffered;
    } else {
      ++counters_.dup_frames_dropped;
    }
    arm_ack(src, peer);
    return;
  }

  // In sequence: deliver, then drain any buffered run behind it. Delivery
  // can trigger sends back to `src`, which re-enter peers_ — take copies
  // out of the map before each up-call.
  deliver(r.view(r.remaining()));
  peer.next_expected++;
  while (true) {
    auto it = peer.reorder.find(peer.next_expected);
    if (it == peer.reorder.end()) break;
    Bytes inner = std::move(it->second);
    peer.reorder.erase(it);
    peer.next_expected++;
    deliver(inner);
  }
  arm_ack(src, peer);
}

bool frame_is_sheddable(const Bytes& frame) {
  std::string_view bytes = frame;
  if (bytes.empty()) return true;
  ByteReader r(bytes);
  const auto kind = static_cast<FrameKind>(r.u8());
  if (kind == FrameKind::kAppMsg) return true;
  if (kind != FrameKind::kBatch) return false;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.varint();
    std::string_view inner = r.view(len);
    if (inner.empty() ||
        static_cast<FrameKind>(static_cast<unsigned char>(inner[0])) !=
            FrameKind::kAppMsg) {
      return false;
    }
  }
  return true;
}

}  // namespace beehive
