#include "core/hive.h"

#include <cassert>

#include "cluster/faults.h"
#include "core/context.h"
#include "instrument/flight_recorder.h"
#include "util/logging.h"

namespace beehive {

Hive::Hive(HiveId id, const AppSet& apps, RegistryService& registry,
           RuntimeEnv& env, HiveConfig config)
    : id_(id),
      apps_(apps),
      registry_(registry),
      registry_client_(registry, id),
      env_(env),
      config_(config),
      profiler_(config.profiler) {
  if (config_.transport.enabled) {
    transport_ =
        std::make_unique<ReliableTransport>(id_, env_, config_.transport);
    // Link-level sheds and mailbox sheds share one metric cell.
    transport_->set_shed_counter(&counters_.shed_total);
    // Link-level spans (stall/retransmit/shed) land in the hive's recorder.
    transport_->set_tracer(config_.tracer);
  }
  register_metrics();
}

bool Hive::is_priority_type(MsgTypeId type) {
  const std::string_view name = MsgTypeRegistry::instance().name_of(type);
  return name.substr(0, 9) == "platform." || name.substr(0, 6) == "stats.";
}

void Hive::register_metrics() {
  MetricsRegistry* reg = config_.metrics;
  if (reg == nullptr) return;
  const MetricLabels labels{{"hive", std::to_string(id_)}};

  // Routing/protocol counters: the live atomic cells themselves are
  // exposed, so scrapes see up-to-the-message values with zero extra work
  // on the dispatch path.
  reg->expose_counter("beehive_messages_injected_total", labels,
                      &counters_.injected,
                      "Messages entering the platform on IO channels");
  reg->expose_counter("beehive_messages_routed_local_total", labels,
                      &counters_.routed_local,
                      "Messages delivered to a bee on the resolving hive");
  reg->expose_counter("beehive_messages_routed_remote_total", labels,
                      &counters_.routed_remote,
                      "Messages relayed to another hive after resolve");
  reg->expose_counter("beehive_messages_forwarded_total", labels,
                      &counters_.forwarded,
                      "Messages re-forwarded because the sender cache was stale");
  reg->expose_counter("beehive_handler_runs_total", labels,
                      &counters_.handler_runs, "Handler invocations");
  reg->expose_counter("beehive_handler_failures_total", labels,
                      &counters_.handler_failures,
                      "Handler invocations rolled back on exception");
  reg->expose_counter("beehive_merges_started_total", labels,
                      &counters_.merges_started,
                      "Merge protocols initiated by this hive");
  reg->expose_counter("beehive_migrations_in_total", labels,
                      &counters_.migrations_in,
                      "Bees installed here by migration");
  reg->expose_counter("beehive_migrations_out_total", labels,
                      &counters_.migrations_out,
                      "Bees migrated away from this hive");
  reg->expose_counter("beehive_migration_retries_total", labels,
                      &counters_.migration_retries,
                      "Migration transfers re-sent on ack timeout");
  reg->expose_counter("beehive_migration_aborts_total", labels,
                      &counters_.migration_aborts,
                      "Migrations abandoned after the retry cap");
  reg->expose_counter("beehive_registry_failures_total", labels,
                      &counters_.registry_failures,
                      "Messages dropped because the registry was unreachable");
  reg->expose_counter("beehive_shed_total", labels, &counters_.shed_total,
                      "Messages and frames dropped by overload policies "
                      "(bounded mailboxes + link credit gate)");

  // Window-published cells (see publish_window).
  published_.msgs_window =
      &reg->ring("beehive_handler_runs_window", labels);
  published_.e2e_p99_window =
      &reg->ring("beehive_e2e_p99_window_us", labels);
  published_.bees =
      &reg->gauge("beehive_bees", labels, "Live bees on this hive");
  published_.cells =
      &reg->gauge("beehive_cells", labels, "Cells owned by local bees");
  published_.queue_depth =
      &reg->gauge("beehive_queue_depth", labels,
                  "Messages held behind transfer fences at report time");
  published_.e2e = &reg->histogram(
      "beehive_e2e_latency_us", labels,
      "Trace ingress to terminal handler latency (microseconds)");
  published_.queue = &reg->histogram(
      "beehive_queue_latency_us", labels,
      "Emission to handler-start latency (microseconds)");
  published_.handler = &reg->histogram(
      "beehive_handler_latency_us", labels,
      "Handler duration (microseconds)");
  published_.tx_data = &reg->gauge(
      "beehive_transport_data_frames", labels,
      "Reliable transport: data frames first-sent (lifetime)");
  published_.tx_retransmits = &reg->gauge(
      "beehive_transport_retransmits", labels,
      "Reliable transport: frames re-sent on ack timeout (lifetime)");
  published_.tx_acks =
      &reg->gauge("beehive_transport_acks_sent", labels,
                  "Reliable transport: standalone ack frames (lifetime)");
  published_.tx_dups = &reg->gauge(
      "beehive_transport_dup_frames_dropped", labels,
      "Reliable transport: receive-side dedup discards (lifetime)");
  published_.tx_reorder = &reg->gauge(
      "beehive_transport_reorder_buffered", labels,
      "Reliable transport: frames held for in-order delivery (lifetime)");
  published_.tx_abandoned = &reg->gauge(
      "beehive_transport_frames_abandoned", labels,
      "Reliable transport: frames dropped after the retransmit cap");
  published_.partitions =
      &reg->gauge("beehive_partitions_active", labels,
                  "Partitions currently injected by the fault plan");

  // Queue-pressure and cost-profiler cells (DESIGN.md §9).
  published_.pressure = &reg->gauge(
      "beehive_pressure", labels,
      "Queue-pressure score in [0,1): backlog / (backlog + drained + 1)");
  published_.runq_depth =
      &reg->gauge("beehive_runq_depth", labels,
                  "Run-queue tasks pending for this hive at report time");
  published_.runq_hwm =
      &reg->gauge("beehive_runq_hwm", labels,
                  "High-watermark of run-queue depth over the last metrics "
                  "window (resets each report)");
  published_.ringq_hwm = &reg->gauge(
      "beehive_ringq_hwm", labels,
      "High-watermark of lock-free run-queue ring occupancy over the last "
      "metrics window (DESIGN.md §12; zero without a ring runtime)");
  published_.drained_window =
      &reg->ring("beehive_runq_drained_window", labels);
  published_.egress_hwm = &reg->gauge(
      "beehive_egress_pending_hwm", labels,
      "High-watermark of frames pending in egress buffers this window");
  published_.cost_window = &reg->ring("beehive_cost_us_window", labels);

  // Overload control (DESIGN.md §10).
  published_.link_credits = &reg->gauge(
      "beehive_link_credits", labels,
      "Smallest remaining credit across outbound links (-1 = unlimited)");
  published_.link_stalled = &reg->gauge(
      "beehive_link_stalled_frames", labels,
      "Outbound frames waiting for link credit at report time");
  published_.degraded = &reg->gauge(
      "beehive_degraded", labels,
      "1 while the hive advertises its degraded credit window");

  // Optimizer-round latency by mode (DESIGN.md §13): non-zero only on the
  // hive hosting the collector bee. The full/incremental split is what the
  // incremental optimizer exists to improve, so it scrapes per mode.
  const auto round_gauges = [&](const char* mode, PlacementRoundStats* st) {
    MetricLabels mode_labels = labels;
    mode_labels.emplace_back("mode", mode);
    reg->gauge_fn(
        "beehive_placement_round_us", mode_labels,
        [st]() {
          return static_cast<double>(
              st->last_us.load(std::memory_order_relaxed));
        },
        "Wall-clock microseconds of the latest optimizer round (view "
        "assembly + scoring) in this mode");
    reg->gauge_fn(
        "beehive_placement_rounds_total", mode_labels,
        [st]() {
          return static_cast<double>(
              st->rounds.load(std::memory_order_relaxed));
        },
        "Optimizer rounds completed in this mode", /*counter_semantics=*/true);
    reg->gauge_fn(
        "beehive_placement_scored_total", mode_labels,
        [st]() {
          return static_cast<double>(
              st->scored.load(std::memory_order_relaxed));
        },
        "Bees scored by optimizer rounds in this mode",
        /*counter_semantics=*/true);
  };
  round_gauges("full", &round_full_);
  round_gauges("incremental", &round_incremental_);

  // Tail-latency attribution (DESIGN.md §11): silent trace loss must be
  // visible, so ring overwrites + sampler budget rejections scrape live.
  if (config_.tracer != nullptr) {
    reg->gauge_fn(
        "beehive_trace_dropped_total", labels,
        [tracer = config_.tracer]() {
          return static_cast<double>(tracer->trace_dropped_total());
        },
        "Trace events lost: span-ring overwrites plus tail-sampler "
        "budget rejections",
        /*counter_semantics=*/true);
  }
}

Hive::~Hive() = default;

void Hive::start() {
  arm_app_timers();
  arm_metrics_timer();
}

void Hive::inject(MessageEnvelope env) {
  counters_.injected.bump();  // single-writer: only the loop thread injects
  ensure_trace(env);
  trace_span(SpanKind::kIngress, env, kNoBee);
  route(env);
}

void Hive::inject_batch(std::span<MessageEnvelope> batch) {
  if (batch.empty()) return;
  counters_.injected.bump(batch.size());
  std::size_t i = 0;
  while (i < batch.size()) {
    // Batched activation: open a memoized run when the head of the batch
    // hits the dispatch memo, then feed consecutive messages through the
    // cached route under one bind. Epoch revalidation stays per message
    // (two counter compares — a handler can merge or migrate mid-batch)
    // and Map runs per message as the correctness guard; everything else
    // the memo amortizes is paid once per run.
    if (memo_.valid && !memo_in_use_ && memo_.type == batch[i].type() &&
        bees_epoch_ == memo_.bees_epoch &&
        registry_client_.stamp_valid(memo_.registry_stamp)) {
      std::uint64_t n = 0;
      memo_in_use_ = true;
      while (i < batch.size() && memo_.valid &&
             batch[i].type() == memo_.type &&
             bees_epoch_ == memo_.bees_epoch &&
             registry_client_.stamp_valid(memo_.registry_stamp)) {
        MessageEnvelope& env = batch[i];
        CellSet cells = memo_.binding->map(env);
        if (!(cells == memo_.cells)) break;
        ensure_trace(env);
        trace_span(SpanKind::kIngress, env, kNoBee);
        trace_span(SpanKind::kRegistryResolve, env, memo_.bee->id(), id_);
        deliver_local(*memo_.bee, env, memo_.transfers_expected, &memo_.cells,
                      &memo_.bound);
        ++i;
        ++n;
      }
      memo_in_use_ = false;
      counters_.routed_local.bump(n);
      if (n > 0) continue;
    }
    // This message missed the memo (or invalidated it): full route, one
    // message, then try to re-open a run on the next one.
    MessageEnvelope& env = batch[i];
    ensure_trace(env);
    trace_span(SpanKind::kIngress, env, kNoBee);
    route(env);
    ++i;
  }
}

void Hive::ensure_trace(MessageEnvelope& env) {
  if (env.trace_id() != 0) return;
  // Root ids are minted deterministically — (hive+1) tag over a per-hive
  // counter — so simulated runs stay bit-reproducible with tracing on.
  // hive+1 keeps trace 0 reserved for "untraced".
  std::uint64_t id = (static_cast<std::uint64_t>(id_) + 1) << 40 |
                     ++next_trace_;
  env.set_trace(id, 0, env_.now());
}

bool Hive::e2e_eligible(const MessageEnvelope& env) {
  if (env.trace_id() == 0) return false;
  if (env.causal_depth() > 0) return true;
  // Terminal depth-0 platform self-messages (timer ticks with no emission,
  // metrics reports) would swamp the distribution with pure queue delays.
  return env.type() != msg_type_id<TimerTick>() &&
         env.type() != msg_type_id<LocalMetricsReport>();
}

// ---------------------------------------------------------------------------
// Life of a message (paper §3)
// ---------------------------------------------------------------------------

void Hive::route(const MessageEnvelope& env) {
  if (memo_.valid && memo_.type == env.type() && route_memoized(env)) return;
  apps_.for_each_subscriber(
      env.type(), [&](App& app, const HandlerBinding& binding) {
        if (binding.kind == HandlerBinding::Kind::kForeachLocal) {
          dispatch_foreach_local(app.id(), binding.foreach_dict, env);
        } else {
          dispatch_mapped(app, binding, env);
        }
      });
}

bool Hive::route_memoized(const MessageEnvelope& env) {
  if (bees_epoch_ != memo_.bees_epoch ||
      !registry_client_.stamp_valid(memo_.registry_stamp)) {
    memo_.valid = false;  // a merge/migration/invalidation happened: rebuild
    return false;
  }
  // Map still runs per message (its result depends on the payload); only
  // when it reproduces the memoized cells is the cached route usable.
  CellSet cells = memo_.binding->map(env);
  if (!(cells == memo_.cells)) return false;
  trace_span(SpanKind::kRegistryResolve, env, memo_.bee->id(), id_);
  counters_.routed_local.bump();
  const bool outer = !memo_in_use_;
  memo_in_use_ = true;
  deliver_local(*memo_.bee, env, memo_.transfers_expected, &memo_.cells,
                &memo_.bound);
  if (outer) memo_in_use_ = false;
  return true;
}

void Hive::maybe_install_memo(App& app, const HandlerBinding& binding,
                              CellSet cells, const ResolveOutcome& out) {
  if (memo_in_use_) return;  // a live handler borrows the current memo
  if (binding.kind != HandlerBinding::Kind::kMapped) return;
  if (apps_.subscriber_count(binding.msg_type) != 1) return;
  Bee* bee = find_bee(out.bee);
  if (bee == nullptr) return;
  memo_.valid = true;
  memo_.type = binding.msg_type;
  memo_.binding = &binding;
  memo_.cells = std::move(cells);
  memo_.registry_stamp = registry_client_.stamp(app.id(), memo_.cells);
  memo_.bees_epoch = bees_epoch_;
  memo_.bee = bee;
  memo_.transfers_expected = out.transfers_expected;
  memo_.bound.handle = &binding.handle;
  memo_.bound.policy = AccessPolicy::cells_view(memo_.cells);
}

void Hive::dispatch_mapped(App& app, const HandlerBinding& binding,
                           const MessageEnvelope& env) {
  CellSet cells = binding.map(env);
  if (cells.empty()) return;  // Map returned nothing: app ignores this one.

  ResolveOutcome out = registry_client_.resolve_or_create(
      app.id(), cells, app.pinned(), env_.now());
  if (out.bee == kNoBee) {
    // Registry unreachable (lossy RPC channel, retries exhausted): the
    // message is dropped, like a control-channel loss without transport.
    ++counters_.registry_failures;
    if (config_.recorder != nullptr) {
      config_.recorder->note(id_, "registry resolve failed app=" +
                                      app.name() + "; dropped msg type=" +
                                      std::to_string(env.type()));
    }
    BH_WARN << "hive " << id_ << ": registry resolve failed; dropping "
            << "message of type " << env.type();
    return;
  }
  trace_span(SpanKind::kRegistryResolve, env, out.bee, out.hive);
  if (!out.losers.empty()) {
    ++counters_.merges_started;
    start_merges(app.id(), out);
  }
  // `cells` is borrowed down the synchronous delivery chain so the local
  // path binds the handler's access policy without a second Map run.
  deliver(out.bee, app.id(), out.hive, env, out.transfers_expected, &cells);
  if (out.hive == id_ && out.losers.empty() && !out.created) {
    maybe_install_memo(app, binding, std::move(cells), out);
  }
}

void Hive::dispatch_foreach_local(AppId app, const std::string& dict,
                                  const MessageEnvelope& env) {
  // Snapshot ids first: processing can mutate the bee table (merges).
  std::vector<BeeId> targets;
  targets.reserve(bees_.size());
  for (const auto& [id, bee] : bees_) {
    if (bee->app() != app) continue;
    const Dict* d = bee->store().find_dict(dict);
    if (d != nullptr && !d->empty()) targets.push_back(id);
  }
  for (BeeId id : targets) {
    if (Bee* bee = find_bee(id)) deliver_local(*bee, env);
  }
}

void Hive::deliver(BeeId bee, AppId app, HiveId hive,
                   const MessageEnvelope& env,
                   std::uint64_t min_transfers, const CellSet* mapped) {
  if (hive == id_) {
    Bee* local = find_bee(bee);
    if (local == nullptr) {
      // About to instantiate: make sure the bee didn't just lose a merge
      // (e.g. a held-back message re-routed to a winner that was itself
      // superseded). Never resurrect a dead bee — chase the successor.
      BeeId successor = registry_.live_successor(bee);
      if (successor == kNoBee) {
        if (config_.recorder != nullptr) {
          config_.recorder->note(
              id_, "dropped message for vanished bee " + to_string_bee(bee));
        }
        BH_WARN << "hive " << id_ << ": dropping message for vanished bee "
                << to_string_bee(bee);
        return;
      }
      if (successor != bee) {
        auto new_hive = registry_client_.hive_of(successor, env_.now());
        if (!new_hive.has_value()) {
          ++counters_.registry_failures;
          return;
        }
        deliver(successor, app, *new_hive, env,
                registry_.expected_transfers(successor), mapped);
        return;
      }
      local = &ensure_local_bee(bee, app);
    }
    ++counters_.routed_local;
    deliver_local(*local, env, min_transfers, mapped);
  } else {
    ++counters_.routed_remote;
    send_app_msg(hive, bee, app, min_transfers, env);
  }
}

void Hive::shed_at_admission(Bee& bee, const MessageEnvelope& env) {
  ++counters_.shed_total;
  trace_span(SpanKind::kShed, env, bee.id());
  if (tracing() && env.trace_id() != 0) {
    Duration e2e = env_.now() - env.trace_root_at();
    if (e2e < 0) e2e = 0;
    config_.tracer->note_trace_end(env.trace_id(), e2e, /*errored=*/true);
  }
}

void Hive::deliver_local(Bee& bee, const MessageEnvelope& env,
                         std::uint64_t min_transfers, const CellSet* mapped,
                         const Bound* pre) {
  bee.note_required_transfers(min_transfers);
  bee.note_receive(env.from_bee(), env.from_hive(), env.wire_size(),
                   /*count_provenance=*/!env.is<TimerTick>(), env.type());
  // Run-queue occupancy gate (DESIGN.md §12): with a ring_limit armed,
  // shed non-priority traffic at admission while the hive's run queue sits
  // at/above the limit — the loop is visibly saturated, and queueing more
  // work behind the backlog only lengthens every latency tail. Apps with
  // no overload config pay one load and a never-taken branch; control
  // traffic is never shed.
  if (const OverloadConfig* oc = bee.overload(); oc != nullptr)
      [[unlikely]] {
    if (oc->bounded && oc->ring_limit != 0 && !is_priority_type(env.type()) &&
        env_.run_depth(id_) >= oc->ring_limit) {
      shed_at_admission(bee, env);
      return;
    }
  }
  // Hold when the transfer fence is up — and also behind an existing
  // holdback, so per-bee arrival order is preserved. The borrowed Map
  // result cannot outlive this call, so held messages recompute it when
  // the holdback drains.
  if (bee.blocked() || bee.holdback_size() > 0) {
    trace_span(SpanKind::kHold, env, bee.id());
    // Bounded mailbox (DESIGN.md §10): consult the app's overload policy
    // once the holdback is at its limit. Cold path — steady-state traffic
    // never holds, so the fast path above stays allocation-free.
    const OverloadConfig* oc = bee.overload();
    if (oc != nullptr && oc->bounded &&
        bee.holdback_size() >= oc->mailbox_limit) {
      const Bee::HoldOutcome out =
          bee.hold_bounded(env, *oc, &Hive::is_priority_type);
      if (out != Bee::HoldOutcome::kHeld) {
        ++counters_.shed_total;
        // A mailbox shed terminates the message's causal chain: record the
        // terminal span and let the tail sampler retain the trace (sheds
        // always qualify, independent of latency).
        trace_span(SpanKind::kShed, env, bee.id());
        if (tracing() && env.trace_id() != 0) {
          Duration e2e = env_.now() - env.trace_root_at();
          if (e2e < 0) e2e = 0;
          config_.tracer->note_trace_end(env.trace_id(), e2e,
                                         /*errored=*/true);
        }
        return;
      }
      if (oc->policy == OverloadPolicy::kBlockSender) {
        // Saturation signal for admission control; cleared once the
        // holdback drains (drain() / report_metrics()).
        mailbox_overrun_.store(true, std::memory_order_relaxed);
      }
      return;
    }
    bee.hold(env);
    return;
  }
  process(bee, env, mapped, pre);
}

void Hive::process(Bee& bee, const MessageEnvelope& env,
                   const CellSet* mapped, const Bound* pre) {
  // `pre` is the dispatch memo's already-bound handler+policy; without it,
  // bind here (the bound policy lives on this frame, so the transaction
  // borrows it either way — no AccessPolicy copies on any path).
  std::optional<Bound> bound_storage;
  const Bound* bound = pre;
  if (bound == nullptr) {
    App* app = apps_.find(bee.app());
    assert(app != nullptr && "bee refers to unknown app");
    bound_storage = bind(*app, env, mapped);
    if (!bound_storage) return;
    bound = &*bound_storage;
  }

  counters_.handler_runs.bump();
  bee.window().handler_invocations += 1;
  bee.total().handler_invocations += 1;

  const TimePoint started = env_.now();
  Duration queued = started - env.emitted_at();
  if (queued < 0) queued = 0;
  trace_span(SpanKind::kHandlerStart, env, bee.id());

  // Hand the handler's transaction the hive's reusable log storage unless a
  // reentrant handler already holds it. `busy_reset` is declared before ctx
  // so the flag clears only after the transaction (which may roll back
  // through the scratch) is destroyed.
  Txn::Scratch* scratch = nullptr;
  if (!txn_scratch_busy_) {
    txn_scratch_busy_ = true;
    scratch = &txn_scratch_;
  }
  struct BusyReset {
    bool* flag;
    ~BusyReset() {
      if (flag != nullptr) *flag = false;
    }
  } busy_reset{scratch != nullptr ? &txn_scratch_busy_ : nullptr};
  AppContext ctx(bee.store(), &bound->policy, bee.app(), bee.id(),
                 id_, started, env.type(), scratch);
  TraceLogScope log_scope(env.trace_id(), env.causal_depth());
  // Cost sampling: every activation pays the tick (one increment + mask
  // test); the sampled Nth additionally reads the thread CPU clock around
  // the handler and charges the measured time to the bee and its cells.
  const bool sampled = profiler_.tick();
  const std::uint64_t cpu0 = sampled ? thread_cpu_now_ns() : 0;
  try {
    (*bound->handle)(ctx, env);
    ctx.state().commit();
  } catch (const std::exception& e) {
    // Atomic handler semantics: roll state back, drop emissions.
    ctx.state().rollback();
    ++counters_.handler_failures;
    bee.window().handler_failures += 1;
    bee.total().handler_failures += 1;
    if (sampled) {
      const std::uint64_t dns = thread_cpu_now_ns() - cpu0;
      bee.note_cost(dns);
      profiler_.attribute(ctx.state().policy(), bee.app(), dns);
    }
    const Duration ran_failed = env_.now() - started;
    bee.note_latency(queued, ran_failed);
    queue_total_.record(queued);
    handler_total_.record(ran_failed);
    trace_span(SpanKind::kHandlerEnd, env, bee.id(), 0, /*failed=*/1);
    // Failed traces always qualify for tail retention.
    if (tracing() && e2e_eligible(env)) {
      Duration e2e = env_.now() - env.trace_root_at();
      if (e2e < 0) e2e = 0;
      config_.tracer->note_trace_end(env.trace_id(), e2e, /*errored=*/true);
    }
    // Failure path only: resolve the app name for diagnostics (the hot
    // path above no longer needs the App object at all).
    const App* app = apps_.find(bee.app());
    const std::string app_name =
        app != nullptr ? app->name() : std::to_string(bee.app());
    if (config_.recorder != nullptr) {
      config_.recorder->note(id_, "handler failure app=" + app_name +
                                      " bee=" + to_string_bee(bee.id()) +
                                      ": " + e.what());
    }
    BH_WARN << "handler failure in app " << app_name << " on hive " << id_
            << ": " << e.what();
    return;
  }

  if (sampled) {
    const std::uint64_t dns = thread_cpu_now_ns() - cpu0;
    bee.note_cost(dns);
    profiler_.attribute(ctx.state().policy(), bee.app(), dns);
  }
  bee.note_txn_ops(ctx.state().writes().size());

  const TimePoint ended = env_.now();
  Duration ran = ended - started;
  if (ran < 0) ran = 0;
  // One bucket computation per value, fanned out to every histogram that
  // records it (bee window/total + hive total).
  const auto qv = static_cast<std::uint64_t>(queued);
  const auto rv = static_cast<std::uint64_t>(ran);
  const std::uint32_t qidx = LatencyHistogram::index(qv);
  const std::uint32_t ridx = LatencyHistogram::index(rv);
  bee.note_latency_at(qidx, qv, ridx, rv);
  queue_total_.record_at(qidx, qv);
  handler_total_.record_at(ridx, rv);
  trace_span(SpanKind::kHandlerEnd, env, bee.id(), ctx.emitted().size());

  // A handler that emits nothing terminates its causal chain: the gap from
  // the trace root's ingress to here is one end-to-end latency sample.
  if (ctx.emitted().empty() && e2e_eligible(env)) {
    Duration e2e = ended - env.trace_root_at();
    if (e2e < 0) e2e = 0;
    const auto ev = static_cast<std::uint64_t>(e2e);
    const std::uint32_t eidx = LatencyHistogram::index(ev);
    e2e_window_.record_at(eidx, ev);
    e2e_total_.record_at(eidx, ev);
    // Tail-sampling decision point: slow traces get their spans copied
    // aside before the ring can overwrite them.
    if (tracing()) {
      config_.tracer->note_trace_end(env.trace_id(), e2e, /*errored=*/false);
    }
  }

  replicate_txn(bee, ctx.state());

  // Flush emissions. Routing is deferred by dispatch_delay so that long
  // emission chains are iterative events, not recursion, and so a message
  // emitted "now" is observably later than its cause.
  for (MessageEnvelope& out : ctx.emitted()) {
    out.inherit_trace(env);
    bee.note_emit(env.type(), out.type(), out.wire_size());
    trace_span(SpanKind::kEnqueue, out, bee.id());
    env_.schedule_after(id_, config_.dispatch_delay,
                        [this, m = std::move(out)]() { route_deferred(m); });
  }
  for (auto [target_bee, to_hive] : ctx.migration_orders()) {
    request_migration(target_bee, to_hive);
  }
  if (!ctx.decisions().empty()) record_decisions(env, ctx.decisions());
  if (ctx.round_note().has_value()) {
    const PlacementRoundNote& note = *ctx.round_note();
    PlacementRoundStats& stats =
        note.mode == "full" ? round_full_ : round_incremental_;
    stats.last_us.store(note.duration_us, std::memory_order_relaxed);
    stats.rounds.fetch_add(1, std::memory_order_relaxed);
    stats.scored.fetch_add(note.scored, std::memory_order_relaxed);
    stats.moves.fetch_add(note.moves, std::memory_order_relaxed);
  }
}

void Hive::record_decisions(const MessageEnvelope& env,
                            std::vector<PlacementDecision>& decisions) {
  for (const PlacementDecision& d : decisions) {
    trace_span(SpanKind::kDecision, env, d.bee, d.to, d.accepted ? 1 : 0);
    if (config_.recorder != nullptr || Logger::instance().enabled(
                                           LogLevel::kDebug)) {
      std::string line =
          "decision bee=" + to_string_bee(d.bee) + " from=" +
          std::to_string(d.from) + " to=" + std::to_string(d.to) +
          (d.accepted ? " accepted" : " rejected") + " reason=" + d.reason +
          " msgs=" + std::to_string(d.msgs_from_target) + "/" +
          std::to_string(d.msgs_total) +
          " score=" + std::to_string(d.score);
      if (!d.signal.empty()) {
        // Cost/pressure-driven strategies say which signal ranked the bee
        // and what it measured, so the log explains the *why*, not just
        // the what.
        line += " signal=" + d.signal +
                " cost_us=" + std::to_string(d.cost_us) +
                " pressure=" + std::to_string(d.pressure_from) + "->" +
                std::to_string(d.pressure_to);
      }
      if (config_.recorder != nullptr) {
        config_.recorder->note(id_, line);
      }
      BH_DEBUG << line;
    }
  }
}

void Hive::route_deferred(const MessageEnvelope& env) {
  trace_span(SpanKind::kDequeue, env, env.from_bee());
  route(env);
}

std::optional<Hive::Bound> Hive::bind(App& app, const MessageEnvelope& env,
                                      const CellSet* mapped) const {
  // `mapped` is the dispatch layer's Map result for this message+app; the
  // policy borrows it (it outlives the handler: process() runs inside the
  // dispatch frame that owns it). Without it — holdback drains, foreach
  // deliveries — Map runs here, once.
  if (env.is<TimerTick>()) {
    const TimerTick& tick = env.as<TimerTick>();
    if (tick.app != app.id()) return std::nullopt;
    const TimerBinding* t = app.timer(tick.timer_id);
    if (t == nullptr) return std::nullopt;
    Bound b;
    b.handle = &t->handle;
    if (t->kind != HandlerBinding::Kind::kMapped) {
      b.policy = AccessPolicy::local_dict(t->foreach_dict);
    } else if (mapped != nullptr) {
      b.policy = AccessPolicy::cells_view(*mapped);
    } else {
      b.policy = AccessPolicy::cells(t->map(env));
    }
    return b;
  }
  const HandlerBinding* hb = app.binding_for(env.type());
  if (hb == nullptr) return std::nullopt;
  Bound b;
  b.handle = &hb->handle;
  if (hb->kind != HandlerBinding::Kind::kMapped) {
    b.policy = AccessPolicy::local_dict(hb->foreach_dict);
  } else if (mapped != nullptr) {
    b.policy = AccessPolicy::cells_view(*mapped);
  } else {
    b.policy = AccessPolicy::cells(hb->map(env));
  }
  return b;
}

Bee& Hive::ensure_local_bee(BeeId id, AppId app) {
  auto it = bees_.find(id);
  if (it == bees_.end()) {
    it = bees_.emplace(id, std::make_unique<Bee>(id, app)).first;
    ++bees_epoch_;
    // Point the bee at its app's mailbox bound (immutable deployment
    // config on the shared AppSet) so the hold path needs no app lookup.
    if (const App* a = apps_.find(app)) {
      it->second->set_overload(&a->overload());
    }
  }
  return *it->second;
}

Bee* Hive::find_bee(BeeId id) {
  auto it = bees_.find(id);
  return it == bees_.end() ? nullptr : it->second.get();
}

const Bee* Hive::find_bee(BeeId id) const {
  auto it = bees_.find(id);
  return it == bees_.end() ? nullptr : it->second.get();
}

std::vector<Bee*> Hive::local_bees() {
  std::vector<Bee*> out;
  out.reserve(bees_.size());
  for (auto& [_, bee] : bees_) out.push_back(bee.get());
  return out;
}

void Hive::send_frame(HiveId to, Bytes frame) {
  assert(to != id_ && "send_frame to self; use the local path");
  append_egress(to, frame);
}

void Hive::append_egress(HiveId to, std::string_view frame) {
  if (egress_.size() <= to) egress_.resize(to + 1);
  Egress& e = egress_[to];
  if (e.count == 0) {
    e.buf.u8(static_cast<std::uint8_t>(FrameKind::kBatch));
    e.buf.u32(0);  // frame count; patched at flush
  }
  e.buf.varint(frame.size());
  e.buf.raw(frame);
  ++e.count;
  ++egress_pending_;
  if (egress_pending_ > egress_hwm_window_) {
    egress_hwm_window_ = egress_pending_;
  }
  if (!egress_scheduled_) {
    egress_scheduled_ = true;
    // +0 delay: the flush runs after every event of the current loop turn
    // has appended its frames, so one turn's fan-out to a destination rides
    // one wire unit. Captures only `this` — small enough that the closure
    // itself does not allocate.
    env_.schedule_after(id_, 0, [this]() { flush_egress(); });
  }
}

void Hive::flush_egress() {
  egress_scheduled_ = false;
  egress_pending_ = 0;
  for (std::size_t i = 0; i < egress_.size(); ++i) {
    Egress& e = egress_[i];
    if (e.count == 0) continue;
    e.buf.patch_u32(1, e.count);
    if (tracing()) {
      // Trace-0 link span: the batch aggregates many messages, so the
      // assembler re-attaches it to timelines by interval overlap.
      TraceEvent ev;
      ev.at = env_.now();
      ev.kind = SpanKind::kBatchFlush;
      ev.hive = id_;
      ev.aux = e.count;
      ev.aux2 = i;
      config_.tracer->record(ev);
    }
    e.count = 0;
    // Move the accumulated batch out (the buffer restarts empty); the whole
    // batch is one wire unit from here on — one meter update, one fault
    // decision, one delivery closure, one ack/retransmit under transport.
    Bytes batch = std::move(e.buf).take();
    const HiveId to = static_cast<HiveId>(i);
    if (transport_) {
      transport_->send(to, std::move(batch));
    } else {
      env_.send_frame(id_, to, std::move(batch));
    }
  }
}

void Hive::send_app_msg(HiveId to, BeeId bee, AppId app,
                        std::uint64_t min_transfers,
                        const MessageEnvelope& env) {
  // Serialize the AppMsg frame through the reusable scratch chain (frame →
  // envelope → payload). append_egress copies the bytes into the batch
  // before anything can reenter, so one set of scratch buffers suffices and
  // the steady-state remote send touches the heap only for buffer growth.
  frame_scratch_.clear();
  frame_scratch_.u8(static_cast<std::uint8_t>(FrameKind::kAppMsg));
  frame_scratch_.u64(bee);
  frame_scratch_.u32(app);
  frame_scratch_.varint(min_transfers);
  env_scratch_.clear();
  env.encode_to(env_scratch_, payload_scratch_);
  frame_scratch_.str(env_scratch_.bytes());
  append_egress(to, frame_scratch_.bytes());
}

void Hive::on_wire(std::string_view frame) {
  if (!frame.empty()) {
    const auto kind = static_cast<FrameKind>(
        static_cast<unsigned char>(frame[0]));
    if (kind == FrameKind::kReliable || kind == FrameKind::kAck) {
      if (!transport_) {
        BH_WARN << "hive " << id_ << ": reliable frame but transport is "
                   "disabled; dropping";
        return;
      }
      transport_->on_wire(frame,
                          [this](std::string_view inner) {
                            dispatch_frame(inner);
                          });
      return;
    }
  }
  dispatch_frame(frame);
}

void Hive::dispatch_frame(std::string_view frame) {
  ByteReader r(frame);
  auto kind = static_cast<FrameKind>(r.u8());
  switch (kind) {
    case FrameKind::kAppMsg:
      handle_app_msg(r);
      break;
    case FrameKind::kBatch: {
      // Unpack the batch: each inner frame re-enters dispatch_frame as if
      // it had arrived alone, in append order. Batches never nest.
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t len = r.varint();
        dispatch_frame(r.view(len));
      }
      break;
    }
    case FrameKind::kMergeCmd:
      handle_merge_cmd(MergeCmdFrame::decode(r));
      break;
    case FrameKind::kMigrateXfer:
      handle_migrate_xfer(MigrateXferFrame::decode(r));
      break;
    case FrameKind::kMigrateAck:
      handle_migrate_ack(MigrateAckFrame::decode(r));
      break;
    case FrameKind::kMigrationOrder: {
      MigrationOrderFrame f = MigrationOrderFrame::decode(r);
      request_migration(f.bee, f.to_hive);
      break;
    }
    case FrameKind::kReplicaTxn:
      handle_replica_txn(ReplicaTxnFrame::decode(r));
      break;
    case FrameKind::kReplicaSnapshot:
      handle_replica_snapshot(ReplicaSnapshotFrame::decode(r));
      break;
  }
}

void Hive::handle_app_msg(ByteReader& r) {
  // Decoded in place from the frame bytes: header fields are read directly
  // and the envelope payload is borrowed (from_wire materializes the typed
  // body from a view into `env_bytes`, which outlives this synchronous
  // delivery) — the receive path's only unavoidable allocation is the body
  // object itself.
  const BeeId frame_target = r.u64();
  const AppId frame_app = r.u32();
  const std::uint64_t frame_min = r.varint();
  const std::uint64_t env_len = r.varint();
  std::string_view env_bytes = r.view(env_len);
  MessageEnvelope env = MessageEnvelope::from_wire(env_bytes);
  if (Bee* bee = find_bee(frame_target)) {
    deliver_local(*bee, env, frame_min);
    return;
  }
  // Not instantiated here: either it is ours (lazy creation) or it moved
  // and we must forward (sender's cache was stale).
  BeeId target = registry_.live_successor(frame_target);
  if (target == kNoBee) {
    BH_WARN << "hive " << id_ << ": dropping message for unknown bee "
            << to_string_bee(frame_target);
    return;
  }
  auto hive = registry_client_.hive_of(target, env_.now());
  if (!hive.has_value()) {
    ++counters_.registry_failures;
    return;
  }
  // The fence value only meant something for the original target; when
  // retargeting to a merge successor, re-fence at the successor's current
  // expected count — it inherited the dead bee's whole transfer ledger, so
  // this conservatively covers every transfer still chasing it.
  std::uint64_t min = target == frame_target
                          ? frame_min
                          : registry_.expected_transfers(target);
  if (*hive == id_) {
    deliver_local(ensure_local_bee(target, frame_app), env, min);
  } else {
    ++counters_.forwarded;
    // Stale-cache forward (rare): re-frame through the scratch writer,
    // reusing the received envelope bytes verbatim.
    frame_scratch_.clear();
    frame_scratch_.u8(static_cast<std::uint8_t>(FrameKind::kAppMsg));
    frame_scratch_.u64(target);
    frame_scratch_.u32(frame_app);
    frame_scratch_.varint(min);
    frame_scratch_.str(env_bytes);
    append_egress(*hive, frame_scratch_.bytes());
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void Hive::arm_app_timers() {
  for (const auto& app : apps_.apps()) {
    for (const TimerBinding& timer : app->timers()) {
      if (timer.kind == HandlerBinding::Kind::kMapped &&
          id_ != config_.timer_master) {
        continue;  // mapped ticks fire once cluster-wide.
      }
      arm_timer(*app, timer);
    }
  }
}

void Hive::arm_timer(App& app, const TimerBinding& timer) {
  env_.schedule_after(id_, timer.period, [this, &app, &timer]() {
    if (env_.now() > config_.timers_until) return;
    fire_timer(app, timer);
    arm_timer(app, timer);
  });
}

void Hive::fire_timer(App& app, const TimerBinding& timer) {
  MessageEnvelope env = MessageEnvelope::make(
      TimerTick{app.id(), timer.id}, 0, kNoBee, id_, env_.now());
  ensure_trace(env);
  if (timer.kind == HandlerBinding::Kind::kMapped) {
    CellSet cells = timer.map(env);
    if (cells.empty()) return;
    ResolveOutcome out = registry_client_.resolve_or_create(
        app.id(), cells, app.pinned(), env_.now());
    if (out.bee == kNoBee) {
      ++counters_.registry_failures;
      return;  // registry unreachable; this tick is lost.
    }
    if (!out.losers.empty()) {
      ++counters_.merges_started;
      start_merges(app.id(), out);
    }
    deliver(out.bee, app.id(), out.hive, env, out.transfers_expected, &cells);
  } else {
    dispatch_foreach_local(app.id(), timer.foreach_dict, env);
  }
}

void Hive::arm_metrics_timer() {
  if (config_.metrics_period <= 0) return;
  env_.schedule_after(id_, config_.metrics_period, [this]() {
    if (env_.now() > config_.timers_until) return;
    report_metrics();
    arm_metrics_timer();
  });
}

void Hive::report_metrics() {
  LocalMetricsReport report;
  report.hive = id_;
  report.at = env_.now();
  LatencyHistogram handler_window;
  for (auto& [id, bee] : bees_) {
    BeeMetricsSample sample;
    sample.bee = id;
    sample.app = bee->app();
    if (const App* a = apps_.find(bee->app())) sample.app_name = a->name();
    sample.hive = id_;
    const BeeMetrics& w = bee->window();
    sample.msgs_in = w.msgs_in;
    sample.msgs_out = w.msgs_out;
    sample.bytes_in = w.bytes_in;
    sample.bytes_out = w.bytes_out;
    sample.handler_invocations = w.handler_invocations;
    sample.handler_failures = w.handler_failures;
    sample.queue_latency = w.queue_latency;
    sample.handler_latency = w.handler_latency;
    handler_window.merge(w.handler_latency);
    sample.cost_us = w.cost_ns_sampled * profiler_.scale() / 1000;
    sample.cost_samples = w.cost_samples;
    sample.txn_ops = w.txn_ops;
    sample.cells = bee->store().all_cells().size();
    sample.state_bytes = bee->store().byte_size();
    sample.holdback = bee->holdback_size();
    if (const App* app = apps_.find(bee->app())) {
      sample.pinned = app->pinned();
    }
    for (const auto& [key, count] : w.inbound_hive) {
      sample.sources.push_back({key.first, key.second, count});
    }
    for (const auto& [type, count] : w.inbound_types) {
      sample.in_types.push_back({type, count});
    }
    for (const auto& [pair, count] : w.causation) {
      sample.causations.push_back({pair.first, pair.second, count});
    }
    report.cost_us += sample.cost_us;
    report.hive_cells += sample.cells;
    report.bees.push_back(std::move(sample));
    bee->reset_window();
  }
  report.e2e_latency = e2e_window_;
  e2e_window_.reset();
  report.transport = transport_counters();
  report.migration_aborts = counters_.migration_aborts;
  report.partitions_active =
      config_.faults != nullptr
          ? static_cast<std::uint32_t>(config_.faults->partitions_active())
          : 0;

  // Queue pressure: how much work is waiting relative to how much the hive
  // got through this window. backlog counts the run queue, messages held
  // behind transfer fences, and frames parked in egress buffers; the +1
  // keeps an idle hive at exactly 0.
  std::uint64_t queue_depth = 0;
  for (const BeeMetricsSample& s : report.bees) queue_depth += s.holdback;
  const QueueStats qs = env_.queue_stats(id_);
  const std::uint64_t drained_window =
      qs.drained >= prev_drained_ ? qs.drained - prev_drained_ : 0;
  prev_drained_ = qs.drained;
  const std::uint64_t backlog = qs.depth + queue_depth + egress_pending_;
  report.pressure = static_cast<double>(backlog) /
                    static_cast<double>(backlog + drained_window + 1);
  report.runq_depth = qs.depth;
  report.runq_hwm = qs.hwm;
  report.ringq_hwm = qs.ring_hwm;
  report.ring_overflowed = qs.overflowed;
  report.drained_window = drained_window;
  report.egress_hwm = egress_hwm_window_;
  egress_hwm_window_ = egress_pending_;

  // Overload accounting (DESIGN.md §10): total sheds (mailbox + link),
  // frames currently stalled awaiting credit, and the tightest remaining
  // credit across outbound links.
  report.shed_total = counters_.shed_total.get();
  report.stalled_frames = transport_ != nullptr ? transport_->stalled_now() : 0;
  report.credits = transport_ != nullptr ? transport_->credits_available() : -1;

  // Re-evaluate the kBlockSender saturation flag: once every bounded
  // holdback has drained to below half its limit, admit producers again.
  if (mailbox_overrun_.load(std::memory_order_relaxed)) {
    bool still_full = false;
    for (const auto& [bid, bee] : bees_) {
      const OverloadConfig* oc = bee->overload();
      if (oc != nullptr && oc->bounded &&
          bee->holdback_size() >= oc->mailbox_limit / 2) {
        still_full = true;
        break;
      }
    }
    if (!still_full) {
      mailbox_overrun_.store(false, std::memory_order_relaxed);
    }
  }

  // Refresh the cross-thread health snapshot (independent of whether a
  // metrics registry is attached: /health.json works without /metrics).
  health_.pressure.store(report.pressure, std::memory_order_relaxed);
  health_.retransmit_rate.store(
      report.transport.data_frames > 0
          ? static_cast<double>(report.transport.retransmits) /
                static_cast<double>(report.transport.data_frames)
          : 0.0,
      std::memory_order_relaxed);
  health_.handler_p99_us.store(handler_window.p99(),
                               std::memory_order_relaxed);
  health_.queue_depth.store(queue_depth, std::memory_order_relaxed);
  health_.runq_depth.store(qs.depth, std::memory_order_relaxed);
  health_.ringq_hwm.store(qs.ring_hwm, std::memory_order_relaxed);
  health_.cost_us.store(report.cost_us, std::memory_order_relaxed);
  health_.shed_total.store(report.shed_total, std::memory_order_relaxed);
  health_.stalled_frames.store(report.stalled_frames,
                               std::memory_order_relaxed);
  health_.credits.store(report.credits, std::memory_order_relaxed);
  {
    const std::uint64_t shed_delta =
        report.shed_total >= prev_shed_ ? report.shed_total - prev_shed_ : 0;
    const TimePoint dt = report.at - prev_report_at_;
    health_.shed_per_s.store(
        prev_report_at_ > 0 && dt > 0
            ? static_cast<double>(shed_delta) * 1e6 / static_cast<double>(dt)
            : 0.0,
        std::memory_order_relaxed);
    prev_shed_ = report.shed_total;
    prev_report_at_ = report.at;
  }

  // Graceful degradation (DESIGN.md §10): when the health score falls below
  // the configured low-water mark, advertise the reduced credit window on
  // every inbound link (piggybacked on the next acks) so peers throttle
  // traffic toward us. Hysteresis (+5 points) prevents flapping at the
  // threshold; the decision is recomputed once per metrics window, from the
  // same event-driven inputs on both runtimes — no wall clock, no RNG.
  if (config_.degrade_below_score > 0.0) {
    const double score = health().score();
    const bool was_degraded = degraded_.load(std::memory_order_relaxed);
    bool now_degraded = was_degraded;
    if (!was_degraded && score < config_.degrade_below_score) {
      now_degraded = true;
    } else if (was_degraded && score >= config_.degrade_below_score + 5.0) {
      now_degraded = false;
    }
    if (now_degraded != was_degraded) {
      degraded_.store(now_degraded, std::memory_order_relaxed);
      if (transport_ != nullptr) transport_->set_degraded(now_degraded);
    }
  }
  report.degraded = degraded_.load(std::memory_order_relaxed);

  if (config_.metrics != nullptr) {
    const std::uint64_t runs = counters_.handler_runs;
    publish_window(report, runs - prev_handler_runs_, queue_depth);
    prev_handler_runs_ = runs;
  }
  inject(MessageEnvelope::make(std::move(report), 0, kNoBee, id_,
                               env_.now()));
}

HiveHealth Hive::health() const {
  HiveHealth h;
  h.hive = id_;
  h.pressure = health_.pressure.load(std::memory_order_relaxed);
  h.retransmit_rate =
      health_.retransmit_rate.load(std::memory_order_relaxed);
  h.suspected = false;
  h.handler_p99_us = health_.handler_p99_us.load(std::memory_order_relaxed);
  h.queue_depth = health_.queue_depth.load(std::memory_order_relaxed);
  h.runq_depth = health_.runq_depth.load(std::memory_order_relaxed);
  h.ringq_hwm = health_.ringq_hwm.load(std::memory_order_relaxed);
  h.handler_failures = counters_.handler_failures;
  h.cost_us_window = health_.cost_us.load(std::memory_order_relaxed);
  h.shed_total = health_.shed_total.load(std::memory_order_relaxed);
  h.shed_per_s = health_.shed_per_s.load(std::memory_order_relaxed);
  h.credits = health_.credits.load(std::memory_order_relaxed);
  h.stalled = health_.stalled_frames.load(std::memory_order_relaxed);
  h.degraded = degraded_.load(std::memory_order_relaxed);
  h.trace_dropped =
      config_.tracer != nullptr ? config_.tracer->trace_dropped_total() : 0;
  return h;
}

void Hive::publish_window(const LocalMetricsReport& report,
                          std::uint64_t window_msgs,
                          std::uint64_t queue_depth) {
  published_.msgs_window->push(report.at,
                               static_cast<double>(window_msgs));
  published_.e2e_p99_window->push(
      report.at, static_cast<double>(report.e2e_latency.p99()));
  published_.bees->set(static_cast<double>(bees_.size()));
  published_.cells->set(static_cast<double>(report.hive_cells));
  published_.queue_depth->set(static_cast<double>(queue_depth));
  published_.e2e->merge(report.e2e_latency);
  for (const BeeMetricsSample& s : report.bees) {
    published_.queue->merge(s.queue_latency);
    published_.handler->merge(s.handler_latency);
  }
  const TransportCounters& t = report.transport;
  published_.tx_data->set(static_cast<double>(t.data_frames));
  published_.tx_retransmits->set(static_cast<double>(t.retransmits));
  published_.tx_acks->set(static_cast<double>(t.acks_sent));
  published_.tx_dups->set(static_cast<double>(t.dup_frames_dropped));
  published_.tx_reorder->set(static_cast<double>(t.reorder_buffered));
  published_.tx_abandoned->set(static_cast<double>(t.frames_abandoned));
  published_.partitions->set(static_cast<double>(report.partitions_active));
  published_.pressure->set(report.pressure);
  published_.runq_depth->set(static_cast<double>(report.runq_depth));
  published_.runq_hwm->set(static_cast<double>(report.runq_hwm));
  published_.ringq_hwm->set(static_cast<double>(report.ringq_hwm));
  published_.drained_window->push(
      report.at, static_cast<double>(report.drained_window));
  published_.egress_hwm->set(static_cast<double>(report.egress_hwm));
  published_.cost_window->push(report.at,
                               static_cast<double>(report.cost_us));
  published_.link_credits->set(static_cast<double>(report.credits));
  published_.link_stalled->set(static_cast<double>(report.stalled_frames));
  published_.degraded->set(report.degraded ? 1.0 : 0.0);
}

}  // namespace beehive
