// AppContext: everything a handler may do during one invocation.
//
// Handlers run inside a transaction. State writes and emitted messages are
// both provisional until the handler returns normally: a throwing handler
// rolls the transaction back and its emissions are discarded, so a failed
// invocation is externally invisible (atomic handler semantics).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "msg/message.h"
#include "placement/strategy.h"
#include "state/txn.h"
#include "util/types.h"

namespace beehive {

class Hive;
class Bee;

class AppContext {
 public:
  /// `txn_scratch` is optional reusable undo/redo log storage owned by the
  /// dispatching hive; see Txn::Scratch.
  AppContext(StateStore& store, AccessPolicy policy, AppId app, BeeId bee,
             HiveId hive, TimePoint now, MsgTypeId in_reply_to,
             Txn::Scratch* txn_scratch = nullptr)
      : txn_(store, std::move(policy), txn_scratch),
        app_(app),
        bee_(bee),
        hive_(hive),
        now_(now),
        in_reply_to_(in_reply_to) {}

  /// Borrowed-policy variant for the dispatch hot path: the hive owns the
  /// policy and it outlives the context (the handler runs synchronously
  /// inside the dispatch frame), so no AccessPolicy is copied or moved.
  AppContext(StateStore& store, const AccessPolicy* policy, AppId app,
             BeeId bee, HiveId hive, TimePoint now, MsgTypeId in_reply_to,
             Txn::Scratch* txn_scratch = nullptr)
      : txn_(store, policy, txn_scratch),
        app_(app),
        bee_(bee),
        hive_(hive),
        now_(now),
        in_reply_to_(in_reply_to) {}

  /// Transactional access to the bee's cells.
  Txn& state() { return txn_; }

  /// Emits an asynchronous message (buffered; routed after commit).
  template <WireEncodable T>
  void emit(T message) {
    emitted_.push_back(
        MessageEnvelope::make(std::move(message), app_, bee_, hive_, now_));
  }

  /// Platform operation: ask the runtime to move a bee to another hive.
  /// Buffered like emissions; used by the optimizer application.
  void order_migration(BeeId bee, HiveId to) {
    migration_orders_.emplace_back(bee, to);
  }

  /// Explains a placement decision. Buffered like emissions; after commit
  /// the hive turns each record into a kDecision trace span and a flight-
  /// recorder line, so optimizer reasoning lands in the same streams as
  /// the migrations it causes.
  void note_decision(PlacementDecision decision) {
    decisions_.push_back(std::move(decision));
  }

  /// Reports one optimizer round's summary (mode, bees scored, wall-clock
  /// latency). Buffered like emissions; the hive exports it as the
  /// beehive_placement_round_us / beehive_placement_rounds_total metrics.
  /// The wall-clock duration lives only in metrics — never in state or
  /// traces — so deterministic replays stay bit-identical.
  void note_round(PlacementRoundNote note) { round_note_ = std::move(note); }

  AppId app() const { return app_; }
  BeeId self() const { return bee_; }
  HiveId hive() const { return hive_; }
  TimePoint now() const { return now_; }

  /// Message type currently being handled (provenance for causation).
  MsgTypeId in_reply_to() const { return in_reply_to_; }

  // -- Platform-side accessors (Hive uses these after the handler ran) ----

  std::vector<MessageEnvelope>& emitted() { return emitted_; }
  std::vector<std::pair<BeeId, HiveId>>& migration_orders() {
    return migration_orders_;
  }
  std::vector<PlacementDecision>& decisions() { return decisions_; }
  std::optional<PlacementRoundNote>& round_note() { return round_note_; }

 private:
  Txn txn_;
  AppId app_;
  BeeId bee_;
  HiveId hive_;
  TimePoint now_;
  MsgTypeId in_reply_to_;
  std::vector<MessageEnvelope> emitted_;
  std::vector<std::pair<BeeId, HiveId>> migration_orders_;
  std::vector<PlacementDecision> decisions_;
  std::optional<PlacementRoundNote> round_note_;
};

}  // namespace beehive
