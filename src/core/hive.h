// A hive: one controller of the distributed control plane (paper §3,
// "Hives and Cells" / "Life of a Message").
//
// The hive is the platform's work-horse: it receives messages (from IO
// channels, from local bees, or over the wire from other hives), asks each
// subscribed application's Map function which cells the message needs,
// resolves those cells to their owning bee through the registry, and either
// runs the handler locally or relays the message. It also executes the
// merge and migration protocols and collects per-bee instrumentation.
//
// Hive code is runtime-agnostic: all clocks, timers and frame delivery go
// through RuntimeEnv, so the same class runs under the deterministic
// simulator and the threaded cluster.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/registry.h"
#include "cluster/runtime_env.h"
#include "core/app.h"
#include "core/bee.h"
#include "core/transport.h"
#include "core/wire.h"
#include "instrument/health.h"
#include "instrument/histogram.h"
#include "instrument/profiler.h"
#include "instrument/registry.h"
#include "instrument/trace.h"
#include "msg/message.h"
#include "placement/strategy.h"
#include "state/txn.h"
#include "util/types.h"

namespace beehive {

class FaultPlan;
class FlightRecorder;
struct LocalMetricsReport;

struct HiveConfig {
  /// Period of the instrumentation report timer; 0 disables reporting.
  Duration metrics_period = kSecond;
  /// The hive that injects mapped-timer ticks for the whole cluster.
  HiveId timer_master = 0;
  /// Stop firing timers after this time (sim runs bounded experiments).
  TimePoint timers_until = kTimeInfinity;
  /// Delay between a handler emitting a message and its routing — models
  /// queueing and keeps emission chains iterative instead of recursive.
  Duration dispatch_delay = 20 * kMicrosecond;
  /// Replicate every bee's committed state to a neighbour hive (paper §7
  /// future work: fault tolerance). Enables SimCluster::fail_hive recovery.
  bool replication = false;
  /// Cluster size; filled in by the cluster runtime at construction.
  /// Needed to pick replica hives.
  std::size_t n_hives = 1;
  /// Span recorder for this hive (owned by the cluster runtime); nullptr
  /// or disabled = tracing off, zero dispatch-path cost.
  TraceRecorder* tracer = nullptr;
  /// Reliable at-least-once frame transport (core/transport.h). Disabled
  /// by default: frames ship raw, with zero bookkeeping. Enable whenever
  /// the cluster's FaultPlan injects loss/duplication/reordering.
  TransportConfig transport;
  /// Migration ack timeout (doubles per retry) and the attempt cap after
  /// which the migration aborts, leaving the bee live at its origin.
  Duration migrate_timeout = 10 * kMillisecond;
  int migrate_max_attempts = 3;
  /// The cluster's fault plan (owned by the runtime; may be null). Hives
  /// only *read* it, to report partitions_active with their metrics.
  const FaultPlan* faults = nullptr;
  /// Cluster metrics registry (owned by the runtime; may be null). The
  /// hive exposes its counters into it at construction and publishes
  /// window snapshots (rings, gauges, latency histograms) once per
  /// metrics period — never on the per-message path.
  MetricsRegistry* metrics = nullptr;
  /// Cluster flight recorder (owned by the runtime; may be null). The
  /// hive notes optimizer decisions and migration aborts into it.
  FlightRecorder* recorder = nullptr;
  /// Sampling cost profiler (instrument/profiler.h). Off by default: the
  /// dispatch path then pays one load and one branch per handler.
  ProfilerConfig profiler;
  /// Graceful degradation (DESIGN.md §10): when the hive's health score
  /// drops below this low-water mark it advertises its degraded credit
  /// window (TransportConfig::degraded_window) on all inbound links, and
  /// recovers once the score climbs 5 points above the mark (hysteresis).
  /// 0 disables degradation. Evaluated once per metrics period.
  double degrade_below_score = 0.0;
  /// Core pinning for the hive's loop thread (threaded runtime only).
  /// < 0 leaves placement to the OS scheduler. >= 0 pins hive i's loop to
  /// core (pin_cpu + i) mod hardware_concurrency, so loops stop migrating
  /// across cores under load (shared-nothing datapath, DESIGN.md §12).
  /// Honored on Linux via pthread_setaffinity_np; a no-op elsewhere.
  int pin_cpu = -1;
};

class Hive {
 public:
  Hive(HiveId id, const AppSet& apps, RegistryService& registry,
       RuntimeEnv& env, HiveConfig config = {});
  ~Hive();

  Hive(const Hive&) = delete;
  Hive& operator=(const Hive&) = delete;

  HiveId id() const { return id_; }

  /// Arms application timers and the metrics report timer. Call once,
  /// before the runtime starts delivering events.
  void start();

  /// Entry point for messages arriving over IO channels (drivers, tests,
  /// benches). Routed exactly like paper §3's "Life of a Message".
  void inject(MessageEnvelope env);

  /// Batched ingress (shared-nothing datapath, DESIGN.md §12): routes every
  /// envelope exactly as inject() would, in order, but hands runs of
  /// consecutive messages that hit the dispatch memo to the bee as one
  /// activation — the memo's epoch validation, handler bind, AccessPolicy
  /// setup and ingress counter updates are paid once per run instead of
  /// once per message. Map still runs per message (its result depends on
  /// the payload) and every message keeps its own transaction, so handler
  /// atomicity, FIFO order and determinism are unchanged. The envelopes
  /// are borrowed, not copied — callers may reuse the batch.
  void inject_batch(std::span<MessageEnvelope> batch);

  /// Entry point for frames from other hives.
  void on_wire(std::string_view frame);

  /// Local equivalent of a MigrationOrder frame.
  void request_migration(BeeId bee, HiveId to);

  // -- Introspection (tests, benches, analytics) --------------------------

  Bee* find_bee(BeeId id);
  const Bee* find_bee(BeeId id) const;
  std::size_t bee_count() const { return bees_.size(); }
  std::vector<Bee*> local_bees();
  RegistryService::Client& registry_client() { return registry_client_; }
  const HiveConfig& config() const { return config_; }

  // -- Fault tolerance ------------------------------------------------------

  /// The hive holding replicas of `owner`'s bees (ring successor).
  HiveId replica_target_of(HiveId owner) const {
    return static_cast<HiveId>((owner + 1) % config_.n_hives);
  }

  /// Recovers a bee whose home hive failed, using this hive's replica of
  /// its state (empty state if no replica exists — counted as lossy).
  /// The caller must first re-point the bee here in the registry.
  /// Returns false when no replica was found.
  bool adopt_from_replica(BeeId bee, AppId app);

  /// Read-only replica access (tests, diagnostics).
  const StateStore* replica_store(BeeId bee) const;
  std::size_t replica_count() const { return replicas_.size(); }

  /// Routing/protocol counters. Each field is a registry Counter (relaxed
  /// atomic) so the scrape thread can read while the hive thread writes;
  /// ++/+=/implicit-uint64_t conversion keep call sites unchanged.
  struct Counters {
    Counter injected;
    Counter routed_local;
    Counter routed_remote;
    Counter forwarded;
    Counter handler_runs;
    Counter handler_failures;
    Counter merges_started;
    Counter migrations_in;
    Counter migrations_out;
    Counter migration_retries;   ///< MigrateXfer re-sent on timeout
    Counter migration_aborts;    ///< gave up; bee stayed at origin
    Counter registry_failures;   ///< messages dropped: no resolve
    Counter shed_total;          ///< overload sheds: mailbox msgs + link frames
  };
  const Counters& counters() const { return counters_; }

  /// Reliable-transport totals (all zero when the transport is disabled).
  const TransportCounters& transport_counters() const {
    static const TransportCounters kNone{};
    return transport_ ? transport_->counters() : kNone;
  }

  // -- Latency (cumulative across every local handler run) ----------------

  /// Emission -> handler-start (queueing + channel transit).
  const LatencyHistogram& queue_latency() const { return queue_total_; }
  /// Handler duration (zero under the instantaneous simulator clock).
  const LatencyHistogram& handler_latency() const { return handler_total_; }
  /// Trace ingress -> terminal handler, for traces that ended here.
  const LatencyHistogram& e2e_latency() const { return e2e_total_; }

  // -- Cost / pressure / health (DESIGN.md §9) ----------------------------

  /// The hive's sampling cost profiler (heat table, activation counts).
  const CostProfiler& profiler() const { return profiler_; }

  /// Snapshot of this hive's health signals, as of the last metrics
  /// report. Safe to call from any thread (the HTTP export path): reads
  /// only atomics refreshed by report_metrics(). `suspected` is always
  /// false here — failure-detector suspicion is a cluster-level judgment
  /// folded in by the runtime's health() aggregation.
  HiveHealth health() const;

  // -- Overload control (DESIGN.md §10) ------------------------------------

  /// Cheap saturation check for admission control at the IO boundary,
  /// safe from any thread: true while outbound frames are stalled waiting
  /// for link credit, or while a bounded mailbox sits at its limit under
  /// kBlockSender. Producers (drivers, the overload demo) should stop
  /// injecting while this holds.
  bool overloaded() const {
    if (mailbox_overrun_.load(std::memory_order_relaxed)) return true;
    return transport_ != nullptr && transport_->stalled_now() > 0;
  }

  /// True while the hive advertises its degraded credit window.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// The reliable transport, if configured (tests, diagnostics).
  const ReliableTransport* transport() const { return transport_.get(); }

  /// Priority classification for the mailbox policies: platform control
  /// and introspection traffic ("platform.*", "stats.*" message types) is
  /// never shed. Cold path — only consulted once a bounded holdback is
  /// already at its limit.
  static bool is_priority_type(MsgTypeId type);

 private:
  friend class MigrationEngine;

  // Routing (paper §3, "Life of a Message"). `mapped`, where present, is
  // the Map result already computed by the dispatch layer for this
  // message+app pair; it is borrowed down the synchronous delivery chain so
  // Map runs exactly once per message per hive. Callers that cannot supply
  // it (holdback drain, foreach delivery) pass null and bind() recomputes.
  void route(const MessageEnvelope& env);
  void dispatch_mapped(App& app, const HandlerBinding& binding,
                       const MessageEnvelope& env);
  void dispatch_foreach_local(AppId app, const std::string& dict,
                              const MessageEnvelope& env);
  /// Finds the handler binding for a message on this app (resolving timer
  /// ticks to their timer binding). Returns {handler, policy}. When
  /// `mapped` is non-null the policy borrows it instead of re-running Map.
  struct Bound {
    const HandlerFn* handle = nullptr;
    AccessPolicy policy;
  };

  void deliver(BeeId bee, AppId app, HiveId hive, const MessageEnvelope& env,
               std::uint64_t min_transfers, const CellSet* mapped = nullptr);
  void deliver_local(Bee& bee, const MessageEnvelope& env,
                     std::uint64_t min_transfers = 0,
                     const CellSet* mapped = nullptr,
                     const Bound* pre = nullptr);
  // Cold tail of the §12 admission gate: count the shed, record the
  // terminal span, close the trace. Out of line so deliver_local's fast
  // path stays small.
  void shed_at_admission(Bee& bee, const MessageEnvelope& env);

  /// Runs the bound handler for one message on a local bee, inside a
  /// transaction; flushes emissions and migration orders on commit. `pre`
  /// is an already-bound handler+policy (the dispatch memo's); when null
  /// the handler is bound here.
  void process(Bee& bee, const MessageEnvelope& env,
               const CellSet* mapped = nullptr, const Bound* pre = nullptr);

  std::optional<Bound> bind(App& app, const MessageEnvelope& env,
                            const CellSet* mapped = nullptr) const;

  // -- Dispatch memo (the shared-nothing fast path, DESIGN.md §12) ---------
  // Steady-state dispatch repeats one route: same message type, same Map
  // result, same live bee, unchanged registry cache. The memo caches the
  // entire route→resolve→bind outcome of the last such delivery; a repeat
  // revalidates with two counter compares plus one Map run and CellSet
  // compare, then jumps straight to deliver_local with the memoized
  // handler and a policy borrowing the memoized cells. Every bee-table
  // mutation bumps `bees_epoch_` and every registry-cache mutation bumps
  // the version stamp of the shard it touched, so merges, migrations and
  // invalidations can never serve a stale route — while writes against
  // OTHER registry shards leave the memo valid (per-shard CacheStamp).

  /// Attempts the memoized route; returns false (and may invalidate the
  /// memo) when the slow path must run.
  bool route_memoized(const MessageEnvelope& env);
  /// Installs the memo after a successful local delivery, when the type
  /// has exactly one mapped subscriber and the resolve was clean.
  void maybe_install_memo(App& app, const HandlerBinding& binding,
                          CellSet cells, const ResolveOutcome& out);

  Bee& ensure_local_bee(BeeId id, AppId app);

  // -- Batched frame egress -------------------------------------------------
  // Outbound frames are not shipped one by one: they accumulate in a
  // per-destination buffer and leave as a single FrameKind::kBatch wire
  // unit when the flush event (scheduled at +0 on first append) runs at the
  // end of the current loop turn. One batch pays the fault-plan decision,
  // the channel-meter update, the delivery closure and the target's queue
  // handoff once for every frame it carries. The reliable transport sits
  // below the batcher, so retransmission and dedup are also per-batch.

  /// Queues one already-serialized frame for `to` and arms the flush.
  void send_frame(HiveId to, Bytes frame);
  void append_egress(HiveId to, std::string_view frame);
  void flush_egress();
  /// Serializes an AppMsgFrame for `env` straight into the egress buffer
  /// through the reusable scratch writers — no per-message allocation.
  void send_app_msg(HiveId to, BeeId bee, AppId app,
                    std::uint64_t min_transfers, const MessageEnvelope& env);

  // Tracing. `ensure_trace` mints a deterministic root id for messages
  // entering the platform untraced (IO ingress, timer ticks).
  void ensure_trace(MessageEnvelope& env);
  bool tracing() const {
    return config_.tracer != nullptr && config_.tracer->enabled();
  }
  void trace_span(SpanKind kind, const MessageEnvelope& env, BeeId bee,
                  std::uint64_t aux = 0, std::uint64_t aux2 = 0) {
    if (!tracing()) return;
    config_.tracer->record(TraceEvent{env_.now(), kind, env.causal_depth(),
                                      env.trace_id(), id_, bee,
                                      env.from_app(), env.type(), aux, aux2});
  }
  /// Deferred-emission hop: records the dequeue span, then routes.
  void route_deferred(const MessageEnvelope& env);
  /// True when a terminal handler of this message should count toward the
  /// end-to-end latency histogram.
  static bool e2e_eligible(const MessageEnvelope& env);

  // Frame handlers. `dispatch_frame` demuxes a platform frame (unpacking
  // kBatch containers inline); on_wire routes through the reliable
  // transport first when one is configured. App messages are decoded
  // in-place from the frame bytes — the envelope payload is borrowed, not
  // copied (the reader's view outlives the synchronous delivery).
  void dispatch_frame(std::string_view frame);
  void handle_app_msg(ByteReader& r);
  void handle_merge_cmd(const MergeCmdFrame& frame);
  void handle_migrate_xfer(const MigrateXferFrame& frame);
  void handle_migrate_ack(const MigrateAckFrame& frame);
  void handle_replica_txn(const ReplicaTxnFrame& frame);
  void handle_replica_snapshot(const ReplicaSnapshotFrame& frame);

  // Migration retry machinery (core/migration.cpp). The source hive arms
  // an ack timeout per in-flight migration; on expiry it reconciles with
  // the registry, re-sends the transfer, or aborts and unfreezes the bee.
  void send_migrate_xfer(Bee& bee, HiveId to, std::uint64_t epoch);
  void arm_migration_timer(BeeId bee);
  void check_migration(BeeId bee, std::uint64_t attempt_epoch);
  void complete_migration(BeeId bee);
  void abort_migration(Bee& bee);

  // Replication (no-ops when config_.replication is off).
  void replicate_txn(const Bee& bee, const Txn& txn);
  void replicate_snapshot(const Bee& bee);

  // Merge orchestration: called by the hive that discovered the collocation
  // obligation (the resolver), for each loser reported by the registry.
  void start_merges(AppId app, const ResolveOutcome& outcome);

  void drain(Bee& bee);

  // Timers.
  void arm_app_timers();
  void arm_timer(App& app, const TimerBinding& timer);
  void fire_timer(App& app, const TimerBinding& timer);
  void arm_metrics_timer();
  void report_metrics();

  // Registry plumbing: expose counters once at construction; publish each
  // window's rates/gauges/latency at report time (1/metrics_period, off
  // the dispatch path).
  void register_metrics();
  void publish_window(const LocalMetricsReport& report,
                      std::uint64_t window_msgs, std::uint64_t queue_depth);
  /// Drains ctx.note_decision() records into the trace stream and the
  /// flight recorder.
  void record_decisions(const MessageEnvelope& env,
                        std::vector<PlacementDecision>& decisions);

  HiveId id_;
  const AppSet& apps_;
  RegistryService& registry_;
  RegistryService::Client registry_client_;
  RuntimeEnv& env_;
  HiveConfig config_;
  std::unordered_map<BeeId, std::unique_ptr<Bee>> bees_;
  /// Bumped on every bees_ insert/erase; memoized Bee* are valid only
  /// while it is unchanged.
  std::uint64_t bees_epoch_ = 0;
  struct DispatchMemo {
    bool valid = false;
    MsgTypeId type = 0;
    const HandlerBinding* binding = nullptr;
    CellSet cells;  ///< the Map result the memo was built on
    /// Per-shard registry stamp: only writes against the shard this route
    /// resolved on invalidate the memo (lock-free check per message).
    RegistryService::Client::CacheStamp registry_stamp;
    std::uint64_t bees_epoch = 0;
    Bee* bee = nullptr;
    std::uint64_t transfers_expected = 0;
    Bound bound;  ///< bound.policy borrows `cells`
  };
  DispatchMemo memo_;
  /// True while a handler runs under the memo's borrowed policy; blocks
  /// reentrant slow-path dispatches from overwriting the memo under it.
  bool memo_in_use_ = false;
  struct Replica {
    AppId app = 0;
    StateStore store;
  };
  std::unordered_map<BeeId, Replica> replicas_;
  /// In-flight outbound migrations by bee: registry epoch, retry budget,
  /// and a local attempt counter that stales superseded timeout events.
  struct MigrationRetry {
    HiveId to = 0;
    std::uint64_t mig_epoch = 0;   ///< registry epoch guarding the commit
    std::uint64_t attempt = 0;     ///< bumps per (re)send; stales old timers
    int attempts_left = 0;
    Duration timeout = 0;
  };
  std::unordered_map<BeeId, MigrationRetry> migrations_;
  std::unique_ptr<ReliableTransport> transport_;

  /// Per-destination egress accumulator: a kBatch header (count patched at
  /// flush) followed by varint-length-prefixed frames.
  struct Egress {
    ByteWriter buf;
    std::uint32_t count = 0;
  };
  std::vector<Egress> egress_;
  bool egress_scheduled_ = false;
  /// Frames sitting in egress buffers right now, and the window's
  /// high-watermark of that count (pressure inputs; reset at report time).
  std::uint64_t egress_pending_ = 0;
  std::uint64_t egress_hwm_window_ = 0;

  // Reusable serialization scratch for the remote send path (frame, the
  // envelope inside it, the payload inside that). Cleared per use, capacity
  // retained — the steady-state remote path never allocates here.
  ByteWriter frame_scratch_;
  ByteWriter env_scratch_;
  ByteWriter payload_scratch_;
  /// Reusable undo/redo log storage for handler transactions. Guarded by
  /// `txn_scratch_busy_`: a reentrant process() (a handler that injects
  /// synchronously) falls back to transaction-owned logs.
  Txn::Scratch txn_scratch_;
  bool txn_scratch_busy_ = false;

  Counters counters_;
  CostProfiler profiler_;
  /// env_.queue_stats(id_).drained at the previous report (window deltas).
  std::uint64_t prev_drained_ = 0;
  /// Cross-thread-readable snapshot of the latest report window's health
  /// signals. health() reads these from arbitrary threads (HTTP export),
  /// so they are atomics, refreshed once per metrics period.
  struct HealthSnapshot {
    std::atomic<double> pressure{0.0};
    std::atomic<double> retransmit_rate{0.0};
    std::atomic<std::uint64_t> handler_p99_us{0};
    std::atomic<std::uint64_t> queue_depth{0};
    std::atomic<std::uint64_t> runq_depth{0};
    std::atomic<std::uint64_t> ringq_hwm{0};
    std::atomic<std::uint64_t> cost_us{0};
    // Overload-control signals (DESIGN.md §10).
    std::atomic<std::uint64_t> shed_total{0};
    std::atomic<double> shed_per_s{0.0};
    std::atomic<std::int64_t> credits{-1};
    std::atomic<std::uint64_t> stalled_frames{0};
  };
  HealthSnapshot health_;
  /// Latest optimizer-round summary per mode (ctx.note_round). Atomics:
  /// the collector bee writes on its dispatch thread, scrapes read from
  /// the metrics thread. Wall-clock only — never fed back into state.
  struct PlacementRoundStats {
    std::atomic<std::uint64_t> last_us{0};
    std::atomic<std::uint64_t> rounds{0};
    std::atomic<std::uint64_t> scored{0};
    std::atomic<std::uint64_t> moves{0};
  };
  PlacementRoundStats round_full_;
  PlacementRoundStats round_incremental_;
  /// True while the hive advertises its degraded credit window.
  std::atomic<bool> degraded_{false};
  /// Set when a bounded kBlockSender mailbox hits its limit; cleared at
  /// report time once every bounded holdback has drained below half its
  /// limit, and in drain() when a holdback empties. Hysteresis keeps the
  /// admission signal from flapping per message.
  std::atomic<bool> mailbox_overrun_{false};
  /// counters_.shed_total at the previous report (shed-rate window delta).
  std::uint64_t prev_shed_ = 0;
  TimePoint prev_report_at_ = 0;
  std::uint64_t next_trace_ = 0;
  LatencyHistogram queue_total_;
  LatencyHistogram handler_total_;
  LatencyHistogram e2e_total_;
  LatencyHistogram e2e_window_;

  /// Registry metric cells this hive publishes into at report time (all
  /// null when config_.metrics is null).
  struct Published {
    TimeSeriesRing* msgs_window = nullptr;   ///< handler runs per window
    TimeSeriesRing* e2e_p99_window = nullptr;
    Gauge* bees = nullptr;
    Gauge* cells = nullptr;
    Gauge* queue_depth = nullptr;
    HistogramMetric* e2e = nullptr;
    HistogramMetric* queue = nullptr;
    HistogramMetric* handler = nullptr;
    Gauge* tx_data = nullptr;
    Gauge* tx_retransmits = nullptr;
    Gauge* tx_acks = nullptr;
    Gauge* tx_dups = nullptr;
    Gauge* tx_reorder = nullptr;
    Gauge* tx_abandoned = nullptr;
    Gauge* partitions = nullptr;
    Gauge* pressure = nullptr;
    Gauge* runq_depth = nullptr;
    Gauge* runq_hwm = nullptr;
    Gauge* ringq_hwm = nullptr;
    TimeSeriesRing* drained_window = nullptr;
    Gauge* egress_hwm = nullptr;
    TimeSeriesRing* cost_window = nullptr;
    // Overload control (DESIGN.md §10).
    Gauge* link_credits = nullptr;
    Gauge* link_stalled = nullptr;
    Gauge* degraded = nullptr;
  };
  Published published_;
  std::uint64_t prev_handler_runs_ = 0;  ///< for per-window deltas
};

}  // namespace beehive
