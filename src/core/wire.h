// Inter-hive wire frames.
//
// Everything hives exchange is one of these frames. They are deliberately
// explicit (a tagged union over a byte kind) rather than reusing the app
// message path: platform control traffic — merges, migrations, blocking —
// must work even while app routing for the affected bee is suspended.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "msg/message.h"
#include "state/cell.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

enum class FrameKind : std::uint8_t {
  kAppMsg = 1,       ///< App message routed to a specific bee.
  kBatch = 2,        ///< Egress batch: u32 count, then `count` frames of any
                     ///< other kind, each varint-length-prefixed. One batch
                     ///< is one wire unit: it is metered, fault-injected and
                     ///< (under the reliable transport) acked/retransmitted
                     ///< as a whole. Batches never nest.
  kMergeCmd = 3,     ///< Tell a loser's hive to ship its state to a winner.
  kMigrateXfer = 4,  ///< Cell/state payload of a merge or migration.
  kMigrateAck = 5,   ///< Target hive accepted a migrated bee.
  kMigrationOrder = 6,  ///< Optimizer order: move bee B to hive H.
  kReplicaTxn = 7,      ///< Committed writes of one handler transaction,
                        ///< shipped to the bee's replica hive.
  kReplicaSnapshot = 8,  ///< Full state refresh of a bee's replica (sent
                         ///< after merges, migrations and adoptions).
  kReliable = 9,  ///< Reliable-transport envelope: src, seq, cumulative
                  ///< ack, then any of the frames above (core/transport.h).
  kAck = 10,      ///< Standalone cumulative ack (src, ack).
};

struct AppMsgFrame {
  BeeId target = kNoBee;
  AppId app = 0;
  /// Registry transfer count the target must have applied before this
  /// message may be processed (merge/migration consistency fence): the
  /// sender's resolve observed that many state transfers decided for the
  /// target, so processing earlier could read pre-merge state.
  std::uint64_t min_transfers = 0;
  Bytes envelope;  ///< MessageEnvelope::to_wire()

  void encode(ByteWriter& w) const {
    w.u64(target);
    w.u32(app);
    w.varint(min_transfers);
    w.str(envelope);
  }
  static AppMsgFrame decode(ByteReader& r) {
    AppMsgFrame f;
    f.target = r.u64();
    f.app = r.u32();
    f.min_transfers = r.varint();
    f.envelope = r.str();
    return f;
  }
};

struct MergeCmdFrame {
  BeeId loser = kNoBee;
  AppId app = 0;
  BeeId winner = kNoBee;
  HiveId winner_hive = 0;
  /// Winner's transfers_expected after the merge decision: the loser's
  /// held-back messages are re-routed with this fence so they cannot beat
  /// the (possibly chasing) state transfers to the winner.
  std::uint64_t winner_expected = 0;

  void encode(ByteWriter& w) const {
    w.u64(loser);
    w.u32(app);
    w.u64(winner);
    w.u32(winner_hive);
    w.varint(winner_expected);
  }
  static MergeCmdFrame decode(ByteReader& r) {
    MergeCmdFrame f;
    f.loser = r.u64();
    f.app = r.u32();
    f.winner = r.u64();
    f.winner_hive = r.u32();
    f.winner_expected = r.varint();
    return f;
  }
};

struct MigrateXferFrame {
  BeeId bee = kNoBee;       ///< Migrating bee, or merge loser.
  AppId app = 0;
  bool is_merge = false;
  BeeId merge_target = kNoBee;  ///< Winner bee when is_merge.
  HiveId src_hive = 0;          ///< Sender (for the MigrateAck reply).
  /// Whole-bee migration: the bee's own fence counters, carried to its new
  /// home. Merge payloads: transfers_applied = the loser's applied count
  /// (already folded into the snapshot).
  std::uint64_t transfers_applied = 0;
  std::uint64_t transfers_required = 0;
  /// Merge payloads: the winner's transfers_expected at decision time.
  /// Applied on arrival, it raises the winner's fence so that transfers
  /// arriving out of decision order can never satisfy an earlier fence —
  /// a later-decided transfer always announces every earlier decision.
  std::uint64_t winner_expected = 0;
  /// Whole-bee migrations: the registry epoch minted when this migration
  /// started. The target commits conditionally on it, so a transfer from
  /// an aborted (timed-out) migration can never move the bee afterwards.
  std::uint64_t mig_epoch = 0;
  Bytes snapshot;  ///< StateStore::snapshot()

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.boolean(is_merge);
    w.u64(merge_target);
    w.u32(src_hive);
    w.varint(transfers_applied);
    w.varint(transfers_required);
    w.varint(winner_expected);
    w.varint(mig_epoch);
    w.str(snapshot);
  }
  static MigrateXferFrame decode(ByteReader& r) {
    MigrateXferFrame f;
    f.bee = r.u64();
    f.app = r.u32();
    f.is_merge = r.boolean();
    f.merge_target = r.u64();
    f.src_hive = r.u32();
    f.transfers_applied = r.varint();
    f.transfers_required = r.varint();
    f.winner_expected = r.varint();
    f.mig_epoch = r.varint();
    f.snapshot = r.str();
    return f;
  }
};

struct MigrateAckFrame {
  BeeId bee = kNoBee;

  void encode(ByteWriter& w) const { w.u64(bee); }
  static MigrateAckFrame decode(ByteReader& r) {
    MigrateAckFrame f;
    f.bee = r.u64();
    return f;
  }
};

struct MigrationOrderFrame {
  BeeId bee = kNoBee;
  HiveId to_hive = 0;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(to_hive);
  }
  static MigrationOrderFrame decode(ByteReader& r) {
    MigrationOrderFrame f;
    f.bee = r.u64();
    f.to_hive = r.u32();
    return f;
  }
};

struct ReplicaTxnFrame {
  BeeId bee = kNoBee;
  AppId app = 0;

  struct Write {
    std::string dict;
    std::string key;
    bool erased = false;
    Bytes value;  ///< empty when erased
  };
  std::vector<Write> writes;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.varint(writes.size());
    for (const Write& wr : writes) {
      w.str(wr.dict);
      w.str(wr.key);
      w.boolean(wr.erased);
      w.str(wr.value);
    }
  }
  static ReplicaTxnFrame decode(ByteReader& r) {
    ReplicaTxnFrame f;
    f.bee = r.u64();
    f.app = r.u32();
    std::uint64_t n = r.varint();
    // Untrusted count: clamp the pre-reserve to what the buffer could
    // possibly hold (>= 4 bytes per write) so a corrupt frame cannot
    // trigger a huge allocation before the decode loop underruns.
    f.writes.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, r.remaining() / 4)));
    for (std::uint64_t i = 0; i < n; ++i) {
      Write wr;
      wr.dict = r.str();
      wr.key = r.str();
      wr.erased = r.boolean();
      wr.value = r.str();
      f.writes.push_back(std::move(wr));
    }
    return f;
  }
};

struct ReplicaSnapshotFrame {
  BeeId bee = kNoBee;
  AppId app = 0;
  Bytes snapshot;

  void encode(ByteWriter& w) const {
    w.u64(bee);
    w.u32(app);
    w.str(snapshot);
  }
  static ReplicaSnapshotFrame decode(ByteReader& r) {
    ReplicaSnapshotFrame f;
    f.bee = r.u64();
    f.app = r.u32();
    f.snapshot = r.str();
    return f;
  }
};

/// Serializes kind + body into one frame.
template <typename F>
Bytes encode_frame(FrameKind kind, const F& frame) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  frame.encode(w);
  return std::move(w).take();
}

}  // namespace beehive
