// The Beehive programming abstraction (paper §2).
//
// An application is a named set of handlers over asynchronous messages plus
// state dictionaries. Each handler comes with a Map function that declares
// exactly which cells (dictionary entries) it needs for a given message —
// the `with S[key]` / `with S and T` clauses of the paper's pseudo-code:
//
//   class TrafficEngineering : public App {
//    public:
//     TrafficEngineering() : App("te") {
//       on<SwitchJoined>(
//           [](const SwitchJoined& m) {
//             return CellSet::single("S", switch_key(m.sw));   // with S[sw]
//           },
//           [](AppContext& ctx, const SwitchJoined& m) { ... });
//       every(1 * kSecond,
//             [](const MessageEnvelope&) {
//               return CellSet{{"S", "*"}, {"T", "*"}};        // with S and T
//             },
//             [](AppContext& ctx, const MessageEnvelope&) { ... });
//       every_foreach(1 * kSecond, "S",                         // foreach S
//                     [](AppContext& ctx, const MessageEnvelope&) { ... });
//     }
//   };
//
// From these declarations alone the platform derives the distributed
// deployment: cell ownership, bee placement, collocation and migration.
// Handlers themselves stay centralized-looking: read/write state through
// ctx.state(), communicate by ctx.emit().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/overload.h"
#include "msg/message.h"
#include "state/cell.h"
#include "util/hash.h"
#include "util/types.h"

namespace beehive {

class AppContext;

using MapFn = std::function<CellSet(const MessageEnvelope&)>;
using HandlerFn = std::function<void(AppContext&, const MessageEnvelope&)>;

/// Synthetic message injected by hives to fire `every*` timers.
struct TimerTick {
  static constexpr std::string_view kTypeName = "platform.timer_tick";
  AppId app = 0;
  std::uint32_t timer_id = 0;

  void encode(ByteWriter& w) const {
    w.u32(app);
    w.u32(timer_id);
  }
  static TimerTick decode(ByteReader& r) {
    TimerTick t;
    t.app = r.u32();
    t.timer_id = r.u32();
    return t;
  }
};

struct HandlerBinding {
  enum class Kind {
    kMapped,         ///< Map() names the cells; platform routes to their bee.
    kForeachLocal,   ///< Delivered to every local bee owning cells of a dict.
  };

  MsgTypeId msg_type = 0;
  Kind kind = Kind::kMapped;
  MapFn map;                  // kMapped only
  std::string foreach_dict;   // kForeachLocal only
  HandlerFn handle;
};

struct TimerBinding {
  std::uint32_t id = 0;
  Duration period = kSecond;
  HandlerBinding::Kind kind = HandlerBinding::Kind::kMapped;
  MapFn map;
  std::string foreach_dict;
  HandlerFn handle;
};

class App {
 public:
  /// `pinned` anchors this app's bees to the hive that created them: they
  /// never migrate and always win merges (used by IO-facing drivers).
  explicit App(std::string name, bool pinned = false)
      : name_(std::move(name)), id_(fnv1a32(name_)), pinned_(pinned) {
    MsgTypeRegistry::instance().ensure<TimerTick>();
  }
  virtual ~App() = default;

  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const std::string& name() const { return name_; }
  AppId id() const { return id_; }
  bool pinned() const { return pinned_; }

  /// Mailbox bound for this app's bees (DESIGN.md §10). Like `pinned`,
  /// this is deployment configuration: set it at construction time, before
  /// the AppSet is shared across hives — apps keep no mutable state.
  const OverloadConfig& overload() const { return overload_; }
  void set_overload(OverloadConfig config) { overload_ = config; }

  const std::vector<HandlerBinding>& bindings() const { return bindings_; }
  const std::vector<TimerBinding>& timers() const { return timers_; }

  const HandlerBinding* binding_for(MsgTypeId type) const {
    for (const auto& b : bindings_) {
      if (b.msg_type == type) return &b;
    }
    return nullptr;
  }

  const TimerBinding* timer(std::uint32_t id) const {
    return id < timers_.size() ? &timers_[id] : nullptr;
  }

 protected:
  /// `on M with cells(map(M))`: typed mapped handler.
  template <WireEncodable M>
  void on(std::function<CellSet(const M&)> map,
          std::function<void(AppContext&, const M&)> fn) {
    MsgTypeRegistry::instance().ensure<M>();
    HandlerBinding b;
    b.msg_type = msg_type_id<M>();
    b.kind = HandlerBinding::Kind::kMapped;
    b.map = [map = std::move(map)](const MessageEnvelope& env) {
      return map(env.as<M>());
    };
    b.handle = [fn = std::move(fn)](AppContext& ctx,
                                    const MessageEnvelope& env) {
      fn(ctx, env.as<M>());
    };
    bindings_.push_back(std::move(b));
  }

  /// `on M foreach dict`: delivered to every local bee holding cells of
  /// `dict`; the handler may scan that dictionary's local entries.
  template <WireEncodable M>
  void on_foreach(std::string dict,
                  std::function<void(AppContext&, const M&)> fn) {
    MsgTypeRegistry::instance().ensure<M>();
    HandlerBinding b;
    b.msg_type = msg_type_id<M>();
    b.kind = HandlerBinding::Kind::kForeachLocal;
    b.foreach_dict = std::move(dict);
    b.handle = [fn = std::move(fn)](AppContext& ctx,
                                    const MessageEnvelope& env) {
      fn(ctx, env.as<M>());
    };
    bindings_.push_back(std::move(b));
  }

  /// `on TimeOut(period) with cells(map(tick))`: the tick is injected on
  /// the cluster's timer-master hive and routed like any mapped message.
  void every(Duration period, MapFn map, HandlerFn fn) {
    TimerBinding t;
    t.id = static_cast<std::uint32_t>(timers_.size());
    t.period = period;
    t.kind = HandlerBinding::Kind::kMapped;
    t.map = std::move(map);
    t.handle = std::move(fn);
    timers_.push_back(std::move(t));
  }

  /// `on TimeOut(period) foreach dict`: every hive fires the tick locally
  /// and delivers it to each local bee owning cells of `dict` — one
  /// invocation per bee per period, cluster-wide (the paper's
  /// "for each switch in S: Query(switch)").
  void every_foreach(Duration period, std::string dict, HandlerFn fn) {
    TimerBinding t;
    t.id = static_cast<std::uint32_t>(timers_.size());
    t.period = period;
    t.kind = HandlerBinding::Kind::kForeachLocal;
    t.foreach_dict = std::move(dict);
    t.handle = std::move(fn);
    timers_.push_back(std::move(t));
  }

 private:
  std::string name_;
  AppId id_;
  bool pinned_;
  OverloadConfig overload_;
  std::vector<HandlerBinding> bindings_;
  std::vector<TimerBinding> timers_;
};

/// The ensemble of control applications deployed on every hive. One AppSet
/// instance is shared by all hives of a cluster (every controller runs the
/// same program); apps must therefore keep no mutable members — all mutable
/// state belongs in dictionaries.
class AppSet {
 public:
  App& add(std::unique_ptr<App> app);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto app = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *app;
    add(std::move(app));
    return ref;
  }

  App* find(AppId id) const;
  App* find_by_name(std::string_view name) const;

  /// All (app, binding) pairs subscribed to a message type.
  std::vector<std::pair<App*, const HandlerBinding*>> subscribers(
      MsgTypeId type) const;

  /// Allocation-free subscriber visit for the dispatch hot path: invokes
  /// `fn(App&, const HandlerBinding&)` for each subscribed app, in
  /// deployment order — same sequence as subscribers(), minus the vector.
  template <typename Fn>
  void for_each_subscriber(MsgTypeId type, Fn&& fn) const {
    for (const auto& app : apps_) {
      if (const HandlerBinding* b = app->binding_for(type)) {
        fn(*app, *b);
      }
    }
  }

  /// Number of apps subscribed to `type`. The dispatch memo installs only
  /// for single-subscriber types (cold path: runs once per memo install,
  /// never per message).
  std::size_t subscriber_count(MsgTypeId type) const {
    std::size_t n = 0;
    for (const auto& app : apps_) {
      if (app->binding_for(type) != nullptr) ++n;
    }
    return n;
  }

  const std::vector<std::unique_ptr<App>>& apps() const { return apps_; }
  std::size_t size() const { return apps_.size(); }

 private:
  std::vector<std::unique_ptr<App>> apps_;
};

}  // namespace beehive
