// Cells: the unit of state ownership in Beehive.
//
// A cell is one (dictionary, key) entry of an application's state. The Map
// function of each handler returns the set of cells a message needs; the
// platform guarantees that every cell is exclusively owned by one bee and
// that messages with intersecting cell sets are processed by the same bee
// (paper §3, "Hives and Cells").
//
// The reserved key "*" denotes whole-dictionary access: a handler that maps
// a message to (D, "*") requires every current and future cell of D, which
// forces the whole dictionary onto a single bee — exactly the paper's
// "effectively centralized" case for the naive TE Route function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"

namespace beehive {

inline constexpr std::string_view kAllKeys = "*";

struct CellKey {
  std::string dict;
  std::string key;

  bool is_whole_dict() const { return key == kAllKeys; }

  bool operator==(const CellKey&) const = default;
  auto operator<=>(const CellKey&) const = default;

  void encode(ByteWriter& w) const {
    w.str(dict);
    w.str(key);
  }
  static CellKey decode(ByteReader& r) {
    CellKey c;
    c.dict = r.str();
    c.key = r.str();
    return c;
  }

  std::string to_string() const { return dict + "/" + key; }
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& c) const {
    std::size_t h = fnv1a64(c.dict);
    hash_combine(h, fnv1a64(c.key));
    return h;
  }
};

/// An ordered, deduplicated set of cells — the result of a Map call.
/// Kept as a sorted vector: map sets are tiny (typically 1–3 cells) and are
/// compared/intersected on every message dispatch.
class CellSet {
 public:
  CellSet() = default;
  CellSet(std::initializer_list<CellKey> cells) {
    for (const auto& c : cells) insert(c);
  }

  static CellSet single(std::string dict, std::string key) {
    CellSet s;
    s.insert({std::move(dict), std::move(key)});
    return s;
  }

  /// Whole-dictionary access marker (centralizing).
  static CellSet whole_dict(std::string dict) {
    return single(std::move(dict), std::string(kAllKeys));
  }

  void insert(CellKey cell) {
    auto it = std::lower_bound(cells_.begin(), cells_.end(), cell);
    if (it == cells_.end() || *it != cell) cells_.insert(it, std::move(cell));
  }

  void merge(const CellSet& other) {
    for (const auto& c : other.cells_) insert(c);
  }

  bool contains(const CellKey& cell) const {
    return std::binary_search(cells_.begin(), cells_.end(), cell);
  }

  /// True when some cell is shared. Whole-dict markers intersect every cell
  /// of the same dictionary (and vice versa).
  bool intersects(const CellSet& other) const {
    for (const auto& c : cells_) {
      for (const auto& o : other.cells_) {
        if (c == o) return true;
        if (c.dict == o.dict && (c.is_whole_dict() || o.is_whole_dict())) {
          return true;
        }
      }
    }
    return false;
  }

  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }
  auto begin() const { return cells_.begin(); }
  auto end() const { return cells_.end(); }
  const std::vector<CellKey>& cells() const { return cells_; }

  bool operator==(const CellSet&) const = default;

  void encode(ByteWriter& w) const {
    w.varint(cells_.size());
    for (const auto& c : cells_) c.encode(w);
  }
  static CellSet decode(ByteReader& r) {
    CellSet s;
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) s.insert(CellKey::decode(r));
    return s;
  }

  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (i) out += ", ";
      out += cells_[i].to_string();
    }
    return out + "}";
  }

 private:
  std::vector<CellKey> cells_;
};

}  // namespace beehive
