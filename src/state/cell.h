// Cells: the unit of state ownership in Beehive.
//
// A cell is one (dictionary, key) entry of an application's state. The Map
// function of each handler returns the set of cells a message needs; the
// platform guarantees that every cell is exclusively owned by one bee and
// that messages with intersecting cell sets are processed by the same bee
// (paper §3, "Hives and Cells").
//
// The reserved key "*" denotes whole-dictionary access: a handler that maps
// a message to (D, "*") requires every current and future cell of D, which
// forces the whole dictionary onto a single bee — exactly the paper's
// "effectively centralized" case for the naive TE Route function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"

namespace beehive {

inline constexpr std::string_view kAllKeys = "*";

struct CellKey {
  std::string dict;
  std::string key;

  bool is_whole_dict() const { return key == kAllKeys; }

  bool operator==(const CellKey&) const = default;
  auto operator<=>(const CellKey&) const = default;

  void encode(ByteWriter& w) const {
    w.str(dict);
    w.str(key);
  }
  static CellKey decode(ByteReader& r) {
    CellKey c;
    c.dict = r.str();
    c.key = r.str();
    return c;
  }

  std::string to_string() const { return dict + "/" + key; }
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& c) const {
    std::size_t h = fnv1a64(c.dict);
    hash_combine(h, fnv1a64(c.key));
    return h;
  }
};

/// An ordered, deduplicated set of cells — the result of a Map call.
///
/// One CellSet is built per dispatched message, so its representation is on
/// the platform's hot path. The overwhelmingly common Map result is a
/// single cell; that case lives in inline storage and costs no heap
/// allocation. Multi-cell sets (collocation requests, whole-dict markers
/// combined with keys) spill into a sorted vector.
class CellSet {
 public:
  CellSet() = default;
  CellSet(std::initializer_list<CellKey> cells) {
    for (const auto& c : cells) insert(c);
  }

  CellSet(const CellSet&) = default;
  CellSet& operator=(const CellSet&) = default;

  // Moves must reset the source's size: the inline slot holds moved-from
  // strings afterwards, and a defaulted move would leave the source
  // claiming it still owns one valid cell.
  CellSet(CellSet&& other) noexcept
      : size_(other.size_),
        inline_(std::move(other.inline_)),
        overflow_(std::move(other.overflow_)) {
    other.size_ = 0;
  }
  CellSet& operator=(CellSet&& other) noexcept {
    if (this != &other) {
      size_ = other.size_;
      inline_ = std::move(other.inline_);
      overflow_ = std::move(other.overflow_);
      other.size_ = 0;
    }
    return *this;
  }

  static CellSet single(std::string dict, std::string key) {
    CellSet s;
    s.insert({std::move(dict), std::move(key)});
    return s;
  }

  /// Whole-dictionary access marker (centralizing).
  static CellSet whole_dict(std::string dict) {
    return single(std::move(dict), std::string(kAllKeys));
  }

  void insert(CellKey cell) {
    if (size_ == 0) {
      inline_ = std::move(cell);
      size_ = 1;
      return;
    }
    if (size_ == 1) {
      if (inline_ == cell) return;
      overflow_.reserve(2);
      overflow_.push_back(std::move(inline_));
      overflow_.push_back(std::move(cell));
      if (overflow_[1] < overflow_[0]) std::swap(overflow_[0], overflow_[1]);
      size_ = 2;
      return;
    }
    auto it = std::lower_bound(overflow_.begin(), overflow_.end(), cell);
    if (it != overflow_.end() && *it == cell) return;
    overflow_.insert(it, std::move(cell));
    size_ = overflow_.size();
  }

  void merge(const CellSet& other) {
    for (const auto& c : other) insert(c);
  }

  bool contains(const CellKey& cell) const {
    return std::binary_search(begin(), end(), cell);
  }

  /// True when some cell is shared. Whole-dict markers intersect every cell
  /// of the same dictionary (and vice versa).
  bool intersects(const CellSet& other) const {
    for (const auto& c : *this) {
      for (const auto& o : other) {
        if (c == o) return true;
        if (c.dict == o.dict && (c.is_whole_dict() || o.is_whole_dict())) {
          return true;
        }
      }
    }
    return false;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const CellKey* begin() const { return data(); }
  const CellKey* end() const { return data() + size_; }
  const CellKey& operator[](std::size_t i) const { return data()[i]; }
  const CellKey& front() const { return data()[0]; }

  bool operator==(const CellSet& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }

  void encode(ByteWriter& w) const {
    w.varint(size_);
    for (const auto& c : *this) c.encode(w);
  }
  static CellSet decode(ByteReader& r) {
    CellSet s;
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) s.insert(CellKey::decode(r));
    return s;
  }

  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < size_; ++i) {
      if (i) out += ", ";
      out += data()[i].to_string();
    }
    return out + "}";
  }

 private:
  const CellKey* data() const {
    return size_ <= 1 ? &inline_ : overflow_.data();
  }

  std::size_t size_ = 0;
  CellKey inline_;                  ///< valid iff size_ == 1
  std::vector<CellKey> overflow_;   ///< holds all cells when size_ >= 2
};

}  // namespace beehive
