#include "state/txn.h"

namespace beehive {

bool AccessPolicy::can_access(std::string_view dict,
                              std::string_view key) const {
  if (unrestricted) return true;
  for (const CellKey& c : effective()) {
    if (c.dict != dict) continue;
    if (c.is_whole_dict() || c.key == key) return true;
  }
  for (const std::string& d : scan_dicts) {
    if (d == dict) return true;
  }
  return false;
}

bool AccessPolicy::can_scan(std::string_view dict) const {
  if (unrestricted) return true;
  for (const CellKey& c : effective()) {
    if (c.dict == dict && c.is_whole_dict()) return true;
  }
  for (const std::string& d : scan_dicts) {
    if (d == dict) return true;
  }
  return false;
}

Txn::~Txn() {
  if (!committed_ && !rolled_back_) rollback();
}

void Txn::check_access(std::string_view dict, std::string_view key) const {
  if (!policy_->can_access(dict, key)) {
    throw StateAccessError("handler accessed cell " + std::string(dict) +
                           "/" + std::string(key) +
                           " outside its mapped cells " +
                           policy_->effective().to_string());
  }
}

Dict& Txn::resolve_dict(std::string_view dict) const {
  if (cached_dict_ != nullptr && cached_dict_->name() == dict) {
    return *cached_dict_;
  }
  cached_dict_ = &store_.dict(dict);
  return *cached_dict_;
}

Dict* Txn::resolve_dict_ro(std::string_view dict) const {
  if (cached_dict_ != nullptr && cached_dict_->name() == dict) {
    return cached_dict_;
  }
  Dict* d = store_.find_dict(dict);
  if (d != nullptr) cached_dict_ = d;
  return d;
}

std::optional<Bytes> Txn::get(std::string_view dict,
                              std::string_view key) const {
  check_access(dict, key);
  const Dict* d = resolve_dict_ro(dict);
  if (d == nullptr) return std::nullopt;
  return d->get(key);
}

const Bytes* Txn::get_raw(std::string_view dict, std::string_view key) const {
  check_access(dict, key);
  const Dict* d = resolve_dict_ro(dict);
  return d == nullptr ? nullptr : d->get_ptr(key);
}

bool Txn::contains(std::string_view dict, std::string_view key) const {
  check_access(dict, key);
  const Dict* d = resolve_dict_ro(dict);
  return d != nullptr && d->contains(key);
}

// Pool-slot append: entries past the live mark are retired but keep their
// string capacity, so re-recording a write in steady state is a handful of
// assigns into retained buffers (no allocation; see Scratch).
void Txn::append_undo(std::string_view dict, std::string_view key,
                      std::optional<Bytes> prior) {
  auto& undo = scratch_->undo;
  if (scratch_->undo_live < undo.size()) {
    UndoEntry& u = undo[scratch_->undo_live];
    u.dict.assign(dict);
    u.key.assign(key);
    u.prior = std::move(prior);
  } else {
    undo.push_back({std::string(dict), std::string(key), std::move(prior)});
  }
  ++scratch_->undo_live;
}

void Txn::append_redo(std::string_view dict, std::string_view key,
                      bool erased, const Bytes& value) {
  auto& redo = scratch_->redo;
  if (scratch_->redo_live < redo.size()) {
    WriteRecord& r = redo[scratch_->redo_live];
    r.dict.assign(dict);
    r.key.assign(key);
    r.erased = erased;
    r.value = value;
  } else {
    redo.push_back({std::string(dict), std::string(key), erased, value});
  }
  ++scratch_->redo_live;
}

void Txn::record_undo(std::string_view dict, std::string_view key) {
  const Dict* d = resolve_dict_ro(dict);
  std::optional<Bytes> prior;
  if (d != nullptr) prior = d->get(key);
  append_undo(dict, key, std::move(prior));
}

void Txn::put(std::string_view dict, std::string_view key, Bytes value) {
  check_access(dict, key);
  Dict& d = resolve_dict(dict);
  // Redo keeps a copy for replication; the store takes the original. The
  // prior value rides back out of the same tree traversal that stores the
  // new one (undo capture used to cost a second lookup plus a copy).
  append_redo(dict, key, /*erased=*/false, value);
  append_undo(dict, key, d.put_and_fetch_prior(key, std::move(value)));
}

bool Txn::erase(std::string_view dict, std::string_view key) {
  check_access(dict, key);
  Dict* d = resolve_dict_ro(dict);
  if (d == nullptr || !d->contains(key)) return false;
  record_undo(dict, key);
  append_redo(dict, key, /*erased=*/true, {});
  return d->erase(key);
}

void Txn::for_each(
    std::string_view dict,
    const std::function<void(const std::string&, const Bytes&)>& fn) const {
  if (!policy_->can_scan(dict)) {
    throw StateAccessError("handler scanned dictionary " + std::string(dict) +
                           " without whole-dict access " +
                           policy_->effective().to_string());
  }
  const Dict* d = store_.find_dict(dict);
  if (d != nullptr) d->for_each(fn);
}

std::size_t Txn::dict_size(std::string_view dict) const {
  if (!policy_->can_scan(dict)) {
    throw StateAccessError("dict_size on " + std::string(dict) +
                           " requires whole-dict access");
  }
  const Dict* d = store_.find_dict(dict);
  return d == nullptr ? 0 : d->size();
}

void Txn::commit() {
  committed_ = true;
  // Retire (don't destroy) the undo entries; the redo log stays live —
  // the platform reads it for replication through writes().
  scratch_->undo_live = 0;
}

void Txn::rollback() {
  // Reverse order so overlapping writes to the same key restore correctly.
  // Only the first undo_live entries belong to this transaction.
  auto& undo = scratch_->undo;
  for (std::size_t i = scratch_->undo_live; i > 0; --i) {
    UndoEntry& u = undo[i - 1];
    Dict& d = store_.dict(u.dict);
    if (u.prior.has_value()) {
      d.put(u.key, std::move(*u.prior));
    } else {
      d.erase(u.key);
    }
  }
  scratch_->undo_live = 0;
  scratch_->redo_live = 0;
  rolled_back_ = true;
}

}  // namespace beehive
