#include "state/txn.h"

namespace beehive {

bool AccessPolicy::can_access(std::string_view dict,
                              std::string_view key) const {
  if (unrestricted) return true;
  for (const CellKey& c : effective()) {
    if (c.dict != dict) continue;
    if (c.is_whole_dict() || c.key == key) return true;
  }
  for (const std::string& d : scan_dicts) {
    if (d == dict) return true;
  }
  return false;
}

bool AccessPolicy::can_scan(std::string_view dict) const {
  if (unrestricted) return true;
  for (const CellKey& c : effective()) {
    if (c.dict == dict && c.is_whole_dict()) return true;
  }
  for (const std::string& d : scan_dicts) {
    if (d == dict) return true;
  }
  return false;
}

Txn::~Txn() {
  if (!committed_ && !rolled_back_) rollback();
}

void Txn::check_access(std::string_view dict, std::string_view key) const {
  if (!policy_.can_access(dict, key)) {
    throw StateAccessError("handler accessed cell " + std::string(dict) +
                           "/" + std::string(key) +
                           " outside its mapped cells " +
                           policy_.effective().to_string());
  }
}

std::optional<Bytes> Txn::get(std::string_view dict,
                              std::string_view key) const {
  check_access(dict, key);
  const Dict* d = store_.find_dict(dict);
  if (d == nullptr) return std::nullopt;
  return d->get(key);
}

bool Txn::contains(std::string_view dict, std::string_view key) const {
  check_access(dict, key);
  const Dict* d = store_.find_dict(dict);
  return d != nullptr && d->contains(key);
}

void Txn::record_undo(std::string_view dict, std::string_view key) {
  const Dict* d = store_.find_dict(dict);
  std::optional<Bytes> prior;
  if (d != nullptr) prior = d->get(key);
  scratch_->undo.push_back(
      {std::string(dict), std::string(key), std::move(prior)});
}

void Txn::put(std::string_view dict, std::string_view key, Bytes value) {
  check_access(dict, key);
  record_undo(dict, key);
  scratch_->redo.push_back(
      {std::string(dict), std::string(key), /*erased=*/false, value});
  store_.dict(dict).put(key, std::move(value));
}

bool Txn::erase(std::string_view dict, std::string_view key) {
  check_access(dict, key);
  Dict* d = store_.find_dict(dict) ? &store_.dict(dict) : nullptr;
  if (d == nullptr || !d->contains(key)) return false;
  record_undo(dict, key);
  scratch_->redo.push_back(
      {std::string(dict), std::string(key), /*erased=*/true, {}});
  return d->erase(key);
}

void Txn::for_each(
    std::string_view dict,
    const std::function<void(const std::string&, const Bytes&)>& fn) const {
  if (!policy_.can_scan(dict)) {
    throw StateAccessError("handler scanned dictionary " + std::string(dict) +
                           " without whole-dict access " +
                           policy_.effective().to_string());
  }
  const Dict* d = store_.find_dict(dict);
  if (d != nullptr) d->for_each(fn);
}

std::size_t Txn::dict_size(std::string_view dict) const {
  if (!policy_.can_scan(dict)) {
    throw StateAccessError("dict_size on " + std::string(dict) +
                           " requires whole-dict access");
  }
  const Dict* d = store_.find_dict(dict);
  return d == nullptr ? 0 : d->size();
}

void Txn::commit() {
  committed_ = true;
  scratch_->undo.clear();
  // The redo log is kept: the platform reads it for replication.
}

void Txn::rollback() {
  // Reverse order so overlapping writes to the same key restore correctly.
  auto& undo = scratch_->undo;
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Dict& d = store_.dict(it->dict);
    if (it->prior.has_value()) {
      d.put(it->key, std::move(*it->prior));
    } else {
      d.erase(it->key);
    }
  }
  undo.clear();
  scratch_->redo.clear();
  rolled_back_ = true;
}

}  // namespace beehive
