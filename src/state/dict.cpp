#include "state/dict.h"

namespace beehive {

std::size_t Dict::byte_size() const {
  std::size_t total = name_.size();
  for (const auto& [k, v] : entries_) total += k.size() + v.size();
  return total;
}

void Dict::encode(ByteWriter& w) const {
  w.str(name_);
  w.varint(entries_.size());
  for (const auto& [k, v] : entries_) {
    w.str(k);
    w.str(v);
  }
}

Dict Dict::decode(ByteReader& r) {
  Dict d(r.str());
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.str();
    d.entries_[std::move(k)] = r.str();
  }
  return d;
}

}  // namespace beehive
