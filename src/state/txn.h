// Transactional state access for handlers.
//
// Every handler invocation runs inside a transaction (paper §2:
// "dictionaries … with support for transactions"). The transaction
//   (a) enforces the handler's declared cell access — a handler may only
//       touch the cells its Map function returned (or the whole dictionary
//       when it mapped (D, "*")), which is what makes the platform's
//       consistency guarantee sound; and
//   (b) keeps an undo log so that a throwing handler leaves state
//       untouched (the bee also discards the handler's emitted messages).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "state/cell.h"
#include "state/store.h"

namespace beehive {

/// Raised when a handler touches state outside its mapped cells. This is a
/// design bug in the application; surfacing it loudly is how the platform
/// keeps the "distributed twin" faithful to centralized behaviour.
class StateAccessError : public std::logic_error {
 public:
  explicit StateAccessError(const std::string& what)
      : std::logic_error(what) {}
};

/// What a transaction is allowed to touch.
struct AccessPolicy {
  CellSet allowed;
  /// Borrowed alternative to `allowed`: when set, the policy reads cells
  /// from a CellSet owned by the caller (the dispatch path's single Map
  /// result) instead of copying it. The borrowed set must outlive the
  /// transaction — the hive guarantees this because the handler runs
  /// synchronously inside the dispatch frame that computed the set.
  const CellSet* borrowed = nullptr;
  /// Dictionaries the handler may scan and access key-wise in full. Used
  /// by foreach handlers: the bee's local slice of the dictionary is
  /// exclusively owned, so granting the whole local dict is sound.
  std::vector<std::string> scan_dicts;
  bool unrestricted = false;  ///< Platform-internal transactions only.

  static AccessPolicy all() {
    AccessPolicy p;
    p.unrestricted = true;
    return p;
  }
  static AccessPolicy cells(CellSet c) {
    AccessPolicy p;
    p.allowed = std::move(c);
    return p;
  }
  /// Zero-copy policy over a caller-owned Map result (see `borrowed`).
  static AccessPolicy cells_view(const CellSet& c) {
    AccessPolicy p;
    p.borrowed = &c;
    return p;
  }
  static AccessPolicy local_dict(std::string dict) {
    AccessPolicy p;
    p.scan_dicts.push_back(std::move(dict));
    return p;
  }

  /// The cell set this policy grants, owned or borrowed.
  const CellSet& effective() const {
    return borrowed != nullptr ? *borrowed : allowed;
  }

  bool can_access(std::string_view dict, std::string_view key) const;
  bool can_scan(std::string_view dict) const;
};

class Txn {
 public:
  /// One committed mutation, in execution order. The platform ships these
  /// to the bee's replica hive when state replication is enabled.
  struct WriteRecord {
    std::string dict;
    std::string key;
    bool erased = false;
    Bytes value;  ///< empty when erased
  };

  struct UndoEntry {
    std::string dict;
    std::string key;
    std::optional<Bytes> prior;  ///< nullopt = key did not exist.
  };

  /// Reusable undo/redo log storage. A dispatch loop that owns one Scratch
  /// and threads it through every transaction pays the log's vector
  /// allocations once, at warmup — afterwards each transaction reuses the
  /// retained capacity (the hive hot path's zero-allocation contract).
  ///
  /// The vectors are entry *pools*: only the first `undo_live` / `redo_live`
  /// elements belong to the current transaction. Retired entries keep their
  /// string/byte capacity, so the steady state re-records a write as a few
  /// assigns (memcpy into retained buffers) instead of constructing and
  /// destroying four strings per message.
  struct Scratch {
    std::vector<UndoEntry> undo;
    std::vector<WriteRecord> redo;
    std::size_t undo_live = 0;
    std::size_t redo_live = 0;
  };

  /// `scratch` is optional external log storage; when null the transaction
  /// owns its logs (one-off transactions in tests and tools). An external
  /// scratch is cleared on construction and must outlive the Txn; its redo
  /// log stays readable through writes() until the next Txn reuses it.
  Txn(StateStore& store, AccessPolicy policy, Scratch* scratch = nullptr)
      : store_(store),
        owned_policy_(std::move(policy)),
        policy_(&owned_policy_),
        scratch_(scratch != nullptr ? scratch : &owned_) {
    scratch_->undo_live = 0;
    scratch_->redo_live = 0;
  }

  /// Borrowed-policy variant for the dispatch hot path: the hive owns the
  /// policy (it outlives the transaction — the handler runs synchronously
  /// inside the dispatch frame that built it), so the transaction pays no
  /// AccessPolicy copy/move at all.
  Txn(StateStore& store, const AccessPolicy* policy,
      Scratch* scratch = nullptr)
      : store_(store),
        policy_(policy),
        scratch_(scratch != nullptr ? scratch : &owned_) {
    scratch_->undo_live = 0;
    scratch_->redo_live = 0;
  }
  ~Txn();

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // -- Key-level access (requires the cell or whole-dict permission) ------

  std::optional<Bytes> get(std::string_view dict, std::string_view key) const;
  /// Borrowed read: a pointer into the store, valid until the next write
  /// touching the key. The typed accessors decode through it so the hot
  /// path pays no value copy.
  const Bytes* get_raw(std::string_view dict, std::string_view key) const;
  bool contains(std::string_view dict, std::string_view key) const;
  void put(std::string_view dict, std::string_view key, Bytes value);
  bool erase(std::string_view dict, std::string_view key);

  template <WireEncodable T>
  std::optional<T> get_as(std::string_view dict, std::string_view key) const {
    const Bytes* raw = get_raw(dict, key);
    if (raw == nullptr) return std::nullopt;
    return decode_from_bytes<T>(*raw);
  }

  template <WireEncodable T>
  void put_as(std::string_view dict, std::string_view key, const T& value) {
    put(dict, key, encode_to_bytes(value));
  }

  // -- Whole-dictionary access (requires (dict, "*") permission) ----------

  /// Iterates all entries in key order. Mutating the dict during iteration
  /// is not allowed; collect keys first if you must.
  void for_each(
      std::string_view dict,
      const std::function<void(const std::string&, const Bytes&)>& fn) const;

  std::size_t dict_size(std::string_view dict) const;

  // -- Lifecycle -----------------------------------------------------------

  /// Makes all writes permanent. A transaction not committed before
  /// destruction rolls back.
  void commit();

  /// Reverts every write performed through this transaction.
  void rollback();

  bool committed() const { return committed_; }
  std::size_t write_count() const { return scratch_->redo_live; }

  /// The access policy this transaction runs under (the cost profiler
  /// attributes sampled handler runs to its cells).
  const AccessPolicy& policy() const { return *policy_; }

  /// The redo log; meaningful after commit() (empty after rollback). A
  /// view into the scratch's entry pool — valid until the next Txn reuses
  /// the scratch.
  std::span<const WriteRecord> writes() const {
    return {scratch_->redo.data(), scratch_->redo_live};
  }

 private:
  void check_access(std::string_view dict, std::string_view key) const;
  void record_undo(std::string_view dict, std::string_view key);
  void append_undo(std::string_view dict, std::string_view key,
                   std::optional<Bytes> prior);
  void append_redo(std::string_view dict, std::string_view key, bool erased,
                   const Bytes& value);
  /// Named-dictionary lookup with a one-entry memo: a handler touches one
  /// dictionary almost always, so repeat accesses skip the store's map.
  /// The `_ro` variant never creates the dictionary (read paths must not
  /// grow the store).
  Dict& resolve_dict(std::string_view dict) const;
  Dict* resolve_dict_ro(std::string_view dict) const;

  StateStore& store_;
  AccessPolicy owned_policy_;  ///< backing storage for the owning ctor
  const AccessPolicy* policy_;
  Scratch owned_;     ///< used only when no external scratch was given
  Scratch* scratch_;  ///< &owned_ or the caller's reusable storage
  mutable Dict* cached_dict_ = nullptr;
  bool committed_ = false;
  bool rolled_back_ = false;
};

}  // namespace beehive
