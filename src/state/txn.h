// Transactional state access for handlers.
//
// Every handler invocation runs inside a transaction (paper §2:
// "dictionaries … with support for transactions"). The transaction
//   (a) enforces the handler's declared cell access — a handler may only
//       touch the cells its Map function returned (or the whole dictionary
//       when it mapped (D, "*")), which is what makes the platform's
//       consistency guarantee sound; and
//   (b) keeps an undo log so that a throwing handler leaves state
//       untouched (the bee also discards the handler's emitted messages).
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "state/cell.h"
#include "state/store.h"

namespace beehive {

/// Raised when a handler touches state outside its mapped cells. This is a
/// design bug in the application; surfacing it loudly is how the platform
/// keeps the "distributed twin" faithful to centralized behaviour.
class StateAccessError : public std::logic_error {
 public:
  explicit StateAccessError(const std::string& what)
      : std::logic_error(what) {}
};

/// What a transaction is allowed to touch.
struct AccessPolicy {
  CellSet allowed;
  /// Dictionaries the handler may scan and access key-wise in full. Used
  /// by foreach handlers: the bee's local slice of the dictionary is
  /// exclusively owned, so granting the whole local dict is sound.
  std::vector<std::string> scan_dicts;
  bool unrestricted = false;  ///< Platform-internal transactions only.

  static AccessPolicy all() {
    AccessPolicy p;
    p.unrestricted = true;
    return p;
  }
  static AccessPolicy cells(CellSet c) {
    AccessPolicy p;
    p.allowed = std::move(c);
    return p;
  }
  static AccessPolicy local_dict(std::string dict) {
    AccessPolicy p;
    p.scan_dicts.push_back(std::move(dict));
    return p;
  }

  bool can_access(std::string_view dict, std::string_view key) const;
  bool can_scan(std::string_view dict) const;
};

class Txn {
 public:
  Txn(StateStore& store, AccessPolicy policy)
      : store_(store), policy_(std::move(policy)) {}
  ~Txn();

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // -- Key-level access (requires the cell or whole-dict permission) ------

  std::optional<Bytes> get(std::string_view dict, std::string_view key) const;
  bool contains(std::string_view dict, std::string_view key) const;
  void put(std::string_view dict, std::string_view key, Bytes value);
  bool erase(std::string_view dict, std::string_view key);

  template <WireEncodable T>
  std::optional<T> get_as(std::string_view dict, std::string_view key) const {
    auto raw = get(dict, key);
    if (!raw) return std::nullopt;
    return decode_from_bytes<T>(*raw);
  }

  template <WireEncodable T>
  void put_as(std::string_view dict, std::string_view key, const T& value) {
    put(dict, key, encode_to_bytes(value));
  }

  // -- Whole-dictionary access (requires (dict, "*") permission) ----------

  /// Iterates all entries in key order. Mutating the dict during iteration
  /// is not allowed; collect keys first if you must.
  void for_each(
      std::string_view dict,
      const std::function<void(const std::string&, const Bytes&)>& fn) const;

  std::size_t dict_size(std::string_view dict) const;

  // -- Lifecycle -----------------------------------------------------------

  /// Makes all writes permanent. A transaction not committed before
  /// destruction rolls back.
  void commit();

  /// Reverts every write performed through this transaction.
  void rollback();

  bool committed() const { return committed_; }
  std::size_t write_count() const { return redo_.size(); }

  /// One committed mutation, in execution order. The platform ships these
  /// to the bee's replica hive when state replication is enabled.
  struct WriteRecord {
    std::string dict;
    std::string key;
    bool erased = false;
    Bytes value;  ///< empty when erased
  };

  /// The redo log; meaningful after commit() (empty after rollback).
  const std::vector<WriteRecord>& writes() const { return redo_; }

 private:
  void check_access(std::string_view dict, std::string_view key) const;
  void record_undo(std::string_view dict, std::string_view key);

  struct UndoEntry {
    std::string dict;
    std::string key;
    std::optional<Bytes> prior;  ///< nullopt = key did not exist.
  };

  StateStore& store_;
  AccessPolicy policy_;
  std::vector<UndoEntry> undo_;
  std::vector<WriteRecord> redo_;
  bool committed_ = false;
  bool rolled_back_ = false;
};

}  // namespace beehive
