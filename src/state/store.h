// A bee's state store: the set of dictionaries (restricted to the cells the
// bee owns) that handlers read and write through transactions.
//
// Because cell ownership is exclusive, a store never holds an entry that
// another bee's store also holds — the global application state is the
// disjoint union of all bee stores.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "state/cell.h"
#include "state/dict.h"
#include "util/bytes.h"

namespace beehive {

class StateStore {
 public:
  /// Returns the named dictionary, creating it empty on first access.
  Dict& dict(std::string_view name);

  /// Read-only lookup; nullptr when the dictionary was never touched.
  const Dict* find_dict(std::string_view name) const;
  Dict* find_dict(std::string_view name);

  /// Moves every entry of `other` into this store (bee merge: when two
  /// previously independent cell sets turn out to intersect, the losing
  /// bee's state is folded into the winner).
  void merge_from(StateStore&& other);

  /// Total serialized footprint across dictionaries (capacity accounting).
  std::size_t byte_size() const;

  std::size_t dict_count() const { return dicts_.size(); }

  /// Serializes the full store (migration payload).
  Bytes snapshot() const;
  static StateStore from_snapshot(std::string_view data);

  /// Enumerates every (dict, key) currently present, in deterministic
  /// order. Used by the platform to reconcile ownership after merges.
  CellSet all_cells() const;

 private:
  std::map<std::string, Dict, std::less<>> dicts_;
};

}  // namespace beehive
