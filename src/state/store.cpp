#include "state/store.h"

namespace beehive {

Dict& StateStore::dict(std::string_view name) {
  auto it = dicts_.find(name);
  if (it == dicts_.end()) {
    it = dicts_.emplace(std::string(name), Dict(std::string(name))).first;
  }
  return it->second;
}

const Dict* StateStore::find_dict(std::string_view name) const {
  auto it = dicts_.find(name);
  return it == dicts_.end() ? nullptr : &it->second;
}

Dict* StateStore::find_dict(std::string_view name) {
  auto it = dicts_.find(name);
  return it == dicts_.end() ? nullptr : &it->second;
}

void StateStore::merge_from(StateStore&& other) {
  for (auto& [name, src] : other.dicts_) {
    Dict& dst = dict(name);
    src.for_each([&dst](const std::string& k, const Bytes& v) {
      dst.put(k, v);
    });
  }
  other.dicts_.clear();
}

std::size_t StateStore::byte_size() const {
  std::size_t total = 0;
  for (const auto& [_, d] : dicts_) total += d.byte_size();
  return total;
}

Bytes StateStore::snapshot() const {
  ByteWriter w;
  w.varint(dicts_.size());
  for (const auto& [_, d] : dicts_) d.encode(w);
  return std::move(w).take();
}

StateStore StateStore::from_snapshot(std::string_view data) {
  ByteReader r(data);
  StateStore store;
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    Dict d = Dict::decode(r);
    store.dicts_.emplace(d.name(), std::move(d));
  }
  return store;
}

CellSet StateStore::all_cells() const {
  CellSet cells;
  for (const auto& [name, d] : dicts_) {
    d.for_each([&cells, &name](const std::string& k, const Bytes&) {
      cells.insert({name, k});
    });
  }
  return cells;
}

}  // namespace beehive
