// A state dictionary: the application-visible key/value container.
//
// Values are stored serialized (Bytes) so that a bee's entire state can be
// snapshotted and shipped byte-for-byte during migration, and so that the
// platform can meter state size without knowing application types. Typed
// accessors put_as/get_as encode through the same wire codec used for
// messages.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "msg/codec.h"
#include "util/bytes.h"

namespace beehive {

class Dict {
 public:
  explicit Dict(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void put(std::string_view key, Bytes value) {
    entries_[std::string(key)] = std::move(value);
  }

  std::optional<Bytes> get(std::string_view key) const {
    auto it = entries_.find(std::string(key));
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(std::string_view key) const {
    return entries_.contains(std::string(key));
  }

  /// Removes the key; returns whether it existed.
  bool erase(std::string_view key) {
    return entries_.erase(std::string(key)) > 0;
  }

  template <WireEncodable T>
  void put_as(std::string_view key, const T& value) {
    put(key, encode_to_bytes(value));
  }

  template <WireEncodable T>
  std::optional<T> get_as(std::string_view key) const {
    auto raw = get(key);
    if (!raw) return std::nullopt;
    return decode_from_bytes<T>(*raw);
  }

  /// Iterates entries in key order (deterministic across runs).
  void for_each(
      const std::function<void(const std::string&, const Bytes&)>& fn) const {
    for (const auto& [k, v] : entries_) fn(k, v);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total serialized footprint (keys + values), used by the capacity model.
  std::size_t byte_size() const;

  void encode(ByteWriter& w) const;
  static Dict decode(ByteReader& r);

 private:
  std::string name_;
  // std::map keeps iteration deterministic; dict sizes per bee are small
  // (a bee typically owns a handful of cells).
  std::map<std::string, Bytes, std::less<>> entries_;
};

}  // namespace beehive
