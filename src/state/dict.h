// A state dictionary: the application-visible key/value container.
//
// Values are stored serialized (Bytes) so that a bee's entire state can be
// snapshotted and shipped byte-for-byte during migration, and so that the
// platform can meter state size without knowing application types. Typed
// accessors put_as/get_as encode through the same wire codec used for
// messages.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "msg/codec.h"
#include "util/bytes.h"

namespace beehive {

class Dict {
 public:
  explicit Dict(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void put(std::string_view key, Bytes value) {
    // Transparent find first: the overwhelmingly common case on the
    // dispatch hot path is overwriting an existing key, which must not
    // construct a temporary std::string for the lookup.
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = std::move(value);
      return;
    }
    entries_.emplace(std::string(key), std::move(value));
  }

  /// put() that also hands back the key's prior value — one tree traversal
  /// where the transactional write path (undo capture + store) used to pay
  /// two lookups plus a value copy.
  std::optional<Bytes> put_and_fetch_prior(std::string_view key,
                                           Bytes value) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      std::optional<Bytes> prior(std::move(it->second));
      it->second = std::move(value);
      return prior;
    }
    entries_.emplace(std::string(key), std::move(value));
    return std::nullopt;
  }

  std::optional<Bytes> get(std::string_view key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Borrowed lookup; nullptr when absent. Valid until the entry is
  /// overwritten or erased.
  const Bytes* get_ptr(std::string_view key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  bool contains(std::string_view key) const {
    return entries_.find(key) != entries_.end();
  }

  /// Removes the key; returns whether it existed.
  bool erase(std::string_view key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  template <WireEncodable T>
  void put_as(std::string_view key, const T& value) {
    put(key, encode_to_bytes(value));
  }

  template <WireEncodable T>
  std::optional<T> get_as(std::string_view key) const {
    auto raw = get(key);
    if (!raw) return std::nullopt;
    return decode_from_bytes<T>(*raw);
  }

  /// Iterates entries in key order (deterministic across runs).
  void for_each(
      const std::function<void(const std::string&, const Bytes&)>& fn) const {
    for (const auto& [k, v] : entries_) fn(k, v);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total serialized footprint (keys + values), used by the capacity model.
  std::size_t byte_size() const;

  void encode(ByteWriter& w) const;
  static Dict decode(ByteReader& r);

 private:
  std::string name_;
  // std::map keeps iteration deterministic; dict sizes per bee are small
  // (a bee typically owns a handful of cells).
  std::map<std::string, Bytes, std::less<>> entries_;
};

}  // namespace beehive
