#include "util/logging.h"

#include <cstdio>
#include <mutex>

#include "util/types.h"

namespace beehive {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::mutex g_log_mutex;
thread_local CurrentTrace g_current_trace;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

const CurrentTrace& current_trace() { return g_current_trace; }

TraceLogScope::TraceLogScope(std::uint64_t trace_id, std::uint32_t depth)
    : prev_(g_current_trace) {
  g_current_trace = CurrentTrace{trace_id, depth};
}

TraceLogScope::~TraceLogScope() { g_current_trace = prev_; }

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(g_log_mutex);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& message) {
  const CurrentTrace trace = g_current_trace;

  // Format the line once, then hand it to whichever sink is installed.
  char buf[64];
  std::string line;
  switch (format()) {
    case LogFormat::kPlain:
      line = std::string("[") + level_name(level) + "] " + message;
      break;
    case LogFormat::kKeyValue:
      line = std::string("level=") + level_name(level);
      if (trace.id != 0) {
        std::snprintf(buf, sizeof(buf), " trace=%llx depth=%u",
                      static_cast<unsigned long long>(trace.id), trace.depth);
        line += buf;
      }
      line += " msg=\"" + message + "\"";
      break;
    case LogFormat::kJson:
      line = std::string("{\"level\":\"") + level_name(level) + "\"";
      if (trace.id != 0) {
        std::snprintf(buf, sizeof(buf), ",\"trace\":\"%llx\",\"depth\":%u",
                      static_cast<unsigned long long>(trace.id), trace.depth);
        line += buf;
      }
      line += ",\"msg\":\"" + escape_json(message) + "\"}";
      break;
  }

  std::lock_guard lock(g_log_mutex);
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

std::string to_string_bee(BeeId bee) {
  if (bee == kNoBee) return "bee(io)";
  return "bee(" + std::to_string(bee_home_hive(bee)) + "/" +
         std::to_string(bee_counter(bee)) + ")";
}

}  // namespace beehive
