#include "util/logging.h"

#include <cstdio>
#include <mutex>

#include "util/types.h"

namespace beehive {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::mutex g_log_mutex;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

std::string to_string_bee(BeeId bee) {
  if (bee == kNoBee) return "bee(io)";
  return "bee(" + std::to_string(bee_home_hive(bee)) + "/" +
         std::to_string(bee_counter(bee)) + ")";
}

}  // namespace beehive
