#include "util/logging.h"

#include <cstdio>
#include <mutex>

#include "util/types.h"

namespace beehive {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::mutex g_log_mutex;
thread_local CurrentTrace g_current_trace;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

const CurrentTrace& current_trace() { return g_current_trace; }

TraceLogScope::TraceLogScope(std::uint64_t trace_id, std::uint32_t depth)
    : prev_(g_current_trace) {
  g_current_trace = CurrentTrace{trace_id, depth};
}

TraceLogScope::~TraceLogScope() { g_current_trace = prev_; }

void Logger::write(LogLevel level, const std::string& message) {
  const CurrentTrace trace = g_current_trace;
  std::lock_guard lock(g_log_mutex);
  switch (format_) {
    case LogFormat::kPlain:
      std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
      break;
    case LogFormat::kKeyValue:
      if (trace.id != 0) {
        std::fprintf(stderr, "level=%s trace=%llx depth=%u msg=\"%s\"\n",
                     level_name(level),
                     static_cast<unsigned long long>(trace.id), trace.depth,
                     message.c_str());
      } else {
        std::fprintf(stderr, "level=%s msg=\"%s\"\n", level_name(level),
                     message.c_str());
      }
      break;
    case LogFormat::kJson:
      if (trace.id != 0) {
        std::fprintf(stderr,
                     "{\"level\":\"%s\",\"trace\":\"%llx\",\"depth\":%u,"
                     "\"msg\":\"%s\"}\n",
                     level_name(level),
                     static_cast<unsigned long long>(trace.id), trace.depth,
                     escape_json(message).c_str());
      } else {
        std::fprintf(stderr, "{\"level\":\"%s\",\"msg\":\"%s\"}\n",
                     level_name(level), escape_json(message).c_str());
      }
      break;
  }
}

std::string to_string_bee(BeeId bee) {
  if (bee == kNoBee) return "bee(io)";
  return "bee(" + std::to_string(bee_home_hive(bee)) + "/" +
         std::to_string(bee_counter(bee)) + ")";
}

}  // namespace beehive
