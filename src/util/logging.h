// Minimal leveled logger. Deliberately tiny: the platform's interesting
// observability lives in instrument/ (per-bee metrics and traces), not in
// log lines — but lines can be emitted as key=value or JSON so external
// tooling can join them with trace ids.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace beehive {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Line layout. kPlain is the human default; kKeyValue and kJson are
/// machine-parseable structured modes that also carry the trace id of the
/// handler the line was written from (when one is in scope).
enum class LogFormat { kPlain = 0, kKeyValue, kJson };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void set_format(LogFormat format) { format_ = format; }
  LogFormat format() const { return format_; }

  /// Thread-safe write of one formatted line to stderr.
  void write(LogLevel level, const std::string& message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  LogFormat format_ = LogFormat::kPlain;
};

/// The trace context of the handler currently running on this thread
/// (0 = none). Installed by the hive around every handler invocation so
/// application log lines can be correlated with trace spans.
struct CurrentTrace {
  std::uint64_t id = 0;
  std::uint32_t depth = 0;
};
const CurrentTrace& current_trace();

/// RAII guard installing a trace context for the current thread; restores
/// the previous one on destruction (handlers never nest, but timers and
/// platform paths may interleave scopes on one hive thread).
class TraceLogScope {
 public:
  TraceLogScope(std::uint64_t trace_id, std::uint32_t depth);
  ~TraceLogScope();
  TraceLogScope(const TraceLogScope&) = delete;
  TraceLogScope& operator=(const TraceLogScope&) = delete;

 private:
  CurrentTrace prev_;
};

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define BH_LOG(level)                                             \
  if (!::beehive::Logger::instance().enabled(level)) {            \
  } else                                                          \
    ::beehive::internal::LogLine(level)

#define BH_TRACE BH_LOG(::beehive::LogLevel::kTrace)
#define BH_DEBUG BH_LOG(::beehive::LogLevel::kDebug)
#define BH_INFO BH_LOG(::beehive::LogLevel::kInfo)
#define BH_WARN BH_LOG(::beehive::LogLevel::kWarn)
#define BH_ERROR BH_LOG(::beehive::LogLevel::kError)

}  // namespace beehive
