// Minimal leveled logger. Deliberately tiny: the platform's interesting
// observability lives in instrument/ (per-bee metrics), not in log lines.
#pragma once

#include <sstream>
#include <string>

namespace beehive {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Thread-safe write of one formatted line to stderr.
  void write(LogLevel level, const std::string& message);

 private:
  LogLevel level_ = LogLevel::kWarn;
};

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define BH_LOG(level)                                             \
  if (!::beehive::Logger::instance().enabled(level)) {            \
  } else                                                          \
    ::beehive::internal::LogLine(level)

#define BH_TRACE BH_LOG(::beehive::LogLevel::kTrace)
#define BH_DEBUG BH_LOG(::beehive::LogLevel::kDebug)
#define BH_INFO BH_LOG(::beehive::LogLevel::kInfo)
#define BH_WARN BH_LOG(::beehive::LogLevel::kWarn)
#define BH_ERROR BH_LOG(::beehive::LogLevel::kError)

}  // namespace beehive
