// Minimal leveled logger. Deliberately tiny: the platform's interesting
// observability lives in instrument/ (per-bee metrics and traces), not in
// log lines — but lines can be emitted as key=value or JSON so external
// tooling can join them with trace ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace beehive {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Line layout. kPlain is the human default; kKeyValue and kJson are
/// machine-parseable structured modes that also carry the trace id of the
/// handler the line was written from (when one is in scope).
enum class LogFormat { kPlain = 0, kKeyValue, kJson };

class Logger {
 public:
  static Logger& instance();

  // Level and format are mutated by tests and examples after hive threads
  // have started; atomics make those setter races benign (relaxed is fine:
  // a stale read only delays a verbosity change by one line).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  void set_format(LogFormat format) {
    format_.store(format, std::memory_order_relaxed);
  }
  LogFormat format() const { return format_.load(std::memory_order_relaxed); }

  /// Receives every formatted line (after level filtering). Replaces the
  /// default stderr sink; tests capture lines with this and the
  /// FlightRecorder tees them into its ring.
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  /// Installs `sink` (empty restores the stderr default). Swapped under
  /// the write mutex, so it is safe while other threads are logging.
  void set_sink(Sink sink);

  /// Thread-safe write of one formatted line to the sink (default stderr).
  void write(LogLevel level, const std::string& message);

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<LogFormat> format_{LogFormat::kPlain};
  Sink sink_;  // guarded by the write mutex
};

/// The trace context of the handler currently running on this thread
/// (0 = none). Installed by the hive around every handler invocation so
/// application log lines can be correlated with trace spans.
struct CurrentTrace {
  std::uint64_t id = 0;
  std::uint32_t depth = 0;
};
const CurrentTrace& current_trace();

/// RAII guard installing a trace context for the current thread; restores
/// the previous one on destruction (handlers never nest, but timers and
/// platform paths may interleave scopes on one hive thread).
class TraceLogScope {
 public:
  TraceLogScope(std::uint64_t trace_id, std::uint32_t depth);
  ~TraceLogScope();
  TraceLogScope(const TraceLogScope&) = delete;
  TraceLogScope& operator=(const TraceLogScope&) = delete;

 private:
  CurrentTrace prev_;
};

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define BH_LOG(level)                                             \
  if (!::beehive::Logger::instance().enabled(level)) {            \
  } else                                                          \
    ::beehive::internal::LogLine(level)

#define BH_TRACE BH_LOG(::beehive::LogLevel::kTrace)
#define BH_DEBUG BH_LOG(::beehive::LogLevel::kDebug)
#define BH_INFO BH_LOG(::beehive::LogLevel::kInfo)
#define BH_WARN BH_LOG(::beehive::LogLevel::kWarn)
#define BH_ERROR BH_LOG(::beehive::LogLevel::kError)

}  // namespace beehive
