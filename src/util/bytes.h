// Binary wire encoding primitives.
//
// Beehive serializes every cell value and every inter-hive message with the
// same little-endian + LEB128-varint format so that (a) migration can ship
// cells byte-for-byte and (b) the control-channel meter sees realistic
// message sizes. `Bytes` (an alias of std::string) is the universal owned
// byte container: it is hashable, map-friendly and cheap to move.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace beehive {

using Bytes = std::string;

/// Thrown when a reader runs past the end of its buffer or decodes a
/// malformed varint. Decoding failures are programming or corruption
/// errors, never expected control flow.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to an owned byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint: 1 byte for values < 128.
  void varint(std::uint64_t v) {
    char tmp[10];
    std::size_t n = 0;
    while (v >= 0x80) {
      tmp[n++] = static_cast<char>((v & 0x7f) | 0x80);
      v >>= 7;
    }
    tmp[n++] = static_cast<char>(v);
    buf_.append(tmp, n);
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void str(std::string_view s) {
    varint(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes with no length prefix (caller knows the framing).
  void raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

  /// Empties the buffer but keeps its capacity — the basis of the hive's
  /// reusable serialization scratch buffers (zero allocations once warm).
  void clear() { buf_.clear(); }

  /// Overwrites 4 already-written bytes at `pos` with a little-endian u32.
  /// Used to back-patch a count field whose value is only known after the
  /// payload behind it has been appended (e.g. batch frame headers).
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (std::size_t i = 0; i < sizeof(v); ++i) {
      buf_[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }

 private:
  template <typename T>
  void fixed(T v) {
    // Serialize little-endian regardless of host order. Staging through a
    // stack buffer turns sizeof(T) capacity-checked push_backs into one
    // append (a single check + memcpy) — this is on the per-message
    // serialization hot path.
    char tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(tmp, sizeof(T));
  }

  Bytes buf_;
};

/// Reads primitive values from a byte view; throws DecodeError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift > 63) throw DecodeError("varint too long");
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    std::uint64_t n = varint();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::string_view view(std::size_t n) {
    need(n);
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw DecodeError("buffer underrun");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Human-readable hex dump (for diagnostics and tests).
std::string hex_dump(std::string_view data, std::size_t max_bytes = 64);

}  // namespace beehive
