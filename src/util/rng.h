// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be exactly reproducible, so all randomness flows
// through explicitly seeded generators; std::mt19937 distributions are not
// used because their output is not guaranteed identical across standard
// library implementations.
#pragma once

#include <cstdint>

namespace beehive {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the full state.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace beehive
