// Lightweight error propagation for handler and platform code paths where
// exceptions are inappropriate (hot paths, cross-hive protocol handling).
//
// Application handlers may still throw: the platform catches at the
// transaction boundary and rolls back (see core/bee.cpp).
#pragma once

#include <string>
#include <utility>

namespace beehive {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,
  kAborted,
  kInternal,
};

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Aborted(std::string m) {
    return {StatusCode::kAborted, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return message_.empty() ? code_name() : code_name() + ": " + message_;
  }

 private:
  std::string code_name() const {
    switch (code_) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kAborted: return "ABORTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Minimal expected-like wrapper: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {}    // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace beehive
