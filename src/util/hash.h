// Deterministic hashing helpers. FNV-1a is used to derive stable ids from
// names (app ids, message type ids) so that independently started hives
// agree on identifiers without coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace beehive {

constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint32_t fnv1a32(std::string_view s) {
  std::uint32_t h = 0x811c9dc5u;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace beehive
