// Fundamental identifier and time types shared across the Beehive platform.
//
// All simulated time is kept as integral microseconds so that the
// discrete-event runtime is exactly reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace beehive {

/// Identifies one controller ("hive") in the cluster. Hive 0 conventionally
/// hosts cluster-wide services (the cell registry master).
using HiveId = std::uint32_t;

/// Identifies one application. Stable across hives: derived from the app
/// name via FNV-1a so that every hive computes the same id.
using AppId = std::uint32_t;

/// Identifies a message type. Stable across hives (FNV-1a of type name).
using MsgTypeId = std::uint32_t;

/// Identifies a bee: the hive that created it in the upper 32 bits and a
/// per-hive counter in the lower 32. BeeId 0 is reserved for "no bee"
/// (messages injected from IO channels / the outside world).
using BeeId = std::uint64_t;

inline constexpr BeeId kNoBee = 0;

constexpr BeeId make_bee_id(HiveId hive, std::uint32_t counter) {
  return (static_cast<BeeId>(hive) << 32) | counter;
}

constexpr HiveId bee_home_hive(BeeId bee) {
  return static_cast<HiveId>(bee >> 32);
}

constexpr std::uint32_t bee_counter(BeeId bee) {
  return static_cast<std::uint32_t>(bee & 0xffffffffu);
}

/// Simulated time, microseconds since simulation start.
using TimePoint = std::int64_t;
/// Duration in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<TimePoint>::max();

/// Identifies a switch in the simulated network substrate.
using SwitchId = std::uint32_t;

std::string to_string_bee(BeeId bee);

}  // namespace beehive
