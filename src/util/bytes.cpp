#include "util/bytes.h"

namespace beehive {

std::string hex_dump(std::string_view data, std::size_t max_bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    auto b = static_cast<std::uint8_t>(data[i]);
    if (i) out.push_back(' ');
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  if (n < data.size()) out += " ...";
  return out;
}

}  // namespace beehive
