// Codec concept for Beehive wire messages.
//
// A message type is any struct that exposes a stable type name plus
// symmetric encode/decode functions over the platform's byte format:
//
//   struct FlowStatQuery {
//     static constexpr std::string_view kTypeName = "of.flow_stat_query";
//     SwitchId sw{};
//     void encode(ByteWriter& w) const { w.u32(sw); }
//     static FlowStatQuery decode(ByteReader& r) { return {.sw = r.u32()}; }
//   };
//
// The type name — not the C++ type — defines identity on the wire, so two
// hives built from the same sources always agree on MsgTypeIds (FNV-1a of
// the name) without any handshake.
#pragma once

#include <algorithm>
#include <concepts>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/types.h"

namespace beehive {

template <typename T>
concept WireEncodable = requires(const T& t, ByteWriter& w, ByteReader& r) {
  { T::kTypeName } -> std::convertible_to<std::string_view>;
  { t.encode(w) } -> std::same_as<void>;
  { T::decode(r) } -> std::same_as<T>;
};

template <WireEncodable T>
constexpr MsgTypeId msg_type_id() {
  return fnv1a32(T::kTypeName);
}

template <WireEncodable T>
Bytes encode_to_bytes(const T& value) {
  ByteWriter w;
  value.encode(w);
  return std::move(w).take();
}

template <WireEncodable T>
T decode_from_bytes(std::string_view data) {
  ByteReader r(data);
  return T::decode(r);
}

// Helpers for encoding homogeneous vectors inside message bodies.
template <WireEncodable T>
void encode_vector(ByteWriter& w, const std::vector<T>& items) {
  w.varint(items.size());
  for (const T& item : items) item.encode(w);
}

template <WireEncodable T>
std::vector<T> decode_vector(ByteReader& r) {
  std::vector<T> items;
  std::uint64_t n = r.varint();
  // The count is untrusted input: every element consumes at least one byte
  // of the buffer, so a claimed count beyond the bytes actually present is
  // certainly corrupt. Clamping the pre-reserve keeps a malformed frame
  // from triggering a multi-GB allocation before decode() hits the
  // underrun; the loop below still throws DecodeError at the real bound.
  items.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n, r.remaining())));
  for (std::uint64_t i = 0; i < n; ++i) items.push_back(T::decode(r));
  return items;
}

}  // namespace beehive
