#include "msg/registry.h"

namespace beehive {

MsgTypeRegistry& MsgTypeRegistry::instance() {
  static MsgTypeRegistry registry;
  return registry;
}

}  // namespace beehive
