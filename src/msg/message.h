// The message envelope: what flows between bees.
//
// A message carries a typed payload plus provenance (which app/bee/hive
// emitted it and when). Within a process the payload travels as an
// immutable shared object; when a message crosses a hive boundary it is
// serialized through MsgTypeRegistry and re-materialized on the far side.
// `wire_size` is computed eagerly at emission so the control-channel meter
// and the instrumentation layer account identical byte counts in both the
// simulated and the threaded runtimes.
#pragma once

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "msg/codec.h"
#include "msg/registry.h"
#include "util/types.h"

namespace beehive {

class MessageEnvelope {
 public:
  MessageEnvelope() = default;

  template <WireEncodable T>
  static MessageEnvelope make(T body, AppId from_app = 0,
                              BeeId from_bee = kNoBee, HiveId from_hive = 0,
                              TimePoint emitted_at = 0) {
    MsgTypeRegistry::instance().ensure<T>();
    MessageEnvelope m;
    m.type_ = msg_type_id<T>();
    m.from_app_ = from_app;
    m.from_bee_ = from_bee;
    m.from_hive_ = from_hive;
    m.emitted_at_ = emitted_at;
    m.payload_size_ = static_cast<std::uint32_t>(encode_to_bytes(body).size());
    m.body_ = std::make_shared<const T>(std::move(body));
    return m;
  }

  MsgTypeId type() const { return type_; }
  AppId from_app() const { return from_app_; }
  BeeId from_bee() const { return from_bee_; }
  HiveId from_hive() const { return from_hive_; }
  TimePoint emitted_at() const { return emitted_at_; }

  // -- Tracing ------------------------------------------------------------
  // trace_id groups one external event's whole causal fan-out; it is
  // minted deterministically at IO ingress (0 = untraced). causal_depth
  // grows by one per emission hop; trace_root_at is the ingress timestamp,
  // propagated unchanged so any hive can compute end-to-end latency.

  std::uint64_t trace_id() const { return trace_id_; }
  std::uint32_t causal_depth() const { return causal_depth_; }
  TimePoint trace_root_at() const { return trace_root_at_; }

  void set_trace(std::uint64_t trace_id, std::uint32_t depth,
                 TimePoint root_at) {
    trace_id_ = trace_id;
    causal_depth_ = depth;
    trace_root_at_ = root_at;
  }

  /// Stamps this message as one emission hop below `cause`.
  void inherit_trace(const MessageEnvelope& cause) {
    set_trace(cause.trace_id_, cause.causal_depth_ + 1, cause.trace_root_at_);
  }

  /// Payload bytes on the wire (excluding the fixed envelope header).
  std::uint32_t payload_size() const { return payload_size_; }

  /// Total bytes this message occupies on a control channel.
  std::uint32_t wire_size() const { return kHeaderBytes + payload_size_; }

  bool has_body() const { return body_ != nullptr; }

  template <WireEncodable T>
  bool is() const {
    return type_ == msg_type_id<T>();
  }

  /// Typed payload access; the caller must have checked `is<T>()` or be in
  /// a handler registered for T (the platform guarantees the match there).
  template <WireEncodable T>
  const T& as() const {
    if (!is<T>()) {
      throw std::logic_error(
          "MessageEnvelope::as<T>: payload is " +
          std::string(MsgTypeRegistry::instance().name_of(type_)) +
          ", requested " + std::string(T::kTypeName));
    }
    return *static_cast<const T*>(body_.get());
  }

  /// Serializes envelope header + payload for a hive-boundary crossing.
  Bytes to_wire() const {
    ByteWriter w;
    ByteWriter scratch;
    encode_to(w, scratch);
    return std::move(w).take();
  }

  /// Allocation-free variant of to_wire(): appends the serialized envelope
  /// to `out`, using `payload_scratch` (cleared here) as intermediate
  /// storage for the payload's length-prefixed encoding. With reusable
  /// writers both buffers retain their capacity across messages, so the
  /// steady-state dispatch path serializes without touching the heap.
  void encode_to(ByteWriter& out, ByteWriter& payload_scratch) const {
    const auto* entry = MsgTypeRegistry::instance().find(type_);
    assert(entry != nullptr && "message type not registered");
    out.u32(type_);
    out.u32(from_app_);
    out.u64(from_bee_);
    out.u32(from_hive_);
    out.i64(emitted_at_);
    out.u64(trace_id_);
    out.u32(causal_depth_);
    out.i64(trace_root_at_);
    payload_scratch.clear();
    entry->encode_into(body_.get(), payload_scratch);
    out.str(payload_scratch.bytes());
  }

  /// Reconstructs a typed envelope from wire bytes. Throws DecodeError on
  /// malformed input and logic_error for unregistered types.
  static MessageEnvelope from_wire(std::string_view data) {
    ByteReader r(data);
    MessageEnvelope m;
    m.type_ = r.u32();
    m.from_app_ = r.u32();
    m.from_bee_ = r.u64();
    m.from_hive_ = r.u32();
    m.emitted_at_ = r.i64();
    m.trace_id_ = r.u64();
    m.causal_depth_ = r.u32();
    m.trace_root_at_ = r.i64();
    // Borrow the payload straight out of the frame: decode() takes a view,
    // so the receive path materializes only the typed body object — the
    // intermediate copy the old code made bought nothing.
    const std::uint64_t payload_len = r.varint();
    std::string_view payload = r.view(payload_len);
    m.payload_size_ = static_cast<std::uint32_t>(payload.size());
    const auto* entry = MsgTypeRegistry::instance().find(m.type_);
    if (entry == nullptr) {
      throw std::logic_error("unregistered message type on wire");
    }
    m.body_ = entry->decode(payload);
    return m;
  }

  // Fixed header fields, in wire order: type(4) + app(4) + bee(8) +
  // hive(4) + time(8) + trace_id(8) + causal_depth(4) + trace_root_at(8).
  // Kept as a sum of sizeofs so it cannot silently drift from to_wire();
  // a test additionally asserts it against actual serialized bytes.
  static constexpr std::uint32_t kFixedHeaderBytes =
      sizeof(MsgTypeId) + sizeof(AppId) + sizeof(BeeId) + sizeof(HiveId) +
      sizeof(TimePoint) + sizeof(std::uint64_t) + sizeof(std::uint32_t) +
      sizeof(TimePoint);
  /// Accounted header size on a control channel: the fixed fields plus the
  /// payload length varint (amortized ~2 bytes).
  static constexpr std::uint32_t kHeaderBytes = kFixedHeaderBytes + 2;

 private:
  MsgTypeId type_ = 0;
  AppId from_app_ = 0;
  BeeId from_bee_ = kNoBee;
  HiveId from_hive_ = 0;
  TimePoint emitted_at_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint32_t causal_depth_ = 0;
  TimePoint trace_root_at_ = 0;
  std::uint32_t payload_size_ = 0;
  std::shared_ptr<const void> body_;
};

}  // namespace beehive
