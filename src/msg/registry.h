// Runtime registry of message types.
//
// The registry provides the type-erased encode/decode functions the
// platform needs when a message crosses a hive boundary: the sending hive
// serializes the typed payload, the receiving hive looks the MsgTypeId up
// and reconstructs the typed object. Registration is idempotent and
// normally happens from App::setup() or the message header's
// register_*_messages() helper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "msg/codec.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

class MsgTypeRegistry {
 public:
  struct Entry {
    MsgTypeId id = 0;
    std::string name;
    std::function<Bytes(const void*)> encode;
    std::function<std::shared_ptr<const void>(std::string_view)> decode;
  };

  static MsgTypeRegistry& instance();

  /// Registers T if not yet known; returns its stable id. Safe to call
  /// multiple times and from multiple translation units.
  template <WireEncodable T>
  MsgTypeId ensure() {
    const MsgTypeId id = msg_type_id<T>();
    if (entries_.contains(id)) return id;
    Entry e;
    e.id = id;
    e.name = std::string(T::kTypeName);
    e.encode = [](const void* p) {
      return encode_to_bytes(*static_cast<const T*>(p));
    };
    e.decode = [](std::string_view data) -> std::shared_ptr<const void> {
      return std::make_shared<const T>(decode_from_bytes<T>(data));
    };
    entries_.emplace(id, std::move(e));
    return id;
  }

  const Entry* find(MsgTypeId id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::string_view name_of(MsgTypeId id) const {
    const Entry* e = find(id);
    return e ? std::string_view(e->name) : std::string_view("<unknown>");
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<MsgTypeId, Entry> entries_;
};

}  // namespace beehive
