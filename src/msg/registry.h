// Runtime registry of message types.
//
// The registry provides the type-erased encode/decode functions the
// platform needs when a message crosses a hive boundary: the sending hive
// serializes the typed payload, the receiving hive looks the MsgTypeId up
// and reconstructs the typed object. Registration is idempotent and
// normally happens from App::setup() or the message header's
// register_*_messages() helper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "msg/codec.h"
#include "util/bytes.h"
#include "util/types.h"

namespace beehive {

class MsgTypeRegistry {
 public:
  struct Entry {
    MsgTypeId id = 0;
    std::string name;
    std::function<Bytes(const void*)> encode;
    /// Appends the encoding to a caller-owned writer instead of returning a
    /// fresh buffer — the dispatch path serializes into reusable per-hive
    /// scratch so a remote send performs no payload allocation.
    std::function<void(const void*, ByteWriter&)> encode_into;
    std::function<std::shared_ptr<const void>(std::string_view)> decode;
  };

  static MsgTypeRegistry& instance();

  /// Registers T if not yet known; returns its stable id. Safe to call
  /// multiple times and from multiple translation units.
  template <WireEncodable T>
  MsgTypeId ensure() {
    const MsgTypeId id = msg_type_id<T>();
    if (entries_.contains(id)) return id;
    Entry e;
    e.id = id;
    e.name = std::string(T::kTypeName);
    e.encode = [](const void* p) {
      return encode_to_bytes(*static_cast<const T*>(p));
    };
    e.encode_into = [](const void* p, ByteWriter& w) {
      static_cast<const T*>(p)->encode(w);
    };
    e.decode = [](std::string_view data) -> std::shared_ptr<const void> {
      return std::make_shared<const T>(decode_from_bytes<T>(data));
    };
    entries_.emplace(id, std::move(e));
    return id;
  }

  const Entry* find(MsgTypeId id) const {
    // Dispatch resolves the same type over and over (send-side encode and
    // receive-side decode both land here per message), so memoize the last
    // hit per thread. Entries are never erased, so the cached pointer stays
    // valid; the memo is thread-local because hive threads race on find().
    thread_local const Entry* last = nullptr;
    if (last != nullptr && last->id == id) return last;
    auto it = entries_.find(id);
    last = it == entries_.end() ? nullptr : &it->second;
    return last;
  }

  std::string_view name_of(MsgTypeId id) const {
    const Entry* e = find(id);
    return e ? std::string_view(e->name) : std::string_view("<unknown>");
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<MsgTypeId, Entry> entries_;
};

}  // namespace beehive
