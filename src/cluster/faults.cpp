#include "cluster/faults.h"

namespace beehive {

void FaultPlan::set_default_link(const LinkFaults& faults) {
  default_ = faults;
}

void FaultPlan::set_link(HiveId from, HiveId to, const LinkFaults& faults) {
  links_[{from, to}] = faults;
}

void FaultPlan::set_link_pair(HiveId a, HiveId b, const LinkFaults& faults) {
  set_link(a, b, faults);
  set_link(b, a, faults);
}

void FaultPlan::partition(HiveId a, HiveId b) {
  partitions_.insert(ordered(a, b));
}

void FaultPlan::heal(HiveId a, HiveId b) { partitions_.erase(ordered(a, b)); }

void FaultPlan::heal_all() { partitions_.clear(); }

bool FaultPlan::partitioned(HiveId a, HiveId b) const {
  return partitions_.contains(ordered(a, b));
}

const LinkFaults& FaultPlan::link(HiveId from, HiveId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_ : it->second;
}

FaultPlan::Delivery FaultPlan::decide(HiveId from, HiveId to,
                                      Duration base_latency,
                                      Xoshiro256& rng) {
  Delivery d;
  if (partitioned(from, to)) {
    ++stats_.frames_partitioned;
    d.copies = 0;
    return d;
  }
  const LinkFaults& f = link(from, to);
  // Fixed draw order (drop, duplicate, then per-copy jitter/reorder) keeps
  // the RNG stream — and therefore the whole run — a pure function of
  // (seed, plan, traffic).
  if (f.drop > 0.0 && rng.next_double() < f.drop) {
    ++stats_.frames_dropped;
    d.copies = 0;
    return d;
  }
  if (f.duplicate > 0.0 && rng.next_double() < f.duplicate) {
    ++stats_.frames_duplicated;
    d.copies = 2;
  }
  for (std::uint8_t i = 0; i < d.copies; ++i) {
    Duration extra = 0;
    if (f.jitter > 0.0 && rng.next_double() < f.jitter) {
      extra += static_cast<Duration>(
          rng.next_double() * static_cast<double>(f.jitter_max));
    }
    if (f.reorder > 0.0 && rng.next_double() < f.reorder) {
      extra += base_latency;
    }
    if (extra > 0) ++stats_.frames_delayed;
    d.extra_delay[i] = extra;
  }
  return d;
}

bool FaultPlan::rpc_lost(HiveId requester, HiveId server, Xoshiro256& rng) {
  if (requester == server) return false;
  if (partitioned(requester, server)) {
    ++stats_.rpcs_lost;
    return true;
  }
  const LinkFaults& f = link(requester, server);
  if (f.drop > 0.0 && rng.next_double() < f.drop) {
    ++stats_.rpcs_lost;
    return true;
  }
  return false;
}

}  // namespace beehive
