#include "cluster/thread_cluster.h"

#include <algorithm>
#include <cassert>
#include <future>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace beehive {

ThreadCluster::ThreadCluster(ThreadClusterConfig config, const AppSet& apps)
    : config_(config),
      meter_(config.n_hives, config.bw_bucket),
      registry_(config.n_hives, &meter_, config.registry_hive),
      rng_(config.seed),
      epoch_(std::chrono::steady_clock::now()) {
  assert(config_.n_hives > 0);
  config_.hive.n_hives = config_.n_hives;
  if (config_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (config_.flight_recorder) {
    recorder_ = std::make_unique<FlightRecorder>(
        config_.flight_recorder_lines,
        static_cast<std::size_t>(config_.n_hives));
    // No span source here: the per-hive trace recorders are single-writer
    // and unlocked, so a dump from an arbitrary thread must not read them.
    // The trace source IS safe — assembled_traces() snapshots each
    // recorder on its own loop thread with a bounded wait.
    if (config_.tracing) {
      recorder_->set_trace_source(
          [this] { return blame_summary_text(assembled_traces(8)); });
    }
  }
  nodes_.reserve(config_.n_hives);
  if (config_.tracing) tracers_.reserve(config_.n_hives);
  for (HiveId id = 0; id < config_.n_hives; ++id) {
    HiveConfig hc = config_.hive;
    if (config_.tracing) {
      tracers_.push_back(
          std::make_unique<TraceRecorder>(config_.trace_capacity));
      if (config_.tail.enabled) {
        tracers_.back()->configure_tail(config_.tail);
      }
      hc.tracer = tracers_.back().get();
    }
    hc.faults = &faults_;
    hc.metrics = metrics_.get();
    hc.recorder = recorder_.get();
    auto node = std::make_unique<Node>(config_.ring_capacity);
    node->hive = std::make_unique<Hive>(id, apps, registry_, *this, hc);
    nodes_.push_back(std::move(node));
  }
  if (metrics_) {
    // Channel totals as pull-gauges; the meter's own mutex makes the reads
    // thread-safe at scrape time.
    metrics_->gauge_fn(
        "beehive_channel_bytes_total", {},
        [this] { return static_cast<double>(meter_.total_bytes()); },
        "Bytes that crossed the inter-hive control channel.",
        /*counter_semantics=*/true);
    metrics_->gauge_fn(
        "beehive_channel_messages_total", {},
        [this] { return static_cast<double>(meter_.total_messages()); },
        "Frames that crossed the inter-hive control channel.",
        /*counter_semantics=*/true);
    metrics_->gauge_fn(
        "beehive_channel_hotspot_share", {},
        [this] { return meter_.hotspot_share(); },
        "Fraction of inter-hive traffic involving the busiest hive.");
    register_registry_shard_metrics(*metrics_, registry_);
    if (config_.tracing) {
      // Critical-path blame totals over the slowest assembled traces
      // (DESIGN.md §11). Assembly is too heavy per scrape; blame_scrape
      // caches for ~1s. Callbacks run with the registry mutex released.
      struct Bucket {
        const char* name;
        std::uint64_t TraceBlame::* field;
      };
      static constexpr Bucket kBuckets[] = {
          {"queue", &TraceBlame::queue_us},
          {"handler", &TraceBlame::handler_us},
          {"serialize", &TraceBlame::serialize_us},
          {"wire", &TraceBlame::wire_us},
          {"retransmit", &TraceBlame::retransmit_us},
          {"stall", &TraceBlame::stall_us},
      };
      for (const Bucket& b : kBuckets) {
        metrics_->gauge_fn(
            "beehive_blame_us", {{"bucket", b.name}},
            [this, field = b.field] {
              std::uint64_t n = 0;
              return static_cast<double>(blame_scrape(&n).*field);
            },
            "Critical-path microseconds attributed to this bucket across "
            "the slowest assembled traces.");
      }
      metrics_->gauge_fn(
          "beehive_blame_traces", {},
          [this] {
            std::uint64_t n = 0;
            blame_scrape(&n);
            return static_cast<double>(n);
          },
          "Assembled traces behind the beehive_blame_us totals.");
    }
  }
  // Registry RPC attempts traverse the same lossy network as frames. The
  // hook runs under the registry mutex on arbitrary hive threads, so the
  // RNG (and the plan's stats) need the rng mutex.
  registry_.set_rpc_fault_hook([this](HiveId requester) {
    if (!faults_.active()) return false;
    std::lock_guard lock(rng_mutex_);
    return faults_.rpc_lost(requester, config_.registry_hive, rng_);
  });
}

ThreadCluster::~ThreadCluster() { stop(); }

TimePoint ThreadCluster::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ThreadCluster::start() {
  if (running_.exchange(true)) return;
  for (auto& node : nodes_) {
    node->thread = std::thread([this, n = node.get()]() { loop(*n); });
  }
  for (auto& node : nodes_) {
    // Arm timers on the hive's own thread.
    post(node->hive->id(), [h = node->hive.get()]() { h->start(); });
  }
}

void ThreadCluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& node : nodes_) {
    std::lock_guard lock(node->mutex);
    node->cv.notify_all();
    node->idle_cv.notify_all();  // release wait_idle() callers
  }
  for (auto& node : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
}

void ThreadCluster::post(HiveId hive, std::function<void()> fn) {
  schedule_after(hive, 0, std::move(fn));
}

void ThreadCluster::schedule_after(HiveId hive, Duration delay,
                                   std::function<void()> fn) {
  assert(hive < nodes_.size());
  Node& node = *nodes_[hive];
  Task task;
  task.at = delay <= 0 ? 0 : now() + delay;
  task.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  task.fn = std::move(fn);
  node.queue.push(std::move(task));

  // Pressure accounting: occupancy watermarks sampled at enqueue (the
  // consumer samples again per drain). Relaxed — monitoring, not ordering.
  const std::uint64_t depth =
      node.queue.size() + node.timed_size.load(std::memory_order_relaxed);
  if (depth > node.q_hwm.load(std::memory_order_relaxed)) {
    node.q_hwm.store(depth, std::memory_order_relaxed);
  }
  const std::uint64_t ring = node.queue.ring_size();
  if (ring > node.ring_hwm.load(std::memory_order_relaxed)) {
    node.ring_hwm.store(ring, std::memory_order_relaxed);
  }

  // Wake the loop only when it is actually parked (the empty->non-empty
  // edge): in steady state `sleeping` is false and the push costs no lock
  // and no syscall. The seq_cst fence orders our ring publish before the
  // sleeping read against the loop's park sequence (set sleeping, fence,
  // re-check ring) — the classic store/load handshake; the loop's bounded
  // wait backstops the (now impossible) missed-wakeup interleaving.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (node.sleeping.load(std::memory_order_relaxed)) {
    std::lock_guard lock(node.mutex);
    node.cv.notify_one();
  }
}

void ThreadCluster::send_frame(HiveId from, HiveId to, Bytes frame) {
  assert(from < nodes_.size() && to < nodes_.size());
  meter_.record(from, to, frame.size(), now());
  // Channel transit spans paired by a cluster-unique frame sequence. The
  // send side records on the source hive's recorder (we are on its loop
  // thread), the receive side on the target's — each recorder stays
  // single-writer.
  const std::uint64_t frame_seq = next_seq_.fetch_add(1);
  const auto kind = frame.empty()
                        ? MsgTypeId{0}
                        : static_cast<MsgTypeId>(
                              static_cast<unsigned char>(frame[0]));
  const auto bytes = static_cast<std::uint32_t>(frame.size());
  if (TraceRecorder* t = tracer(from); t != nullptr) {
    t->record(TraceEvent{now(), SpanKind::kChannelSend, bytes, 0, from,
                         kNoBee, 0, kind, frame_seq, to});
  }
  // The fault plan decides this frame's fate (drop / duplicate / delay).
  FaultPlan::Delivery fate;
  if (faults_.active()) {
    std::lock_guard lock(rng_mutex_);
    fate = faults_.decide(from, to, /*base_latency=*/0, rng_);
    if (fate.copies == 0) return;  // dropped or partitioned
  }
  Hive* target = nodes_[to]->hive.get();
  // Delivery runs on the target hive's loop thread, preserving the
  // single-threaded-per-hive execution discipline.
  for (std::uint8_t copy = 0; copy < fate.copies; ++copy) {
    Bytes payload = (copy + 1 == fate.copies) ? std::move(frame) : frame;
    schedule_after(to, fate.extra_delay[copy],
                   [this, from, to, target, frame_seq, kind, bytes,
                    f = std::move(payload)]() {
                     if (TraceRecorder* t = tracer(to); t != nullptr) {
                       t->record(TraceEvent{now(), SpanKind::kChannelRecv,
                                            bytes, 0, from, kNoBee, 0, kind,
                                            frame_seq, to});
                     }
                     target->on_wire(f);
                   });
  }
}

QueueStats ThreadCluster::queue_stats(HiveId hive) {
  if (hive >= nodes_.size()) return {};
  Node& node = *nodes_[hive];
  QueueStats qs;
  qs.depth =
      node.queue.size() + node.timed_size.load(std::memory_order_relaxed);
  // Window-watermark semantics: swap the current depth in as the new
  // baseline. A concurrent enqueue's bump can race the reset and be lost
  // across the window boundary — acceptable for a watermark gauge.
  qs.hwm = std::max(node.q_hwm.exchange(qs.depth, std::memory_order_relaxed),
                    qs.depth);
  qs.drained = node.q_drained.load(std::memory_order_relaxed);
  const std::uint64_t ring = node.queue.ring_size();
  qs.ring_hwm =
      std::max(node.ring_hwm.exchange(ring, std::memory_order_relaxed), ring);
  qs.overflowed = node.queue.overflowed();
  return qs;
}

HealthReport ThreadCluster::health(
    const std::vector<HiveId>& suspected) const {
  HealthReport report;
  report.at = now();
  report.hives.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    HiveHealth h = node->hive->health();
    h.suspected = std::find(suspected.begin(), suspected.end(), h.hive) !=
                  suspected.end();
    report.hives.push_back(h);
  }
  report.registry_shards.reserve(registry_.shard_count());
  for (std::uint32_t s = 0; s < registry_.shard_count(); ++s) {
    const RegistryShardStats stats = registry_.shard_stats(s);
    report.registry_shards.push_back({s, stats.ops, stats.lock_waits,
                                      stats.lock_wait_ns / 1000,
                                      stats.invalidations, stats.resolves,
                                      stats.lease_term});
  }
  return report;
}

std::string ThreadCluster::health_json(
    const std::vector<HiveId>& suspected) const {
  return health(suspected).to_json();
}

std::vector<TraceEvent> ThreadCluster::trace_events() const {
  std::vector<const TraceRecorder*> recorders;
  recorders.reserve(tracers_.size());
  for (const auto& t : tracers_) recorders.push_back(t.get());
  return merge_trace_events(recorders);
}

std::vector<TraceEvent> ThreadCluster::snapshot_trace_events() {
  std::vector<TraceEvent> all;
  if (tracers_.empty()) return all;
  if (!running_.load()) {
    // Quiescent: no loop threads are writing, direct reads are safe.
    for (const auto& t : tracers_) {
      std::vector<TraceEvent> events = t->events_with_retained();
      all.insert(all.end(), events.begin(), events.end());
    }
    return all;
  }
  // Running: each recorder is single-writer from its hive's loop thread,
  // so the copy must happen *on* that thread. Bounded wait per hive — a
  // wedged or overloaded loop is skipped (partial assembly beats blocking
  // a scrape forever, and beats a torn read always). The shared_ptr keeps
  // the promise alive if we time out and the task fires later.
  for (HiveId id = 0; id < tracers_.size(); ++id) {
    auto slot = std::make_shared<std::promise<std::vector<TraceEvent>>>();
    std::future<std::vector<TraceEvent>> done = slot->get_future();
    post(id, [t = tracers_[id].get(), slot] {
      slot->set_value(t->events_with_retained());
    });
    if (done.wait_for(std::chrono::seconds(2)) ==
        std::future_status::ready) {
      std::vector<TraceEvent> events = done.get();
      all.insert(all.end(), events.begin(), events.end());
    }
  }
  return all;
}

std::vector<AssembledTrace> ThreadCluster::assembled_traces(
    std::size_t top_n) {
  return assemble_traces(snapshot_trace_events(), top_n);
}

std::string ThreadCluster::traces_json(std::size_t top_n) {
  return beehive::traces_json(assembled_traces(top_n), now());
}

TraceBlame ThreadCluster::blame_scrape(std::uint64_t* n_traces) {
  std::lock_guard lock(blame_mutex_);
  const TimePoint at = now();
  if (at - blame_at_ >= kSecond) {
    std::vector<AssembledTrace> traces = assembled_traces(20);
    blame_totals_ = blame_totals(traces);
    blame_traces_ = traces.size();
    blame_at_ = at;
  }
  if (n_traces != nullptr) *n_traces = blame_traces_;
  return blame_totals_;
}

void ThreadCluster::pin_loop_thread(std::size_t hive_index) {
#if defined(__linux__)
  const unsigned ncores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned core =
      (static_cast<unsigned>(config_.hive.pin_cpu) + hive_index) % ncores;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best-effort: a failure (cgroup cpuset restrictions, exotic kernels)
  // leaves the thread unpinned, which is only a performance concern.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)hive_index;
#endif
}

void ThreadCluster::loop(Node& node) {
  if (config_.hive.pin_cpu >= 0) pin_loop_thread(node.hive->id());
  // Reusable buffers: live on the loop thread only, keep their capacity
  // across iterations — the steady-state drain allocates nothing.
  std::vector<Task> batch;
  std::vector<std::function<void()>> run;
  while (running_.load()) {
    // `busy` goes up BEFORE the drain: from here until the drained batch
    // has executed, in-flight work is visible either in the queue or in
    // this flag — wait_idle() checks both, so it can't slip through the
    // gap between a drain and the batch's execution.
    node.busy.store(true, std::memory_order_seq_cst);
    batch.clear();
    node.queue.drain(batch);
    const TimePoint current = now();

    // Ring-occupancy watermark, sampled pre-drain occupancy via batch size
    // (the producers also sample at enqueue; this catches bursts drained
    // before any scrape).
    const auto drained_now = static_cast<std::uint64_t>(batch.size());
    if (drained_now > node.ring_hwm.load(std::memory_order_relaxed)) {
      node.ring_hwm.store(drained_now, std::memory_order_relaxed);
    }

    // Delayed tasks ride the ring stamped with a due time; file them into
    // the loop-local heap (no lock — only this thread touches it).
    for (Task& t : batch) {
      if (t.at != 0) node.timed.push(std::move(t));
    }
    // Due timed tasks run first (they were scheduled for an earlier
    // instant), ordered by (due time, sequence) ...
    while (!node.timed.empty() && node.timed.top().at <= current) {
      run.push_back(std::move(const_cast<Task&>(node.timed.top()).fn));
      node.timed.pop();
    }
    // ... then this turn's immediate tasks, in arrival (ring) order.
    for (Task& t : batch) {
      if (t.at == 0) run.push_back(std::move(t.fn));
    }
    node.timed_size.store(node.timed.size(), std::memory_order_relaxed);

    if (!run.empty()) {
      node.q_drained.fetch_add(run.size(), std::memory_order_relaxed);
      for (auto& fn : run) fn();
      run.clear();
      node.busy.store(false, std::memory_order_seq_cst);
      // Idle edge: executing the batch may have re-fed our own queue
      // (egress flushes, deferred emissions), so check after the store.
      if (node.queue.empty() && node.timed.empty()) {
        std::lock_guard lock(node.mutex);
        node.idle_cv.notify_all();
      }
      continue;
    }

    node.busy.store(false, std::memory_order_seq_cst);
    // Nothing runnable: park until the next due time or a producer's wake.
    std::unique_lock lock(node.mutex);
    node.sleeping.store(true, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Dekker re-check against a push that raced the park: the producer
    // published to the ring before reading `sleeping`; we set `sleeping`
    // before re-reading the ring. One of the two must see the other.
    if (!node.queue.empty()) {
      node.sleeping.store(false, std::memory_order_seq_cst);
      continue;
    }
    if (node.timed.empty()) {
      node.idle_cv.notify_all();  // truly empty: release wait_idle callers
      node.cv.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      Duration until_due = node.timed.top().at - now();
      if (until_due < 0) until_due = 0;
      node.cv.wait_for(lock,
                       std::min(std::chrono::microseconds(until_due),
                                std::chrono::microseconds(50000)));
    }
    node.sleeping.store(false, std::memory_order_seq_cst);
  }
}

bool ThreadCluster::node_idle(Node& node) {
  // Order matters. (1) queue empty — synchronizes with the consumer's
  // drain, so if emptiness came from a drain, the pre-drain busy=true is
  // visible at (2). (2) not busy — its release store follows every push
  // the executing batch made, so (3) re-reading the queue sees any re-fed
  // work. A bare queue-then-busy read (or busy-then-queue) admits an
  // interleaving where a drained-but-still-executing batch, or its
  // self-pushed follow-up work, goes unseen — the early-return bug this
  // replaces.
  if (!node.queue.empty()) return false;
  if (node.busy.load(std::memory_order_seq_cst)) return false;
  if (!node.queue.empty()) return false;
  return node.timed_size.load(std::memory_order_relaxed) == 0;
}

void ThreadCluster::wait_idle() {
  // Two phases: first park on each node's idle condition (no polling), then
  // take one confirming pass — a node visited early may have been re-fed by
  // a later one, in which case we go around again.
  while (running_.load()) {
    for (auto& node : nodes_) {
      std::unique_lock lock(node->mutex);
      node->idle_cv.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return !running_.load() || node_idle(*node);
      });
    }
    bool idle = true;
    for (auto& node : nodes_) {
      if (!node_idle(*node)) {
        idle = false;
        break;
      }
    }
    if (idle) return;
  }
}

}  // namespace beehive
