// Control-channel accounting.
//
// Every byte that crosses a hive boundary — application messages, registry
// RPCs, migration payloads, metrics reports — is recorded here. The meter
// produces the two artifacts of the paper's evaluation (Figure 4):
//   * the inter-hive traffic matrix (panels a–c), and
//   * the control-channel bandwidth time series in KB/s (panels d–f).
//
// Writes are striped per source hive: record(from, ...) touches only the
// source's stripe (its own mutex, its own matrix row and bandwidth series),
// so concurrent senders on the threaded runtime never contend with each
// other. Readers — scrapes, post-run analytics — merge across stripes;
// they are rare and pay the aggregation instead of the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace beehive {

class ChannelMeter {
 public:
  /// `n_hives` sizes the traffic matrix; `bucket` is the time-series
  /// resolution (default 1 simulated second, matching the paper's KB/s).
  explicit ChannelMeter(std::size_t n_hives, Duration bucket = kSecond);

  void record(HiveId from, HiveId to, std::size_t bytes, TimePoint when);

  // -- Traffic matrix (Fig 4 a–c) -----------------------------------------

  /// Bytes sent from hive `from` to hive `to` since construction/reset.
  std::uint64_t matrix_bytes(HiveId from, HiveId to) const;
  std::uint64_t matrix_messages(HiveId from, HiveId to) const;

  /// Fraction of all inter-hive bytes on the diagonal-adjacent... not
  /// meaningful; instead: fraction of traffic involving the busiest hive.
  /// Used by benches/tests to characterize centralization.
  double hotspot_share() const;

  /// Fraction of traffic between distinct hive pairs that involves hive h.
  double hive_share(HiveId h) const;

  std::size_t n_hives() const { return n_; }

  // -- Bandwidth time series (Fig 4 d–f) ----------------------------------

  /// Total bytes per bucket, cluster-wide, index = bucket number.
  std::vector<std::uint64_t> bandwidth_series() const;

  /// Convenience: series converted to KB/s given the bucket width.
  std::vector<double> bandwidth_kbps() const;

  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;

  void reset();

  /// Renders the matrix as a coarse ASCII heat map (rows = source hive),
  /// `cells` characters wide/tall; for terminal inspection of Fig 4 a–c.
  std::string ascii_heatmap(std::size_t cells = 20) const;

 private:
  /// One source hive's accounting: a matrix row plus its contribution to
  /// the bandwidth series, guarded by its own lock. unique_ptr keeps the
  /// mutex address stable (Stripe itself is immovable).
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> bytes;   ///< indexed by destination hive
    std::vector<std::uint64_t> counts;  ///< indexed by destination hive
    std::vector<std::uint64_t> series;  ///< per bucket
  };

  /// Merged copy of every stripe's matrix (bytes, counts): the read-side
  /// aggregation all matrix queries go through.
  void merge_matrix(std::vector<std::uint64_t>& bytes,
                    std::vector<std::uint64_t>& counts) const;
  static double share_of(const std::vector<std::uint64_t>& bytes,
                         std::size_t n, HiveId h);

  std::size_t n_;
  Duration bucket_;
  std::vector<std::unique_ptr<Stripe>> stripes_;  ///< indexed by source hive
};

}  // namespace beehive
