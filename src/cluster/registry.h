// The cell registry: Beehive's distributed locking mechanism.
//
// The paper delegates cell-to-bee ownership to "a distributed locking
// mechanism (e.g., Chubby)". We implement that service in-cluster: an
// authoritative RegistryService logically hosted on one hive (hive 0 by
// default), fronted on every hive by a RegistryClient that keeps a
// write-through cache of ownership. As in Chubby, the master invalidates
// client caches when ownership changes. All RPC and invalidation traffic is
// accounted on the control channel, so registry cost is visible in the
// Figure 4 bandwidth numbers.
//
// The registry is the single arbiter of the platform's core invariant:
// every cell is owned by exactly one live bee, and any two cell sets that
// intersect resolve to the same bee. When a resolve discovers that a
// message's mapped cells span several existing bees (the collocation
// obligation of paper §2), the registry atomically reassigns all involved
// cells to a winner and reports the losers so the hives can merge state.
//
// -- Control-plane scale (DESIGN.md §13) ------------------------------------
// The service is internally partitioned into N independent shards by
// cell-key hash. Each shard owns its own mutex, ownership tables, bee
// records (a bee is "homed" in the shard of the cells it was created for),
// cacher lists and lease state, so resolves against disjoint key ranges
// never contend. The public API is unchanged: a thin router computes the
// set of shards an operation touches and locks exactly those, in ascending
// index order; when the decision turns out to involve bees homed elsewhere
// (a cross-shard merge), the router releases everything and retries with
// the expanded set — the classic lock-coupling restart, which single-shard
// steady-state traffic never pays. Each shard also grants leases
// (term + expiry): clients may serve cached assignments of a shard while
// they hold an unexpired lease on it, even through registry suspicion
// windows; a term bump (failover) forces per-shard revalidation without
// touching the other shards' caches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/channel.h"
#include "state/cell.h"
#include "util/types.h"

namespace beehive {

struct BeeRecord {
  BeeId id = kNoBee;
  AppId app = 0;
  HiveId hive = 0;
  CellSet cells;
  bool pinned = false;    ///< Never migrated / never loses a merge (drivers).
  bool dead = false;
  BeeId forwarded_to = kNoBee;  ///< Where this bee's cells went on merge.
  /// Migration epoch: bumped by begin_migration and cancel_migration, so a
  /// commit_migration carrying a stale epoch (a transfer frame that out-
  /// lived its migration's abort) is rejected instead of moving the bee.
  std::uint64_t mig_epoch = 0;
  /// Monotonic count of state transfers decided *into* this bee (one per
  /// merge loser). Messages carry this as a fence: the bee must have
  /// applied at least this many transfers before processing them.
  std::uint64_t transfers_expected = 0;
};

struct ResolveOutcome {
  BeeId bee = kNoBee;
  HiveId hive = 0;
  bool created = false;
  /// The winner's transfers_expected after this decision (0 for cache
  /// hits, which is safe: cached cells were never re-homed — invalidation
  /// evicts entries of merged-away bees).
  std::uint64_t transfers_expected = 0;
  /// Bees whose cells were just reassigned to `bee`; the caller must
  /// arrange state transfer (merge) from each loser into `bee`.
  struct Loser {
    BeeId bee;
    HiveId hive;
  };
  std::vector<Loser> losers;
  /// Primary registry shard of the resolved cell set (kAllShards when the
  /// set spans shards). Stamped by the service so clients and the hive
  /// dispatch memo can validate per shard instead of globally.
  std::uint32_t shard = 0;
  /// Lease of the primary shard at decision time (term 0 when the set
  /// spans shards — the client pulls a full snapshot instead).
  std::uint64_t lease_term = 0;
  TimePoint lease_expiry = 0;
};

/// One shard's contention/throughput counters, for /metrics and beectl.
struct RegistryShardStats {
  std::uint64_t ops = 0;            ///< locked operations through the shard
  std::uint64_t lock_waits = 0;     ///< acquisitions that contended
  std::uint64_t lock_wait_ns = 0;   ///< total time spent waiting for the lock
  std::uint64_t invalidations = 0;  ///< cache-invalidation events issued
  std::uint64_t resolves = 0;       ///< resolve decisions anchored here
  std::uint64_t lease_term = 0;     ///< current lease term
  TimePoint lease_expiry = 0;       ///< latest granted lease expiry
};

class RegistryService {
 public:
  /// Default shard count; 8 keeps single-lock behavior measurable in
  /// benches (pass 1) while removing the global-mutex hotspot by default.
  static constexpr std::size_t kDefaultShards = 8;
  /// Shard sets are tracked as a 64-bit mask; counts are clamped to this.
  static constexpr std::size_t kMaxShards = 64;
  /// Sentinel "spans more than one shard" value for primary-shard fields.
  static constexpr std::uint32_t kAllShards = 0xffffffffu;

  /// `meter` may be null (tests); `registry_hive` is where the service
  /// logically runs — RPCs from other hives are billed to the channel.
  RegistryService(std::size_t n_hives, ChannelMeter* meter,
                  HiveId registry_hive = 0,
                  std::size_t n_shards = kDefaultShards);

  /// Benches override initial placement (the paper's "artificially assign
  /// the cells of all switches to the bees on the first hive"). Returning
  /// the requester's id reproduces the default local-creation rule.
  using PlacementHook =
      std::function<HiveId(AppId, const CellSet&, HiveId requester)>;
  void set_placement_hook(PlacementHook hook);

  /// The core lock operation; see file comment. `requester` is billed for
  /// the RPC unless it is the registry hive itself or the lookup was
  /// served from its client cache (the client handles that).
  ResolveOutcome resolve_or_create(AppId app, const CellSet& cells,
                                   HiveId requester, bool pinned,
                                   TimePoint now);

  /// Re-points a live bee to a new hive (migration commit).
  void move_bee(BeeId bee, HiveId to, TimePoint now);

  /// move_bee plus control-channel billing for the RPC from `requester`.
  void move_bee_rpc(BeeId bee, HiveId to, HiveId requester, TimePoint now);

  // -- Migration epochs ------------------------------------------------------
  // The source hive mints an epoch when it freezes a bee for migration; the
  // target commits the move conditionally on that epoch. Aborting the
  // migration bumps the epoch, so a zombie transfer frame that arrives
  // after the abort can no longer re-home the bee (split-brain guard).

  /// Starts (or restarts) a migration of `bee`: bumps and returns its
  /// epoch. Returns 0 for unknown/dead bees.
  std::uint64_t begin_migration(BeeId bee, HiveId requester, TimePoint now);

  /// Commits the move iff `epoch` is still current. Idempotent for
  /// duplicate transfers of the same migration. Billed as an RPC from
  /// `requester`. Returns false when the epoch is stale (aborted).
  bool commit_migration(BeeId bee, HiveId to, std::uint64_t epoch,
                        HiveId requester, TimePoint now);

  /// Aborts a migration: bumps the epoch so in-flight transfers cannot
  /// commit. Fails (returns false) when the bee is no longer at `origin` —
  /// i.e. a commit won the race and the caller should treat the migration
  /// as complete instead.
  bool cancel_migration(BeeId bee, HiveId origin, HiveId requester,
                        TimePoint now);

  /// Registers one additional state transfer decided into `bee` outside a
  /// resolve. Keeps the fence accounting balanced for paths the resolve
  /// did not count.
  void add_expected_transfer(BeeId bee);

  /// Resets a bee's transfer fence (crash recovery: the adopted bee starts
  /// from replica state with fresh counters; transfers in flight to the
  /// dead hive are lost by definition).
  void reset_expected_transfers(BeeId bee);

  /// Current transfers_expected of a live bee (0 for unknown ids). Used to
  /// re-fence messages that are re-targeted at a merge successor.
  std::uint64_t expected_transfers(BeeId bee) const;

  /// Current hive of a live bee, following forwarding for dead ones.
  /// Returns nullopt for unknown ids.
  std::optional<HiveId> hive_of(BeeId bee) const;

  /// Follows the forwarding chain to the live successor of `bee`.
  BeeId live_successor(BeeId bee) const;

  const BeeRecord* find(BeeId bee) const;
  std::vector<BeeRecord> live_bees() const;
  std::size_t live_bee_count() const;
  std::size_t cells_on_hive(HiveId hive) const;

  // -- Sharding introspection ----------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  /// Shard owning one cell's table entry. Whole-dict cells hash to the
  /// dictionary's canonical shard (the one that also holds global owners).
  std::uint32_t shard_of_cell(AppId app, const CellKey& cell) const;
  /// Primary shard of a cell set: the common shard when all cells agree,
  /// kAllShards otherwise. Lock-free (pure hashing).
  std::uint32_t shard_of(AppId app, const CellSet& cells) const;
  RegistryShardStats shard_stats(std::size_t shard) const;

  // -- Leases ----------------------------------------------------------------
  // Each shard grants (term, expiry) leases on successful RPCs. Clients
  // serve cached assignments of a shard while its lease is fresh; once it
  // expires they revalidate (one RPC), and inside the grace window they may
  // keep serving stale data when the master is unreachable — the Chubby
  // "jeopardy" behavior that keeps assignments valid across suspicion
  // windows. Defaults are deliberately long so leases are inert unless a
  // deployment opts into shorter terms.

  static constexpr Duration kDefaultLeaseDuration = 3600 * kSecond;

  void set_lease(Duration duration, Duration grace);
  Duration lease_duration() const;
  Duration lease_grace() const;

  struct LeaseGrant {
    std::uint32_t shard = 0;
    std::uint64_t term = 0;
    TimePoint expires_at = 0;
  };
  /// Current leases of every shard in `shard_mask` (bit i = shard i),
  /// extending each to now + lease_duration. The client calls this after a
  /// multi-shard resolve; billing rode on the resolve RPC itself.
  std::vector<LeaseGrant> lease_snapshot(std::uint64_t shard_mask,
                                         TimePoint now);
  /// Failover hook (tests, chaos): bumps the shard's lease term so every
  /// client must revalidate that shard — and only that shard — on its next
  /// fill. Returns the new term.
  std::uint64_t expire_shard_lease(std::size_t shard);

  // -- Fault injection (lossy RPC channel) ---------------------------------

  /// Installed by the cluster runtime: decides whether one RPC attempt
  /// from `requester` is lost on the wire (driven by its FaultPlan and
  /// seeded RNG). Null = RPCs never fail.
  using RpcFaultHook = std::function<bool(HiveId requester)>;
  void set_rpc_fault_hook(RpcFaultHook hook);

  /// One client RPC attempt: returns true (and bills the wasted request
  /// bytes) when the fault hook declares it lost. Local calls from the
  /// registry hive never fail. Clients call this before each real RPC.
  bool rpc_attempt_lost(HiveId requester, std::size_t request_bytes,
                        TimePoint now);

  // -- Client-cache plumbing ----------------------------------------------

  class Client;
  void attach_client(Client* client);

  HiveId registry_hive() const { return registry_hive_; }

  // Approximate wire costs of registry traffic (bytes).
  static constexpr std::size_t kRpcRequestBase = 24;
  static constexpr std::size_t kRpcResponseBytes = 32;
  static constexpr std::size_t kInvalidationBytes = 24;

 private:
  struct AppTables {
    std::unordered_map<CellKey, BeeId, CellKeyHash> owner;
    // dict name -> bee owning (dict, "*"), if any (canonical shard only).
    std::unordered_map<std::string, BeeId> global_owner;
    // dict name -> bees owning at least one cell of the dict in this shard.
    std::unordered_map<std::string, std::unordered_set<BeeId>> dict_bees;
  };

  /// One independent partition of the lock service. Records homed here
  /// never move to another shard, so a (bee -> shard) lookup needs no
  /// revalidation after its lock is dropped.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<AppId, AppTables> apps;
    std::unordered_map<BeeId, BeeRecord> bees;  ///< records homed here
    // Which client hives have each homed bee cached (invalidation fan-out).
    std::unordered_map<BeeId, std::unordered_set<HiveId>> cachers;
    // Lease state; written under mutex, atomics so scrapes never block.
    std::atomic<std::uint64_t> lease_term{1};
    std::atomic<TimePoint> lease_expiry{0};
    // Contention stats (atomics: read lock-free by shard_stats()).
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> lock_waits{0};
    std::atomic<std::uint64_t> lock_wait_ns{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::atomic<std::uint64_t> resolves{0};
  };

  /// RAII multi-shard lock: acquires every shard in `mask` in ascending
  /// index order (the global lock order that makes expand-and-retry safe).
  class MaskGuard {
   public:
    MaskGuard(const RegistryService& svc, std::uint64_t mask);
    ~MaskGuard();
    MaskGuard(const MaskGuard&) = delete;
    MaskGuard& operator=(const MaskGuard&) = delete;

   private:
    const RegistryService& svc_;
    std::uint64_t mask_;
  };

  static constexpr std::uint64_t bit(std::uint32_t shard) {
    return std::uint64_t{1} << shard;
  }
  std::uint64_t all_mask() const {
    return shards_.size() >= 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << shards_.size()) - 1;
  }

  std::uint32_t dict_shard(AppId app, const std::string& dict) const;
  std::size_t filter_slot(AppId app, const std::string& dict) const;
  /// Shards an operation on `cells` must lock before discovery: each key
  /// cell's shard, the dictionary's canonical shard when a whole-dict
  /// owner may exist (dict_filter_), and every shard for whole-dict
  /// requests (absorption scans all partitions).
  std::uint64_t request_mask(AppId app, const CellSet& cells) const;
  /// Just the dict_filter_-dependent bits of request_mask: the only bits
  /// that can appear between the pre-lock mask computation and the
  /// post-lock re-check (key→shard bits are pure hashes and never move).
  std::uint64_t filter_mask(AppId app, const CellSet& cells) const;

  void lock_shard(std::uint32_t shard) const;
  /// Home shard of `bee` (kAllShards when unknown). Lock-free w.r.t. the
  /// shard mutexes; the stripe mutex guards only one map lookup.
  std::uint32_t home_of(BeeId bee) const;

  /// Live record of `id` (following forwarding), visible only through
  /// shards locked in `mask`. When the walk needs a shard outside the
  /// mask, returns nullptr and ORs that shard into *miss_mask so the
  /// caller can expand and retry.
  BeeRecord* find_live_in_mask(BeeId id, std::uint64_t mask,
                               std::uint64_t* miss_mask,
                               std::uint32_t* shard_out = nullptr);

  BeeId allocate_bee_id(HiveId hive);
  void assign_cells_locked(AppId app, BeeRecord& bee, const CellSet& cells);
  void bill_rpc(HiveId requester, std::size_t request_bytes, TimePoint now);
  /// `home` must be the (locked) shard `rec` is homed in.
  void invalidate_cachers_locked(Shard& home, const BeeRecord& rec,
                                 TimePoint now);
  /// Extends the lease of every shard in `mask`; fills the outcome's
  /// primary-lease fields from `primary` when it is a single shard.
  void grant_leases_locked(std::uint64_t mask, std::uint32_t primary,
                           TimePoint now, ResolveOutcome* out);
  /// Record lookup + callback under the bee's home shard lock; returns
  /// false for unknown ids. The workhorse of all single-bee operations.
  bool with_bee(BeeId bee, const std::function<void(Shard&, BeeRecord&)>& fn);
  bool with_bee(BeeId bee,
                const std::function<void(const Shard&, const BeeRecord&)>& fn)
      const;

  std::size_t n_hives_;
  ChannelMeter* meter_;
  HiveId registry_hive_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // bee -> home shard. Striped: tiny critical sections, never held while
  // taking a shard mutex (home assignments are immutable once written).
  static constexpr std::size_t kHomeStripes = 16;
  struct HomeStripe {
    mutable std::mutex mutex;
    std::unordered_map<BeeId, std::uint32_t> home;
  };
  mutable std::array<HomeStripe, kHomeStripes> home_;

  /// Lock-free "might dict D have a whole-dict owner?" filter (counting,
  /// never decremented). Slot 0 proves no owner exists, so single-key
  /// resolves skip the canonical dict shard; false positives only cost an
  /// extra shard lock. Incremented BEFORE the owning insert commits is not
  /// needed: assign happens under the canonical shard's lock and readers
  /// re-check the filter after locking (see resolve_or_create).
  std::array<std::atomic<std::uint32_t>, 512> dict_filter_{};

  /// Per-hive bee-id counters (lock-free allocation).
  std::unique_ptr<std::atomic<std::uint32_t>[]> bee_counters_;

  mutable std::mutex misc_mutex_;  ///< hooks, clients
  PlacementHook placement_hook_;
  /// Lets the resolve hot path skip the misc_mutex_ hook copy entirely
  /// when no hook was ever installed (the overwhelmingly common case).
  std::atomic<bool> has_placement_hook_{false};
  RpcFaultHook rpc_fault_hook_;
  std::vector<Client*> clients_;
  /// Atomic so every resolve can read the lease config without touching
  /// a global mutex (set_lease is rare; torn pairs are impossible since
  /// each field is individually atomic and readers tolerate either
  /// ordering of a duration/grace update).
  std::atomic<Duration> lease_duration_{kDefaultLeaseDuration};
  std::atomic<Duration> lease_grace_{kDefaultLeaseDuration};
};

/// Per-hive front end with a Chubby-style cache. Lookups served from the
/// cache cost nothing on the control channel; misses RPC to the master.
///
/// Under a lossy channel (RegistryService::set_rpc_fault_hook) every miss
/// RPC is retried up to kMaxRpcAttempts times; when a whole round is lost
/// the client fails the lookup (resolve outcomes report bee == kNoBee,
/// hive_of returns nullopt) and backs off exponentially — further misses
/// fail fast, without billing the channel, until the backoff expires.
///
/// The cache is version-stamped PER SHARD: an invalidation or fill against
/// shard A bumps only A's stamp, so memoized resolutions against shard B
/// (this client's and the hive dispatch memo's) survive untouched.
class RegistryService::Client {
 public:
  Client(RegistryService& service, HiveId self);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// RPC attempts per lookup before giving up (the last chance included).
  static constexpr int kMaxRpcAttempts = 4;
  static constexpr Duration kBackoffInitial = 2 * kMillisecond;
  static constexpr Duration kBackoffMax = 256 * kMillisecond;

  ResolveOutcome resolve_or_create(AppId app, const CellSet& cells,
                                   bool pinned, TimePoint now);

  /// Cached bee location; falls back to the master on a miss.
  std::optional<HiveId> hive_of(BeeId bee, TimePoint now);

  /// Called by the service when ownership of `bee` changes. `shard_mask`
  /// names the shards the bee owned cells in: only those version stamps
  /// are bumped, so cached resolutions against other shards stay valid.
  void invalidate(BeeId bee, std::uint64_t shard_mask);

  HiveId self() const { return self_; }

  /// A lock-free validity token for one resolved cell set: the version of
  /// its primary shard (or the global version for cross-shard sets). The
  /// hive dispatch memo stores one and revalidates per message without
  /// taking the client mutex. A concurrent bump right after the load is
  /// benign: it can only make the reader *discard* a still-usable memo or
  /// act on a cache state the locked path could equally have served one
  /// instant earlier (stale-cache forwarding already covers misroutes).
  struct CacheStamp {
    std::uint32_t shard = RegistryService::kAllShards;
    std::uint64_t version = 0;
  };
  CacheStamp stamp(AppId app, const CellSet& cells) const;
  bool stamp_valid(const CacheStamp& s) const {
    return s.version == (s.shard == RegistryService::kAllShards
                             ? cache_version()
                             : shard_version(s.shard));
  }

  /// Monotonic version of the whole ownership cache (bumped on every
  /// mutation of any shard); per-shard stamps are the finer-grained tool.
  std::uint64_t cache_version() const {
    return cache_version_.load(std::memory_order_acquire);
  }
  std::uint64_t shard_version(std::uint32_t shard) const {
    return shard_versions_[shard].load(std::memory_order_acquire);
  }

  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  /// Lost attempts that were retried.
  std::uint64_t rpc_retries() const { return rpc_retries_; }
  /// Lookups that failed outright (all attempts lost, or fast-failed
  /// inside a backoff window).
  std::uint64_t rpc_failures() const { return rpc_failures_; }
  /// Lease machinery: revalidation RPCs forced by lease expiry, and hits
  /// served from stale cache inside the grace window while the master was
  /// unreachable (Chubby's jeopardy).
  std::uint64_t lease_renewals() const { return lease_renewals_; }
  std::uint64_t stale_serves() const { return stale_serves_; }

 private:
  friend class RegistryService;

  /// Runs the retry loop for one lookup of `request_bytes` on the wire.
  /// Returns false when the lookup must fail (exhausted or backing off).
  bool rpc_admitted(std::size_t request_bytes, TimePoint now);

  struct CellCacheKey {
    AppId app;
    CellKey cell;
    bool operator==(const CellCacheKey&) const = default;
  };
  struct CellCacheKeyHash {
    std::size_t operator()(const CellCacheKey& k) const {
      std::size_t h = CellKeyHash{}(k.cell);
      hash_combine(h, k.app);
      return h;
    }
  };

  /// Memo of the last successful cache-hit resolve against one shard.
  /// Steady-state dispatch resolves the same (app, cells) over and over;
  /// repeating the full hit path costs a cache-key construction plus three
  /// hash lookups per message. A memo is valid only while its shard's
  /// version is unchanged — every mutation against the shard bumps it, so
  /// a merge, migration or invalidation can never serve a stale outcome —
  /// and traffic against other shards leaves it untouched.
  struct ResolveMemo {
    bool valid = false;
    std::uint64_t version = 0;
    AppId app = 0;
    CellSet cells;
    ResolveOutcome out;
  };

  enum class LeaseState { kFresh, kStale, kDead };

  /// Cache lookup + memo maintenance; client mutex held.
  std::optional<ResolveOutcome> try_cache_locked(AppId app,
                                                 const CellSet& cells,
                                                 std::uint32_t primary);
  /// Weakest lease across the shards in `mask`; client mutex held.
  LeaseState lease_state_locked(std::uint64_t mask, TimePoint now) const;
  void apply_lease_locked(std::uint32_t shard, std::uint64_t term,
                          TimePoint expiry);
  /// Drops every cached entry resolved against `shard` (term change).
  void purge_shard_locked(std::uint32_t shard);
  void bump_shard_locked(std::uint32_t shard);

  RegistryService& service_;
  HiveId self_;
  std::mutex mutex_;
  std::unordered_map<CellCacheKey, BeeId, CellCacheKeyHash> cell_to_bee_;
  std::unordered_map<BeeId, HiveId> bee_hive_;
  // Last transfers_expected the master reported per bee. Served on cache
  // hits: a hit must carry the fence of the decision that created the
  // entry, or messages could slip past in-flight merge transfers.
  std::unordered_map<BeeId, std::uint64_t> bee_expected_;
  std::vector<ResolveMemo> memos_;  ///< one per service shard
  // Client-held leases, indexed by shard; written under mutex_.
  std::vector<std::uint64_t> lease_term_;
  std::vector<TimePoint> lease_expiry_;
  /// Atomic (not plain) solely for the lock-free stamp readers; all
  /// writes still happen under mutex_.
  std::unique_ptr<std::atomic<std::uint64_t>[]> shard_versions_;
  std::atomic<std::uint64_t> cache_version_{0};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_failures_ = 0;
  std::uint64_t lease_renewals_ = 0;
  std::uint64_t stale_serves_ = 0;
  TimePoint backoff_until_ = 0;
  Duration backoff_ = kBackoffInitial;
};

class MetricsRegistry;

/// Registers the per-shard contention gauges (beehive_registry_ops_total,
/// _lock_waits_total, _lock_wait_us_total, _invalidations_total, all
/// labeled {shard=<n>}) for `svc` on `reg`. Shared by ThreadCluster and
/// SimCluster; `svc` must outlive `reg`'s scrapes.
void register_registry_shard_metrics(MetricsRegistry& reg,
                                     const RegistryService& svc);

}  // namespace beehive
