// The cell registry: Beehive's distributed locking mechanism.
//
// The paper delegates cell-to-bee ownership to "a distributed locking
// mechanism (e.g., Chubby)". We implement that service in-cluster: an
// authoritative RegistryService logically hosted on one hive (hive 0 by
// default), fronted on every hive by a RegistryClient that keeps a
// write-through cache of ownership. As in Chubby, the master invalidates
// client caches when ownership changes. All RPC and invalidation traffic is
// accounted on the control channel, so registry cost is visible in the
// Figure 4 bandwidth numbers.
//
// The registry is the single arbiter of the platform's core invariant:
// every cell is owned by exactly one live bee, and any two cell sets that
// intersect resolve to the same bee. When a resolve discovers that a
// message's mapped cells span several existing bees (the collocation
// obligation of paper §2), the registry atomically reassigns all involved
// cells to a winner and reports the losers so the hives can merge state.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/channel.h"
#include "state/cell.h"
#include "util/types.h"

namespace beehive {

struct BeeRecord {
  BeeId id = kNoBee;
  AppId app = 0;
  HiveId hive = 0;
  CellSet cells;
  bool pinned = false;    ///< Never migrated / never loses a merge (drivers).
  bool dead = false;
  BeeId forwarded_to = kNoBee;  ///< Where this bee's cells went on merge.
  /// Migration epoch: bumped by begin_migration and cancel_migration, so a
  /// commit_migration carrying a stale epoch (a transfer frame that out-
  /// lived its migration's abort) is rejected instead of moving the bee.
  std::uint64_t mig_epoch = 0;
  /// Monotonic count of state transfers decided *into* this bee (one per
  /// merge loser). Messages carry this as a fence: the bee must have
  /// applied at least this many transfers before processing them.
  std::uint64_t transfers_expected = 0;
};

struct ResolveOutcome {
  BeeId bee = kNoBee;
  HiveId hive = 0;
  bool created = false;
  /// The winner's transfers_expected after this decision (0 for cache
  /// hits, which is safe: cached cells were never re-homed — invalidation
  /// evicts entries of merged-away bees).
  std::uint64_t transfers_expected = 0;
  /// Bees whose cells were just reassigned to `bee`; the caller must
  /// arrange state transfer (merge) from each loser into `bee`.
  struct Loser {
    BeeId bee;
    HiveId hive;
  };
  std::vector<Loser> losers;
};

class RegistryService {
 public:
  /// `meter` may be null (tests); `registry_hive` is where the service
  /// logically runs — RPCs from other hives are billed to the channel.
  RegistryService(std::size_t n_hives, ChannelMeter* meter,
                  HiveId registry_hive = 0);

  /// Benches override initial placement (the paper's "artificially assign
  /// the cells of all switches to the bees on the first hive"). Returning
  /// the requester's id reproduces the default local-creation rule.
  using PlacementHook =
      std::function<HiveId(AppId, const CellSet&, HiveId requester)>;
  void set_placement_hook(PlacementHook hook);

  /// The core lock operation; see file comment. `requester` is billed for
  /// the RPC unless it is the registry hive itself or the lookup was
  /// served from its client cache (the client handles that).
  ResolveOutcome resolve_or_create(AppId app, const CellSet& cells,
                                   HiveId requester, bool pinned,
                                   TimePoint now);

  /// Re-points a live bee to a new hive (migration commit).
  void move_bee(BeeId bee, HiveId to, TimePoint now);

  /// move_bee plus control-channel billing for the RPC from `requester`.
  void move_bee_rpc(BeeId bee, HiveId to, HiveId requester, TimePoint now);

  // -- Migration epochs ------------------------------------------------------
  // The source hive mints an epoch when it freezes a bee for migration; the
  // target commits the move conditionally on that epoch. Aborting the
  // migration bumps the epoch, so a zombie transfer frame that arrives
  // after the abort can no longer re-home the bee (split-brain guard).

  /// Starts (or restarts) a migration of `bee`: bumps and returns its
  /// epoch. Returns 0 for unknown/dead bees.
  std::uint64_t begin_migration(BeeId bee, HiveId requester, TimePoint now);

  /// Commits the move iff `epoch` is still current. Idempotent for
  /// duplicate transfers of the same migration. Billed as an RPC from
  /// `requester`. Returns false when the epoch is stale (aborted).
  bool commit_migration(BeeId bee, HiveId to, std::uint64_t epoch,
                        HiveId requester, TimePoint now);

  /// Aborts a migration: bumps the epoch so in-flight transfers cannot
  /// commit. Fails (returns false) when the bee is no longer at `origin` —
  /// i.e. a commit won the race and the caller should treat the migration
  /// as complete instead.
  bool cancel_migration(BeeId bee, HiveId origin, HiveId requester,
                        TimePoint now);

  /// Registers one additional state transfer decided into `bee` outside a
  /// resolve. Keeps the fence accounting balanced for paths the resolve
  /// did not count.
  void add_expected_transfer(BeeId bee);

  /// Resets a bee's transfer fence (crash recovery: the adopted bee starts
  /// from replica state with fresh counters; transfers in flight to the
  /// dead hive are lost by definition).
  void reset_expected_transfers(BeeId bee);

  /// Current transfers_expected of a live bee (0 for unknown ids). Used to
  /// re-fence messages that are re-targeted at a merge successor.
  std::uint64_t expected_transfers(BeeId bee) const;

  /// Current hive of a live bee, following forwarding for dead ones.
  /// Returns nullopt for unknown ids.
  std::optional<HiveId> hive_of(BeeId bee) const;

  /// Follows the forwarding chain to the live successor of `bee`.
  BeeId live_successor(BeeId bee) const;

  const BeeRecord* find(BeeId bee) const;
  std::vector<BeeRecord> live_bees() const;
  std::size_t live_bee_count() const;
  std::size_t cells_on_hive(HiveId hive) const;

  // -- Fault injection (lossy RPC channel) ---------------------------------

  /// Installed by the cluster runtime: decides whether one RPC attempt
  /// from `requester` is lost on the wire (driven by its FaultPlan and
  /// seeded RNG). Null = RPCs never fail.
  using RpcFaultHook = std::function<bool(HiveId requester)>;
  void set_rpc_fault_hook(RpcFaultHook hook);

  /// One client RPC attempt: returns true (and bills the wasted request
  /// bytes) when the fault hook declares it lost. Local calls from the
  /// registry hive never fail. Clients call this before each real RPC.
  bool rpc_attempt_lost(HiveId requester, std::size_t request_bytes,
                        TimePoint now);

  // -- Client-cache plumbing ----------------------------------------------

  class Client;
  void attach_client(Client* client);

  HiveId registry_hive() const { return registry_hive_; }

  // Approximate wire costs of registry traffic (bytes).
  static constexpr std::size_t kRpcRequestBase = 24;
  static constexpr std::size_t kRpcResponseBytes = 32;
  static constexpr std::size_t kInvalidationBytes = 24;

 private:
  struct AppTables {
    std::unordered_map<CellKey, BeeId, CellKeyHash> owner;
    // dict name -> bee owning (dict, "*"), if any.
    std::unordered_map<std::string, BeeId> global_owner;
    // dict name -> bees owning at least one cell of the dict.
    std::unordered_map<std::string, std::unordered_set<BeeId>> dict_bees;
  };

  BeeId allocate_bee_id(HiveId hive);
  BeeId live_successor_locked(BeeId bee) const;
  void assign_cells_locked(AppTables& tables, BeeRecord& bee,
                           const CellSet& cells);
  void bill_rpc_locked(HiveId requester, std::size_t request_bytes,
                       TimePoint now);
  void invalidate_cachers_locked(BeeId bee, TimePoint now);

  mutable std::mutex mutex_;
  std::size_t n_hives_;
  ChannelMeter* meter_;
  HiveId registry_hive_;
  PlacementHook placement_hook_;
  RpcFaultHook rpc_fault_hook_;
  std::unordered_map<AppId, AppTables> apps_;
  std::unordered_map<BeeId, BeeRecord> bees_;
  std::unordered_map<HiveId, std::uint32_t> bee_counters_;
  // Which client hives have each bee cached (for invalidation billing).
  std::unordered_map<BeeId, std::unordered_set<HiveId>> cachers_;
  std::vector<Client*> clients_;
};

/// Per-hive front end with a Chubby-style cache. Lookups served from the
/// cache cost nothing on the control channel; misses RPC to the master.
///
/// Under a lossy channel (RegistryService::set_rpc_fault_hook) every miss
/// RPC is retried up to kMaxRpcAttempts times; when a whole round is lost
/// the client fails the lookup (resolve outcomes report bee == kNoBee,
/// hive_of returns nullopt) and backs off exponentially — further misses
/// fail fast, without billing the channel, until the backoff expires.
class RegistryService::Client {
 public:
  Client(RegistryService& service, HiveId self);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// RPC attempts per lookup before giving up (the last chance included).
  static constexpr int kMaxRpcAttempts = 4;
  static constexpr Duration kBackoffInitial = 2 * kMillisecond;
  static constexpr Duration kBackoffMax = 256 * kMillisecond;

  ResolveOutcome resolve_or_create(AppId app, const CellSet& cells,
                                   bool pinned, TimePoint now);

  /// Cached bee location; falls back to the master on a miss.
  std::optional<HiveId> hive_of(BeeId bee, TimePoint now);

  /// Called by the service when ownership of `bee` changes.
  void invalidate(BeeId bee);

  HiveId self() const { return self_; }

  /// Monotonic version of this client's ownership cache; bumped on every
  /// cache mutation (resolve fill, hive_of fill, invalidation). Lock-free
  /// so the hive's dispatch memo can validate itself per message without
  /// taking the client mutex. A concurrent bump right after the load is
  /// benign: it can only make the reader *discard* a still-usable memo or
  /// act on a cache state the locked path could equally have served one
  /// instant earlier (stale-cache forwarding already covers misroutes).
  std::uint64_t cache_version() const {
    return cache_version_.load(std::memory_order_acquire);
  }

  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  /// Lost attempts that were retried.
  std::uint64_t rpc_retries() const { return rpc_retries_; }
  /// Lookups that failed outright (all attempts lost, or fast-failed
  /// inside a backoff window).
  std::uint64_t rpc_failures() const { return rpc_failures_; }

 private:
  friend class RegistryService;

  /// Runs the retry loop for one lookup of `request_bytes` on the wire.
  /// Returns false when the lookup must fail (exhausted or backing off).
  bool rpc_admitted(std::size_t request_bytes, TimePoint now);

  RegistryService& service_;
  HiveId self_;
  std::mutex mutex_;
  struct CellCacheKey {
    AppId app;
    CellKey cell;
    bool operator==(const CellCacheKey&) const = default;
  };
  struct CellCacheKeyHash {
    std::size_t operator()(const CellCacheKey& k) const {
      std::size_t h = CellKeyHash{}(k.cell);
      hash_combine(h, k.app);
      return h;
    }
  };
  std::unordered_map<CellCacheKey, BeeId, CellCacheKeyHash> cell_to_bee_;
  std::unordered_map<BeeId, HiveId> bee_hive_;
  // Last transfers_expected the master reported per bee. Served on cache
  // hits: a hit must carry the fence of the decision that created the
  // entry, or messages could slip past in-flight merge transfers.
  std::unordered_map<BeeId, std::uint64_t> bee_expected_;
  /// Memo of the last successful cache-hit resolve. Steady-state dispatch
  /// resolves the same (app, cells) over and over; repeating the full hit
  /// path costs a cache-key construction plus three hash lookups per
  /// message. The memo is valid only while `cache_version_` is unchanged —
  /// every mutation of the three cache maps above bumps the version, so a
  /// merge, migration or invalidation can never serve a stale outcome.
  struct ResolveMemo {
    bool valid = false;
    std::uint64_t version = 0;
    AppId app = 0;
    CellSet cells;
    ResolveOutcome out;
  };
  ResolveMemo memo_;
  /// Atomic (not plain) solely for the lock-free cache_version() reader;
  /// all writes still happen under mutex_.
  std::atomic<std::uint64_t> cache_version_{0};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_failures_ = 0;
  TimePoint backoff_until_ = 0;
  Duration backoff_ = kBackoffInitial;
};

}  // namespace beehive
