// Lock-free run-queue ring for the shared-nothing hive loop (DESIGN.md §12).
//
// MpscRing is a bounded multi-producer / single-consumer ring of
// power-of-two capacity built on per-slot sequence stamps (Vyukov's bounded
// queue, specialized for one consumer): producers claim a tail slot with a
// CAS and publish it with a release store of the slot's sequence; the
// consumer walks head-to-tail reading sequences with acquire loads, so a
// drain observes every push that completed before it and nothing that
// hasn't. No mutex is taken on either side, and neither side allocates.
//
// RunQueue composes the ring with the two pieces a real run loop needs:
//
//   * an overflow lane — a mutex-guarded vector that takes pushes when the
//     ring is full (the backpressure handoff). Once a push overflows, all
//     later pushes follow it to the overflow lane until the consumer has
//     swapped the lane out, so per-producer FIFO order survives the spill:
//     an item can never re-enter the ring ahead of an older item parked in
//     the overflow vector. Overflowed pushes are counted (`overflowed()`)
//     so the pressure/overload layer can see the queue running hot.
//
//   * exact occupancy accounting — size() is precise whenever the queue is
//     externally quiescent (what wait_idle() needs) and a high-watermark is
//     tracked on the consumer side per drain.
//
// The consumer-side timed lane (delayed tasks) intentionally does NOT live
// here: delayed work flows through the ring as items stamped with a due
// time and is re-queued into a heap owned by the loop thread — see
// ThreadCluster::loop. That keeps every structure in this header either
// lock-free or single-threaded.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace beehive {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2). All slots are
  /// allocated here; push/drain never touch the heap.
  explicit MpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side (any thread). False when the ring is full — the caller
  /// owns the fallback (RunQueue spills to its overflow lane).
  bool try_push(T&& item) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Slot free at this position: claim it. Weak CAS — a spurious
        // failure just re-reads `pos` and retries.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        // Sequence lags the position by a full lap: the consumer hasn't
        // freed this slot yet — the ring is full.
        return false;
      } else {
        // Another producer claimed this position; catch up.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (single thread). Moves up to `max` items into `out`
  /// (appended) and returns how many. Stops early at a slot whose producer
  /// has claimed but not yet published — never blocks, never spins.
  std::size_t drain(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    while (n < max) {
      Slot& slot = slots_[head & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(head + 1) < 0) {
        break;  // empty, or a producer is mid-publish at this slot
      }
      out.push_back(std::move(slot.value));
      slot.value = T{};  // drop captured resources now, not a lap later
      slot.seq.store(head + mask_ + 1, std::memory_order_release);
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_release);
    return n;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Occupancy from counters. Exact when no push is in flight; during
  /// concurrent pushes it may count an item whose publish hasn't completed
  /// (it errs high, never low — safe for quiescence checks).
  std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_;
  // Producers CAS tail_; only the consumer writes head_.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

/// The ring plus its full-ring backpressure handoff. push() never drops:
/// items that miss the ring spill to a mutex-guarded overflow vector which
/// the consumer folds into the same drain batch, after the ring's items.
template <typename T>
class RunQueue {
 public:
  explicit RunQueue(std::size_t ring_capacity) : ring_(ring_capacity) {}

  /// Producer side (any thread).
  void push(T item) {
    // FIFO across the spill: once anything sits in the overflow lane, all
    // later pushes must queue behind it — a ring push now would be drained
    // (ring first) ahead of the older overflowed item.
    if (!overflow_active_.load(std::memory_order_seq_cst)) {
      if (ring_.try_push(std::move(item))) return;
    }
    std::lock_guard lock(overflow_mutex_);
    // Re-check under the lock: the consumer may have just swapped the
    // overflow lane out, in which case the ring (drained even more
    // recently) is the right destination again.
    if (overflow_.empty() && ring_.try_push(std::move(item))) return;
    overflow_.push_back(std::move(item));
    overflow_active_.store(true, std::memory_order_seq_cst);
    overflowed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side (single thread): ring first (older), then the whole
  /// overflow lane. Returns items appended to `out`.
  std::size_t drain(std::vector<T>& out) {
    std::size_t n = ring_.drain(out, ring_.capacity());
    if (overflow_active_.load(std::memory_order_seq_cst)) {
      std::lock_guard lock(overflow_mutex_);
      for (T& item : overflow_) {
        out.push_back(std::move(item));
        ++n;
      }
      overflow_.clear();
      overflow_active_.store(false, std::memory_order_seq_cst);
    }
    return n;
  }

  /// Exact when quiescent; may err high mid-push (see MpscRing::size).
  std::size_t size() const {
    std::size_t n = ring_.size();
    if (overflow_active_.load(std::memory_order_seq_cst)) {
      std::lock_guard lock(overflow_mutex_);
      n += overflow_.size();
    }
    return n;
  }

  bool empty() const { return size() == 0; }
  std::size_t ring_capacity() const { return ring_.capacity(); }
  std::size_t ring_size() const { return ring_.size(); }

  /// Lifetime count of pushes that missed the ring (pressure signal).
  std::uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

 private:
  MpscRing<T> ring_;
  mutable std::mutex overflow_mutex_;
  std::vector<T> overflow_;
  std::atomic<bool> overflow_active_{false};
  std::atomic<std::uint64_t> overflowed_{0};
};

}  // namespace beehive
