#include "cluster/registry.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace beehive {

RegistryService::RegistryService(std::size_t n_hives, ChannelMeter* meter,
                                 HiveId registry_hive)
    : n_hives_(n_hives), meter_(meter), registry_hive_(registry_hive) {}

void RegistryService::set_placement_hook(PlacementHook hook) {
  std::lock_guard lock(mutex_);
  placement_hook_ = std::move(hook);
}

void RegistryService::set_rpc_fault_hook(RpcFaultHook hook) {
  std::lock_guard lock(mutex_);
  rpc_fault_hook_ = std::move(hook);
}

bool RegistryService::rpc_attempt_lost(HiveId requester,
                                       std::size_t request_bytes,
                                       TimePoint now) {
  std::lock_guard lock(mutex_);
  if (requester == registry_hive_ || !rpc_fault_hook_) return false;
  if (!rpc_fault_hook_(requester)) return false;
  // The request left the requester's NIC before it was lost: the channel
  // still carried (and bills) those bytes. No response comes back.
  if (meter_ != nullptr) meter_->record(requester, registry_hive_,
                                        request_bytes, now);
  return true;
}

void RegistryService::attach_client(Client* client) {
  std::lock_guard lock(mutex_);
  clients_.push_back(client);
}

BeeId RegistryService::allocate_bee_id(HiveId hive) {
  // Counter starts at 1: counter 0 on hive 0 would collide with kNoBee.
  std::uint32_t counter = ++bee_counters_[hive];
  return make_bee_id(hive, counter);
}

void RegistryService::assign_cells_locked(AppTables& tables, BeeRecord& bee,
                                          const CellSet& cells) {
  for (const CellKey& cell : cells) {
    if (cell.is_whole_dict()) {
      tables.global_owner[cell.dict] = bee.id;
    } else {
      tables.owner[cell] = bee.id;
    }
    tables.dict_bees[cell.dict].insert(bee.id);
    bee.cells.insert(cell);
  }
}

void RegistryService::bill_rpc_locked(HiveId requester,
                                      std::size_t request_bytes,
                                      TimePoint now) {
  if (meter_ == nullptr || requester == registry_hive_) return;
  meter_->record(requester, registry_hive_, request_bytes, now);
  meter_->record(registry_hive_, requester, kRpcResponseBytes, now);
}

void RegistryService::invalidate_cachers_locked(BeeId bee, TimePoint now) {
  auto it = cachers_.find(bee);
  if (it == cachers_.end()) return;
  for (HiveId hive : it->second) {
    if (meter_ != nullptr && hive != registry_hive_) {
      meter_->record(registry_hive_, hive, kInvalidationBytes, now);
    }
    for (Client* client : clients_) {
      if (client->self() == hive) client->invalidate(bee);
    }
  }
  cachers_.erase(it);
}

BeeId RegistryService::live_successor(BeeId bee) const {
  std::lock_guard lock(mutex_);
  return live_successor_locked(bee);
}

BeeId RegistryService::live_successor_locked(BeeId bee) const {
  auto it = bees_.find(bee);
  while (it != bees_.end() && it->second.dead &&
         it->second.forwarded_to != kNoBee) {
    it = bees_.find(it->second.forwarded_to);
  }
  return it == bees_.end() ? kNoBee : it->second.id;
}

ResolveOutcome RegistryService::resolve_or_create(AppId app,
                                                  const CellSet& cells,
                                                  HiveId requester,
                                                  bool pinned, TimePoint now) {
  std::lock_guard lock(mutex_);
  AppTables& tables = apps_[app];

  // 1. Collect the live bees currently owning any requested cell. A
  //    whole-dict request touches every bee of that dictionary; a key
  //    request also matches the dictionary's global ("*") owner.
  std::vector<BeeId> owners;
  auto add_owner = [&owners, this](BeeId id) {
    BeeId live = live_successor_locked(id);
    if (live == kNoBee) return;
    if (std::find(owners.begin(), owners.end(), live) == owners.end()) {
      owners.push_back(live);
    }
  };
  for (const CellKey& cell : cells) {
    auto git = tables.global_owner.find(cell.dict);
    if (git != tables.global_owner.end()) add_owner(git->second);
    if (cell.is_whole_dict()) {
      auto dit = tables.dict_bees.find(cell.dict);
      if (dit != tables.dict_bees.end()) {
        for (BeeId id : dit->second) add_owner(id);
      }
    } else {
      auto oit = tables.owner.find(cell);
      if (oit != tables.owner.end()) add_owner(oit->second);
    }
  }

  ResolveOutcome out;

  if (owners.empty()) {
    // 2a. Fresh cells: create a bee, by default on the requesting hive
    //     ("the local hive creates a new bee", paper §3).
    HiveId place =
        placement_hook_ ? placement_hook_(app, cells, requester) : requester;
    assert(place < n_hives_);
    BeeId id = allocate_bee_id(place);
    BeeRecord rec;
    rec.id = id;
    rec.app = app;
    rec.hive = place;
    rec.pinned = pinned;
    auto [it, inserted] = bees_.emplace(id, std::move(rec));
    assert(inserted);
    assign_cells_locked(tables, it->second, cells);
    out.bee = id;
    out.hive = place;
    out.created = true;
  } else {
    // 2b. Pick the winner among existing owners: pinned bees always win
    //     (drivers are anchored to their IO channel), then the bee with
    //     the most cells (cheapest merge), then the lowest id (stable).
    std::sort(owners.begin(), owners.end(), [this](BeeId a, BeeId b) {
      const BeeRecord& ra = bees_.at(a);
      const BeeRecord& rb = bees_.at(b);
      if (ra.pinned != rb.pinned) return ra.pinned;
      if (ra.cells.size() != rb.cells.size()) {
        return ra.cells.size() > rb.cells.size();
      }
      return ra.id < rb.id;
    });
    BeeId winner = owners.front();
    BeeRecord& wrec = bees_.at(winner);
    for (std::size_t i = 1; i < owners.size(); ++i) {
      BeeRecord& loser = bees_.at(owners[i]);
      assert(!loser.pinned && "two pinned bees share cells: design error");
      // Atomically re-point every cell of the loser at the winner.
      for (const CellKey& cell : loser.cells) {
        if (cell.is_whole_dict()) {
          tables.global_owner[cell.dict] = winner;
        } else {
          tables.owner[cell] = winner;
        }
        auto dit = tables.dict_bees.find(cell.dict);
        if (dit != tables.dict_bees.end()) dit->second.erase(loser.id);
        tables.dict_bees[cell.dict].insert(winner);
        wrec.cells.insert(cell);
      }
      loser.dead = true;
      loser.forwarded_to = winner;
      // The winner inherits the loser's whole transfer ledger: one for the
      // loser's own snapshot plus every transfer ever decided into the
      // loser — those still in flight will chase the forwarding chain and
      // land on the winner. The loser's snapshot carries its applied count
      // so the winner's applied counter advances by the part already
      // folded into that snapshot.
      wrec.transfers_expected += 1 + loser.transfers_expected;
      out.losers.push_back({loser.id, loser.hive});
      invalidate_cachers_locked(loser.id, now);
    }
    assign_cells_locked(tables, wrec, cells);
    out.bee = winner;
    out.hive = wrec.hive;
    out.transfers_expected = wrec.transfers_expected;
  }

  ByteWriter w;
  cells.encode(w);
  bill_rpc_locked(requester, kRpcRequestBase + w.size(), now);
  cachers_[out.bee].insert(requester);
  return out;
}

void RegistryService::add_expected_transfer(BeeId bee) {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  if (it != bees_.end()) it->second.transfers_expected += 1;
}

void RegistryService::reset_expected_transfers(BeeId bee) {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  if (it != bees_.end()) it->second.transfers_expected = 0;
}

std::uint64_t RegistryService::expected_transfers(BeeId bee) const {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  return it == bees_.end() ? 0 : it->second.transfers_expected;
}

void RegistryService::move_bee_rpc(BeeId bee, HiveId to, HiveId requester,
                                   TimePoint now) {
  {
    std::lock_guard lock(mutex_);
    bill_rpc_locked(requester, kRpcRequestBase, now);
  }
  move_bee(bee, to, now);
}

std::uint64_t RegistryService::begin_migration(BeeId bee, HiveId requester,
                                               TimePoint now) {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  if (it == bees_.end() || it->second.dead) return 0;
  bill_rpc_locked(requester, kRpcRequestBase, now);
  return ++it->second.mig_epoch;
}

bool RegistryService::commit_migration(BeeId bee, HiveId to,
                                       std::uint64_t epoch, HiveId requester,
                                       TimePoint now) {
  std::lock_guard lock(mutex_);
  bill_rpc_locked(requester, kRpcRequestBase, now);
  auto it = bees_.find(bee);
  if (it == bees_.end() || it->second.dead) return false;
  if (it->second.mig_epoch != epoch) return false;  // aborted meanwhile
  assert(to < n_hives_);
  // Idempotent for duplicate transfers of the same (live) migration: the
  // epoch stays current so a retransmitted payload re-commits harmlessly.
  it->second.hive = to;
  invalidate_cachers_locked(bee, now);
  return true;
}

bool RegistryService::cancel_migration(BeeId bee, HiveId origin,
                                       HiveId requester, TimePoint now) {
  std::lock_guard lock(mutex_);
  bill_rpc_locked(requester, kRpcRequestBase, now);
  auto it = bees_.find(bee);
  if (it == bees_.end() || it->second.dead) return false;
  if (it->second.hive != origin) return false;  // a commit won the race
  ++it->second.mig_epoch;
  return true;
}

void RegistryService::move_bee(BeeId bee, HiveId to, TimePoint now) {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  assert(it != bees_.end() && !it->second.dead);
  assert(to < n_hives_);
  it->second.hive = to;
  invalidate_cachers_locked(bee, now);
}

std::optional<HiveId> RegistryService::hive_of(BeeId bee) const {
  std::lock_guard lock(mutex_);
  BeeId live = live_successor_locked(bee);
  if (live == kNoBee) return std::nullopt;
  return bees_.at(live).hive;
}

const BeeRecord* RegistryService::find(BeeId bee) const {
  std::lock_guard lock(mutex_);
  auto it = bees_.find(bee);
  return it == bees_.end() ? nullptr : &it->second;
}

std::vector<BeeRecord> RegistryService::live_bees() const {
  std::lock_guard lock(mutex_);
  std::vector<BeeRecord> out;
  for (const auto& [_, rec] : bees_) {
    if (!rec.dead) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const BeeRecord& a, const BeeRecord& b) { return a.id < b.id; });
  return out;
}

std::size_t RegistryService::live_bee_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [_, rec] : bees_) n += rec.dead ? 0 : 1;
  return n;
}

std::size_t RegistryService::cells_on_hive(HiveId hive) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [_, rec] : bees_) {
    if (!rec.dead && rec.hive == hive) n += rec.cells.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RegistryService::Client::Client(RegistryService& service, HiveId self)
    : service_(service), self_(self) {
  service_.attach_client(this);
}

RegistryService::Client::~Client() = default;

void RegistryService::Client::invalidate(BeeId bee) {
  std::lock_guard lock(mutex_);
  bee_hive_.erase(bee);
  ++cache_version_;  // drops the resolve memo along with the entry
  // Cell entries pointing at `bee` become stale but harmless: a lookup
  // only counts as a hit when the bee's location is also cached, so the
  // next resolve falls through to the master and overwrites them.
}

bool RegistryService::Client::rpc_admitted(std::size_t request_bytes,
                                           TimePoint now) {
  if (self_ == service_.registry_hive()) return true;  // local, lossless
  if (now < backoff_until_) {
    // Fast-fail inside the backoff window: the master was just found
    // unreachable; don't hammer the channel with doomed requests.
    ++rpc_failures_;
    return false;
  }
  for (int attempt = 1;; ++attempt) {
    if (!service_.rpc_attempt_lost(self_, request_bytes, now)) {
      backoff_ = kBackoffInitial;
      backoff_until_ = 0;
      return true;
    }
    if (attempt >= kMaxRpcAttempts) {
      ++rpc_failures_;
      backoff_until_ = now + backoff_;
      backoff_ = std::min(backoff_ * 2, kBackoffMax);
      BH_WARN << "registry client on hive " << self_ << ": lookup failed ("
              << kMaxRpcAttempts << " attempts lost), backing off";
      return false;
    }
    ++rpc_retries_;
  }
}

ResolveOutcome RegistryService::Client::resolve_or_create(AppId app,
                                                          const CellSet& cells,
                                                          bool pinned,
                                                          TimePoint now) {
  {
    std::lock_guard lock(mutex_);
    // Fast path: exact repeat of the last resolved (app, cells) against an
    // unchanged cache — one version compare and a short key compare instead
    // of per-cell key construction and three hash lookups.
    if (memo_.valid && memo_.version == cache_version_ && memo_.app == app &&
        memo_.cells == cells) {
      ++hits_;
      return memo_.out;
    }
    BeeId candidate = kNoBee;
    bool hit = !cells.empty();
    for (const CellKey& cell : cells) {
      auto it = cell_to_bee_.find({app, cell});
      if (it == cell_to_bee_.end()) {
        hit = false;
        break;
      }
      if (candidate == kNoBee) {
        candidate = it->second;
      } else if (candidate != it->second) {
        hit = false;  // spans two cached bees: merge decision needed.
        break;
      }
    }
    if (hit) {
      auto hit_it = bee_hive_.find(candidate);
      if (hit_it != bee_hive_.end()) {
        ++hits_;
        ResolveOutcome out;
        out.bee = candidate;
        out.hive = hit_it->second;
        auto exp_it = bee_expected_.find(candidate);
        if (exp_it != bee_expected_.end()) {
          out.transfers_expected = exp_it->second;
        }
        memo_.valid = true;
        memo_.version = cache_version_;
        memo_.app = app;
        memo_.cells = cells;
        memo_.out = out;
        return out;
      }
    }
    ++misses_;
  }

  {
    ByteWriter w;
    cells.encode(w);
    if (!rpc_admitted(RegistryService::kRpcRequestBase + w.size(), now)) {
      return ResolveOutcome{};  // bee == kNoBee signals the failure
    }
  }

  ResolveOutcome out =
      service_.resolve_or_create(app, cells, self_, pinned, now);

  std::lock_guard lock(mutex_);
  for (const CellKey& cell : cells) cell_to_bee_[{app, cell}] = out.bee;
  bee_hive_[out.bee] = out.hive;
  std::uint64_t& expected = bee_expected_[out.bee];
  if (out.transfers_expected > expected) expected = out.transfers_expected;
  ++cache_version_;
  return out;
}

std::optional<HiveId> RegistryService::Client::hive_of(BeeId bee,
                                                       TimePoint now) {
  {
    std::lock_guard lock(mutex_);
    auto it = bee_hive_.find(bee);
    if (it != bee_hive_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  if (!rpc_admitted(RegistryService::kRpcRequestBase, now)) {
    return std::nullopt;
  }
  auto hive = service_.hive_of(bee);
  BeeId live = kNoBee;
  // Bill the lookup RPC; a real lock service would also be consulted here.
  {
    std::lock_guard slock(service_.mutex_);
    service_.bill_rpc_locked(self_, RegistryService::kRpcRequestBase, now);
    if (hive.has_value()) {
      live = service_.live_successor_locked(bee);
      service_.cachers_[live].insert(self_);
    }
  }
  if (hive.has_value()) {
    std::lock_guard lock(mutex_);
    bee_hive_[live] = *hive;
    ++cache_version_;
  }
  return hive;
}

}  // namespace beehive
