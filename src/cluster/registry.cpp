#include "cluster/registry.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>

#include "instrument/registry.h"
#include "util/logging.h"

namespace beehive {

namespace {
/// Calls fn(shard_index) for every set bit of mask, ascending.
template <typename Fn>
void for_each_shard(std::uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const std::uint32_t s = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    fn(s);
  }
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Exact wire size of CellSet::encode (varint count, then per cell two
/// length-prefixed strings) without allocating a ByteWriter — resolves
/// bill this on every RPC and must match the encoder byte for byte.
std::size_t encoded_cells_size(const CellSet& cells) {
  std::size_t n = varint_size(cells.size());
  for (const CellKey& c : cells) {
    n += varint_size(c.dict.size()) + c.dict.size() +
         varint_size(c.key.size()) + c.key.size();
  }
  return n;
}
}  // namespace

RegistryService::RegistryService(std::size_t n_hives, ChannelMeter* meter,
                                 HiveId registry_hive, std::size_t n_shards)
    : n_hives_(n_hives), meter_(meter), registry_hive_(registry_hive) {
  n_shards = std::clamp<std::size_t>(n_shards, 1, kMaxShards);
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  bee_counters_ = std::make_unique<std::atomic<std::uint32_t>[]>(
      std::max<std::size_t>(n_hives, 1));
}

void RegistryService::set_placement_hook(PlacementHook hook) {
  std::lock_guard lock(misc_mutex_);
  placement_hook_ = std::move(hook);
  has_placement_hook_.store(static_cast<bool>(placement_hook_),
                            std::memory_order_release);
}

void RegistryService::set_rpc_fault_hook(RpcFaultHook hook) {
  std::lock_guard lock(misc_mutex_);
  rpc_fault_hook_ = std::move(hook);
}

bool RegistryService::rpc_attempt_lost(HiveId requester,
                                       std::size_t request_bytes,
                                       TimePoint now) {
  // Serialized: fault hooks drive a shared seeded RNG and rely on the
  // registry to order their draws (deterministic replay).
  std::lock_guard lock(misc_mutex_);
  if (requester == registry_hive_ || !rpc_fault_hook_) return false;
  if (!rpc_fault_hook_(requester)) return false;
  // The request left the requester's NIC before it was lost: the channel
  // still carried (and bills) those bytes. No response comes back.
  if (meter_ != nullptr) meter_->record(requester, registry_hive_,
                                        request_bytes, now);
  return true;
}

void RegistryService::attach_client(Client* client) {
  std::lock_guard lock(misc_mutex_);
  clients_.push_back(client);
}

void RegistryService::set_lease(Duration duration, Duration grace) {
  lease_duration_.store(duration, std::memory_order_relaxed);
  lease_grace_.store(grace, std::memory_order_relaxed);
}

Duration RegistryService::lease_duration() const {
  return lease_duration_.load(std::memory_order_relaxed);
}

Duration RegistryService::lease_grace() const {
  return lease_grace_.load(std::memory_order_relaxed);
}

// -- Shard routing -----------------------------------------------------------

std::uint32_t RegistryService::shard_of_cell(AppId app,
                                             const CellKey& cell) const {
  // Whole-dict cells deliberately omit the key part: (D, "*") lands on the
  // same shard as dict_shard(D), the dictionary's canonical shard.
  std::size_t h = fnv1a64(cell.dict);
  hash_combine(h, app);
  if (!cell.is_whole_dict()) hash_combine(h, fnv1a64(cell.key));
  return static_cast<std::uint32_t>(h % shards_.size());
}

std::uint32_t RegistryService::dict_shard(AppId app,
                                          const std::string& dict) const {
  std::size_t h = fnv1a64(dict);
  hash_combine(h, app);
  return static_cast<std::uint32_t>(h % shards_.size());
}

std::size_t RegistryService::filter_slot(AppId app,
                                         const std::string& dict) const {
  std::size_t h = fnv1a64(dict);
  hash_combine(h, app);
  return h % dict_filter_.size();
}

std::uint32_t RegistryService::shard_of(AppId app, const CellSet& cells) const {
  std::uint32_t primary = kAllShards;
  for (const CellKey& cell : cells) {
    const std::uint32_t s = shard_of_cell(app, cell);
    if (primary == kAllShards) {
      primary = s;
    } else if (primary != s) {
      return kAllShards;
    }
  }
  return primary;  // kAllShards for the (unused) empty set
}

std::uint64_t RegistryService::request_mask(AppId app,
                                            const CellSet& cells) const {
  // Hashes each cell's dict once: the key-shard, the filter slot, and the
  // canonical dict shard all derive from the same (dict, app) prefix hash
  // (must stay bit-identical to shard_of_cell / dict_shard / filter_slot).
  std::uint64_t mask = 0;
  for (const CellKey& cell : cells) {
    if (cell.is_whole_dict()) {
      // Absorption: a whole-dict owner must collect the dictionary's bees
      // from every partition, so the request serializes cluster-wide.
      return all_mask();
    }
    std::size_t hd = fnv1a64(cell.dict);
    hash_combine(hd, app);
    std::size_t hk = hd;
    hash_combine(hk, fnv1a64(cell.key));
    mask |= bit(static_cast<std::uint32_t>(hk % shards_.size()));
    // A key resolve must also see the dictionary's global ("*") owner if
    // one exists; the lock-free filter proves absence so the common case
    // (no whole-dict owner anywhere) stays single-shard. Relaxed is
    // enough: publication happens under the canonical shard's mutex and
    // readers re-check after locking (resolve_or_create), so the mutex
    // provides the happens-before edge — this load is only a hint.
    if (dict_filter_[hd % dict_filter_.size()].load(
            std::memory_order_relaxed) > 0) {
      mask |= bit(static_cast<std::uint32_t>(hd % shards_.size()));
    }
  }
  return mask == 0 ? bit(0) : mask;
}

std::uint64_t RegistryService::filter_mask(AppId app,
                                           const CellSet& cells) const {
  std::uint64_t mask = 0;
  for (const CellKey& cell : cells) {
    if (cell.is_whole_dict()) continue;  // already widened to all_mask()
    std::size_t hd = fnv1a64(cell.dict);
    hash_combine(hd, app);
    if (dict_filter_[hd % dict_filter_.size()].load(
            std::memory_order_relaxed) > 0) {
      mask |= bit(static_cast<std::uint32_t>(hd % shards_.size()));
    }
  }
  return mask;
}

void RegistryService::lock_shard(std::uint32_t shard) const {
  Shard& sh = *shards_[shard];
  sh.ops.fetch_add(1, std::memory_order_relaxed);
  if (sh.mutex.try_lock()) return;
  const auto t0 = std::chrono::steady_clock::now();
  sh.mutex.lock();
  const auto waited = std::chrono::steady_clock::now() - t0;
  sh.lock_waits.fetch_add(1, std::memory_order_relaxed);
  sh.lock_wait_ns.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count(),
      std::memory_order_relaxed);
}

RegistryService::MaskGuard::MaskGuard(const RegistryService& svc,
                                      std::uint64_t mask)
    : svc_(svc), mask_(mask) {
  // Ascending index order is the global lock order; see resolve_or_create.
  for_each_shard(mask_, [&](std::uint32_t s) { svc_.lock_shard(s); });
}

RegistryService::MaskGuard::~MaskGuard() {
  for_each_shard(mask_,
                 [&](std::uint32_t s) { svc_.shards_[s]->mutex.unlock(); });
}

std::uint32_t RegistryService::home_of(BeeId bee) const {
  const HomeStripe& stripe = home_[bee % kHomeStripes];
  std::lock_guard lock(stripe.mutex);
  auto it = stripe.home.find(bee);
  return it == stripe.home.end() ? kAllShards : it->second;
}

BeeRecord* RegistryService::find_live_in_mask(BeeId id, std::uint64_t mask,
                                              std::uint64_t* miss_mask,
                                              std::uint32_t* shard_out) {
  for (;;) {
    const std::uint32_t home = home_of(id);
    if (home == kAllShards) return nullptr;  // unknown id
    if ((mask & bit(home)) == 0) {
      // The walk left the locked set: tell the caller which shard to add.
      // Home assignments are immutable, so the expanded retry will find
      // the record exactly there.
      *miss_mask |= bit(home);
      return nullptr;
    }
    Shard& sh = *shards_[home];
    auto it = sh.bees.find(id);
    if (it == sh.bees.end()) return nullptr;
    BeeRecord& rec = it->second;
    if (!rec.dead) {
      if (shard_out != nullptr) *shard_out = home;
      return &rec;
    }
    if (rec.forwarded_to == kNoBee) return nullptr;
    id = rec.forwarded_to;  // dead records never change: chain is stable
  }
}

bool RegistryService::with_bee(
    BeeId bee, const std::function<void(Shard&, BeeRecord&)>& fn) {
  const std::uint32_t home = home_of(bee);
  if (home == kAllShards) return false;
  lock_shard(home);
  std::lock_guard lock(shards_[home]->mutex, std::adopt_lock);
  auto it = shards_[home]->bees.find(bee);
  if (it == shards_[home]->bees.end()) return false;
  fn(*shards_[home], it->second);
  return true;
}

bool RegistryService::with_bee(
    BeeId bee,
    const std::function<void(const Shard&, const BeeRecord&)>& fn) const {
  const std::uint32_t home = home_of(bee);
  if (home == kAllShards) return false;
  const Shard& sh = *shards_[home];
  std::lock_guard lock(sh.mutex);
  auto it = sh.bees.find(bee);
  if (it == sh.bees.end()) return false;
  fn(sh, it->second);
  return true;
}

// -- Core operations ---------------------------------------------------------

BeeId RegistryService::allocate_bee_id(HiveId hive) {
  // Counter starts at 1: counter 0 on hive 0 would collide with kNoBee.
  std::uint32_t counter =
      bee_counters_[hive].fetch_add(1, std::memory_order_relaxed) + 1;
  return make_bee_id(hive, counter);
}

void RegistryService::assign_cells_locked(AppId app, BeeRecord& bee,
                                          const CellSet& cells) {
  for (const CellKey& cell : cells) {
    AppTables& tables = shards_[shard_of_cell(app, cell)]->apps[app];
    if (cell.is_whole_dict()) {
      auto [it, inserted] = tables.global_owner.emplace(cell.dict, bee.id);
      if (inserted) {
        // First whole-dict owner of this (app, dict): publish it in the
        // lock-free filter so key resolves start including the canonical
        // shard. Monotone (never decremented): a stale positive only
        // costs an extra shard in the mask.
        // Relaxed: the increment is published by the canonical shard's
        // mutex release; pre-lock readers treat the filter as a hint and
        // re-check under the lock (see request_mask / resolve_or_create).
        dict_filter_[filter_slot(app, cell.dict)].fetch_add(
            1, std::memory_order_relaxed);
      } else {
        it->second = bee.id;
      }
    } else {
      tables.owner[cell] = bee.id;
    }
    tables.dict_bees[cell.dict].insert(bee.id);
    bee.cells.insert(cell);
  }
}

void RegistryService::bill_rpc(HiveId requester, std::size_t request_bytes,
                               TimePoint now) {
  if (meter_ == nullptr || requester == registry_hive_) return;
  meter_->record(requester, registry_hive_, request_bytes, now);
  meter_->record(registry_hive_, requester, kRpcResponseBytes, now);
}

void RegistryService::invalidate_cachers_locked(Shard& home,
                                                const BeeRecord& rec,
                                                TimePoint now) {
  auto it = home.cachers.find(rec.id);
  if (it == home.cachers.end()) return;
  // Clients bump only the version stamps of the shards this bee actually
  // owned cells in, so their memos against other shards stay valid.
  std::uint64_t shard_mask = 0;
  for (const CellKey& cell : rec.cells) {
    shard_mask |= bit(shard_of_cell(rec.app, cell));
  }
  home.invalidations.fetch_add(1, std::memory_order_relaxed);
  std::vector<Client*> clients;
  {
    std::lock_guard lock(misc_mutex_);
    clients = clients_;
  }
  for (HiveId hive : it->second) {
    if (meter_ != nullptr && hive != registry_hive_) {
      meter_->record(registry_hive_, hive, kInvalidationBytes, now);
    }
    for (Client* client : clients) {
      if (client->self() == hive) client->invalidate(rec.id, shard_mask);
    }
  }
  home.cachers.erase(it);
}

void RegistryService::grant_leases_locked(std::uint64_t mask,
                                          std::uint32_t primary, TimePoint now,
                                          ResolveOutcome* out) {
  const Duration duration = lease_duration_.load(std::memory_order_relaxed);
  for_each_shard(mask, [&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    const TimePoint expiry = now + duration;
    if (expiry > sh.lease_expiry.load(std::memory_order_relaxed)) {
      sh.lease_expiry.store(expiry, std::memory_order_relaxed);
    }
    if (out != nullptr && s == primary) {
      out->lease_term = sh.lease_term.load(std::memory_order_relaxed);
      out->lease_expiry = sh.lease_expiry.load(std::memory_order_relaxed);
    }
  });
}

std::vector<RegistryService::LeaseGrant> RegistryService::lease_snapshot(
    std::uint64_t shard_mask, TimePoint now) {
  shard_mask &= all_mask();
  std::vector<LeaseGrant> grants;
  MaskGuard guard(*this, shard_mask);
  const Duration duration = lease_duration_.load(std::memory_order_relaxed);
  for_each_shard(shard_mask, [&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    const TimePoint expiry = now + duration;
    if (expiry > sh.lease_expiry.load(std::memory_order_relaxed)) {
      sh.lease_expiry.store(expiry, std::memory_order_relaxed);
    }
    grants.push_back({s, sh.lease_term.load(std::memory_order_relaxed),
                      sh.lease_expiry.load(std::memory_order_relaxed)});
  });
  return grants;
}

std::uint64_t RegistryService::expire_shard_lease(std::size_t shard) {
  if (shard >= shards_.size()) return 0;
  Shard& sh = *shards_[shard];
  std::lock_guard lock(sh.mutex);
  return sh.lease_term.fetch_add(1, std::memory_order_relaxed) + 1;
}

RegistryShardStats RegistryService::shard_stats(std::size_t shard) const {
  RegistryShardStats st;
  if (shard >= shards_.size()) return st;
  const Shard& sh = *shards_[shard];
  st.ops = sh.ops.load(std::memory_order_relaxed);
  st.lock_waits = sh.lock_waits.load(std::memory_order_relaxed);
  st.lock_wait_ns = sh.lock_wait_ns.load(std::memory_order_relaxed);
  st.invalidations = sh.invalidations.load(std::memory_order_relaxed);
  st.resolves = sh.resolves.load(std::memory_order_relaxed);
  st.lease_term = sh.lease_term.load(std::memory_order_relaxed);
  st.lease_expiry = sh.lease_expiry.load(std::memory_order_relaxed);
  return st;
}

BeeId RegistryService::live_successor(BeeId bee) const {
  BeeId id = bee;
  for (;;) {
    const std::uint32_t home = home_of(id);
    if (home == kAllShards) return kNoBee;
    const Shard& sh = *shards_[home];
    std::lock_guard lock(sh.mutex);
    auto it = sh.bees.find(id);
    if (it == sh.bees.end()) return kNoBee;
    if (!it->second.dead) return it->second.id;
    if (it->second.forwarded_to == kNoBee) return kNoBee;
    // Dead records are immutable, so the chain can be walked one locked
    // step at a time — no global lock needed.
    id = it->second.forwarded_to;
  }
}

ResolveOutcome RegistryService::resolve_or_create(AppId app,
                                                  const CellSet& cells,
                                                  HiveId requester, bool pinned,
                                                  TimePoint now) {
  const std::uint32_t primary = shard_of(app, cells);
  std::uint64_t need = request_mask(app, cells);
  // Expand-and-retry: lock the shards the request appears to touch; if
  // discovery (forwarding chains, merge losers, a freshly published
  // whole-dict owner) reveals shards outside the set, drop every lock and
  // retry with the union. The mask grows monotonically, so this
  // terminates in ≤ shard_count() rounds; steady-state single-shard
  // traffic never retries.
  for (;;) {
    MaskGuard guard(*this, need);
    // Post-lock re-check: only the dict_filter_ bits can differ from the
    // pre-lock mask (a whole-dict owner published while we were locking);
    // the key→shard bits are pure hashes and already in `need`.
    std::uint64_t miss = filter_mask(app, cells) & ~need;

    // 1. Collect the live bees currently owning any requested cell. A
    //    whole-dict request touches every bee of that dictionary; a key
    //    request also matches the dictionary's global ("*") owner.
    std::vector<std::pair<BeeRecord*, std::uint32_t>> owners;
    auto add_owner = [&](BeeId id) {
      std::uint32_t shard = 0;
      BeeRecord* rec = find_live_in_mask(id, need, &miss, &shard);
      if (rec == nullptr) return;
      for (const auto& [seen, _] : owners) {
        if (seen->id == rec->id) return;
      }
      owners.emplace_back(rec, shard);
    };
    for (const CellKey& cell : cells) {
      const std::uint32_t ds = dict_shard(app, cell.dict);
      if ((need & bit(ds)) != 0) {
        // When ds is NOT in the mask, the filter proved (post-lock) that
        // no whole-dict owner exists, so skipping it is safe.
        auto& shard_apps = shards_[ds]->apps;
        auto ait = shard_apps.find(app);
        if (ait != shard_apps.end()) {
          auto git = ait->second.global_owner.find(cell.dict);
          if (git != ait->second.global_owner.end()) add_owner(git->second);
        }
      }
      if (cell.is_whole_dict()) {
        // need == all_mask() here: scan every partition's bees of the dict.
        for (std::uint32_t s = 0; s < shards_.size(); ++s) {
          auto ait = shards_[s]->apps.find(app);
          if (ait == shards_[s]->apps.end()) continue;
          auto dit = ait->second.dict_bees.find(cell.dict);
          if (dit == ait->second.dict_bees.end()) continue;
          for (BeeId id : dit->second) add_owner(id);
        }
      } else {
        auto& shard_apps = shards_[shard_of_cell(app, cell)]->apps;
        auto ait = shard_apps.find(app);
        if (ait != shard_apps.end()) {
          auto oit = ait->second.owner.find(cell);
          if (oit != ait->second.owner.end()) add_owner(oit->second);
        }
      }
    }
    // A merge re-points every loser cell, so all owners' cells must be in
    // the locked set before any mutation happens.
    if (owners.size() > 1) {
      for (const auto& [rec, _] : owners) {
        for (const CellKey& cell : rec->cells) {
          miss |= bit(shard_of_cell(app, cell)) & ~need;
        }
      }
    }
    if (miss != 0) {
      need |= miss;
      continue;  // guard unlocks; retry with the expanded set
    }

    ResolveOutcome out;
    if (owners.empty()) {
      // 2a. Fresh cells: create a bee, by default on the requesting hive
      //     ("the local hive creates a new bee", paper §3). The record is
      //     homed in the shard of its first cell, forever.
      HiveId place = requester;
      // Copied lazily: only creations pay the misc_mutex_ hook copy; the
      // steady-state hit path never touches a global lock. Shard→misc
      // lock order matches invalidate_cachers_locked.
      if (has_placement_hook_.load(std::memory_order_acquire)) {
        PlacementHook hook;
        {
          std::lock_guard lock(misc_mutex_);
          hook = placement_hook_;
        }
        if (hook) place = hook(app, cells, requester);
      }
      assert(place < n_hives_);
      BeeId id = allocate_bee_id(place);
      const std::uint32_t home =
          cells.empty() ? 0 : shard_of_cell(app, cells.front());
      Shard& hs = *shards_[home];
      BeeRecord rec;
      rec.id = id;
      rec.app = app;
      rec.hive = place;
      rec.pinned = pinned;
      auto [it, inserted] = hs.bees.emplace(id, std::move(rec));
      assert(inserted);
      {
        HomeStripe& stripe = home_[id % kHomeStripes];
        std::lock_guard hlock(stripe.mutex);
        stripe.home.emplace(id, home);
      }
      assign_cells_locked(app, it->second, cells);
      out.bee = id;
      out.hive = place;
      out.created = true;
      hs.resolves.fetch_add(1, std::memory_order_relaxed);
      hs.cachers[id].insert(requester);
    } else {
      // 2b. Pick the winner among existing owners: pinned bees always win
      //     (drivers are anchored to their IO channel), then the bee with
      //     the most cells (cheapest merge), then the lowest id (stable —
      //     and independent of shard count / discovery order).
      std::sort(owners.begin(), owners.end(),
                [](const auto& a, const auto& b) {
                  const BeeRecord& ra = *a.first;
                  const BeeRecord& rb = *b.first;
                  if (ra.pinned != rb.pinned) return ra.pinned;
                  if (ra.cells.size() != rb.cells.size()) {
                    return ra.cells.size() > rb.cells.size();
                  }
                  return ra.id < rb.id;
                });
      BeeRecord& wrec = *owners.front().first;
      Shard& whome = *shards_[owners.front().second];
      for (std::size_t i = 1; i < owners.size(); ++i) {
        BeeRecord& loser = *owners[i].first;
        Shard& lhome = *shards_[owners[i].second];
        assert(!loser.pinned && "two pinned bees share cells: design error");
        // Atomically re-point every cell of the loser at the winner. Every
        // involved shard is locked (merge pre-check above).
        for (const CellKey& cell : loser.cells) {
          AppTables& tables = shards_[shard_of_cell(app, cell)]->apps[app];
          if (cell.is_whole_dict()) {
            tables.global_owner[cell.dict] = wrec.id;
          } else {
            tables.owner[cell] = wrec.id;
          }
          auto dit = tables.dict_bees.find(cell.dict);
          if (dit != tables.dict_bees.end()) dit->second.erase(loser.id);
          tables.dict_bees[cell.dict].insert(wrec.id);
          wrec.cells.insert(cell);
        }
        loser.dead = true;
        loser.forwarded_to = wrec.id;
        // The winner inherits the loser's whole transfer ledger: one for
        // the loser's own snapshot plus every transfer ever decided into
        // the loser — those still in flight will chase the forwarding
        // chain and land on the winner. The loser's snapshot carries its
        // applied count so the winner's applied counter advances by the
        // part already folded into that snapshot.
        wrec.transfers_expected += 1 + loser.transfers_expected;
        out.losers.push_back({loser.id, loser.hive});
        invalidate_cachers_locked(lhome, loser, now);
      }
      assign_cells_locked(app, wrec, cells);
      out.bee = wrec.id;
      out.hive = wrec.hive;
      out.transfers_expected = wrec.transfers_expected;
      whome.resolves.fetch_add(1, std::memory_order_relaxed);
      whome.cachers[wrec.id].insert(requester);
    }

    out.shard = primary;
    grant_leases_locked(need, primary, now, &out);
    bill_rpc(requester, kRpcRequestBase + encoded_cells_size(cells), now);
    return out;
  }
}

void RegistryService::add_expected_transfer(BeeId bee) {
  with_bee(bee,
           [](Shard&, BeeRecord& rec) { rec.transfers_expected += 1; });
}

void RegistryService::reset_expected_transfers(BeeId bee) {
  with_bee(bee, [](Shard&, BeeRecord& rec) { rec.transfers_expected = 0; });
}

std::uint64_t RegistryService::expected_transfers(BeeId bee) const {
  std::uint64_t expected = 0;
  with_bee(bee, [&](const Shard&, const BeeRecord& rec) {
    expected = rec.transfers_expected;
  });
  return expected;
}

void RegistryService::move_bee_rpc(BeeId bee, HiveId to, HiveId requester,
                                   TimePoint now) {
  bill_rpc(requester, kRpcRequestBase, now);
  move_bee(bee, to, now);
}

std::uint64_t RegistryService::begin_migration(BeeId bee, HiveId requester,
                                               TimePoint now) {
  std::uint64_t epoch = 0;
  with_bee(bee, [&](Shard&, BeeRecord& rec) {
    if (rec.dead) return;
    bill_rpc(requester, kRpcRequestBase, now);
    epoch = ++rec.mig_epoch;
  });
  return epoch;
}

bool RegistryService::commit_migration(BeeId bee, HiveId to,
                                       std::uint64_t epoch, HiveId requester,
                                       TimePoint now) {
  bill_rpc(requester, kRpcRequestBase, now);
  bool committed = false;
  with_bee(bee, [&](Shard& sh, BeeRecord& rec) {
    if (rec.dead) return;
    if (rec.mig_epoch != epoch) return;  // aborted meanwhile
    assert(to < n_hives_);
    // Idempotent for duplicate transfers of the same (live) migration: the
    // epoch stays current so a retransmitted payload re-commits harmlessly.
    rec.hive = to;
    invalidate_cachers_locked(sh, rec, now);
    committed = true;
  });
  return committed;
}

bool RegistryService::cancel_migration(BeeId bee, HiveId origin,
                                       HiveId requester, TimePoint now) {
  bill_rpc(requester, kRpcRequestBase, now);
  bool cancelled = false;
  with_bee(bee, [&](Shard&, BeeRecord& rec) {
    if (rec.dead) return;
    if (rec.hive != origin) return;  // a commit won the race
    ++rec.mig_epoch;
    cancelled = true;
  });
  return cancelled;
}

void RegistryService::move_bee(BeeId bee, HiveId to, TimePoint now) {
  bool found = with_bee(bee, [&](Shard& sh, BeeRecord& rec) {
    assert(!rec.dead);
    assert(to < n_hives_);
    rec.hive = to;
    invalidate_cachers_locked(sh, rec, now);
  });
  assert(found);
  (void)found;
}

std::optional<HiveId> RegistryService::hive_of(BeeId bee) const {
  const BeeId live = live_successor(bee);
  if (live == kNoBee) return std::nullopt;
  std::optional<HiveId> hive;
  with_bee(live, [&](const Shard&, const BeeRecord& rec) { hive = rec.hive; });
  return hive;
}

const BeeRecord* RegistryService::find(BeeId bee) const {
  const BeeRecord* found = nullptr;
  with_bee(bee,
           [&](const Shard&, const BeeRecord& rec) { found = &rec; });
  return found;
}

std::vector<BeeRecord> RegistryService::live_bees() const {
  std::vector<BeeRecord> out;
  MaskGuard guard(*this, all_mask());
  for (const auto& shard : shards_) {
    for (const auto& [_, rec] : shard->bees) {
      if (!rec.dead) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BeeRecord& a, const BeeRecord& b) { return a.id < b.id; });
  return out;
}

std::size_t RegistryService::live_bee_count() const {
  std::size_t n = 0;
  MaskGuard guard(*this, all_mask());
  for (const auto& shard : shards_) {
    for (const auto& [_, rec] : shard->bees) n += rec.dead ? 0 : 1;
  }
  return n;
}

std::size_t RegistryService::cells_on_hive(HiveId hive) const {
  std::size_t n = 0;
  MaskGuard guard(*this, all_mask());
  for (const auto& shard : shards_) {
    for (const auto& [_, rec] : shard->bees) {
      if (!rec.dead && rec.hive == hive) n += rec.cells.size();
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RegistryService::Client::Client(RegistryService& service, HiveId self)
    : service_(service), self_(self) {
  const std::size_t n = service_.shard_count();
  memos_.resize(n + 1);  // slot n memoizes cross-shard sets (global stamp)
  lease_term_.assign(n, 0);
  lease_expiry_.assign(n, 0);
  shard_versions_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  service_.attach_client(this);
}

RegistryService::Client::~Client() = default;

void RegistryService::Client::bump_shard_locked(std::uint32_t shard) {
  shard_versions_[shard].fetch_add(1, std::memory_order_release);
}

RegistryService::Client::CacheStamp RegistryService::Client::stamp(
    AppId app, const CellSet& cells) const {
  // Lock-free: pure hashing plus one atomic load, so the hive dispatch
  // memo can stamp per message without touching the client mutex.
  CacheStamp s;
  s.shard = service_.shard_of(app, cells);
  s.version = s.shard == RegistryService::kAllShards
                  ? cache_version_.load(std::memory_order_acquire)
                  : shard_versions_[s.shard].load(std::memory_order_acquire);
  return s;
}

void RegistryService::Client::invalidate(BeeId bee, std::uint64_t shard_mask) {
  std::lock_guard lock(mutex_);
  bee_hive_.erase(bee);
  // Drop memos only for the shards the bee owned cells in; resolutions
  // memoized against other shards are untouched by this change.
  for_each_shard(shard_mask, [&](std::uint32_t s) { bump_shard_locked(s); });
  ++cache_version_;
  // Cell entries pointing at `bee` become stale but harmless: a lookup
  // only counts as a hit when the bee's location is also cached, so the
  // next resolve falls through to the master and overwrites them.
}

void RegistryService::Client::purge_shard_locked(std::uint32_t shard) {
  for (auto it = cell_to_bee_.begin(); it != cell_to_bee_.end();) {
    if (service_.shard_of_cell(it->first.app, it->first.cell) == shard) {
      it = cell_to_bee_.erase(it);
    } else {
      ++it;
    }
  }
  bump_shard_locked(shard);
  ++cache_version_;
}

void RegistryService::Client::apply_lease_locked(std::uint32_t shard,
                                                 std::uint64_t term,
                                                 TimePoint expiry) {
  if (term == 0) return;
  if (lease_term_[shard] != 0 && lease_term_[shard] != term) {
    // Shard failover: every assignment resolved against the old term is
    // suspect. Purge just this shard's entries — the others' leases and
    // memos are independent.
    purge_shard_locked(shard);
  }
  lease_term_[shard] = term;
  if (expiry > lease_expiry_[shard]) lease_expiry_[shard] = expiry;
}

RegistryService::Client::LeaseState RegistryService::Client::lease_state_locked(
    std::uint64_t mask, TimePoint now) const {
  LeaseState worst = LeaseState::kFresh;
  Duration grace = -1;  // fetched lazily: fresh leases never need it
  for (std::uint32_t s = 0; s < service_.shard_count(); ++s) {
    if ((mask & RegistryService::bit(s)) == 0) continue;
    if (lease_term_[s] == 0) return LeaseState::kDead;  // never leased
    if (now <= lease_expiry_[s]) continue;
    if (grace < 0) grace = service_.lease_grace();
    if (now <= lease_expiry_[s] + grace) {
      worst = LeaseState::kStale;
    } else {
      return LeaseState::kDead;
    }
  }
  return worst;
}

std::optional<ResolveOutcome> RegistryService::Client::try_cache_locked(
    AppId app, const CellSet& cells, std::uint32_t primary) {
  const bool cross = primary == RegistryService::kAllShards;
  const std::size_t slot = cross ? service_.shard_count() : primary;
  const std::uint64_t version =
      cross ? cache_version_.load(std::memory_order_acquire)
            : shard_versions_[primary].load(std::memory_order_acquire);
  ResolveMemo& memo = memos_[slot];
  // Fast path: exact repeat of the last resolved (app, cells) against this
  // shard with an unchanged stamp — one version compare and a short key
  // compare instead of per-cell key construction and three hash lookups.
  if (memo.valid && memo.version == version && memo.app == app &&
      memo.cells == cells) {
    return memo.out;
  }
  BeeId candidate = kNoBee;
  bool hit = !cells.empty();
  for (const CellKey& cell : cells) {
    auto it = cell_to_bee_.find({app, cell});
    if (it == cell_to_bee_.end()) {
      hit = false;
      break;
    }
    if (candidate == kNoBee) {
      candidate = it->second;
    } else if (candidate != it->second) {
      hit = false;  // spans two cached bees: merge decision needed.
      break;
    }
  }
  if (!hit) return std::nullopt;
  auto hive_it = bee_hive_.find(candidate);
  if (hive_it == bee_hive_.end()) return std::nullopt;
  ResolveOutcome out;
  out.bee = candidate;
  out.hive = hive_it->second;
  out.shard = primary;
  auto exp_it = bee_expected_.find(candidate);
  if (exp_it != bee_expected_.end()) {
    out.transfers_expected = exp_it->second;
  }
  memo.valid = true;
  memo.version = version;
  memo.app = app;
  memo.cells = cells;
  memo.out = out;
  return out;
}

bool RegistryService::Client::rpc_admitted(std::size_t request_bytes,
                                           TimePoint now) {
  if (self_ == service_.registry_hive()) return true;  // local, lossless
  if (now < backoff_until_) {
    // Fast-fail inside the backoff window: the master was just found
    // unreachable; don't hammer the channel with doomed requests.
    ++rpc_failures_;
    return false;
  }
  for (int attempt = 1;; ++attempt) {
    if (!service_.rpc_attempt_lost(self_, request_bytes, now)) {
      backoff_ = kBackoffInitial;
      backoff_until_ = 0;
      return true;
    }
    if (attempt >= kMaxRpcAttempts) {
      ++rpc_failures_;
      backoff_until_ = now + backoff_;
      backoff_ = std::min(backoff_ * 2, kBackoffMax);
      BH_WARN << "registry client on hive " << self_ << ": lookup failed ("
              << kMaxRpcAttempts << " attempts lost), backing off";
      return false;
    }
    ++rpc_retries_;
  }
}

ResolveOutcome RegistryService::Client::resolve_or_create(AppId app,
                                                          const CellSet& cells,
                                                          bool pinned,
                                                          TimePoint now) {
  const std::uint32_t primary = service_.shard_of(app, cells);
  std::uint64_t mask = 0;
  for (const CellKey& cell : cells) {
    mask |= RegistryService::bit(service_.shard_of_cell(app, cell));
  }
  std::optional<ResolveOutcome> cached;
  LeaseState lease = LeaseState::kFresh;
  {
    std::lock_guard lock(mutex_);
    cached = try_cache_locked(app, cells, primary);
    if (cached.has_value()) {
      lease = lease_state_locked(mask, now);
      if (lease == LeaseState::kFresh) {
        ++hits_;
        return *cached;
      }
    }
    // Expired-lease revalidation goes to the master like any other miss.
    ++misses_;
  }

  if (!rpc_admitted(RegistryService::kRpcRequestBase + encoded_cells_size(cells),
                    now)) {
    if (cached.has_value() && lease == LeaseState::kStale) {
      // Jeopardy: the master is unreachable but we are inside the grace
      // window — keep serving the last known assignment (Chubby §2.8).
      std::lock_guard lock(mutex_);
      ++stale_serves_;
      return *cached;
    }
    return ResolveOutcome{};  // bee == kNoBee signals the failure
  }

  ResolveOutcome out =
      service_.resolve_or_create(app, cells, self_, pinned, now);
  std::vector<LeaseGrant> grants;
  if (primary == RegistryService::kAllShards) {
    // Cross-shard sets carry no primary lease in the outcome; pull the
    // grants for every involved shard (rides on the resolve RPC).
    grants = service_.lease_snapshot(mask, now);
  }

  std::lock_guard lock(mutex_);
  // Leases first: a term change purges the shard's stale entries BEFORE
  // this fill installs fresh ones, so the revalidating resolve itself
  // stays cached.
  if (primary != RegistryService::kAllShards) {
    apply_lease_locked(primary, out.lease_term, out.lease_expiry);
  } else {
    for (const LeaseGrant& grant : grants) {
      apply_lease_locked(grant.shard, grant.term, grant.expires_at);
    }
  }
  for (const CellKey& cell : cells) cell_to_bee_[{app, cell}] = out.bee;
  bee_hive_[out.bee] = out.hive;
  std::uint64_t& expected = bee_expected_[out.bee];
  if (out.transfers_expected > expected) expected = out.transfers_expected;
  if (cached.has_value()) ++lease_renewals_;
  // Conservative: the fill may supersede resolutions memoized against the
  // involved shards (e.g. this resolve merged their owner away).
  for_each_shard(mask, [&](std::uint32_t s) { bump_shard_locked(s); });
  ++cache_version_;
  return out;
}

std::optional<HiveId> RegistryService::Client::hive_of(BeeId bee,
                                                       TimePoint now) {
  {
    std::lock_guard lock(mutex_);
    auto it = bee_hive_.find(bee);
    if (it != bee_hive_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  if (!rpc_admitted(RegistryService::kRpcRequestBase, now)) {
    return std::nullopt;
  }
  auto hive = service_.hive_of(bee);
  // Bill the lookup RPC; a real lock service would also be consulted here.
  service_.bill_rpc(self_, RegistryService::kRpcRequestBase, now);
  BeeId live = kNoBee;
  if (hive.has_value()) {
    live = service_.live_successor(bee);
    service_.with_bee(live, [&](Shard& sh, BeeRecord& rec) {
      sh.cachers[rec.id].insert(self_);
    });
  }
  if (hive.has_value() && live != kNoBee) {
    std::lock_guard lock(mutex_);
    bee_hive_[live] = *hive;
    // Location-only fill: bumps the coarse global version (no shard is
    // attributable), leaving every per-shard memo intact.
    ++cache_version_;
  }
  return hive;
}

void register_registry_shard_metrics(MetricsRegistry& reg,
                                     const RegistryService& svc) {
  for (std::uint32_t s = 0; s < svc.shard_count(); ++s) {
    const MetricLabels labels{{"shard", std::to_string(s)}};
    reg.gauge_fn(
        "beehive_registry_ops_total", labels,
        [&svc, s] { return static_cast<double>(svc.shard_stats(s).ops); },
        "Registry operations that locked this shard.",
        /*counter_semantics=*/true);
    reg.gauge_fn(
        "beehive_registry_lock_waits_total", labels,
        [&svc, s] {
          return static_cast<double>(svc.shard_stats(s).lock_waits);
        },
        "Shard lock acquisitions that contended (try_lock failed).",
        /*counter_semantics=*/true);
    reg.gauge_fn(
        "beehive_registry_lock_wait_us_total", labels,
        [&svc, s] {
          return static_cast<double>(svc.shard_stats(s).lock_wait_ns) /
                 1000.0;
        },
        "Microseconds spent blocked on this shard's lock.",
        /*counter_semantics=*/true);
    reg.gauge_fn(
        "beehive_registry_invalidations_total", labels,
        [&svc, s] {
          return static_cast<double>(svc.shard_stats(s).invalidations);
        },
        "Cache invalidations issued by ownership writes to this shard.",
        /*counter_semantics=*/true);
  }
}

}  // namespace beehive
