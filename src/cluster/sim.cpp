#include "cluster/sim.h"

#include <cassert>
#include <stdexcept>

namespace beehive {

SimCluster::SimCluster(ClusterConfig config, const AppSet& apps)
    : config_(config),
      meter_(config.n_hives, config.bw_bucket),
      registry_(config.n_hives, &meter_, config.registry_hive),
      rng_(config.seed) {
  assert(config_.n_hives > 0);
  config_.hive.n_hives = config_.n_hives;
  queues_.resize(config_.n_hives);
  if (config_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (config_.flight_recorder) {
    recorder_ = std::make_unique<FlightRecorder>(
        config_.flight_recorder_lines,
        static_cast<std::size_t>(config_.n_hives));
    // Single-threaded runtime: pulling spans from inside a dump is safe.
    if (config_.tracing) {
      recorder_->set_span_source([this] { return trace_events(); });
      recorder_->set_trace_source(
          [this] { return blame_summary_text(assembled_traces(8)); });
    }
  }
  hives_.reserve(config_.n_hives);
  if (config_.tracing) tracers_.reserve(config_.n_hives);
  for (HiveId id = 0; id < config_.n_hives; ++id) {
    HiveConfig hc = config_.hive;
    if (config_.tracing) {
      tracers_.push_back(
          std::make_unique<TraceRecorder>(config_.trace_capacity));
      if (config_.tail.enabled) {
        tracers_.back()->configure_tail(config_.tail);
      }
      hc.tracer = tracers_.back().get();
    }
    hc.faults = &faults_;
    hc.metrics = metrics_.get();
    hc.recorder = recorder_.get();
    hives_.push_back(
        std::make_unique<Hive>(id, apps, registry_, *this, hc));
  }
  if (metrics_) {
    // Control-channel totals are pull-gauges: the meter has its own lock,
    // so they are read at scrape time instead of being pushed.
    metrics_->gauge_fn(
        "beehive_channel_bytes_total", {},
        [this] { return static_cast<double>(meter_.total_bytes()); },
        "Bytes that crossed the inter-hive control channel.",
        /*counter_semantics=*/true);
    metrics_->gauge_fn(
        "beehive_channel_messages_total", {},
        [this] { return static_cast<double>(meter_.total_messages()); },
        "Frames that crossed the inter-hive control channel.",
        /*counter_semantics=*/true);
    metrics_->gauge_fn(
        "beehive_channel_hotspot_share", {},
        [this] { return meter_.hotspot_share(); },
        "Fraction of inter-hive traffic involving the busiest hive.");
    register_registry_shard_metrics(*metrics_, registry_);
  }
  // Registry RPC attempts traverse the same lossy network as frames.
  registry_.set_rpc_fault_hook([this](HiveId requester) {
    return faults_.active() &&
           faults_.rpc_lost(requester, config_.registry_hive, rng_);
  });
}

SimCluster::~SimCluster() = default;

void SimCluster::start() {
  for (auto& hive : hives_) hive->start();
}

void SimCluster::schedule_after(HiveId hive, Duration delay,
                                std::function<void()> fn) {
  assert(delay >= 0);
  // Pressure accounting: this event sits in `hive`'s slice of the queue
  // until it fires (the wrapper below settles the books either way).
  if (hive < queues_.size()) {
    QueueStats& q = queues_[hive];
    q.depth += 1;
    if (q.depth > q.hwm) q.hwm = q.depth;
  }
  // A crashed hive's pending callbacks (timers, deferred emissions) must
  // not run: check liveness at fire time, not at scheduling time.
  events_.push(Event{now_ + delay, next_seq_++,
                     [this, hive, f = std::move(fn)]() {
                       if (hive < queues_.size()) {
                         QueueStats& q = queues_[hive];
                         if (q.depth > 0) q.depth -= 1;
                         q.drained += 1;
                       }
                       if (hive_alive(hive)) f();
                     }});
}

void SimCluster::send_frame(HiveId from, HiveId to, Bytes frame) {
  assert(from < hives_.size() && to < hives_.size());
  if (!hive_alive(from) || !hive_alive(to)) return;  // crash = silence
  meter_.record(from, to, frame.size(), now_);
  // Channel transit spans: send on the source recorder, receive on the
  // destination's, paired by the event sequence number of the delivery.
  const std::uint64_t frame_seq = next_seq_;
  const auto kind = frame.empty()
                        ? MsgTypeId{0}
                        : static_cast<MsgTypeId>(
                              static_cast<unsigned char>(frame[0]));
  const auto bytes = static_cast<std::uint32_t>(frame.size());
  if (TraceRecorder* t = tracer(from); t != nullptr) {
    t->record(TraceEvent{now_, SpanKind::kChannelSend, bytes, 0, from, kNoBee,
                         0, kind, frame_seq, to});
  }
  // The fault plan decides this frame's fate (drop / duplicate / delay).
  // Fault-free plans never touch the RNG, so clean runs stay bit-identical
  // to builds without fault injection.
  FaultPlan::Delivery fate;
  if (faults_.active()) {
    fate = faults_.decide(from, to, config_.wire_latency, rng_);
    if (fate.copies == 0) return;  // dropped or partitioned
  }
  Hive* target = hives_[to].get();
  for (std::uint8_t copy = 0; copy < fate.copies; ++copy) {
    Bytes payload = (copy + 1 == fate.copies) ? std::move(frame) : frame;
    events_.push(
        Event{now_ + config_.wire_latency + fate.extra_delay[copy],
              next_seq_++,
              [this, from, to, target, frame_seq, kind, bytes,
               f = std::move(payload)]() {
                if (!hive_alive(to)) return;
                if (TraceRecorder* t = tracer(to); t != nullptr) {
                  t->record(TraceEvent{now_, SpanKind::kChannelRecv, bytes, 0,
                                       from, kNoBee, 0, kind, frame_seq, to});
                }
                target->on_wire(f);
              }});
  }
}

bool SimCluster::step() {
  if (events_.empty()) return false;
  Event event = events_.top();
  events_.pop();
  assert(event.at >= now_ && "event scheduled in the past");
  now_ = event.at;
  event.fn();
  return true;
}

void SimCluster::run_until(TimePoint t) {
  while (!events_.empty() && events_.top().at <= t) step();
  if (now_ < t) now_ = t;
}

void SimCluster::run_to_idle() {
  while (step()) {
  }
}

void SimCluster::fail_hive(HiveId hive) {
  if (hive >= hives_.size()) {
    throw std::invalid_argument("fail_hive: no such hive");
  }
  if (hive == config_.registry_hive) {
    // Fault tolerance of the lock service itself is out of the paper's
    // scope (DESIGN.md §2, "Registry") — reject loudly rather than
    // producing a silently wedged cluster.
    throw std::invalid_argument(
        "fail_hive: the registry master cannot be failed");
  }
  failed_.insert(hive);
}

HealthReport SimCluster::health() const {
  HealthReport report;
  report.at = now_;
  report.hives.reserve(hives_.size());
  for (const auto& hive : hives_) {
    HiveHealth h = hive->health();
    h.suspected = !hive_alive(h.hive);
    report.hives.push_back(h);
  }
  report.registry_shards.reserve(registry_.shard_count());
  for (std::uint32_t s = 0; s < registry_.shard_count(); ++s) {
    const RegistryShardStats stats = registry_.shard_stats(s);
    report.registry_shards.push_back({s, stats.ops, stats.lock_waits,
                                      stats.lock_wait_ns / 1000,
                                      stats.invalidations, stats.resolves,
                                      stats.lease_term});
  }
  return report;
}

std::vector<TraceEvent> SimCluster::trace_events() const {
  std::vector<const TraceRecorder*> recorders;
  recorders.reserve(tracers_.size());
  for (const auto& t : tracers_) recorders.push_back(t.get());
  return merge_trace_events(recorders);
}

std::vector<AssembledTrace> SimCluster::assembled_traces(
    std::size_t top_n) const {
  // Single-threaded runtime: reading the recorders directly is safe.
  std::vector<const TraceRecorder*> recorders;
  recorders.reserve(tracers_.size());
  for (const auto& t : tracers_) recorders.push_back(t.get());
  return assemble_from_recorders(recorders, top_n);
}

std::string SimCluster::traces_json(std::size_t top_n) const {
  return beehive::traces_json(assembled_traces(top_n), now_);
}

std::size_t SimCluster::recover_hive(HiveId hive) {
  if (hive >= hives_.size()) {
    throw std::invalid_argument("recover_hive: no such hive");
  }
  if (hive_alive(hive)) {
    throw std::logic_error("recover_hive: hive " + std::to_string(hive) +
                           " has not failed");
  }
  if (recovered_.contains(hive)) {
    throw std::logic_error("recover_hive: hive " + std::to_string(hive) +
                           " was already recovered");
  }
  recovered_.insert(hive);
  std::size_t recovered_with_state = 0;
  for (const BeeRecord& rec : registry_.live_bees()) {
    if (rec.hive != hive) continue;
    // Ring successor, skipping other failed hives.
    HiveId target = static_cast<HiveId>((hive + 1) % hives_.size());
    while (!hive_alive(target) && target != hive) {
      target = static_cast<HiveId>((target + 1) % hives_.size());
    }
    if (target == hive) break;  // nobody left to adopt
    registry_.move_bee(rec.id, target, now_);
    // The adopted bee restarts with fresh fence counters; transfers that
    // were in flight to the dead hive are lost with it.
    registry_.reset_expected_transfers(rec.id);
    if (hives_[target]->adopt_from_replica(rec.id, rec.app)) {
      ++recovered_with_state;
    }
  }
  return recovered_with_state;
}

}  // namespace beehive
