#include "cluster/channel.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace beehive {

ChannelMeter::ChannelMeter(std::size_t n_hives, Duration bucket)
    : n_(n_hives),
      bucket_(bucket),
      bytes_(n_hives * n_hives, 0),
      counts_(n_hives * n_hives, 0) {
  assert(bucket_ > 0);
}

void ChannelMeter::record(HiveId from, HiveId to, std::size_t bytes,
                          TimePoint when) {
  std::lock_guard lock(mutex_);
  if (from >= n_ || to >= n_) {
    // A corrupt or mis-addressed sample must not index out of bounds (and
    // in release builds the old assert would have let it). Drop loudly.
    BH_WARN << "ChannelMeter: dropping sample for out-of-range link "
            << from << " -> " << to << " (n_hives=" << n_ << ")";
    return;
  }
  bytes_[idx(from, to)] += bytes;
  counts_[idx(from, to)] += 1;
  auto bucket = static_cast<std::size_t>(when / bucket_);
  if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
  series_[bucket] += bytes;
}

std::uint64_t ChannelMeter::matrix_bytes(HiveId from, HiveId to) const {
  std::lock_guard lock(mutex_);
  return bytes_[idx(from, to)];
}

std::uint64_t ChannelMeter::matrix_messages(HiveId from, HiveId to) const {
  std::lock_guard lock(mutex_);
  return counts_[idx(from, to)];
}

double ChannelMeter::hive_share(HiveId h) const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  std::uint64_t involving = 0;
  for (HiveId i = 0; i < n_; ++i) {
    for (HiveId j = 0; j < n_; ++j) {
      if (i == j) continue;
      std::uint64_t b = bytes_[idx(i, j)];
      total += b;
      if (i == h || j == h) involving += b;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(involving) /
                                static_cast<double>(total);
}

double ChannelMeter::hotspot_share() const {
  double best = 0.0;
  for (HiveId h = 0; h < n_; ++h) best = std::max(best, hive_share(h));
  return best;
}

std::vector<std::uint64_t> ChannelMeter::bandwidth_series() const {
  std::lock_guard lock(mutex_);
  return series_;
}

std::vector<double> ChannelMeter::bandwidth_kbps() const {
  std::vector<double> out;
  const double seconds =
      static_cast<double>(bucket_) / static_cast<double>(kSecond);
  std::lock_guard lock(mutex_);
  out.reserve(series_.size());
  for (std::uint64_t b : series_) {
    out.push_back(static_cast<double>(b) / 1024.0 / seconds);
  }
  return out;
}

std::uint64_t ChannelMeter::total_bytes() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (std::uint64_t b : bytes_) total += b;
  return total;
}

std::uint64_t ChannelMeter::total_messages() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

void ChannelMeter::reset() {
  std::lock_guard lock(mutex_);
  std::fill(bytes_.begin(), bytes_.end(), 0);
  std::fill(counts_.begin(), counts_.end(), 0);
  series_.clear();
}

std::string ChannelMeter::ascii_heatmap(std::size_t cells) const {
  // Downsample the n x n byte matrix into a cells x cells grid and render
  // each grid cell with a density character.
  static const char kShades[] = {' ', '.', ':', '+', '*', '#', '@'};
  constexpr std::size_t kLevels = sizeof(kShades) - 1;

  std::lock_guard lock(mutex_);
  const std::size_t grid = std::min(cells, n_);
  std::vector<std::uint64_t> agg(grid * grid, 0);
  std::uint64_t peak = 0;
  for (HiveId i = 0; i < n_; ++i) {
    for (HiveId j = 0; j < n_; ++j) {
      std::size_t gi = i * grid / n_;
      std::size_t gj = j * grid / n_;
      agg[gi * grid + gj] += bytes_[idx(i, j)];
    }
  }
  for (std::uint64_t v : agg) peak = std::max(peak, v);

  std::string out;
  out.reserve(grid * (grid + 1));
  for (std::size_t gi = 0; gi < grid; ++gi) {
    for (std::size_t gj = 0; gj < grid; ++gj) {
      std::uint64_t v = agg[gi * grid + gj];
      std::size_t level = 0;
      if (peak > 0 && v > 0) {
        level = 1 + v * (kLevels - 1) / peak;
        if (level > kLevels) level = kLevels;
      }
      out.push_back(kShades[level]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace beehive
