#include "cluster/channel.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace beehive {

ChannelMeter::ChannelMeter(std::size_t n_hives, Duration bucket)
    : n_(n_hives), bucket_(bucket) {
  assert(bucket_ > 0);
  stripes_.reserve(n_hives);
  for (std::size_t i = 0; i < n_hives; ++i) {
    auto s = std::make_unique<Stripe>();
    s->bytes.assign(n_hives, 0);
    s->counts.assign(n_hives, 0);
    stripes_.push_back(std::move(s));
  }
}

void ChannelMeter::record(HiveId from, HiveId to, std::size_t bytes,
                          TimePoint when) {
  if (from >= n_ || to >= n_) {
    // A corrupt or mis-addressed sample must not index out of bounds (and
    // in release builds the old assert would have let it). Drop loudly.
    BH_WARN << "ChannelMeter: dropping sample for out-of-range link "
            << from << " -> " << to << " (n_hives=" << n_ << ")";
    return;
  }
  Stripe& s = *stripes_[from];
  std::lock_guard lock(s.mutex);
  s.bytes[to] += bytes;
  s.counts[to] += 1;
  auto bucket = static_cast<std::size_t>(when / bucket_);
  if (s.series.size() <= bucket) s.series.resize(bucket + 1, 0);
  s.series[bucket] += bytes;
}

void ChannelMeter::merge_matrix(std::vector<std::uint64_t>& bytes,
                                std::vector<std::uint64_t>& counts) const {
  bytes.assign(n_ * n_, 0);
  counts.assign(n_ * n_, 0);
  for (std::size_t from = 0; from < n_; ++from) {
    const Stripe& s = *stripes_[from];
    std::lock_guard lock(s.mutex);
    for (std::size_t to = 0; to < n_; ++to) {
      bytes[from * n_ + to] = s.bytes[to];
      counts[from * n_ + to] = s.counts[to];
    }
  }
}

std::uint64_t ChannelMeter::matrix_bytes(HiveId from, HiveId to) const {
  const Stripe& s = *stripes_.at(from);
  std::lock_guard lock(s.mutex);
  return s.bytes.at(to);
}

std::uint64_t ChannelMeter::matrix_messages(HiveId from, HiveId to) const {
  const Stripe& s = *stripes_.at(from);
  std::lock_guard lock(s.mutex);
  return s.counts.at(to);
}

double ChannelMeter::share_of(const std::vector<std::uint64_t>& bytes,
                              std::size_t n, HiveId h) {
  std::uint64_t total = 0;
  std::uint64_t involving = 0;
  for (HiveId i = 0; i < n; ++i) {
    for (HiveId j = 0; j < n; ++j) {
      if (i == j) continue;
      std::uint64_t b = bytes[i * n + j];
      total += b;
      if (i == h || j == h) involving += b;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(involving) /
                                static_cast<double>(total);
}

double ChannelMeter::hive_share(HiveId h) const {
  std::vector<std::uint64_t> bytes, counts;
  merge_matrix(bytes, counts);
  return share_of(bytes, n_, h);
}

double ChannelMeter::hotspot_share() const {
  // One merged snapshot for all candidates — n lock acquisitions instead
  // of n².
  std::vector<std::uint64_t> bytes, counts;
  merge_matrix(bytes, counts);
  double best = 0.0;
  for (HiveId h = 0; h < n_; ++h) best = std::max(best, share_of(bytes, n_, h));
  return best;
}

std::vector<std::uint64_t> ChannelMeter::bandwidth_series() const {
  std::vector<std::uint64_t> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    if (stripe->series.size() > out.size()) {
      out.resize(stripe->series.size(), 0);
    }
    for (std::size_t b = 0; b < stripe->series.size(); ++b) {
      out[b] += stripe->series[b];
    }
  }
  return out;
}

std::vector<double> ChannelMeter::bandwidth_kbps() const {
  const std::vector<std::uint64_t> series = bandwidth_series();
  std::vector<double> out;
  const double seconds =
      static_cast<double>(bucket_) / static_cast<double>(kSecond);
  out.reserve(series.size());
  for (std::uint64_t b : series) {
    out.push_back(static_cast<double>(b) / 1024.0 / seconds);
  }
  return out;
}

std::uint64_t ChannelMeter::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (std::uint64_t b : stripe->bytes) total += b;
  }
  return total;
}

std::uint64_t ChannelMeter::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (std::uint64_t c : stripe->counts) total += c;
  }
  return total;
}

void ChannelMeter::reset() {
  for (auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    std::fill(stripe->bytes.begin(), stripe->bytes.end(), 0);
    std::fill(stripe->counts.begin(), stripe->counts.end(), 0);
    stripe->series.clear();
  }
}

std::string ChannelMeter::ascii_heatmap(std::size_t cells) const {
  // Downsample the n x n byte matrix into a cells x cells grid and render
  // each grid cell with a density character.
  static const char kShades[] = {' ', '.', ':', '+', '*', '#', '@'};
  constexpr std::size_t kLevels = sizeof(kShades) - 1;

  std::vector<std::uint64_t> bytes, counts;
  merge_matrix(bytes, counts);
  const std::size_t grid = std::min(cells, n_);
  std::vector<std::uint64_t> agg(grid * grid, 0);
  std::uint64_t peak = 0;
  for (HiveId i = 0; i < n_; ++i) {
    for (HiveId j = 0; j < n_; ++j) {
      std::size_t gi = i * grid / n_;
      std::size_t gj = j * grid / n_;
      agg[gi * grid + gj] += bytes[i * n_ + j];
    }
  }
  for (std::uint64_t v : agg) peak = std::max(peak, v);

  std::string out;
  out.reserve(grid * (grid + 1));
  for (std::size_t gi = 0; gi < grid; ++gi) {
    for (std::size_t gj = 0; gj < grid; ++gj) {
      std::uint64_t v = agg[gi * grid + gj];
      std::size_t level = 0;
      if (peak > 0 && v > 0) {
        level = 1 + v * (kLevels - 1) / peak;
        if (level > kLevels) level = kLevels;
      }
      out.push_back(kShades[level]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace beehive
