// The runtime environment a Hive is programmed against.
//
// Hive logic is purely reactive; everything that differs between the
// deterministic discrete-event simulator and the threaded in-process
// cluster — clocks, timers, and frame delivery — hides behind this
// interface. Identical hive/bee/registry code runs under both runtimes.
#pragma once

#include <functional>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace beehive {

class RuntimeEnv {
 public:
  virtual ~RuntimeEnv() = default;

  virtual TimePoint now() const = 0;

  /// Schedules `fn` to run (on the calling hive's execution context) after
  /// `delay`. Used for timers and platform periodic work.
  virtual void schedule_after(HiveId hive, Duration delay,
                              std::function<void()> fn) = 0;

  /// Ships an opaque frame to another hive's on_wire entry point. The
  /// runtime meters bytes on the control channel and applies link latency.
  virtual void send_frame(HiveId from, HiveId to, Bytes frame) = 0;

  /// Deterministic randomness source for platform decisions.
  virtual Xoshiro256& rng() = 0;
};

}  // namespace beehive
