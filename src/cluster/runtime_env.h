// The runtime environment a Hive is programmed against.
//
// Hive logic is purely reactive; everything that differs between the
// deterministic discrete-event simulator and the threaded in-process
// cluster — clocks, timers, and frame delivery — hides behind this
// interface. Identical hive/bee/registry code runs under both runtimes.
#pragma once

#include <functional>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace beehive {

/// One hive's run-queue accounting (pressure inputs; see DESIGN.md §9).
/// Runtimes that don't track queues return all-zeros.
struct QueueStats {
  std::uint64_t depth = 0;    ///< tasks queued for the hive right now
  /// High-watermark of depth since the previous queue_stats() read (the
  /// watermark resets to the current depth on read, so each scrape window
  /// reports its own peak instead of a startup burst pinned forever).
  std::uint64_t hwm = 0;
  std::uint64_t drained = 0;  ///< lifetime tasks executed
  /// Ring-occupancy high-watermark since the previous read (resets like
  /// `hwm`). Zero under runtimes without a lock-free ring (the simulator).
  std::uint64_t ring_hwm = 0;
  /// Lifetime pushes that missed the ring and took the overflow lane — the
  /// queue running hot enough that producers lost lock-freedom.
  std::uint64_t overflowed = 0;
};

class RuntimeEnv {
 public:
  virtual ~RuntimeEnv() = default;

  virtual TimePoint now() const = 0;

  /// Run-queue depth/watermark/drain accounting for `hive`. Safe to call
  /// from the hive's own loop (hives read it at metrics-report time).
  /// Non-const: reading resets the depth high-watermark to the current
  /// depth, giving per-scrape-window watermark semantics.
  virtual QueueStats queue_stats(HiveId) { return {}; }

  /// Cheap, non-resetting run-queue occupancy probe for `hive` — the
  /// admission-time input of OverloadConfig::ring_limit. Unlike
  /// queue_stats() this never mutates watermark state and is safe to call
  /// per message (two relaxed loads under the threaded runtime). Runtimes
  /// without queue tracking return 0 (the gate never fires).
  virtual std::uint64_t run_depth(HiveId) { return 0; }

  /// Schedules `fn` to run (on the calling hive's execution context) after
  /// `delay`. Used for timers and platform periodic work.
  virtual void schedule_after(HiveId hive, Duration delay,
                              std::function<void()> fn) = 0;

  /// Ships an opaque frame to another hive's on_wire entry point. The
  /// runtime meters bytes on the control channel and applies link latency.
  virtual void send_frame(HiveId from, HiveId to, Bytes frame) = 0;

  /// Deterministic randomness source for platform decisions.
  virtual Xoshiro256& rng() = 0;
};

}  // namespace beehive
