// Deterministic network fault injection for the cluster runtimes.
//
// A FaultPlan describes what the control channel may do to inter-hive
// frames beyond delivering them once: probabilistic drop, duplication,
// extra-delay jitter, forced reordering, and explicit bidirectional
// partitions. The cluster runtime consults the plan once per send and the
// plan draws all randomness from the cluster's seeded Xoshiro256, so two
// runs with the same seed and the same plan produce bit-identical traffic.
//
// The plan models the *network*; surviving it is the job of the reliable
// transport layer (core/transport.h) and the retry protocols built on it.
// A plan with no faults configured is free: `active()` is a single bool
// check and the RNG is never consulted, keeping fault-free runs identical
// to builds that predate this layer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "util/rng.h"
#include "util/types.h"

namespace beehive {

/// Per-direction fault probabilities of one link (from -> to).
struct LinkFaults {
  /// Probability a frame is silently dropped.
  double drop = 0.0;
  /// Probability a frame is delivered twice (the network duplicated it).
  double duplicate = 0.0;
  /// Probability a frame (or a duplicate copy) picks up extra delay,
  /// uniform in [0, jitter_max).
  double jitter = 0.0;
  Duration jitter_max = 0;
  /// Probability a frame is held back one full base latency — guaranteed
  /// to land behind any frame sent up to `base_latency` later, i.e. a
  /// forced reorder against subsequent traffic.
  double reorder = 0.0;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || jitter > 0.0 || reorder > 0.0;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Faults applied to every link without a per-link override.
  void set_default_link(const LinkFaults& faults);
  /// Directional override for frames from -> to.
  void set_link(HiveId from, HiveId to, const LinkFaults& faults);
  /// Symmetric convenience: applies `faults` to both directions.
  void set_link_pair(HiveId a, HiveId b, const LinkFaults& faults);

  /// Cuts the link in both directions: every frame (and registry RPC)
  /// between a and b is lost until heal(a, b).
  void partition(HiveId a, HiveId b);
  void heal(HiveId a, HiveId b);
  void heal_all();
  bool partitioned(HiveId a, HiveId b) const;
  std::size_t partitions_active() const { return partitions_.size(); }

  /// True when any fault could fire; runtimes skip the per-frame RNG
  /// draws (and stay byte-identical to fault-free builds) when false.
  bool active() const {
    return !partitions_.empty() || default_.any() || !links_.empty();
  }

  /// What the network does to one frame. `copies == 0` means dropped.
  struct Delivery {
    std::uint8_t copies = 1;
    Duration extra_delay[2] = {0, 0};  ///< per-copy delay on top of base.
  };

  /// Draws the fate of one frame on link from -> to. `base_latency` scales
  /// the forced-reorder delay. All randomness comes from `rng`, in a fixed
  /// draw order, so identical plans and seeds yield identical fates.
  Delivery decide(HiveId from, HiveId to, Duration base_latency,
                  Xoshiro256& rng);

  /// Whether one RPC attempt from `requester` toward `server` is lost
  /// (partitioned, or dropped at the link's drop probability). Local calls
  /// (requester == server) never fail.
  bool rpc_lost(HiveId requester, HiveId server, Xoshiro256& rng);

  // -- Injection statistics (what the network actually did) -----------------

  struct Stats {
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_delayed = 0;    ///< jitter or reorder fired
    std::uint64_t frames_partitioned = 0;
    std::uint64_t rpcs_lost = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  const LinkFaults& link(HiveId from, HiveId to) const;
  static std::pair<HiveId, HiveId> ordered(HiveId a, HiveId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  LinkFaults default_;
  std::map<std::pair<HiveId, HiveId>, LinkFaults> links_;
  std::set<std::pair<HiveId, HiveId>> partitions_;
  Stats stats_;
};

}  // namespace beehive
