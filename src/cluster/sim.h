// Deterministic discrete-event cluster simulator.
//
// All hives of the simulated control plane execute in one thread under a
// single virtual clock: timers, frame deliveries and deferred emission
// dispatches are events in one priority queue ordered by (time, sequence).
// Two runs with the same configuration and seed produce bit-identical
// traffic matrices and bandwidth series — the property every bench in
// bench/ relies on. The paper's own evaluation "simulated a cluster of 40
// controllers and 400 switches"; this is that harness.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "cluster/channel.h"
#include "cluster/faults.h"
#include "cluster/registry.h"
#include "cluster/runtime_env.h"
#include "core/hive.h"
#include "instrument/blame.h"
#include "instrument/flight_recorder.h"
#include "instrument/health.h"
#include "instrument/registry.h"

namespace beehive {

struct ClusterConfig {
  std::size_t n_hives = 4;
  /// One-way latency of a control-channel frame between any two hives.
  Duration wire_latency = 200 * kMicrosecond;
  /// Resolution of the bandwidth time series (Fig 4 d–f buckets).
  Duration bw_bucket = kSecond;
  HiveId registry_hive = 0;
  std::uint64_t seed = 42;
  /// Record span events (one TraceRecorder per hive) for the Chrome trace
  /// exporter. Off by default: the dispatch path then never allocates or
  /// branches past one null check per span site.
  bool tracing = false;
  /// Ring capacity (events) of each per-hive recorder.
  std::size_t trace_capacity = 1 << 16;
  /// Tail-based sampling (DESIGN.md §11): retain full span detail for
  /// traces that end slow, shed or failed. Applied to every per-hive
  /// recorder when tracing is on.
  TailSamplerConfig tail;
  /// Own a MetricsRegistry and register every hive's counters, gauges,
  /// latency histograms and rate rings into it. Registration happens once
  /// here in the constructor; the per-message hot path is unchanged (the
  /// counters are the same atomic cells either way), and windowed values
  /// are published once per metrics report.
  bool metrics = true;
  /// Keep a bounded ring of recent log lines and decisions per hive for
  /// post-mortem dumps (instrument/flight_recorder.h).
  bool flight_recorder = false;
  /// Lines retained per hive by the flight recorder.
  std::size_t flight_recorder_lines = 256;
  HiveConfig hive;
};

class SimCluster final : public RuntimeEnv {
 public:
  SimCluster(ClusterConfig config, const AppSet& apps);
  ~SimCluster() override;

  /// Arms every hive's timers. Call once before running.
  void start();

  // -- RuntimeEnv -----------------------------------------------------------

  TimePoint now() const override { return now_; }
  void schedule_after(HiveId hive, Duration delay,
                      std::function<void()> fn) override;
  void send_frame(HiveId from, HiveId to, Bytes frame) override;
  Xoshiro256& rng() override { return rng_; }
  QueueStats queue_stats(HiveId hive) override {
    if (hive >= queues_.size()) return {};
    QueueStats out = queues_[hive];
    // Window-watermark semantics: each read starts a fresh hwm window.
    queues_[hive].hwm = queues_[hive].depth;
    return out;
  }
  std::uint64_t run_depth(HiveId hive) override {
    return hive < queues_.size() ? queues_[hive].depth : 0;
  }

  // -- Driving --------------------------------------------------------------

  /// Executes one event; returns false when the queue is empty.
  bool step();

  /// Runs every event with timestamp <= t, then advances the clock to t.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the queue completely (only safe once timers have expired).
  void run_to_idle();

  std::size_t pending_events() const { return events_.size(); }

  // -- Access ---------------------------------------------------------------

  // -- Failure injection ----------------------------------------------------

  /// Crashes a hive: all frames to/from it are dropped and its timers stop
  /// firing from this instant. Its in-memory state is considered lost.
  void fail_hive(HiveId hive);

  /// Fails over every registry-live bee of a failed hive onto its replica
  /// hive (ring successor, skipping other failed hives), adopting the
  /// replicated state there. Returns the number of bees recovered with
  /// state (bees without replicas restart empty). Requires
  /// `config.hive.replication` for lossless recovery.
  std::size_t recover_hive(HiveId hive);

  bool hive_alive(HiveId hive) const { return !failed_.contains(hive); }

  /// The cluster's fault plan. Mutate freely between (or mid-) runs:
  /// partitions and link faults take effect from the next frame onward.
  FaultPlan& faults() { return faults_; }
  const FaultPlan& faults() const { return faults_; }

  Hive& hive(HiveId id) { return *hives_.at(id); }
  const Hive& hive(HiveId id) const { return *hives_.at(id); }
  std::size_t n_hives() const { return hives_.size(); }
  ChannelMeter& meter() { return meter_; }
  const ChannelMeter& meter() const { return meter_; }
  RegistryService& registry() { return registry_; }
  const ClusterConfig& config() const { return config_; }

  /// Per-hive span recorder (nullptr when tracing is off).
  TraceRecorder* tracer(HiveId id) {
    return id < tracers_.size() ? tracers_[id].get() : nullptr;
  }

  /// All hives' recorded spans, merged into causal display order. Empty
  /// when tracing is off.
  std::vector<TraceEvent> trace_events() const;

  /// The `top_n` slowest assembled traces with critical-path blame
  /// (instrument/blame.h), built from ring + tail-retained spans.
  std::vector<AssembledTrace> assembled_traces(std::size_t top_n = 20) const;
  /// The /traces.json body for those traces.
  std::string traces_json(std::size_t top_n = 20) const;

  /// The cluster-owned metrics registry (nullptr when config.metrics is
  /// off). Scrape-safe at any point of the run.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The cluster-owned flight recorder (nullptr unless enabled).
  FlightRecorder* flight_recorder() { return recorder_.get(); }

  /// Every hive's health snapshot, as of each hive's last metrics report.
  /// Failed hives are marked suspected (the sim's crash model *is* the
  /// failure detector's ground truth).
  HealthReport health() const;
  std::string health_json() const { return health().to_json(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  ClusterConfig config_;
  ChannelMeter meter_;
  RegistryService registry_;
  Xoshiro256 rng_;
  FaultPlan faults_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::vector<std::unique_ptr<TraceRecorder>> tracers_;
  std::vector<std::unique_ptr<Hive>> hives_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  /// Per-hive slice of the single event queue (pressure accounting). The
  /// sim is single-threaded, so plain counters suffice.
  std::vector<QueueStats> queues_;
  std::unordered_set<HiveId> failed_;
  std::unordered_set<HiveId> recovered_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace beehive
