// Threaded in-process cluster runtime (shared-nothing datapath,
// DESIGN.md §12).
//
// Each hive runs its own event-loop thread fed by a lock-free MPSC ring
// (cluster/runqueue.h): producers CAS a tail slot and publish with a
// release store; the loop drains a whole batch per turn without taking a
// mutex. Delayed tasks ride the same ring stamped with a due time and land
// in a heap owned by the loop thread — no cross-thread lock guards either
// lane. The loop parks on a condition variable only on the empty queue
// edge; producers skip the notify entirely while the loop is running (a
// relaxed `sleeping` flag, Dekker-fenced against the park). A full ring
// spills to a mutex-guarded overflow lane that preserves per-producer FIFO
// (the backpressure handoff; overflowed pushes are counted into
// queue_stats as a pressure signal). Bees keep the one-handler-at-a-time
// discipline while different hives execute genuinely concurrently. Frames
// between hives are in-memory posts, metered on the same ChannelMeter as
// the simulator. This runtime backs the runnable examples and the
// concurrency tests; benches use the deterministic SimCluster.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "cluster/channel.h"
#include "cluster/faults.h"
#include "cluster/registry.h"
#include "cluster/runqueue.h"
#include "cluster/runtime_env.h"
#include "core/hive.h"
#include "instrument/blame.h"
#include "instrument/flight_recorder.h"
#include "instrument/health.h"
#include "instrument/registry.h"

namespace beehive {

struct ThreadClusterConfig {
  std::size_t n_hives = 2;
  Duration bw_bucket = kSecond;
  HiveId registry_hive = 0;
  std::uint64_t seed = 42;
  /// Per-hive run-queue ring capacity (rounded up to a power of two).
  /// Pushes beyond it take the mutex-guarded overflow lane — correct but
  /// no longer lock-free, and counted as a pressure signal.
  std::size_t ring_capacity = 1024;
  /// Record span events for the Chrome trace exporter (per-hive
  /// recorders; each hive's spans are written only from its loop thread).
  bool tracing = false;
  std::size_t trace_capacity = 1 << 16;
  /// Tail-based sampling (DESIGN.md §11): retain full span detail for
  /// traces that end slow, shed or failed. Applied to every per-hive
  /// recorder when tracing is on.
  TailSamplerConfig tail;
  /// Own a MetricsRegistry and register every hive's metrics into it; the
  /// registry (and therefore /metrics via net/http_export.h) is safe to
  /// scrape from any thread while hives run.
  bool metrics = true;
  /// Keep a bounded ring of recent log lines and decisions per hive for
  /// post-mortem dumps (instrument/flight_recorder.h).
  bool flight_recorder = false;
  /// Lines retained per hive by the flight recorder.
  std::size_t flight_recorder_lines = 256;
  HiveConfig hive;
};

class ThreadCluster final : public RuntimeEnv {
 public:
  ThreadCluster(ThreadClusterConfig config, const AppSet& apps);
  ~ThreadCluster() override;

  /// Starts every hive's loop thread and arms timers.
  void start();

  /// Stops delivering, drains nothing further, joins all threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  // -- RuntimeEnv -----------------------------------------------------------

  TimePoint now() const override;
  void schedule_after(HiveId hive, Duration delay,
                      std::function<void()> fn) override;
  void send_frame(HiveId from, HiveId to, Bytes frame) override;
  Xoshiro256& rng() override { return rng_; }
  QueueStats queue_stats(HiveId hive) override;
  std::uint64_t run_depth(HiveId hive) override {
    return hive < nodes_.size() ? nodes_[hive]->queue.size() : 0;
  }

  // -- Access ---------------------------------------------------------------

  /// The cluster's fault plan. Configure before start(); mutating while
  /// hives are running is safe only for partition()/heal() style toggles
  /// made from a single controlling thread (tests).
  FaultPlan& faults() { return faults_; }
  const FaultPlan& faults() const { return faults_; }

  Hive& hive(HiveId id) { return *nodes_.at(id)->hive; }
  std::size_t n_hives() const { return nodes_.size(); }
  ChannelMeter& meter() { return meter_; }
  RegistryService& registry() { return registry_; }

  /// Per-hive span recorder (nullptr when tracing is off).
  TraceRecorder* tracer(HiveId id) {
    return id < tracers_.size() ? tracers_[id].get() : nullptr;
  }

  /// All hives' recorded spans in display order. Call only when the
  /// cluster is stopped or idle (recorders are not locked).
  std::vector<TraceEvent> trace_events() const;

  /// The `top_n` slowest assembled traces with critical-path blame
  /// (instrument/blame.h). Safe from any thread: while the cluster runs,
  /// each recorder is snapshotted on its own loop thread (posted task,
  /// bounded wait); a wedged hive is skipped rather than blocking the
  /// caller. When stopped, recorders are read directly.
  std::vector<AssembledTrace> assembled_traces(std::size_t top_n = 20);
  /// The /traces.json body for those traces.
  std::string traces_json(std::size_t top_n = 20);

  /// The cluster-owned metrics registry (nullptr when config.metrics is
  /// off). Scrape-safe from any thread while the cluster runs.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The cluster-owned flight recorder (nullptr unless enabled).
  FlightRecorder* flight_recorder() { return recorder_.get(); }

  /// Every hive's health snapshot (instrument/health.h), as of each hive's
  /// last metrics report. `suspected` marks hives the caller's failure
  /// detector currently suspects. Safe from any thread while hives run —
  /// reads only scrape-safe atomics.
  HealthReport health(const std::vector<HiveId>& suspected = {}) const;
  std::string health_json(const std::vector<HiveId>& suspected = {}) const;

  /// Posts `fn` onto a hive's loop thread (e.g. to inject messages with
  /// correct threading) and returns immediately.
  void post(HiveId hive, std::function<void()> fn);

  /// Blocks until every hive's queue is momentarily empty. Best-effort
  /// quiescence for tests: with timers disabled and no external input this
  /// is a true fixpoint check.
  void wait_idle();

 private:
  struct Task {
    TimePoint at = 0;  ///< 0 = immediate; otherwise absolute due time
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool operator>(const Task& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct Node {
    explicit Node(std::size_t ring_capacity) : queue(ring_capacity) {}

    std::unique_ptr<Hive> hive;
    std::thread thread;
    /// The lock-free run queue: every cross-thread submission (immediate
    /// and delayed alike) lands here; the loop drains a full batch per
    /// turn. Delayed tasks are re-queued into `timed` by the loop.
    RunQueue<Task> queue;
    /// Timed lane: owned by the loop thread exclusively — no lock. Sized
    /// separately in `timed_size` (atomic) so wait_idle can observe it.
    std::priority_queue<Task, std::vector<Task>, std::greater<>> timed;
    std::atomic<std::uint64_t> timed_size{0};
    /// Parking. The mutex guards only the sleep/wake edge and idle
    /// signalling — never the hot enqueue/drain path.
    std::mutex mutex;
    std::condition_variable cv;       ///< wakes the loop (work arrived, stop)
    std::condition_variable idle_cv;  ///< signals quiescence to wait_idle()
    /// True while the loop is parked in cv.wait — producers notify only
    /// then (the empty->non-empty edge). seq_cst against the park's
    /// re-check of the ring (Dekker pattern); a bounded wait backstops the
    /// benign race that remains.
    std::atomic<bool> sleeping{false};
    /// True from just before the loop drains until the drained batch has
    /// fully executed. Set *before* the drain so there is no instant where
    /// in-flight work is visible neither in the queue nor here — this is
    /// what keeps wait_idle() from returning early between a drain and the
    /// batch's execution.
    std::atomic<bool> busy{false};
    /// Run-queue pressure accounting (QueueStats): ring+overflow occupancy
    /// high-watermark (sampled at enqueue and drain), lifetime drained
    /// count, and ring-occupancy HWM for the `ringq` column.
    std::atomic<std::uint64_t> q_hwm{0};
    std::atomic<std::uint64_t> q_drained{0};
    std::atomic<std::uint64_t> ring_hwm{0};
  };

  void loop(Node& node);
  void pin_loop_thread(std::size_t hive_index);
  /// The race-free idle predicate shared by wait_idle and the loop's idle
  /// signalling (ordering contract documented at the definition).
  static bool node_idle(Node& node);

  /// Gathers every recorder's ring + tail-retained spans, thread-safely
  /// (see assembled_traces).
  std::vector<TraceEvent> snapshot_trace_events();

  /// Scrape-time blame totals, recomputed at most once per second (trace
  /// assembly walks every retained trace — too heavy to run per scrape).
  TraceBlame blame_scrape(std::uint64_t* n_traces);

  ThreadClusterConfig config_;
  ChannelMeter meter_;
  RegistryService registry_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::vector<std::unique_ptr<TraceRecorder>> tracers_;
  Xoshiro256 rng_;  // guarded by rng_mutex_
  std::mutex rng_mutex_;
  FaultPlan faults_;  // decide()/rpc_lost() calls guarded by rng_mutex_
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> next_seq_{0};
  std::chrono::steady_clock::time_point epoch_;
  // Blame-gauge cache (see blame_scrape). Guarded by blame_mutex_.
  std::mutex blame_mutex_;
  TimePoint blame_at_ = -kSecond;
  TraceBlame blame_totals_;
  std::uint64_t blame_traces_ = 0;
};

}  // namespace beehive
