#include "net/http_export.h"

#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/logging.h"

// A scraper hanging up mid-response (curl timeout, Prometheus deadline)
// must surface as a failed send, not a process-killing SIGPIPE.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace beehive {

namespace {

/// Writes the full buffer, retrying on short writes. EPIPE (peer closed)
/// is a failed send like any other.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int code, const char* status,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string unavailable() {
  return http_response(503, "Service Unavailable", "text/plain",
                       "detached: the cluster behind this endpoint is "
                       "shutting down\n");
}

}  // namespace

HttpExportServer::HttpExportServer(const MetricsRegistry& registry,
                                   std::uint16_t port)
    : registry_(&registry) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("http_export: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http_export: bind(127.0.0.1:" +
                             std::to_string(port) + ") failed");
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http_export: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  BH_INFO << "http_export: serving /metrics, /status.json, /health.json "
          << "and /traces.json on 127.0.0.1:" << port_;
}

HttpExportServer::~HttpExportServer() { stop(); }

void HttpExportServer::set_status_source(
    std::function<std::string()> source) {
  std::lock_guard lock(source_mutex_);
  status_source_ = std::move(source);
}

void HttpExportServer::set_health_source(
    std::function<std::string()> source) {
  std::lock_guard lock(source_mutex_);
  health_source_ = std::move(source);
}

void HttpExportServer::set_traces_source(
    std::function<std::string()> source) {
  std::lock_guard lock(source_mutex_);
  traces_source_ = std::move(source);
}

void HttpExportServer::detach() {
  // Order matters: clear the registry pointer first (requests in flight
  // re-check it per route), then drop the callbacks under the source lock
  // so no handler can still be copying one.
  registry_.store(nullptr, std::memory_order_release);
  std::lock_guard lock(source_mutex_);
  status_source_ = nullptr;
  health_source_ = nullptr;
  traces_source_ = nullptr;
}

void HttpExportServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Closing the listening socket unblocks accept() with an error; shutting
  // down the in-flight client (if any) unblocks a handler stuck in
  // recv()/send() on a stalled scraper.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard lock(client_mutex_);
    if (client_fd_ >= 0) ::shutdown(client_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpExportServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure
    }
    // A client that connects and then never sends must not wedge the
    // single-threaded accept loop: bound the read (and any stalled send).
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard lock(client_mutex_);
      client_fd_ = client;
    }
    handle_connection(client);
    {
      std::lock_guard lock(client_mutex_);
      client_fd_ = -1;
    }
    ::close(client);
  }
}

void HttpExportServer::handle_connection(int client_fd) {
  // One read is enough for the request line of any sane GET; we only need
  // the path.
  char buf[2048];
  ssize_t n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';

  const char* line_end = std::strstr(buf, "\r\n");
  std::string request_line(buf, line_end != nullptr
                                    ? static_cast<std::size_t>(line_end - buf)
                                    : static_cast<std::size_t>(n));
  // "GET /path HTTP/1.x"
  std::string method, path;
  if (auto sp1 = request_line.find(' '); sp1 != std::string::npos) {
    method = request_line.substr(0, sp1);
    auto sp2 = request_line.find(' ', sp1 + 1);
    path = request_line.substr(sp1 + 1, sp2 == std::string::npos
                                            ? std::string::npos
                                            : sp2 - sp1 - 1);
  }

  std::string response;
  if (method != "GET") {
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  } else if (path == "/metrics") {
    const MetricsRegistry* reg = registry_.load(std::memory_order_acquire);
    response = reg == nullptr
                   ? unavailable()
                   : http_response(200, "OK",
                                   "text/plain; version=0.0.4; charset=utf-8",
                                   reg->prometheus_text());
  } else if (path == "/status.json") {
    const MetricsRegistry* reg = registry_.load(std::memory_order_acquire);
    std::function<std::string()> source;
    {
      std::lock_guard lock(source_mutex_);
      source = status_source_;
    }
    if (source) {
      response = http_response(200, "OK", "application/json", source());
    } else if (reg != nullptr) {
      response =
          http_response(200, "OK", "application/json", reg->status_json());
    } else {
      response = unavailable();
    }
  } else if (path == "/health.json") {
    std::function<std::string()> source;
    {
      std::lock_guard lock(source_mutex_);
      source = health_source_;
    }
    response = source
                   ? http_response(200, "OK", "application/json", source())
                   : unavailable();
  } else if (path == "/traces.json") {
    std::function<std::string()> source;
    {
      std::lock_guard lock(source_mutex_);
      source = traces_source_;
    }
    response = source
                   ? http_response(200, "OK", "application/json", source())
                   : unavailable();
  } else if (path == "/" || path == "/index.html") {
    response = http_response(200, "OK", "text/plain",
                             "beehive exposition endpoints:\n  /metrics\n"
                             "  /status.json\n  /health.json\n"
                             "  /traces.json\n");
  } else {
    response = http_response(404, "Not Found", "text/plain",
                             "unknown path; try /metrics, /status.json, "
                             "/health.json or /traces.json\n");
  }
  if (send_all(client_fd, response)) {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace beehive
