#include "net/fabric.h"

#include "apps/messages.h"

namespace beehive {

NetworkFabric::NetworkFabric(TreeTopology topology, FabricConfig config)
    : topology_(std::move(topology)) {
  Xoshiro256 rng(config.seed);
  switches_.reserve(topology_.n_switches());
  for (SwitchId id = 0; id < topology_.n_switches(); ++id) {
    switches_.push_back(std::make_unique<SimSwitch>(id, config.sw, rng));
  }
}

void NetworkFabric::connect_all(const Injector& inject, TimePoint now) const {
  for (SwitchId id = 0; id < switches_.size(); ++id) {
    connect(id, inject, now);
  }
}

void NetworkFabric::connect(SwitchId sw, const Injector& inject,
                            TimePoint now) const {
  HiveId master = topology_.master_hive(sw);
  inject(master, MessageEnvelope::make(SwitchConnected{sw}, 0, kNoBee,
                                       master, now));
}

void NetworkFabric::punt_packet(SwitchId sw, std::uint64_t src_mac,
                                std::uint64_t dst_mac, std::uint16_t in_port,
                                const Injector& inject, TimePoint now) const {
  HiveId master = topology_.master_hive(sw);
  PacketIn packet;
  packet.sw = sw;
  packet.src_mac = src_mac;
  packet.dst_mac = dst_mac;
  packet.in_port = in_port;
  inject(master,
         MessageEnvelope::make(std::move(packet), 0, kNoBee, master, now));
}

std::uint64_t NetworkFabric::total_flow_mods() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->flow_mods_applied();
  return total;
}

std::size_t NetworkFabric::total_flows_above_threshold(TimePoint now) const {
  std::size_t total = 0;
  for (const auto& sw : switches_) total += sw->flows_above_threshold(now);
  return total;
}

}  // namespace beehive
