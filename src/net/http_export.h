// Minimal HTTP/1.0 exposition endpoint for the threaded runtime.
//
// Serves GET /metrics (Prometheus text exposition format, straight from a
// MetricsRegistry) and GET /status.json (a JSON snapshot — by default the
// registry's, optionally a StatusApp-fed callback), so a running
// ThreadCluster can be scraped by standard tooling (curl, Prometheus).
//
// Deliberately tiny: one accept-loop thread, one short-lived connection
// per request (HTTP/1.0, Connection: close), no keep-alive, no TLS, bound
// to 127.0.0.1. This is an operational side door, not a web server.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "instrument/registry.h"

namespace beehive {

class HttpExportServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the chosen one back with
  /// port()) and starts the accept loop. Throws std::runtime_error when
  /// the socket can't be bound.
  HttpExportServer(const MetricsRegistry& registry, std::uint16_t port = 0);
  ~HttpExportServer();

  HttpExportServer(const HttpExportServer&) = delete;
  HttpExportServer& operator=(const HttpExportServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Replaces the /status.json body producer (default: the registry's
  /// status_json()). The callback runs on the server thread and must be
  /// thread-safe with respect to the cluster.
  void set_status_source(std::function<std::string()> source);

  /// Stops the accept loop and joins the thread (also run by ~).
  void stop();

  /// Requests served so far (tests).
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  const MetricsRegistry& registry_;
  std::function<std::string()> status_source_;
  mutable std::mutex source_mutex_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace beehive
