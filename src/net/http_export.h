// Minimal HTTP/1.0 exposition endpoint for the threaded runtime.
//
// Serves GET /metrics (Prometheus text exposition format, straight from a
// MetricsRegistry), GET /status.json (a JSON snapshot — by default the
// registry's, optionally a StatusApp-fed callback) and GET /health.json
// (a cluster HealthReport callback), so a running ThreadCluster can be
// scraped by standard tooling (curl, Prometheus, beectl).
//
// Deliberately tiny: one accept-loop thread, one short-lived connection
// per request (HTTP/1.0, Connection: close), no keep-alive, no TLS, bound
// to 127.0.0.1. This is an operational side door, not a web server.
//
// Shutdown discipline: the registry reference is held through an atomic
// pointer. detach() clears it (and the source callbacks) so a server that
// outlives its cluster answers 503 instead of dereferencing a destroyed
// registry; stop() additionally shuts down any in-flight client socket so
// a stalled scraper cannot block the join.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "instrument/registry.h"

namespace beehive {

class HttpExportServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the chosen one back with
  /// port()) and starts the accept loop. Throws std::runtime_error when
  /// the socket can't be bound.
  HttpExportServer(const MetricsRegistry& registry, std::uint16_t port = 0);
  ~HttpExportServer();

  HttpExportServer(const HttpExportServer&) = delete;
  HttpExportServer& operator=(const HttpExportServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Replaces the /status.json body producer (default: the registry's
  /// status_json()). The callback runs on the server thread and must be
  /// thread-safe with respect to the cluster.
  void set_status_source(std::function<std::string()> source);

  /// Sets the /health.json body producer (e.g. ThreadCluster::health_json
  /// wrapped in a lambda). Unset = 503 on that path.
  void set_health_source(std::function<std::string()> source);

  /// Sets the /traces.json body producer (e.g. ThreadCluster::traces_json
  /// wrapped in a lambda). Unset = 503 on that path.
  void set_traces_source(std::function<std::string()> source);

  /// Disconnects the server from the registry and the source callbacks:
  /// every subsequent request answers 503 Service Unavailable. Call before
  /// destroying the cluster that owns the registry when the server object
  /// outlives it — scrapes that race the teardown then get a clean error
  /// instead of a use-after-free.
  void detach();

  /// Stops the accept loop and joins the thread (also run by ~).
  void stop();

  /// Requests served so far (tests).
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::atomic<const MetricsRegistry*> registry_;
  std::function<std::string()> status_source_;
  std::function<std::string()> health_source_;
  std::function<std::string()> traces_source_;
  mutable std::mutex source_mutex_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  /// The connection currently being handled (-1 when idle), so stop() can
  /// shut it down and unblock a handler stuck in recv/send.
  std::mutex client_mutex_;
  int client_fd_ = -1;
  std::thread thread_;
};

}  // namespace beehive
