// The OpenFlow driver application.
//
// One pinned bee per switch, anchored at the switch's master hive (its
// cells are keyed by switch id and the bee is created where the control
// connection arrives). The driver is the bridge in both directions:
// fabric events become platform messages (SwitchJoined), and control
// messages (FlowStatQuery, FlowMod, PacketOut) become operations on the
// simulated switch.
//
// Being a regular Beehive app with `pinned = true`, the driver also acts
// as the gravity well for the optimizer: migrating a TE bee "next to the
// OpenFlow driver that controls SWi" (paper §5) means moving it to the
// hive hosting this app's bee for SWi.
#pragma once

#include "core/app.h"
#include "net/fabric.h"

namespace beehive {

class OpenFlowDriverApp : public App {
 public:
  /// `fabric` must outlive the app. The driver's state dictionary is
  /// "of.sw" with one cell per switch.
  explicit OpenFlowDriverApp(NetworkFabric* fabric);

  static constexpr std::string_view kDict = "of.sw";
};

}  // namespace beehive
