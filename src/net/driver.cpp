#include "net/driver.h"

#include "apps/messages.h"
#include "core/context.h"

namespace beehive {

OpenFlowDriverApp::OpenFlowDriverApp(NetworkFabric* fabric)
    : App("of.driver", /*pinned=*/true) {
  register_app_messages();
  const std::string dict(kDict);

  on<SwitchConnected>(
      [dict](const SwitchConnected& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [fabric, dict](AppContext& ctx, const SwitchConnected& m) {
        (void)fabric;
        SwitchJoined joined{m.sw, ctx.hive()};
        ctx.state().put_as(dict, switch_key(m.sw), joined);
        ctx.emit(joined);
      });

  on<FlowStatQuery>(
      [dict](const FlowStatQuery& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [fabric, dict](AppContext& ctx, const FlowStatQuery& m) {
        if (!ctx.state().contains(dict, switch_key(m.sw))) {
          return;  // query raced ahead of the switch join; drop like OF.
        }
        FlowStatReply reply;
        reply.sw = m.sw;
        reply.stats = fabric->sw(m.sw).stats(ctx.now());
        ctx.emit(std::move(reply));
      });

  on<FlowMod>(
      [dict](const FlowMod& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [fabric](AppContext&, const FlowMod& m) {
        fabric->sw(m.sw).apply_flow_mod(m.flow, m.new_path);
      });

  on<PacketOut>(
      [dict](const PacketOut& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [fabric](AppContext&, const PacketOut& m) {
        fabric->sw(m.sw).deliver_packet();
      });
}

}  // namespace beehive
