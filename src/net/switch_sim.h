// Simulated OpenFlow switch.
//
// Each switch carries a fixed population of constant-bit-rate flows (the
// paper: "100 fixed-rate flows from each switch, 10% of these flows have a
// rate more than the re-routing threshold"). Rates carry a small
// deterministic pseudo-noise so that threshold crossings keep occurring at
// a low background rate, and re-routing a flow (FlowMod) spreads it over an
// alternate path, dropping its effective rate — closing the TE control
// loop.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/messages.h"
#include "util/rng.h"
#include "util/types.h"

namespace beehive {

struct SimFlow {
  std::uint32_t id = 0;
  double base_kbps = 0.0;
  std::uint64_t noise_seed = 0;
  std::uint32_t path = 0;     ///< opaque path selector
  double mod_factor = 1.0;    ///< cumulative effect of re-routes
};

struct SwitchConfig {
  std::size_t n_flows = 100;
  double delta_kbps = 1000.0;   ///< re-routing threshold (paper's delta)
  double frac_above = 0.10;     ///< fraction of flows above the threshold
  double noise_amplitude = 0.10;
  double reroute_factor = 0.45; ///< rate multiplier applied by a re-route
};

class SimSwitch {
 public:
  SimSwitch(SwitchId id, const SwitchConfig& config, Xoshiro256& rng);

  SwitchId id() const { return id_; }
  std::size_t n_flows() const { return flows_.size(); }
  const SimFlow* flow(std::uint32_t id) const;

  /// Effective rate at `now`: base rate x deterministic noise x re-route
  /// attenuation. Pure in (flow, now) — no stepping required.
  double effective_rate_kbps(const SimFlow& flow, TimePoint now) const;

  /// Current flow table statistics (the body of a FlowStatReply).
  std::vector<FlowStat> stats(TimePoint now) const;

  /// Applies a FlowMod; returns false for unknown flows.
  bool apply_flow_mod(std::uint32_t flow, std::uint32_t new_path);

  /// Counts flows whose effective rate exceeds the threshold at `now`.
  std::size_t flows_above_threshold(TimePoint now) const;

  std::uint64_t flow_mods_applied() const { return flow_mods_applied_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  void deliver_packet() { ++packets_delivered_; }

  const SwitchConfig& config() const { return config_; }

 private:
  SwitchId id_;
  SwitchConfig config_;
  std::vector<SimFlow> flows_;
  std::uint64_t flow_mods_applied_ = 0;
  std::uint64_t packets_delivered_ = 0;
};

}  // namespace beehive
