// OpenFlow 1.0 wire protocol (subset).
//
// The control traffic Beehive's driver models (SwitchJoined, stats
// query/reply, FlowMod, PacketIn/Out) corresponds to concrete OpenFlow 1.0
// messages on a real switch connection. This module implements that wire
// format faithfully — network byte order, the fixed 8-byte header, the
// 40-byte ofp_match, flow mods with action lists, vendor-neutral stats —
// plus a stream reassembler for the TCP byte stream a switch connection
// delivers. The simulated fabric uses logical message objects for speed;
// this codec provides the exact on-the-wire sizes (see of_wire_size_* and
// the bridge helpers) and is exercised end-to-end by tests and the
// micro_openflow bench.
//
// Reference: OpenFlow Switch Specification v1.0.0 (wire protocol 0x01).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/messages.h"
#include "util/bytes.h"

namespace beehive::of {

inline constexpr std::uint8_t kVersion = 0x01;
inline constexpr std::size_t kHeaderLen = 8;
inline constexpr std::size_t kMatchLen = 40;
inline constexpr std::size_t kMaxMessageLen = 0xffff;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kPortStatus = 12,
  kPacketOut = 13,
  kFlowMod = 14,
  kStatsRequest = 16,
  kStatsReply = 17,
};

/// Fixed ofp_header.
struct Header {
  std::uint8_t version = kVersion;
  MsgType type = MsgType::kHello;
  std::uint16_t length = kHeaderLen;
  std::uint32_t xid = 0;
};

/// ofp_match with the subset of fields the TE/learning-switch pipelines
/// use; unused fields are wildcarded.
struct Match {
  std::uint32_t wildcards = 0x003fffff;  // OFPFW_ALL
  std::uint16_t in_port = 0;
  std::array<std::uint8_t, 6> dl_src{};
  std::array<std::uint8_t, 6> dl_dst{};
  std::uint16_t dl_type = 0;
  std::uint32_t nw_src = 0;
  std::uint32_t nw_dst = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  bool operator==(const Match&) const = default;
};

/// The only action the pipelines need: OFPAT_OUTPUT.
struct OutputAction {
  std::uint16_t port = 0;
  std::uint16_t max_len = 0xffff;

  bool operator==(const OutputAction&) const = default;
};

enum class FlowModCommand : std::uint16_t {
  kAdd = 0,
  kModify = 1,
  kModifyStrict = 2,
  kDelete = 3,
  kDeleteStrict = 4,
};

struct FlowModMsg {
  std::uint32_t xid = 0;
  Match match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0x8000;
  std::vector<OutputAction> actions;

  bool operator==(const FlowModMsg&) const = default;
};

struct PacketInMsg {
  std::uint32_t xid = 0;
  std::uint32_t buffer_id = 0xffffffff;
  std::uint16_t in_port = 0;
  std::uint8_t reason = 0;  // OFPR_NO_MATCH
  Bytes payload;            // raw ethernet frame

  bool operator==(const PacketInMsg&) const = default;
};

struct PacketOutMsg {
  std::uint32_t xid = 0;
  std::uint32_t buffer_id = 0xffffffff;
  std::uint16_t in_port = 0xfff8;  // OFPP_NONE
  std::vector<OutputAction> actions;
  Bytes payload;

  bool operator==(const PacketOutMsg&) const = default;
};

/// OFPST_FLOW stats request (per-table, wildcard match).
struct FlowStatsRequestMsg {
  std::uint32_t xid = 0;
  Match match;
  std::uint8_t table_id = 0xff;  // all tables
  std::uint16_t out_port = 0xfff8;

  bool operator==(const FlowStatsRequestMsg&) const = default;
};

struct FlowStatsEntry {
  Match match;
  std::uint32_t duration_sec = 0;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::vector<OutputAction> actions;

  bool operator==(const FlowStatsEntry&) const = default;
};

struct FlowStatsReplyMsg {
  std::uint32_t xid = 0;
  bool more = false;  // OFPSF_REPLY_MORE
  std::vector<FlowStatsEntry> entries;

  bool operator==(const FlowStatsReplyMsg&) const = default;
};

struct HelloMsg {
  std::uint32_t xid = 0;
  bool operator==(const HelloMsg&) const = default;
};

struct EchoMsg {
  std::uint32_t xid = 0;
  bool reply = false;
  Bytes payload;
  bool operator==(const EchoMsg&) const = default;
};

// -- Encoding ----------------------------------------------------------------

Bytes encode(const HelloMsg& msg);
Bytes encode(const EchoMsg& msg);
Bytes encode(const FlowModMsg& msg);
Bytes encode(const PacketInMsg& msg);
Bytes encode(const PacketOutMsg& msg);
Bytes encode(const FlowStatsRequestMsg& msg);
Bytes encode(const FlowStatsReplyMsg& msg);

// -- Decoding ----------------------------------------------------------------

/// Parse failure diagnostics. OpenFlow peers that send malformed frames
/// get an OFPT_ERROR and a closed connection in real controllers; here the
/// caller decides.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// A decoded message (tagged union over the subset).
struct Message {
  Header header;
  std::optional<HelloMsg> hello;
  std::optional<EchoMsg> echo;
  std::optional<FlowModMsg> flow_mod;
  std::optional<PacketInMsg> packet_in;
  std::optional<PacketOutMsg> packet_out;
  std::optional<FlowStatsRequestMsg> stats_request;
  std::optional<FlowStatsReplyMsg> stats_reply;
};

/// Peeks the header of a complete frame. Throws ParseError on bad
/// version/length.
Header decode_header(std::string_view frame);

/// Decodes one complete frame (length must equal header.length).
Message decode(std::string_view frame);

// -- Stream reassembly --------------------------------------------------------

/// Reassembles OpenFlow messages from an arbitrary-chunked byte stream
/// (the switch connection's TCP semantics): feed() accepts any split,
/// poll() yields complete frames in order.
class StreamReassembler {
 public:
  /// Appends raw bytes from the connection.
  void feed(std::string_view data);

  /// Returns the next complete frame, or nullopt if more bytes are needed.
  /// Throws ParseError on a malformed header (caller should drop the
  /// connection, as a real controller would).
  std::optional<Bytes> poll();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;
};

// -- Bridge to the platform's logical messages -------------------------------

/// Exact OpenFlow 1.0 wire sizes of the logical driver messages: used to
/// sanity-check (and calibrate) the simulator's byte accounting.
std::size_t wire_size(const FlowMod& msg);
std::size_t wire_size(const FlowStatQuery& msg);
std::size_t wire_size(const FlowStatReply& msg);
std::size_t wire_size(const PacketIn& msg);
std::size_t wire_size(const PacketOut& msg);

/// Logical FlowMod -> OF 1.0 FLOW_MOD (cookie carries the flow id, the
/// action output port carries the path selector).
FlowModMsg to_openflow(const FlowMod& msg, std::uint32_t xid);
FlowMod from_openflow_flow_mod(const FlowModMsg& msg, SwitchId sw);

/// Logical stats reply -> OFPST_FLOW reply (one entry per flow; byte and
/// packet counters from the simulated rates).
FlowStatsReplyMsg to_openflow(const FlowStatReply& msg, std::uint32_t xid);
FlowStatReply from_openflow_stats(const FlowStatsReplyMsg& msg, SwitchId sw);

}  // namespace beehive::of
