// Simulated network topology.
//
// The paper's evaluation uses "400 switches in a simple tree topology" with
// 40 controllers. TreeTopology builds a k-ary switch tree, assigns every
// switch a master hive (contiguous blocks, so ten switches per hive in the
// paper's setup) and exposes the link set the discovery application
// announces to control applications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace beehive {

struct Link {
  SwitchId a = 0;
  SwitchId b = 0;

  bool operator==(const Link&) const = default;
  std::string key() const {
    return std::to_string(a) + "-" + std::to_string(b);
  }
};

class TreeTopology {
 public:
  /// Builds a `fanout`-ary tree of exactly `n_switches` switches (breadth-
  /// first fill) and spreads mastership over `n_hives` controllers.
  TreeTopology(std::size_t n_switches, std::size_t fanout,
               std::size_t n_hives);

  std::size_t n_switches() const { return n_switches_; }
  std::size_t n_hives() const { return n_hives_; }

  /// Parent switch in the tree; the root returns itself.
  SwitchId parent(SwitchId sw) const;
  std::vector<SwitchId> children(SwitchId sw) const;
  std::size_t depth(SwitchId sw) const;

  /// The controller this switch connects to (its master).
  HiveId master_hive(SwitchId sw) const;
  std::vector<SwitchId> switches_of(HiveId hive) const;

  const std::vector<Link>& links() const { return links_; }
  std::vector<Link> links_of(SwitchId sw) const;

  /// Hop path between two switches through the tree (inclusive endpoints).
  std::vector<SwitchId> path(SwitchId from, SwitchId to) const;

 private:
  std::size_t n_switches_;
  std::size_t fanout_;
  std::size_t n_hives_;
  std::vector<Link> links_;
};

}  // namespace beehive
