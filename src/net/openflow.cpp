#include "net/openflow.h"

#include <cstring>

namespace beehive::of {

namespace {

// Network-byte-order (big-endian) primitives: OpenFlow, like most wire
// protocols, is big-endian — the opposite of the platform's internal codec.
class BeWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::string_view s) { buf_.append(s.data(), s.size()); }
  void zeros(std::size_t n) { buf_.append(n, '\0'); }

  std::size_t size() const { return buf_.size(); }
  char* data() { return buf_.data(); }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class BeReader {
 public:
  explicit BeReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::string_view raw(std::size_t n) {
    need(n);
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) { need(n), pos_ += n; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw ParseError("openflow: truncated message");
    }
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

void write_header(BeWriter& w, MsgType type, std::uint32_t xid) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // length backpatched below
  w.u32(xid);
}

void patch_length(BeWriter& w) {
  const auto len = static_cast<std::uint16_t>(w.size());
  w.data()[2] = static_cast<char>(len >> 8);
  w.data()[3] = static_cast<char>(len & 0xff);
}

void write_match(BeWriter& w, const Match& m) {
  w.u32(m.wildcards);
  w.u16(m.in_port);
  w.raw(std::string_view(reinterpret_cast<const char*>(m.dl_src.data()), 6));
  w.raw(std::string_view(reinterpret_cast<const char*>(m.dl_dst.data()), 6));
  w.u16(0);  // dl_vlan
  w.u8(0);   // dl_vlan_pcp
  w.u8(0);   // pad
  w.u16(m.dl_type);
  w.u8(0);  // nw_tos
  w.u8(0);  // nw_proto
  w.u16(0);  // pad[2]
  w.u32(m.nw_src);
  w.u32(m.nw_dst);
  w.u16(m.tp_src);
  w.u16(m.tp_dst);
}

Match read_match(BeReader& r) {
  Match m;
  m.wildcards = r.u32();
  m.in_port = r.u16();
  std::string_view src = r.raw(6);
  std::memcpy(m.dl_src.data(), src.data(), 6);
  std::string_view dst = r.raw(6);
  std::memcpy(m.dl_dst.data(), dst.data(), 6);
  r.skip(2 + 1 + 1);  // dl_vlan, pcp, pad
  m.dl_type = r.u16();
  r.skip(1 + 1 + 2);  // nw_tos, nw_proto, pad
  m.nw_src = r.u32();
  m.nw_dst = r.u32();
  m.tp_src = r.u16();
  m.tp_dst = r.u16();
  return m;
}

void write_actions(BeWriter& w, const std::vector<OutputAction>& actions) {
  for (const OutputAction& a : actions) {
    w.u16(0);  // OFPAT_OUTPUT
    w.u16(8);  // action length
    w.u16(a.port);
    w.u16(a.max_len);
  }
}

std::vector<OutputAction> read_actions(BeReader& r, std::size_t bytes) {
  std::vector<OutputAction> actions;
  std::size_t consumed = 0;
  while (consumed < bytes) {
    std::uint16_t type = r.u16();
    std::uint16_t len = r.u16();
    if (len < 4 || len % 8 != 0) {
      throw ParseError("openflow: bad action length");
    }
    if (type == 0 && len == 8) {
      OutputAction a;
      a.port = r.u16();
      a.max_len = r.u16();
      actions.push_back(a);
    } else {
      r.skip(len - 4);  // unknown action: skip its body
    }
    consumed += len;
  }
  if (consumed != bytes) throw ParseError("openflow: action overrun");
  return actions;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

Bytes encode(const HelloMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kHello, msg.xid);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const EchoMsg& msg) {
  BeWriter w;
  write_header(w, msg.reply ? MsgType::kEchoReply : MsgType::kEchoRequest,
               msg.xid);
  w.raw(msg.payload);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const FlowModMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kFlowMod, msg.xid);
  write_match(w, msg.match);
  w.u64(msg.cookie);
  w.u16(static_cast<std::uint16_t>(msg.command));
  w.u16(msg.idle_timeout);
  w.u16(msg.hard_timeout);
  w.u16(msg.priority);
  w.u32(0xffffffff);  // buffer_id: none
  w.u16(0xfff8);      // out_port: OFPP_NONE
  w.u16(0);           // flags
  write_actions(w, msg.actions);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const PacketInMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kPacketIn, msg.xid);
  w.u32(msg.buffer_id);
  w.u16(static_cast<std::uint16_t>(msg.payload.size()));  // total_len
  w.u16(msg.in_port);
  w.u8(msg.reason);
  w.u8(0);  // pad
  w.raw(msg.payload);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const PacketOutMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kPacketOut, msg.xid);
  w.u32(msg.buffer_id);
  w.u16(msg.in_port);
  w.u16(static_cast<std::uint16_t>(msg.actions.size() * 8));  // actions_len
  write_actions(w, msg.actions);
  w.raw(msg.payload);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const FlowStatsRequestMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kStatsRequest, msg.xid);
  w.u16(1);  // OFPST_FLOW
  w.u16(0);  // flags
  write_match(w, msg.match);
  w.u8(msg.table_id);
  w.u8(0);  // pad
  w.u16(msg.out_port);
  patch_length(w);
  return std::move(w).take();
}

Bytes encode(const FlowStatsReplyMsg& msg) {
  BeWriter w;
  write_header(w, MsgType::kStatsReply, msg.xid);
  w.u16(1);  // OFPST_FLOW
  w.u16(msg.more ? 1 : 0);
  for (const FlowStatsEntry& e : msg.entries) {
    const auto entry_len =
        static_cast<std::uint16_t>(88 + e.actions.size() * 8);
    w.u16(entry_len);
    w.u8(0);  // table_id
    w.u8(0);  // pad
    write_match(w, e.match);
    w.u32(e.duration_sec);
    w.u32(0);  // duration_nsec
    w.u16(e.priority);
    w.u16(0);  // idle_timeout
    w.u16(0);  // hard_timeout
    w.zeros(6);
    w.u64(e.cookie);
    w.u64(e.packet_count);
    w.u64(e.byte_count);
    write_actions(w, e.actions);
  }
  patch_length(w);
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

Header decode_header(std::string_view frame) {
  if (frame.size() < kHeaderLen) {
    throw ParseError("openflow: short header");
  }
  Header h;
  h.version = static_cast<std::uint8_t>(frame[0]);
  if (h.version != kVersion) {
    throw ParseError("openflow: unsupported version " +
                     std::to_string(h.version));
  }
  h.type = static_cast<MsgType>(static_cast<std::uint8_t>(frame[1]));
  h.length = static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(frame[2]) << 8) |
      static_cast<std::uint8_t>(frame[3]));
  if (h.length < kHeaderLen) {
    throw ParseError("openflow: header length below minimum");
  }
  h.xid = (static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[4]))
           << 24) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[5]))
           << 16) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[6]))
           << 8) |
          static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[7]));
  return h;
}

Message decode(std::string_view frame) {
  Message out;
  out.header = decode_header(frame);
  if (out.header.length != frame.size()) {
    throw ParseError("openflow: frame/header length mismatch");
  }
  BeReader r(frame.substr(kHeaderLen));
  switch (out.header.type) {
    case MsgType::kHello:
      out.hello = HelloMsg{out.header.xid};
      break;
    case MsgType::kEchoRequest:
    case MsgType::kEchoReply: {
      EchoMsg echo;
      echo.xid = out.header.xid;
      echo.reply = out.header.type == MsgType::kEchoReply;
      echo.payload = Bytes(r.raw(r.remaining()));
      out.echo = std::move(echo);
      break;
    }
    case MsgType::kFlowMod: {
      FlowModMsg m;
      m.xid = out.header.xid;
      m.match = read_match(r);
      m.cookie = r.u64();
      m.command = static_cast<FlowModCommand>(r.u16());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      r.skip(4 + 2 + 2);  // buffer_id, out_port, flags
      m.actions = read_actions(r, r.remaining());
      out.flow_mod = std::move(m);
      break;
    }
    case MsgType::kPacketIn: {
      PacketInMsg m;
      m.xid = out.header.xid;
      m.buffer_id = r.u32();
      r.u16();  // total_len (redundant with payload size)
      m.in_port = r.u16();
      m.reason = r.u8();
      r.skip(1);
      m.payload = Bytes(r.raw(r.remaining()));
      out.packet_in = std::move(m);
      break;
    }
    case MsgType::kPacketOut: {
      PacketOutMsg m;
      m.xid = out.header.xid;
      m.buffer_id = r.u32();
      m.in_port = r.u16();
      std::uint16_t actions_len = r.u16();
      if (actions_len > r.remaining()) {
        throw ParseError("openflow: packet_out actions overrun");
      }
      m.actions = read_actions(r, actions_len);
      m.payload = Bytes(r.raw(r.remaining()));
      out.packet_out = std::move(m);
      break;
    }
    case MsgType::kStatsRequest: {
      std::uint16_t stats_type = r.u16();
      if (stats_type != 1) throw ParseError("openflow: unsupported stats");
      r.u16();  // flags
      FlowStatsRequestMsg m;
      m.xid = out.header.xid;
      m.match = read_match(r);
      m.table_id = r.u8();
      r.skip(1);
      m.out_port = r.u16();
      out.stats_request = std::move(m);
      break;
    }
    case MsgType::kStatsReply: {
      std::uint16_t stats_type = r.u16();
      if (stats_type != 1) throw ParseError("openflow: unsupported stats");
      FlowStatsReplyMsg m;
      m.xid = out.header.xid;
      m.more = (r.u16() & 1) != 0;
      while (r.remaining() > 0) {
        std::uint16_t entry_len = r.u16();
        if (entry_len < 88) throw ParseError("openflow: short stats entry");
        FlowStatsEntry e;
        r.skip(1 + 1);  // table_id, pad
        e.match = read_match(r);
        e.duration_sec = r.u32();
        r.u32();  // duration_nsec
        e.priority = r.u16();
        r.skip(2 + 2 + 6);  // idle, hard, pad
        e.cookie = r.u64();
        e.packet_count = r.u64();
        e.byte_count = r.u64();
        e.actions = read_actions(r, entry_len - 88);
        m.entries.push_back(std::move(e));
      }
      out.stats_reply = std::move(m);
      break;
    }
    default:
      throw ParseError("openflow: unsupported message type " +
                       std::to_string(static_cast<int>(out.header.type)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stream reassembly
// ---------------------------------------------------------------------------

void StreamReassembler::feed(std::string_view data) {
  // Compact occasionally so long-lived connections don't grow unbounded.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

std::optional<Bytes> StreamReassembler::poll() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderLen) return std::nullopt;
  Header header = decode_header(
      std::string_view(buffer_).substr(consumed_, kHeaderLen));
  if (available < header.length) return std::nullopt;
  Bytes frame = buffer_.substr(consumed_, header.length);
  consumed_ += header.length;
  return frame;
}

// ---------------------------------------------------------------------------
// Bridge
// ---------------------------------------------------------------------------

FlowModMsg to_openflow(const FlowMod& msg, std::uint32_t xid) {
  FlowModMsg m;
  m.xid = xid;
  m.cookie = msg.flow;
  m.command = FlowModCommand::kModify;
  // The simulated flow id selects the match via nw_src; the path selector
  // rides in the single output action's port.
  m.match.wildcards &= ~0x00000020u;  // OFPFW_NW_SRC wildcard off (approx.)
  m.match.nw_src = msg.flow;
  m.actions.push_back({static_cast<std::uint16_t>(msg.new_path), 0xffff});
  return m;
}

FlowMod from_openflow_flow_mod(const FlowModMsg& msg, SwitchId sw) {
  FlowMod out;
  out.sw = sw;
  out.flow = static_cast<std::uint32_t>(msg.cookie);
  out.new_path = msg.actions.empty() ? 0 : msg.actions[0].port;
  return out;
}

FlowStatsReplyMsg to_openflow(const FlowStatReply& msg, std::uint32_t xid) {
  FlowStatsReplyMsg m;
  m.xid = xid;
  for (const FlowStat& stat : msg.stats) {
    FlowStatsEntry e;
    e.cookie = stat.flow;
    e.match.nw_src = stat.flow;
    e.byte_count = stat.bytes;
    // rate_kbps is a derived value; a real reply carries counters, and the
    // controller derives the rate from two samples. Store the byte count
    // and let packet_count approximate 1 KB packets.
    e.packet_count = stat.bytes / 1024;
    e.actions.push_back({1, 0xffff});
    m.entries.push_back(std::move(e));
  }
  return m;
}

FlowStatReply from_openflow_stats(const FlowStatsReplyMsg& msg, SwitchId sw) {
  FlowStatReply out;
  out.sw = sw;
  for (const FlowStatsEntry& e : msg.entries) {
    FlowStat stat;
    stat.flow = static_cast<std::uint32_t>(e.cookie);
    stat.bytes = e.byte_count;
    stat.rate_kbps = 0.0;  // derived by the controller from samples
    out.stats.push_back(stat);
  }
  return out;
}

std::size_t wire_size(const FlowMod& msg) {
  return encode(to_openflow(msg, 0)).size();
}
std::size_t wire_size(const FlowStatQuery&) {
  return encode(FlowStatsRequestMsg{}).size();
}
std::size_t wire_size(const FlowStatReply& msg) {
  return encode(to_openflow(msg, 0)).size();
}
std::size_t wire_size(const PacketIn& msg) {
  PacketInMsg m;
  m.payload.assign(64, '\0');  // minimum ethernet frame
  m.in_port = msg.in_port;
  return encode(m).size();
}
std::size_t wire_size(const PacketOut&) {
  PacketOutMsg m;
  m.actions.push_back({});
  m.payload.assign(64, '\0');
  return encode(m).size();
}

}  // namespace beehive::of
