#include "net/connection.h"

namespace beehive::of {

// ---------------------------------------------------------------------------
// SwitchConnection (controller side)
// ---------------------------------------------------------------------------

SwitchConnection::SwitchConnection(SwitchId sw, SendFn send)
    : sw_(sw), send_(std::move(send)) {}

void SwitchConnection::start() {
  if (sent_hello_) return;
  sent_hello_ = true;
  send_frame(encode(HelloMsg{next_xid()}));
}

void SwitchConnection::send_frame(Bytes frame) {
  tx_bytes_ += frame.size();
  send_(std::move(frame));
}

void SwitchConnection::on_bytes(std::string_view data) {
  rx_bytes_ += data.size();
  stream_.feed(data);
  while (auto frame = stream_.poll()) {
    ++rx_messages_;
    Message msg = decode(*frame);
    switch (msg.header.type) {
      case MsgType::kHello:
        if (!ready_) {
          ready_ = true;
          if (on_ready) on_ready();
        }
        break;
      case MsgType::kEchoRequest:
        // Keepalive: answer with the same payload and xid.
        send_frame(encode(EchoMsg{msg.echo->xid, /*reply=*/true,
                                  msg.echo->payload}));
        break;
      case MsgType::kEchoReply:
        if (on_echo_reply) on_echo_reply(msg.echo->xid);
        break;
      case MsgType::kStatsReply: {
        auto it = pending_stats_.find(msg.header.xid);
        if (it != pending_stats_.end() && !msg.stats_reply->more) {
          pending_stats_.erase(it);
        }
        if (on_stats) {
          on_stats(from_openflow_stats(*msg.stats_reply, sw_));
        }
        break;
      }
      case MsgType::kPacketIn: {
        if (on_packet_in) {
          // The simulated payload encodes src/dst mac in the first bytes.
          PacketIn logical;
          logical.sw = sw_;
          logical.in_port = msg.packet_in->in_port;
          if (msg.packet_in->payload.size() >= 16) {
            ByteReader r(msg.packet_in->payload);
            logical.dst_mac = r.u64();
            logical.src_mac = r.u64();
          }
          on_packet_in(logical);
        }
        break;
      }
      default:
        throw ParseError("controller: unexpected message type " +
                         std::to_string(static_cast<int>(msg.header.type)));
    }
  }
}

std::uint32_t SwitchConnection::request_stats() {
  FlowStatsRequestMsg req;
  req.xid = next_xid();
  pending_stats_[req.xid] = true;
  send_frame(encode(req));
  return req.xid;
}

void SwitchConnection::send_flow_mod(const FlowMod& mod) {
  send_frame(encode(to_openflow(mod, next_xid())));
}

void SwitchConnection::send_packet_out(const PacketOut& out) {
  PacketOutMsg m;
  m.xid = next_xid();
  m.actions.push_back({out.out_port, 0xffff});
  ByteWriter payload;
  payload.u64(out.dst_mac);
  payload.u64(0);
  m.payload = std::move(payload).take();
  send_frame(encode(m));
}

std::uint32_t SwitchConnection::send_echo_request() {
  std::uint32_t xid = next_xid();
  send_frame(encode(EchoMsg{xid, /*reply=*/false, "ka"}));
  return xid;
}

// ---------------------------------------------------------------------------
// SwitchAgent (switch side)
// ---------------------------------------------------------------------------

SwitchAgent::SwitchAgent(SimSwitch* sw, SendFn send, Clock clock)
    : sw_(sw), send_(std::move(send)), clock_(std::move(clock)) {}

void SwitchAgent::send_frame(Bytes frame) { send_(std::move(frame)); }

void SwitchAgent::punt(std::uint64_t src_mac, std::uint64_t dst_mac,
                       std::uint16_t in_port) {
  if (!ready_) return;
  PacketInMsg m;
  m.in_port = in_port;
  ByteWriter payload;
  payload.u64(dst_mac);
  payload.u64(src_mac);
  payload.raw(Bytes(48, '\0'));  // pad to a minimum ethernet frame
  m.payload = std::move(payload).take();
  send_frame(encode(m));
}

void SwitchAgent::on_bytes(std::string_view data) {
  stream_.feed(data);
  while (auto frame = stream_.poll()) {
    Message msg = decode(*frame);
    switch (msg.header.type) {
      case MsgType::kHello:
        if (!sent_hello_) {
          sent_hello_ = true;
          send_frame(encode(HelloMsg{msg.header.xid}));
        }
        ready_ = true;
        break;
      case MsgType::kEchoRequest:
        send_frame(encode(EchoMsg{msg.echo->xid, /*reply=*/true,
                                  msg.echo->payload}));
        break;
      case MsgType::kEchoReply:
        break;
      case MsgType::kFlowMod: {
        FlowMod logical = from_openflow_flow_mod(*msg.flow_mod, sw_->id());
        if (sw_->apply_flow_mod(logical.flow, logical.new_path)) {
          ++flow_mods_applied_;
        }
        break;
      }
      case MsgType::kStatsRequest: {
        FlowStatReply logical;
        logical.sw = sw_->id();
        logical.stats = sw_->stats(clock_());
        send_frame(encode(to_openflow(logical, msg.header.xid)));
        break;
      }
      case MsgType::kPacketOut:
        sw_->deliver_packet();
        ++packet_outs_;
        break;
      default:
        throw ParseError("switch: unexpected message type " +
                         std::to_string(static_cast<int>(msg.header.type)));
    }
  }
}

}  // namespace beehive::of
