#include "net/switch_sim.h"

#include <cmath>

#include "util/hash.h"

namespace beehive {

SimSwitch::SimSwitch(SwitchId id, const SwitchConfig& config, Xoshiro256& rng)
    : id_(id), config_(config) {
  flows_.reserve(config.n_flows);
  const auto n_above = static_cast<std::size_t>(
      static_cast<double>(config.n_flows) * config.frac_above);
  for (std::size_t i = 0; i < config.n_flows; ++i) {
    SimFlow f;
    f.id = static_cast<std::uint32_t>(i);
    // The first n_above flows run hot (1.2x..2.0x delta); the rest stay
    // comfortably below (0.1x..0.8x delta). Noise never bridges the gap
    // from "cold" to "hot", so exactly the hot set trips the TE threshold.
    if (i < n_above) {
      f.base_kbps = rng.next_in(1.2, 2.0) * config.delta_kbps;
    } else {
      f.base_kbps = rng.next_in(0.1, 0.8) * config.delta_kbps;
    }
    f.noise_seed = rng.next();
    flows_.push_back(f);
  }
}

const SimFlow* SimSwitch::flow(std::uint32_t id) const {
  return id < flows_.size() ? &flows_[id] : nullptr;
}

double SimSwitch::effective_rate_kbps(const SimFlow& flow,
                                      TimePoint now) const {
  // Deterministic per-(flow, second) noise in [1-a, 1+a].
  const auto bucket = static_cast<std::uint64_t>(now / kSecond);
  std::uint64_t h = flow.noise_seed ^ (bucket * 0x9e3779b97f4a7c15ull);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double noise = 1.0 + config_.noise_amplitude * (2.0 * unit - 1.0);
  return flow.base_kbps * noise * flow.mod_factor;
}

std::vector<FlowStat> SimSwitch::stats(TimePoint now) const {
  std::vector<FlowStat> out;
  out.reserve(flows_.size());
  const double seconds =
      static_cast<double>(now) / static_cast<double>(kSecond);
  for (const SimFlow& f : flows_) {
    FlowStat s;
    s.flow = f.id;
    s.rate_kbps = effective_rate_kbps(f, now);
    s.bytes = static_cast<std::uint64_t>(f.base_kbps * f.mod_factor * 1024.0 /
                                         8.0 * seconds);
    out.push_back(s);
  }
  return out;
}

bool SimSwitch::apply_flow_mod(std::uint32_t flow, std::uint32_t new_path) {
  if (flow >= flows_.size()) return false;
  flows_[flow].path = new_path;
  flows_[flow].mod_factor *= config_.reroute_factor;
  ++flow_mods_applied_;
  return true;
}

std::size_t SimSwitch::flows_above_threshold(TimePoint now) const {
  std::size_t n = 0;
  for (const SimFlow& f : flows_) {
    if (effective_rate_kbps(f, now) > config_.delta_kbps) ++n;
  }
  return n;
}

}  // namespace beehive
