// The network fabric: the dataplane-side IO substrate.
//
// Owns the topology and every simulated switch, and knows which hive each
// switch's control connection terminates at. The fabric is the boundary
// between "the network" and the control plane: switch events enter hives
// through an injector callback, and the OpenFlow driver application talks
// back to switches through this object.
//
// Thread-safety: each switch is only ever touched by its master hive's
// driver bee (cell exclusivity), so per-switch state needs no locking even
// under the threaded runtime.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "msg/message.h"
#include "net/switch_sim.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/types.h"

namespace beehive {

struct FabricConfig {
  SwitchConfig sw;
  std::uint64_t seed = 7;
};

class NetworkFabric {
 public:
  NetworkFabric(TreeTopology topology, FabricConfig config = {});

  const TreeTopology& topology() const { return topology_; }
  std::size_t n_switches() const { return switches_.size(); }

  SimSwitch& sw(SwitchId id) { return *switches_.at(id); }
  const SimSwitch& sw(SwitchId id) const { return *switches_.at(id); }

  /// Delivers an IO message to a hive. Benches/examples bind this to
  /// SimCluster::hive(h).inject or ThreadCluster::post.
  using Injector = std::function<void(HiveId, MessageEnvelope)>;

  /// Connects every switch to its master hive: one SwitchConnected event
  /// per switch, delivered through `inject`.
  void connect_all(const Injector& inject, TimePoint now = 0) const;

  /// Connects a single switch (e.g. staggered joins / failure recovery).
  void connect(SwitchId sw, const Injector& inject, TimePoint now = 0) const;

  /// Injects a dataplane packet punt (PacketIn) at the switch's master.
  void punt_packet(SwitchId sw, std::uint64_t src_mac, std::uint64_t dst_mac,
                   std::uint16_t in_port, const Injector& inject,
                   TimePoint now) const;

  std::uint64_t total_flow_mods() const;
  std::size_t total_flows_above_threshold(TimePoint now) const;

 private:
  TreeTopology topology_;
  std::vector<std::unique_ptr<SimSwitch>> switches_;
};

}  // namespace beehive
