// OpenFlow channel endpoints: the byte-level connection between a
// controller (hive) and a switch.
//
// SwitchConnection is the controller-side endpoint: it performs the
// version handshake (HELLO exchange), allocates transaction ids, encodes
// the platform's logical driver messages onto the wire, reassembles and
// decodes the switch's byte stream, and answers echo keepalives.
// SwitchAgent is the switch-side peer: it speaks the same wire format and
// applies FLOW_MODs / answers OFPST_FLOW requests against a SimSwitch.
//
// Transport is abstracted as a send callback over raw bytes, so tests can
// interpose arbitrary TCP-like chunking (see tests/test_connection.cpp)
// and the example wires two endpoints back-to-back.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/openflow.h"
#include "net/switch_sim.h"
#include "util/types.h"

namespace beehive::of {

/// Controller-side endpoint of one switch's OpenFlow channel.
class SwitchConnection {
 public:
  using SendFn = std::function<void(Bytes)>;

  SwitchConnection(SwitchId sw, SendFn send);

  /// Initiates the handshake (sends OFPT_HELLO).
  void start();

  /// Feeds raw bytes received from the switch; fires callbacks for every
  /// complete message. Throws ParseError on protocol violations (a real
  /// controller would close the connection).
  void on_bytes(std::string_view data);

  bool ready() const { return ready_; }
  SwitchId sw() const { return sw_; }

  // -- Controller operations (only valid once ready) -----------------------

  /// Sends an OFPST_FLOW request; the reply arrives via on_stats with the
  /// same transaction id correlated back to this request.
  std::uint32_t request_stats();

  void send_flow_mod(const FlowMod& mod);
  void send_packet_out(const PacketOut& out);
  std::uint32_t send_echo_request();

  // -- Event callbacks ------------------------------------------------------

  std::function<void()> on_ready;
  std::function<void(const FlowStatReply&)> on_stats;
  std::function<void(const PacketIn&)> on_packet_in;
  std::function<void(std::uint32_t /*xid*/)> on_echo_reply;

  // -- Channel statistics ---------------------------------------------------

  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t rx_messages() const { return rx_messages_; }
  std::size_t pending_stats_requests() const { return pending_stats_.size(); }

 private:
  void send_frame(Bytes frame);
  std::uint32_t next_xid() { return xid_++; }

  SwitchId sw_;
  SendFn send_;
  StreamReassembler stream_;
  bool sent_hello_ = false;
  bool ready_ = false;
  std::uint32_t xid_ = 1;
  std::unordered_map<std::uint32_t, bool> pending_stats_;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t rx_messages_ = 0;
};

/// Switch-side endpoint: terminates the controller's channel against a
/// simulated switch.
class SwitchAgent {
 public:
  using SendFn = std::function<void(Bytes)>;
  using Clock = std::function<TimePoint()>;

  SwitchAgent(SimSwitch* sw, SendFn send, Clock clock);

  /// Feeds raw bytes from the controller.
  void on_bytes(std::string_view data);

  /// Switch-initiated packet punt (sends OFPT_PACKET_IN once ready).
  void punt(std::uint64_t src_mac, std::uint64_t dst_mac,
            std::uint16_t in_port);

  bool ready() const { return ready_; }
  std::uint64_t flow_mods_applied() const { return flow_mods_applied_; }
  std::uint64_t packet_outs() const { return packet_outs_; }

 private:
  void send_frame(Bytes frame);

  SimSwitch* sw_;
  SendFn send_;
  Clock clock_;
  StreamReassembler stream_;
  bool sent_hello_ = false;
  bool ready_ = false;
  std::uint64_t flow_mods_applied_ = 0;
  std::uint64_t packet_outs_ = 0;
};

}  // namespace beehive::of
