#include "net/topology.h"

#include <algorithm>
#include <cassert>

namespace beehive {

TreeTopology::TreeTopology(std::size_t n_switches, std::size_t fanout,
                           std::size_t n_hives)
    : n_switches_(n_switches), fanout_(fanout), n_hives_(n_hives) {
  assert(n_switches > 0 && fanout > 0 && n_hives > 0);
  links_.reserve(n_switches > 0 ? n_switches - 1 : 0);
  for (SwitchId sw = 1; sw < n_switches; ++sw) {
    links_.push_back({parent(sw), sw});
  }
}

SwitchId TreeTopology::parent(SwitchId sw) const {
  if (sw == 0) return 0;
  return static_cast<SwitchId>((sw - 1) / fanout_);
}

std::vector<SwitchId> TreeTopology::children(SwitchId sw) const {
  std::vector<SwitchId> out;
  for (std::size_t i = 0; i < fanout_; ++i) {
    std::size_t child = static_cast<std::size_t>(sw) * fanout_ + 1 + i;
    if (child < n_switches_) out.push_back(static_cast<SwitchId>(child));
  }
  return out;
}

std::size_t TreeTopology::depth(SwitchId sw) const {
  std::size_t d = 0;
  while (sw != 0) {
    sw = parent(sw);
    ++d;
  }
  return d;
}

HiveId TreeTopology::master_hive(SwitchId sw) const {
  // Contiguous blocks: switches [k*S/H, (k+1)*S/H) belong to hive k.
  return static_cast<HiveId>(static_cast<std::size_t>(sw) * n_hives_ /
                             n_switches_);
}

std::vector<SwitchId> TreeTopology::switches_of(HiveId hive) const {
  std::vector<SwitchId> out;
  for (SwitchId sw = 0; sw < n_switches_; ++sw) {
    if (master_hive(sw) == hive) out.push_back(sw);
  }
  return out;
}

std::vector<Link> TreeTopology::links_of(SwitchId sw) const {
  std::vector<Link> out;
  for (const Link& l : links_) {
    if (l.a == sw || l.b == sw) out.push_back(l);
  }
  return out;
}

std::vector<SwitchId> TreeTopology::path(SwitchId from, SwitchId to) const {
  // Walk both endpoints up to their lowest common ancestor.
  std::vector<SwitchId> up_from{from};
  std::vector<SwitchId> up_to{to};
  while (depth(up_from.back()) > depth(up_to.back())) {
    up_from.push_back(parent(up_from.back()));
  }
  while (depth(up_to.back()) > depth(up_from.back())) {
    up_to.push_back(parent(up_to.back()));
  }
  while (up_from.back() != up_to.back()) {
    up_from.push_back(parent(up_from.back()));
    up_to.push_back(parent(up_to.back()));
  }
  up_from.insert(up_from.end(), up_to.rbegin() + 1, up_to.rend());
  return up_from;
}

}  // namespace beehive
