// ONIX NIB emulation (paper §4, "ONIX's NIB"): the Network Information
// Base is an abstract graph of network elements. Processing a message
// touches the state of one node, so each node is one cell managed by one
// bee — queries and updates for a node serialize through that bee wherever
// the platform placed it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/messages.h"
#include "core/app.h"
#include "msg/codec.h"

namespace beehive {

/// One NIB node: the value of one "nib.nodes" cell.
struct NibNode {
  static constexpr std::string_view kTypeName = "nib.node";

  NodeId id = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<NodeId> neighbors;

  void set_attr(const std::string& key, const std::string& value) {
    for (auto& [k, v] : attrs) {
      if (k == key) {
        v = value;
        return;
      }
    }
    attrs.emplace_back(key, value);
  }

  void add_neighbor(NodeId n) {
    for (NodeId existing : neighbors) {
      if (existing == n) return;
    }
    neighbors.push_back(n);
  }

  void encode(ByteWriter& w) const {
    w.u64(id);
    w.varint(attrs.size());
    for (const auto& [k, v] : attrs) {
      w.str(k);
      w.str(v);
    }
    w.varint(neighbors.size());
    for (NodeId n : neighbors) w.u64(n);
  }
  static NibNode decode(ByteReader& r) {
    NibNode node;
    node.id = r.u64();
    std::uint64_t na = r.varint();
    for (std::uint64_t i = 0; i < na; ++i) {
      std::string k = r.str();
      node.attrs.emplace_back(std::move(k), r.str());
    }
    std::uint64_t nn = r.varint();
    for (std::uint64_t i = 0; i < nn; ++i) node.neighbors.push_back(r.u64());
    return node;
  }
};

class NibApp : public App {
 public:
  NibApp();

  static constexpr std::string_view kDict = "nib.nodes";

  static std::string node_key(NodeId node) { return std::to_string(node); }
};

}  // namespace beehive
