#include "apps/discovery.h"

#include "apps/messages.h"
#include "core/context.h"

namespace beehive {

DiscoveryApp::DiscoveryApp(const TreeTopology* topology) : App("discovery") {
  register_app_messages();
  const std::string dict(kDict);

  on<SwitchJoined>(
      [dict](const SwitchJoined& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [topology, dict](AppContext& ctx, const SwitchJoined& m) {
        // Announce once per switch: the uplink toward the parent.
        if (ctx.state().contains(dict, switch_key(m.sw))) return;
        ctx.state().put_as(dict, switch_key(m.sw), m);
        if (m.sw != 0) {
          ctx.emit(LinkDiscovered{topology->parent(m.sw), m.sw});
        }
      });
}

}  // namespace beehive
