// Kandoo emulation (paper §1/§4): elephant-flow detection.
//
// Kandoo's motivating application splits control logic in two:
//   * appdetection — a *local* app on each switch's controller that polls
//     flow stats frequently and detects elephant flows without ever
//     leaving the switch's local scope;
//   * appreroute — a *root* (centralized) app that receives rare
//     ElephantDetected events and installs re-routes network-wide.
//
// In Kandoo the developer places these manually (local controllers near
// switches, one root controller). In Beehive the same split falls out of
// the Map functions: the detector maps everything to per-switch cells
// (→ one bee per switch, naturally near its driver), while the rerouter
// maps to a whole-dict cell (→ one centralized bee). The emulation bench
// compares this against streaming all stats to the root directly — the
// comparison Kandoo's paper makes.
#pragma once

#include "apps/messages.h"
#include "apps/te_common.h"
#include "core/app.h"

namespace beehive {

/// Rare event from detector to rerouter: an elephant flow appeared.
struct ElephantDetected {
  static constexpr std::string_view kTypeName = "kandoo.elephant";
  SwitchId sw = 0;
  std::uint32_t flow = 0;
  double rate_kbps = 0.0;

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u32(flow);
    w.f64(rate_kbps);
  }
  static ElephantDetected decode(ByteReader& r) {
    ElephantDetected m;
    m.sw = r.u32();
    m.flow = r.u32();
    m.rate_kbps = r.f64();
    return m;
  }
};

struct KandooConfig {
  double elephant_kbps = 1000.0;   ///< detection threshold
  Duration poll_period = kSecond;  ///< local stats polling (frequent)
  double clear_fraction = 0.8;
};

/// The local app: per-switch cells, frequent polling, local detection.
class ElephantDetectorApp : public App {
 public:
  explicit ElephantDetectorApp(KandooConfig config = {});

  static constexpr std::string_view kDict = "kandoo.local";
};

/// The root app: one centralized bee consuming rare elephant events.
class ElephantRerouteApp : public App {
 public:
  ElephantRerouteApp();

  static constexpr std::string_view kDict = "kandoo.root";
};

}  // namespace beehive
