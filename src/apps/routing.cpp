#include "apps/routing.h"

#include "core/context.h"

namespace beehive {

RoutingApp::RoutingApp() : App("routing") {
  register_app_messages();
  const std::string dict(kDict);

  on<RouteAnnounce>(
      [dict](const RouteAnnounce& m) {
        return CellSet::single(dict, bucket_key(m.prefix));
      },
      [dict](AppContext& ctx, const RouteAnnounce& m) {
        const std::string key = bucket_key(m.prefix);
        PrefixTable table =
            ctx.state().get_as<PrefixTable>(dict, key).value_or(
                PrefixTable{});
        table.upsert(m);
        ctx.state().put_as(dict, key, table);
      });

  on<RouteWithdraw>(
      [dict](const RouteWithdraw& m) {
        return CellSet::single(dict, bucket_key(m.prefix));
      },
      [dict](AppContext& ctx, const RouteWithdraw& m) {
        const std::string key = bucket_key(m.prefix);
        auto table = ctx.state().get_as<PrefixTable>(dict, key);
        if (!table) return;
        if (table->remove(m.prefix, m.mask_len)) {
          ctx.state().put_as(dict, key, *table);
        }
      });

  on<RouteQuery>(
      [dict](const RouteQuery& m) {
        return CellSet::single(dict, bucket_key(m.addr));
      },
      [dict](AppContext& ctx, const RouteQuery& m) {
        auto table =
            ctx.state().get_as<PrefixTable>(dict, bucket_key(m.addr));
        RouteResult result;
        result.query_id = m.query_id;
        if (table) {
          if (auto best = table->lookup(m.addr)) {
            result.found = true;
            result.prefix = best->prefix;
            result.mask_len = best->mask_len;
            result.next_hop = best->next_hop;
          }
        }
        ctx.emit(std::move(result));
      });
}

}  // namespace beehive
