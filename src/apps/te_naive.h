// Naive Traffic Engineering — a faithful transliteration of the paper's
// Figure 2.
//
//   app TrafficEngineering:
//     state: S (flow stats), T (topology)
//     Init    — on SwitchJoined, with S[sw]
//     Query   — on TimeOut(1s), foreach S
//     Collect — on StatReply,   with S[sw]
//     Route   — on TimeOut(1s), with S and T   <-- whole-dict access
//
// Because Route maps to (S, "*") and (T, "*"), every S cell must collocate
// with every other: the platform centralizes the whole application on one
// bee. That is the design flaw the paper's instrumentation surfaces in
// Figure 4a/4d — reproduced here deliberately, bug included.
#pragma once

#include "apps/te_common.h"
#include "core/app.h"

namespace beehive {

class TENaiveApp : public App {
 public:
  explicit TENaiveApp(TEConfig config = {});

  static constexpr std::string_view kStatsDict = "te.S";
  static constexpr std::string_view kTopoDict = "te.T";
};

}  // namespace beehive
