// Shared pieces of the two Traffic Engineering designs (paper Figure 2 and
// the decoupled redesign of §5).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/messages.h"
#include "msg/codec.h"
#include "util/types.h"

namespace beehive {

struct TEConfig {
  double delta_kbps = 1000.0;        ///< re-routing threshold (delta)
  Duration query_period = kSecond;   ///< "on TimeOut(1sec): Query"
  Duration route_period = kSecond;   ///< "on TimeOut(1sec): Route"
  /// Hysteresis: a re-alarmed flow must first fall below
  /// delta * clear_fraction. Keeps alarm chatter bounded but non-zero.
  double clear_fraction = 0.8;
};

/// Per-switch time-series of flow statistics: the value of one S cell.
struct FlowSeriesEntry {
  static constexpr std::string_view kTypeName = "te.flow_series";

  SwitchId sw = 0;
  std::uint32_t samples = 0;
  std::vector<FlowStat> latest;
  std::vector<std::uint32_t> flagged;  ///< flows already re-routed/alarmed

  bool is_flagged(std::uint32_t flow) const {
    return std::find(flagged.begin(), flagged.end(), flow) != flagged.end();
  }
  void flag(std::uint32_t flow) {
    if (!is_flagged(flow)) flagged.push_back(flow);
  }
  void unflag(std::uint32_t flow) {
    flagged.erase(std::remove(flagged.begin(), flagged.end(), flow),
                  flagged.end());
  }

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u32(samples);
    encode_vector(w, latest);
    w.varint(flagged.size());
    for (std::uint32_t f : flagged) w.u32(f);
  }
  static FlowSeriesEntry decode(ByteReader& r) {
    FlowSeriesEntry e;
    e.sw = r.u32();
    e.samples = r.u32();
    e.latest = decode_vector<FlowStat>(r);
    std::uint64_t n = r.varint();
    e.flagged.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) e.flagged.push_back(r.u32());
    return e;
  }
};

/// Route-side accumulator of the decoupled design: the value of the single
/// R cell.
struct RouteLedger {
  static constexpr std::string_view kTypeName = "te.route_ledger";

  std::uint64_t alarms_seen = 0;
  std::uint64_t flow_mods_emitted = 0;

  void encode(ByteWriter& w) const {
    w.varint(alarms_seen);
    w.varint(flow_mods_emitted);
  }
  static RouteLedger decode(ByteReader& r) {
    RouteLedger l;
    l.alarms_seen = r.varint();
    l.flow_mods_emitted = r.varint();
    return l;
  }
};

}  // namespace beehive
