#include "apps/netvirt.h"

#include "core/context.h"

namespace beehive {

NetVirtApp::NetVirtApp() : App("netvirt") {
  register_app_messages();
  const std::string dict(kDict);

  on<VnCreate>(
      [dict](const VnCreate& m) {
        return CellSet::single(dict, vn_key(m.vn));
      },
      [dict](AppContext& ctx, const VnCreate& m) {
        if (ctx.state().contains(dict, vn_key(m.vn))) return;
        VnState state;
        state.vn = m.vn;
        ctx.state().put_as(dict, vn_key(m.vn), state);
      });

  on<VnAttach>(
      [dict](const VnAttach& m) {
        return CellSet::single(dict, vn_key(m.vn));
      },
      [dict](AppContext& ctx, const VnAttach& m) {
        auto state = ctx.state().get_as<VnState>(dict, vn_key(m.vn));
        if (!state) return;  // attach to unknown VN: ignored
        // New switch in the overlay: mesh it with the existing switches.
        if (!state->has_switch(m.sw)) {
          std::vector<SwitchId> peers;
          for (const VnAttach& e : state->endpoints) {
            if (e.sw != m.sw &&
                std::find(peers.begin(), peers.end(), e.sw) == peers.end()) {
              peers.push_back(e.sw);
            }
          }
          for (SwitchId peer : peers) {
            ctx.emit(TunnelInstall{m.vn, m.sw, peer});
          }
        }
        state->endpoints.push_back(m);
        ctx.state().put_as(dict, vn_key(m.vn), *state);
      });

  on<VnDetach>(
      [dict](const VnDetach& m) {
        return CellSet::single(dict, vn_key(m.vn));
      },
      [dict](AppContext& ctx, const VnDetach& m) {
        auto state = ctx.state().get_as<VnState>(dict, vn_key(m.vn));
        if (!state) return;
        std::erase_if(state->endpoints, [&m](const VnAttach& e) {
          return e.sw == m.sw && e.mac == m.mac;
        });
        ctx.state().put_as(dict, vn_key(m.vn), *state);
      });
}

}  // namespace beehive
