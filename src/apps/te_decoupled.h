// Decoupled Traffic Engineering — the redesign the paper's instrumentation
// feedback leads to in §5 ("Decoupling Functions").
//
// Route gets its own dictionary R, and Collect notifies it with aggregated
// FlowRateAlarm events instead of sharing S. Consequences the platform
// derives automatically:
//   * S cells stay per-switch → Init/Query/Collect bees distribute across
//     hives (and can be migrated next to each switch's driver);
//   * Route is still one bee (it maps to (R, "*")) but receives only rare,
//     small alarm events — the lone off-diagonal cross of Figure 4b.
#pragma once

#include "apps/te_common.h"
#include "core/app.h"

namespace beehive {

class TEDecoupledApp : public App {
 public:
  explicit TEDecoupledApp(TEConfig config = {});

  static constexpr std::string_view kStatsDict = "ted.S";
  static constexpr std::string_view kRouteDict = "ted.R";
  static constexpr std::string_view kTopoDict = "ted.T";
};

}  // namespace beehive
