#include "apps/messages.h"

#include "msg/registry.h"

namespace beehive {

void register_app_messages() {
  auto& reg = MsgTypeRegistry::instance();
  reg.ensure<SwitchConnected>();
  reg.ensure<SwitchJoined>();
  reg.ensure<FlowStatQuery>();
  reg.ensure<FlowStat>();
  reg.ensure<FlowStatReply>();
  reg.ensure<FlowMod>();
  reg.ensure<LinkDiscovered>();
  reg.ensure<FlowRateAlarm>();
  reg.ensure<PacketIn>();
  reg.ensure<PacketOut>();
  reg.ensure<RouteAnnounce>();
  reg.ensure<RouteWithdraw>();
  reg.ensure<RouteQuery>();
  reg.ensure<RouteResult>();
  reg.ensure<VnCreate>();
  reg.ensure<VnAttach>();
  reg.ensure<VnDetach>();
  reg.ensure<TunnelInstall>();
  reg.ensure<NibNodeUpdate>();
  reg.ensure<NibLinkAdd>();
  reg.ensure<NibQuery>();
  reg.ensure<NibReply>();
}

}  // namespace beehive
