#include "apps/nib.h"

#include "core/context.h"

namespace beehive {

NibApp::NibApp() : App("nib") {
  register_app_messages();
  const std::string dict(kDict);

  on<NibNodeUpdate>(
      [dict](const NibNodeUpdate& m) {
        return CellSet::single(dict, node_key(m.node));
      },
      [dict](AppContext& ctx, const NibNodeUpdate& m) {
        NibNode node = ctx.state()
                           .get_as<NibNode>(dict, node_key(m.node))
                           .value_or(NibNode{});
        node.id = m.node;
        node.set_attr(m.attr, m.value);
        ctx.state().put_as(dict, node_key(m.node), node);
      });

  on<NibLinkAdd>(
      [dict](const NibLinkAdd& m) {
        return CellSet::single(dict, node_key(m.from));
      },
      [dict](AppContext& ctx, const NibLinkAdd& m) {
        NibNode node = ctx.state()
                           .get_as<NibNode>(dict, node_key(m.from))
                           .value_or(NibNode{});
        node.id = m.from;
        node.add_neighbor(m.to);
        ctx.state().put_as(dict, node_key(m.from), node);
      });

  on<NibQuery>(
      [dict](const NibQuery& m) {
        return CellSet::single(dict, node_key(m.node));
      },
      [dict](AppContext& ctx, const NibQuery& m) {
        auto node = ctx.state().get_as<NibNode>(dict, node_key(m.node));
        NibReply reply;
        reply.query_id = m.query_id;
        if (node) {
          reply.found = true;
          for (const auto& [k, v] : node->attrs) {
            reply.attrs.push_back(k + "=" + v);
          }
          reply.neighbors = node->neighbors;
        }
        ctx.emit(std::move(reply));
      });
}

}  // namespace beehive
