// Seattle-style host location resolution (paper §4, "Routing":
// "approaches such as Portland and Seattle can be easily implemented in a
// distributed fashion").
//
// SEATTLE's core is a one-hop DHT mapping each host's MAC to its current
// location (switch, port); switches query the directory instead of
// flooding. Here the directory is a Beehive application whose cells are
// hash buckets of the MAC space — the platform spreads the buckets over
// hives, and every register/unregister/lookup for a MAC serializes through
// its bucket's bee, giving the DHT's consistency without any DHT code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/app.h"
#include "msg/codec.h"
#include "util/hash.h"
#include "util/types.h"

namespace beehive {

/// A host appeared at (switch, port) — e.g. derived from a PacketIn.
struct HostRegister {
  static constexpr std::string_view kTypeName = "seattle.register";
  std::uint64_t mac = 0;
  SwitchId sw = 0;
  std::uint16_t port = 0;

  void encode(ByteWriter& w) const {
    w.u64(mac);
    w.u32(sw);
    w.u16(port);
  }
  static HostRegister decode(ByteReader& r) {
    HostRegister m;
    m.mac = r.u64();
    m.sw = r.u32();
    m.port = r.u16();
    return m;
  }
};

struct HostUnregister {
  static constexpr std::string_view kTypeName = "seattle.unregister";
  std::uint64_t mac = 0;

  void encode(ByteWriter& w) const { w.u64(mac); }
  static HostUnregister decode(ByteReader& r) { return {r.u64()}; }
};

struct HostLookup {
  static constexpr std::string_view kTypeName = "seattle.lookup";
  std::uint64_t mac = 0;
  std::uint64_t query_id = 0;

  void encode(ByteWriter& w) const {
    w.u64(mac);
    w.u64(query_id);
  }
  static HostLookup decode(ByteReader& r) {
    HostLookup m;
    m.mac = r.u64();
    m.query_id = r.u64();
    return m;
  }
};

struct HostLocation {
  static constexpr std::string_view kTypeName = "seattle.location";
  std::uint64_t query_id = 0;
  std::uint64_t mac = 0;
  bool found = false;
  SwitchId sw = 0;
  std::uint16_t port = 0;

  void encode(ByteWriter& w) const {
    w.u64(query_id);
    w.u64(mac);
    w.boolean(found);
    w.u32(sw);
    w.u16(port);
  }
  static HostLocation decode(ByteReader& r) {
    HostLocation m;
    m.query_id = r.u64();
    m.mac = r.u64();
    m.found = r.boolean();
    m.sw = r.u32();
    m.port = r.u16();
    return m;
  }
};

/// One directory bucket: the value of one "seattle.hosts" cell.
struct HostBucket {
  static constexpr std::string_view kTypeName = "seattle.bucket";

  struct Entry {
    std::uint64_t mac = 0;
    SwitchId sw = 0;
    std::uint16_t port = 0;
  };
  std::vector<Entry> entries;

  const Entry* find(std::uint64_t mac) const {
    for (const Entry& e : entries) {
      if (e.mac == mac) return &e;
    }
    return nullptr;
  }
  void upsert(std::uint64_t mac, SwitchId sw, std::uint16_t port) {
    for (Entry& e : entries) {
      if (e.mac == mac) {
        e.sw = sw;
        e.port = port;
        return;
      }
    }
    entries.push_back({mac, sw, port});
  }
  bool remove(std::uint64_t mac) {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->mac == mac) {
        entries.erase(it);
        return true;
      }
    }
    return false;
  }

  void encode(ByteWriter& w) const {
    w.varint(entries.size());
    for (const Entry& e : entries) {
      w.u64(e.mac);
      w.u32(e.sw);
      w.u16(e.port);
    }
  }
  static HostBucket decode(ByteReader& r) {
    HostBucket b;
    std::uint64_t n = r.varint();
    b.entries.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      HostBucket::Entry e;
      e.mac = r.u64();
      e.sw = r.u32();
      e.port = r.u16();
      b.entries.push_back(e);
    }
    return b;
  }
};

class HostLocationApp : public App {
 public:
  /// `n_buckets` controls sharding granularity (cells = buckets).
  explicit HostLocationApp(std::size_t n_buckets = 64);

  static constexpr std::string_view kDict = "seattle.hosts";

  static std::string bucket_key(std::uint64_t mac, std::size_t n_buckets) {
    return std::to_string(fnv1a64(std::string_view(
                              reinterpret_cast<const char*>(&mac),
                              sizeof mac)) %
                          n_buckets);
  }
};

}  // namespace beehive
