// Kandoo-style local control application (paper §4, "Kandoo"): an L2
// learning switch.
//
// Its state dictionary is keyed by switch id and every handler accesses a
// single key, so the platform conceives one cell — hence one bee — per
// switch. In a multi-hive deployment the bees naturally end up (or are
// migrated) next to each switch's driver, reproducing Kandoo's "local
// controllers close to switches" without the developer choosing placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/app.h"
#include "msg/codec.h"

namespace beehive {

/// Per-switch MAC learning table: the value of one "lsw.macs" cell.
struct MacTable {
  static constexpr std::string_view kTypeName = "lsw.mac_table";

  struct Entry {
    std::uint64_t mac = 0;
    std::uint16_t port = 0;
  };
  std::vector<Entry> entries;

  const Entry* find(std::uint64_t mac) const {
    for (const Entry& e : entries) {
      if (e.mac == mac) return &e;
    }
    return nullptr;
  }
  void learn(std::uint64_t mac, std::uint16_t port) {
    for (Entry& e : entries) {
      if (e.mac == mac) {
        e.port = port;
        return;
      }
    }
    entries.push_back({mac, port});
  }

  void encode(ByteWriter& w) const {
    w.varint(entries.size());
    for (const Entry& e : entries) {
      w.u64(e.mac);
      w.u16(e.port);
    }
  }
  static MacTable decode(ByteReader& r) {
    MacTable t;
    std::uint64_t n = r.varint();
    t.entries.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      MacTable::Entry e;
      e.mac = r.u64();
      e.port = r.u16();
      t.entries.push_back(e);
    }
    return t;
  }
};

class LearningSwitchApp : public App {
 public:
  LearningSwitchApp();

  static constexpr std::string_view kDict = "lsw.macs";
};

}  // namespace beehive
