// OpenFlow-like message set shared by the network substrate and the
// control applications. Names follow the paper's TE pseudo-code
// (SwitchJoined, StatReply, FlowMod, ...) plus the messages the use-case
// applications of §4 need (PacketIn/Out for Kandoo-style local apps, NIB
// and routing updates, virtual-network events).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msg/codec.h"
#include "util/types.h"

namespace beehive {

/// Canonical state-dictionary key for a switch.
inline std::string switch_key(SwitchId sw) { return std::to_string(sw); }

/// Canonical state-dictionary key for a link between two switches.
inline std::string link_key(SwitchId a, SwitchId b) {
  return std::to_string(a) + "-" + std::to_string(b);
}

// ---------------------------------------------------------------------------
// Switch lifecycle & statistics (TE pipeline, paper Figure 2)
// ---------------------------------------------------------------------------

/// Raw IO event: a switch's control connection reached its master hive.
/// Consumed by the OpenFlow driver, which emits SwitchJoined for apps.
struct SwitchConnected {
  static constexpr std::string_view kTypeName = "of.switch_connected";
  SwitchId sw = 0;

  void encode(ByteWriter& w) const { w.u32(sw); }
  static SwitchConnected decode(ByteReader& r) { return {r.u32()}; }
};

struct SwitchJoined {
  static constexpr std::string_view kTypeName = "of.switch_joined";
  SwitchId sw = 0;
  HiveId master = 0;

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u32(master);
  }
  static SwitchJoined decode(ByteReader& r) {
    SwitchJoined m;
    m.sw = r.u32();
    m.master = r.u32();
    return m;
  }
};

struct FlowStatQuery {
  static constexpr std::string_view kTypeName = "of.flow_stat_query";
  SwitchId sw = 0;

  void encode(ByteWriter& w) const { w.u32(sw); }
  static FlowStatQuery decode(ByteReader& r) { return {r.u32()}; }
};

struct FlowStat {
  static constexpr std::string_view kTypeName = "of.flow_stat";
  std::uint32_t flow = 0;
  double rate_kbps = 0.0;   ///< measured over the last sampling interval
  std::uint64_t bytes = 0;  ///< cumulative

  void encode(ByteWriter& w) const {
    w.u32(flow);
    w.f64(rate_kbps);
    w.varint(bytes);
  }
  static FlowStat decode(ByteReader& r) {
    FlowStat s;
    s.flow = r.u32();
    s.rate_kbps = r.f64();
    s.bytes = r.varint();
    return s;
  }
};

/// The paper's StatReply.
struct FlowStatReply {
  static constexpr std::string_view kTypeName = "of.flow_stat_reply";
  SwitchId sw = 0;
  std::vector<FlowStat> stats;

  void encode(ByteWriter& w) const {
    w.u32(sw);
    encode_vector(w, stats);
  }
  static FlowStatReply decode(ByteReader& r) {
    FlowStatReply m;
    m.sw = r.u32();
    m.stats = decode_vector<FlowStat>(r);
    return m;
  }
};

struct FlowMod {
  static constexpr std::string_view kTypeName = "of.flow_mod";
  SwitchId sw = 0;
  std::uint32_t flow = 0;
  std::uint32_t new_path = 0;  ///< opaque path selector for the switch

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u32(flow);
    w.u32(new_path);
  }
  static FlowMod decode(ByteReader& r) {
    FlowMod m;
    m.sw = r.u32();
    m.flow = r.u32();
    m.new_path = r.u32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

struct LinkDiscovered {
  static constexpr std::string_view kTypeName = "disc.link_discovered";
  SwitchId a = 0;
  SwitchId b = 0;

  void encode(ByteWriter& w) const {
    w.u32(a);
    w.u32(b);
  }
  static LinkDiscovered decode(ByteReader& r) {
    LinkDiscovered m;
    m.a = r.u32();
    m.b = r.u32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Traffic engineering (internal events of the decoupled design, §5)
// ---------------------------------------------------------------------------

/// Aggregated event Collect sends to Route in the decoupled TE: a flow
/// crossed the re-routing threshold delta.
struct FlowRateAlarm {
  static constexpr std::string_view kTypeName = "te.flow_rate_alarm";
  SwitchId sw = 0;
  std::uint32_t flow = 0;
  double rate_kbps = 0.0;

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u32(flow);
    w.f64(rate_kbps);
  }
  static FlowRateAlarm decode(ByteReader& r) {
    FlowRateAlarm m;
    m.sw = r.u32();
    m.flow = r.u32();
    m.rate_kbps = r.f64();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Packets (Kandoo-style local apps, §4)
// ---------------------------------------------------------------------------

struct PacketIn {
  static constexpr std::string_view kTypeName = "of.packet_in";
  SwitchId sw = 0;
  std::uint64_t src_mac = 0;
  std::uint64_t dst_mac = 0;
  std::uint16_t in_port = 0;

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u64(src_mac);
    w.u64(dst_mac);
    w.u16(in_port);
  }
  static PacketIn decode(ByteReader& r) {
    PacketIn m;
    m.sw = r.u32();
    m.src_mac = r.u64();
    m.dst_mac = r.u64();
    m.in_port = r.u16();
    return m;
  }
};

inline constexpr std::uint16_t kFloodPort = 0xffff;

struct PacketOut {
  static constexpr std::string_view kTypeName = "of.packet_out";
  SwitchId sw = 0;
  std::uint64_t dst_mac = 0;
  std::uint16_t out_port = 0;  ///< kFloodPort = flood

  void encode(ByteWriter& w) const {
    w.u32(sw);
    w.u64(dst_mac);
    w.u16(out_port);
  }
  static PacketOut decode(ByteReader& r) {
    PacketOut m;
    m.sw = r.u32();
    m.dst_mac = r.u64();
    m.out_port = r.u16();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Distributed routing (per-prefix RIB cells, §4 "Routing")
// ---------------------------------------------------------------------------

struct RouteAnnounce {
  static constexpr std::string_view kTypeName = "rt.announce";
  std::uint32_t prefix = 0;  ///< network byte-order IPv4 prefix
  std::uint8_t mask_len = 0;
  std::uint32_t next_hop = 0;
  std::uint32_t metric = 0;

  void encode(ByteWriter& w) const {
    w.u32(prefix);
    w.u8(mask_len);
    w.u32(next_hop);
    w.u32(metric);
  }
  static RouteAnnounce decode(ByteReader& r) {
    RouteAnnounce m;
    m.prefix = r.u32();
    m.mask_len = r.u8();
    m.next_hop = r.u32();
    m.metric = r.u32();
    return m;
  }
};

struct RouteWithdraw {
  static constexpr std::string_view kTypeName = "rt.withdraw";
  std::uint32_t prefix = 0;
  std::uint8_t mask_len = 0;

  void encode(ByteWriter& w) const {
    w.u32(prefix);
    w.u8(mask_len);
  }
  static RouteWithdraw decode(ByteReader& r) {
    RouteWithdraw m;
    m.prefix = r.u32();
    m.mask_len = r.u8();
    return m;
  }
};

struct RouteQuery {
  static constexpr std::string_view kTypeName = "rt.query";
  std::uint32_t addr = 0;
  std::uint64_t query_id = 0;

  void encode(ByteWriter& w) const {
    w.u32(addr);
    w.u64(query_id);
  }
  static RouteQuery decode(ByteReader& r) {
    RouteQuery m;
    m.addr = r.u32();
    m.query_id = r.u64();
    return m;
  }
};

struct RouteResult {
  static constexpr std::string_view kTypeName = "rt.result";
  std::uint64_t query_id = 0;
  bool found = false;
  std::uint32_t prefix = 0;
  std::uint8_t mask_len = 0;
  std::uint32_t next_hop = 0;

  void encode(ByteWriter& w) const {
    w.u64(query_id);
    w.boolean(found);
    w.u32(prefix);
    w.u8(mask_len);
    w.u32(next_hop);
  }
  static RouteResult decode(ByteReader& r) {
    RouteResult m;
    m.query_id = r.u64();
    m.found = r.boolean();
    m.prefix = r.u32();
    m.mask_len = r.u8();
    m.next_hop = r.u32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Network virtualization (per-VN sharding, §4)
// ---------------------------------------------------------------------------

using VnId = std::uint32_t;

struct VnCreate {
  static constexpr std::string_view kTypeName = "nv.create";
  VnId vn = 0;

  void encode(ByteWriter& w) const { w.u32(vn); }
  static VnCreate decode(ByteReader& r) { return {r.u32()}; }
};

struct VnAttach {
  static constexpr std::string_view kTypeName = "nv.attach";
  VnId vn = 0;
  SwitchId sw = 0;
  std::uint16_t port = 0;
  std::uint64_t mac = 0;

  void encode(ByteWriter& w) const {
    w.u32(vn);
    w.u32(sw);
    w.u16(port);
    w.u64(mac);
  }
  static VnAttach decode(ByteReader& r) {
    VnAttach m;
    m.vn = r.u32();
    m.sw = r.u32();
    m.port = r.u16();
    m.mac = r.u64();
    return m;
  }
};

struct VnDetach {
  static constexpr std::string_view kTypeName = "nv.detach";
  VnId vn = 0;
  SwitchId sw = 0;
  std::uint64_t mac = 0;

  void encode(ByteWriter& w) const {
    w.u32(vn);
    w.u32(sw);
    w.u64(mac);
  }
  static VnDetach decode(ByteReader& r) {
    VnDetach m;
    m.vn = r.u32();
    m.sw = r.u32();
    m.mac = r.u64();
    return m;
  }
};

/// Emitted by the virtualization app: install an overlay tunnel between two
/// switches for a virtual network.
struct TunnelInstall {
  static constexpr std::string_view kTypeName = "nv.tunnel_install";
  VnId vn = 0;
  SwitchId sw_a = 0;
  SwitchId sw_b = 0;

  void encode(ByteWriter& w) const {
    w.u32(vn);
    w.u32(sw_a);
    w.u32(sw_b);
  }
  static TunnelInstall decode(ByteReader& r) {
    TunnelInstall m;
    m.vn = r.u32();
    m.sw_a = r.u32();
    m.sw_b = r.u32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// ONIX NIB emulation (§4)
// ---------------------------------------------------------------------------

using NodeId = std::uint64_t;

struct NibNodeUpdate {
  static constexpr std::string_view kTypeName = "nib.node_update";
  NodeId node = 0;
  std::string attr;
  std::string value;

  void encode(ByteWriter& w) const {
    w.u64(node);
    w.str(attr);
    w.str(value);
  }
  static NibNodeUpdate decode(ByteReader& r) {
    NibNodeUpdate m;
    m.node = r.u64();
    m.attr = r.str();
    m.value = r.str();
    return m;
  }
};

struct NibLinkAdd {
  static constexpr std::string_view kTypeName = "nib.link_add";
  NodeId from = 0;
  NodeId to = 0;

  void encode(ByteWriter& w) const {
    w.u64(from);
    w.u64(to);
  }
  static NibLinkAdd decode(ByteReader& r) {
    NibLinkAdd m;
    m.from = r.u64();
    m.to = r.u64();
    return m;
  }
};

struct NibQuery {
  static constexpr std::string_view kTypeName = "nib.query";
  NodeId node = 0;
  std::uint64_t query_id = 0;

  void encode(ByteWriter& w) const {
    w.u64(node);
    w.u64(query_id);
  }
  static NibQuery decode(ByteReader& r) {
    NibQuery m;
    m.node = r.u64();
    m.query_id = r.u64();
    return m;
  }
};

struct NibReply {
  static constexpr std::string_view kTypeName = "nib.reply";
  std::uint64_t query_id = 0;
  bool found = false;
  std::vector<std::string> attrs;   ///< "attr=value" pairs
  std::vector<NodeId> neighbors;

  void encode(ByteWriter& w) const {
    w.u64(query_id);
    w.boolean(found);
    w.varint(attrs.size());
    for (const auto& a : attrs) w.str(a);
    w.varint(neighbors.size());
    for (NodeId n : neighbors) w.u64(n);
  }
  static NibReply decode(ByteReader& r) {
    NibReply m;
    m.query_id = r.u64();
    m.found = r.boolean();
    std::uint64_t na = r.varint();
    for (std::uint64_t i = 0; i < na; ++i) m.attrs.push_back(r.str());
    std::uint64_t nn = r.varint();
    for (std::uint64_t i = 0; i < nn; ++i) m.neighbors.push_back(r.u64());
    return m;
  }
};

/// Registers every message type above with the global MsgTypeRegistry.
/// Idempotent; call before constructing clusters that decode wire frames.
void register_app_messages();

}  // namespace beehive
