#include "apps/kandoo_elephant.h"

#include "core/context.h"
#include "msg/registry.h"

namespace beehive {

ElephantDetectorApp::ElephantDetectorApp(KandooConfig config)
    : App("kandoo.detect") {
  register_app_messages();
  MsgTypeRegistry::instance().ensure<ElephantDetected>();
  const std::string dict(kDict);

  // A switch joining creates the detector's local cell on its master hive.
  on<SwitchJoined>(
      [dict](const SwitchJoined& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [dict](AppContext& ctx, const SwitchJoined& m) {
        if (ctx.state().contains(dict, switch_key(m.sw))) return;
        FlowSeriesEntry entry;
        entry.sw = m.sw;
        ctx.state().put_as(dict, switch_key(m.sw), entry);
      });

  // Frequent local polling: Kandoo's whole point is that this heavy
  // query/reply traffic stays inside each switch's local controller.
  every_foreach(config.poll_period, dict,
                [dict](AppContext& ctx, const MessageEnvelope&) {
                  std::vector<SwitchId> switches;
                  ctx.state().for_each(
                      dict, [&switches](const std::string&, const Bytes& v) {
                        switches.push_back(
                            decode_from_bytes<FlowSeriesEntry>(v).sw);
                      });
                  for (SwitchId sw : switches) {
                    ctx.emit(FlowStatQuery{sw});
                  }
                });

  // Detection: emit a (rare) ElephantDetected on upward threshold
  // crossings, with hysteresis so re-detections stay bounded.
  on<FlowStatReply>(
      [dict](const FlowStatReply& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [dict, config](AppContext& ctx, const FlowStatReply& m) {
        auto entry =
            ctx.state().get_as<FlowSeriesEntry>(dict, switch_key(m.sw));
        if (!entry) return;
        entry->latest = m.stats;
        entry->samples += 1;
        for (const FlowStat& stat : m.stats) {
          if (stat.rate_kbps > config.elephant_kbps) {
            if (!entry->is_flagged(stat.flow)) {
              entry->flag(stat.flow);
              ctx.emit(ElephantDetected{m.sw, stat.flow, stat.rate_kbps});
            }
          } else if (stat.rate_kbps <
                     config.elephant_kbps * config.clear_fraction) {
            entry->unflag(stat.flow);
          }
        }
        ctx.state().put_as(dict, switch_key(m.sw), *entry);
      });
}

ElephantRerouteApp::ElephantRerouteApp() : App("kandoo.reroute") {
  register_app_messages();
  MsgTypeRegistry::instance().ensure<ElephantDetected>();
  const std::string dict(kDict);

  // Root app: whole-dict map = one centralized bee, as in Kandoo's root
  // controller — but placed by the platform, not by the developer.
  on<ElephantDetected>(
      [dict](const ElephantDetected&) { return CellSet::whole_dict(dict); },
      [dict](AppContext& ctx, const ElephantDetected& m) {
        RouteLedger ledger =
            ctx.state().get_as<RouteLedger>(dict, "ledger").value_or(
                RouteLedger{});
        ledger.alarms_seen += 1;
        auto path =
            static_cast<std::uint32_t>(1 + ledger.flow_mods_emitted % 3);
        ledger.flow_mods_emitted += 1;
        ctx.state().put_as(dict, "ledger", ledger);
        ctx.emit(FlowMod{m.sw, m.flow, path});
      });
}

}  // namespace beehive
