#include "apps/te_naive.h"

#include "core/context.h"

namespace beehive {

TENaiveApp::TENaiveApp(TEConfig config) : App("te.naive") {
  register_app_messages();
  const std::string S(kStatsDict);
  const std::string T(kTopoDict);

  // Init: on SwitchJoined, with S[joined.switch].
  on<SwitchJoined>(
      [S](const SwitchJoined& m) {
        return CellSet::single(S, switch_key(m.sw));
      },
      [S](AppContext& ctx, const SwitchJoined& m) {
        if (ctx.state().contains(S, switch_key(m.sw))) return;
        FlowSeriesEntry entry;
        entry.sw = m.sw;
        ctx.state().put_as(S, switch_key(m.sw), entry);
      });

  // Topology: links land in T. Each key intersects Route's (T, "*"), so
  // they collocate with Route — consistent with "only used as a whole".
  on<LinkDiscovered>(
      [T](const LinkDiscovered& m) {
        return CellSet::single(T, link_key(m.a, m.b));
      },
      [T](AppContext& ctx, const LinkDiscovered& m) {
        ctx.state().put_as(T, link_key(m.a, m.b), m);
      });

  // Collect: on StatReply, with S[reply.switch].
  on<FlowStatReply>(
      [S](const FlowStatReply& m) {
        return CellSet::single(S, switch_key(m.sw));
      },
      [S](AppContext& ctx, const FlowStatReply& m) {
        auto entry = ctx.state().get_as<FlowSeriesEntry>(S, switch_key(m.sw));
        if (!entry) return;  // stats for a switch we never initialized
        entry->latest = m.stats;
        entry->samples += 1;
        ctx.state().put_as(S, switch_key(m.sw), *entry);
      });

  // Query: on TimeOut(1s), foreach switch in S.
  every_foreach(config.query_period, S,
                [S](AppContext& ctx, const MessageEnvelope&) {
                  std::vector<SwitchId> switches;
                  ctx.state().for_each(
                      S, [&switches](const std::string&, const Bytes& v) {
                        switches.push_back(
                            decode_from_bytes<FlowSeriesEntry>(v).sw);
                      });
                  for (SwitchId sw : switches) {
                    ctx.emit(FlowStatQuery{sw});
                  }
                });

  // Route: on TimeOut(1s), with S and T — the centralizing whole-dict map.
  every(
      config.route_period,
      [S, T](const MessageEnvelope&) {
        return CellSet{{S, std::string(kAllKeys)},
                       {T, std::string(kAllKeys)}};
      },
      [S, config](AppContext& ctx, const MessageEnvelope&) {
        struct Change {
          SwitchId sw;
          std::uint32_t flow;
        };
        std::vector<Change> to_reroute;
        std::vector<FlowSeriesEntry> updated;
        ctx.state().for_each(
            S, [&](const std::string&, const Bytes& v) {
              FlowSeriesEntry entry = decode_from_bytes<FlowSeriesEntry>(v);
              bool dirty = false;
              for (const FlowStat& stat : entry.latest) {
                if (stat.rate_kbps > config.delta_kbps &&
                    !entry.is_flagged(stat.flow)) {
                  to_reroute.push_back({entry.sw, stat.flow});
                  entry.flag(stat.flow);
                  dirty = true;
                }
              }
              if (dirty) updated.push_back(std::move(entry));
            });
        for (FlowSeriesEntry& entry : updated) {
          ctx.state().put_as(S, switch_key(entry.sw), entry);
        }
        std::uint32_t path = 1;
        for (const Change& c : to_reroute) {
          // "Use T to reroute flows": pick an alternate path selector.
          ctx.emit(FlowMod{c.sw, c.flow, path});
        }
      });
}

}  // namespace beehive
