#include "apps/learning_switch.h"

#include "apps/messages.h"
#include "core/context.h"

namespace beehive {

LearningSwitchApp::LearningSwitchApp() : App("learning_switch") {
  register_app_messages();
  const std::string dict(kDict);

  on<PacketIn>(
      [dict](const PacketIn& m) {
        return CellSet::single(dict, switch_key(m.sw));
      },
      [dict](AppContext& ctx, const PacketIn& m) {
        MacTable table = ctx.state()
                             .get_as<MacTable>(dict, switch_key(m.sw))
                             .value_or(MacTable{});
        table.learn(m.src_mac, m.in_port);
        const MacTable::Entry* known = table.find(m.dst_mac);
        ctx.state().put_as(dict, switch_key(m.sw), table);
        ctx.emit(PacketOut{m.sw, m.dst_mac,
                           known != nullptr ? known->port : kFloodPort});
      });
}

}  // namespace beehive
