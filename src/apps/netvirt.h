// Network virtualization application (paper §4, "Network Virtualization",
// in the style of NVP): messages of each virtual network are processed
// independently, so state is sharded by virtual-network id — one cell, one
// bee per VN, and the platform guarantees all events of a VN serialize
// through its bee.
//
// On attachment the app computes the full-mesh overlay delta: one
// TunnelInstall per (new endpoint switch, existing endpoint switch) pair.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/messages.h"
#include "core/app.h"
#include "msg/codec.h"

namespace beehive {

/// Per-VN state: the value of one "nv.vn" cell.
struct VnState {
  static constexpr std::string_view kTypeName = "nv.vn_state";

  VnId vn = 0;
  std::vector<VnAttach> endpoints;

  bool has_switch(SwitchId sw) const {
    return std::any_of(endpoints.begin(), endpoints.end(),
                       [sw](const VnAttach& e) { return e.sw == sw; });
  }

  void encode(ByteWriter& w) const {
    w.u32(vn);
    encode_vector(w, endpoints);
  }
  static VnState decode(ByteReader& r) {
    VnState s;
    s.vn = r.u32();
    s.endpoints = decode_vector<VnAttach>(r);
    return s;
  }
};

class NetVirtApp : public App {
 public:
  NetVirtApp();

  static constexpr std::string_view kDict = "nv.vn";

  static std::string vn_key(VnId vn) { return std::to_string(vn); }
};

}  // namespace beehive
