#include "apps/host_location.h"

#include "core/context.h"
#include "msg/registry.h"

namespace beehive {

HostLocationApp::HostLocationApp(std::size_t n_buckets)
    : App("seattle.host_location") {
  auto& reg = MsgTypeRegistry::instance();
  reg.ensure<HostRegister>();
  reg.ensure<HostUnregister>();
  reg.ensure<HostLookup>();
  reg.ensure<HostLocation>();
  const std::string dict(kDict);

  on<HostRegister>(
      [dict, n_buckets](const HostRegister& m) {
        return CellSet::single(dict, bucket_key(m.mac, n_buckets));
      },
      [dict, n_buckets](AppContext& ctx, const HostRegister& m) {
        const std::string key = bucket_key(m.mac, n_buckets);
        HostBucket bucket =
            ctx.state().get_as<HostBucket>(dict, key).value_or(HostBucket{});
        bucket.upsert(m.mac, m.sw, m.port);
        ctx.state().put_as(dict, key, bucket);
      });

  on<HostUnregister>(
      [dict, n_buckets](const HostUnregister& m) {
        return CellSet::single(dict, bucket_key(m.mac, n_buckets));
      },
      [dict, n_buckets](AppContext& ctx, const HostUnregister& m) {
        const std::string key = bucket_key(m.mac, n_buckets);
        auto bucket = ctx.state().get_as<HostBucket>(dict, key);
        if (!bucket) return;
        if (bucket->remove(m.mac)) {
          ctx.state().put_as(dict, key, *bucket);
        }
      });

  on<HostLookup>(
      [dict, n_buckets](const HostLookup& m) {
        return CellSet::single(dict, bucket_key(m.mac, n_buckets));
      },
      [dict, n_buckets](AppContext& ctx, const HostLookup& m) {
        const std::string key = bucket_key(m.mac, n_buckets);
        auto bucket = ctx.state().get_as<HostBucket>(dict, key);
        HostLocation reply;
        reply.query_id = m.query_id;
        reply.mac = m.mac;
        if (bucket) {
          if (const HostBucket::Entry* e = bucket->find(m.mac)) {
            reply.found = true;
            reply.sw = e->sw;
            reply.port = e->port;
          }
        }
        ctx.emit(std::move(reply));
      });
}

}  // namespace beehive
