// Link discovery application.
//
// Announces topology: when a switch joins, its uplink to the parent switch
// is advertised as a LinkDiscovered message (the paper's TE "builds its own
// view of the network topology whenever a switch joins the network or when
// a link is detected by a discovery application"). One cell per switch, so
// discovery bees distribute with the switches.
#pragma once

#include "core/app.h"
#include "net/topology.h"

namespace beehive {

class DiscoveryApp : public App {
 public:
  /// `topology` must outlive the app.
  explicit DiscoveryApp(const TreeTopology* topology);

  static constexpr std::string_view kDict = "disc.sw";
};

}  // namespace beehive
