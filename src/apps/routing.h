// Distributed routing application (paper §4, "Routing"): the RIB is stored
// "on a prefix basis", producing fine-grained cells that the platform
// places throughout the cluster.
//
// Cells are sharded by the top octet of the prefix (one cell per /8
// bucket): announcements, withdrawals and lookups for addresses under the
// same /8 always hit the same bee, and longest-prefix match runs entirely
// within that bee's cell. Queries return RouteResult events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/messages.h"
#include "core/app.h"
#include "msg/codec.h"

namespace beehive {

/// One /8 shard of the RIB: the value of one "rt.rib" cell.
struct PrefixTable {
  static constexpr std::string_view kTypeName = "rt.prefix_table";

  std::vector<RouteAnnounce> routes;

  void upsert(const RouteAnnounce& route) {
    for (RouteAnnounce& r : routes) {
      if (r.prefix == route.prefix && r.mask_len == route.mask_len) {
        r = route;
        return;
      }
    }
    routes.push_back(route);
  }

  bool remove(std::uint32_t prefix, std::uint8_t mask_len) {
    for (auto it = routes.begin(); it != routes.end(); ++it) {
      if (it->prefix == prefix && it->mask_len == mask_len) {
        routes.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Longest-prefix match within the shard.
  std::optional<RouteAnnounce> lookup(std::uint32_t addr) const {
    std::optional<RouteAnnounce> best;
    for (const RouteAnnounce& r : routes) {
      const std::uint32_t mask =
          r.mask_len == 0 ? 0u : ~0u << (32 - r.mask_len);
      if ((addr & mask) != (r.prefix & mask)) continue;
      if (!best || r.mask_len > best->mask_len ||
          (r.mask_len == best->mask_len && r.metric < best->metric)) {
        best = r;
      }
    }
    return best;
  }

  void encode(ByteWriter& w) const { encode_vector(w, routes); }
  static PrefixTable decode(ByteReader& r) {
    PrefixTable t;
    t.routes = decode_vector<RouteAnnounce>(r);
    return t;
  }
};

class RoutingApp : public App {
 public:
  RoutingApp();

  static constexpr std::string_view kDict = "rt.rib";

  /// Shard key: decimal top octet ("10" for 10.0.0.0/8).
  static std::string bucket_key(std::uint32_t addr) {
    return std::to_string(addr >> 24);
  }
};

}  // namespace beehive
