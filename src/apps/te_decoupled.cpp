#include "apps/te_decoupled.h"

#include "core/context.h"

namespace beehive {

TEDecoupledApp::TEDecoupledApp(TEConfig config) : App("te.decoupled") {
  register_app_messages();
  const std::string S(kStatsDict);
  const std::string R(kRouteDict);
  const std::string T(kTopoDict);

  // Init — unchanged from the naive design.
  on<SwitchJoined>(
      [S](const SwitchJoined& m) {
        return CellSet::single(S, switch_key(m.sw));
      },
      [S](AppContext& ctx, const SwitchJoined& m) {
        if (ctx.state().contains(S, switch_key(m.sw))) return;
        FlowSeriesEntry entry;
        entry.sw = m.sw;
        ctx.state().put_as(S, switch_key(m.sw), entry);
      });

  // Topology feeds Route's bee: link keys intersect Route's (T, "*").
  on<LinkDiscovered>(
      [T](const LinkDiscovered& m) {
        return CellSet::single(T, link_key(m.a, m.b));
      },
      [T](AppContext& ctx, const LinkDiscovered& m) {
        ctx.state().put_as(T, link_key(m.a, m.b), m);
      });

  // Collect — now also the aggregation point: it flags threshold
  // crossings and notifies Route with a small FlowRateAlarm instead of
  // sharing the S dictionary with it.
  on<FlowStatReply>(
      [S](const FlowStatReply& m) {
        return CellSet::single(S, switch_key(m.sw));
      },
      [S, config](AppContext& ctx, const FlowStatReply& m) {
        auto entry = ctx.state().get_as<FlowSeriesEntry>(S, switch_key(m.sw));
        if (!entry) return;
        entry->latest = m.stats;
        entry->samples += 1;
        for (const FlowStat& stat : m.stats) {
          if (stat.rate_kbps > config.delta_kbps) {
            if (!entry->is_flagged(stat.flow)) {
              entry->flag(stat.flow);
              ctx.emit(FlowRateAlarm{m.sw, stat.flow, stat.rate_kbps});
            }
          } else if (stat.rate_kbps <
                     config.delta_kbps * config.clear_fraction) {
            entry->unflag(stat.flow);  // hysteresis: re-arm the alarm
          }
        }
        ctx.state().put_as(S, switch_key(m.sw), *entry);
      });

  // Query — unchanged.
  every_foreach(config.query_period, S,
                [S](AppContext& ctx, const MessageEnvelope&) {
                  std::vector<SwitchId> switches;
                  ctx.state().for_each(
                      S, [&switches](const std::string&, const Bytes& v) {
                        switches.push_back(
                            decode_from_bytes<FlowSeriesEntry>(v).sw);
                      });
                  for (SwitchId sw : switches) {
                    ctx.emit(FlowStatQuery{sw});
                  }
                });

  // Route — reacts to alarms; owns only R (whole) and T (whole), both
  // small. No shared state with Collect/Query anymore.
  on<FlowRateAlarm>(
      [R, T](const FlowRateAlarm&) {
        return CellSet{{R, std::string(kAllKeys)},
                       {T, std::string(kAllKeys)}};
      },
      [R](AppContext& ctx, const FlowRateAlarm& m) {
        RouteLedger ledger =
            ctx.state().get_as<RouteLedger>(R, "ledger").value_or(
                RouteLedger{});
        ledger.alarms_seen += 1;
        // "Use T to reroute": derive an alternate path selector. The
        // ledger makes selection stateful (round-robin over paths).
        auto path = static_cast<std::uint32_t>(
            1 + ledger.flow_mods_emitted % 3);
        ledger.flow_mods_emitted += 1;
        ctx.state().put_as(R, "ledger", ledger);
        ctx.emit(FlowMod{m.sw, m.flow, path});
      });
}

}  // namespace beehive
