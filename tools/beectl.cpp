// beectl — an operator console for a running beehive cluster.
//
//   beectl top [--host H] [--port P] [--sort cost|pressure|latency|msgs]
//              [--interval SECONDS] [--once] [--json]
//   beectl trace [--host H] [--port P] [--limit N]
//
// `top` scrapes the cluster's HTTP exposition endpoint (/status.json for
// the per-hive / per-bee view, /health.json for scores and pressure) and
// renders a refreshing `top`-style table: hives ranked by health, bees
// ranked by the chosen signal. `--once` prints a single frame and exits —
// non-zero when the cluster answered but had nothing to show, so CI smoke
// steps can assert on it. `--json` (implies --once) emits the raw
// /health.json and /status.json bodies as one combined JSON object for
// scripts.
//
// `trace` scrapes /traces.json — the tail-sampled slowest traces with
// critical-path blame (DESIGN.md §11) — and renders each as an ASCII
// waterfall (critical-path segments marked *) plus a cluster-wide blame
// summary: which bucket (queue / handler / serialize / wire / retransmit
// / stall) the p99's wall time actually went to. Exits non-zero when the
// cluster has no assembled traces yet.
//
// Standalone on purpose: plain POSIX sockets and a ~150-line JSON reader,
// no link against the beehive library, so the binary works against any
// reachable exposition port.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON: parses the subset the beehive endpoints emit (objects,
// arrays, numbers, strings, booleans, null). No unicode escapes beyond
// pass-through; numbers are kept as doubles.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  double number(const std::string& key, double fallback = 0.0) const {
    const Json* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->num : fallback;
  }
  bool boolean(const std::string& key) const {
    const Json* v = find(key);
    return v != nullptr && v->kind == Kind::kBool && v->b;
  }
  std::string text(const std::string& key,
                   const std::string& fallback = "") const {
    const Json* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) { return value(out) && (skip_ws(), pos_ == s_.size()); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':  // keep the escape verbatim; labels here are ASCII
            out += "\\u";
            break;
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        Json v;
        if (!value(v)) return false;
        out.fields.emplace(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') return ++pos_, true;
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
      while (true) {
        Json v;
        if (!value(v)) return false;
        out.items.push_back(std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') return ++pos_, true;
        return false;
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return string(out.str);
    }
    if (c == 't') { out.kind = Json::Kind::kBool; out.b = true; return literal("true"); }
    if (c == 'f') { out.kind = Json::Kind::kBool; out.b = false; return literal("false"); }
    if (c == 'n') { out.kind = Json::Kind::kNull; return literal("null"); }
    // number
    char* end = nullptr;
    out.num = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    out.kind = Json::Kind::kNumber;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// HTTP GET (blocking, HTTP/1.0, Connection: close — matches the server).
// ---------------------------------------------------------------------------

/// Returns the response body, or nullopt-style failure via `ok`. `status`
/// receives the HTTP status code (0 when the request never completed).
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int& status) {
  status = 0;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0) {
    return {};
  }
  std::unique_ptr<addrinfo, decltype(&::freeaddrinfo)> guard(res,
                                                             &::freeaddrinfo);
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) return {};

  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) { ::close(fd); return {}; }
    off += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.compare(0, 5, "HTTP/") != 0) return {};
  if (auto sp = raw.find(' '); sp != std::string::npos) {
    status = std::atoi(raw.c_str() + sp + 1);
  }
  auto body_at = raw.find("\r\n\r\n");
  return body_at == std::string::npos ? std::string{}
                                      : raw.substr(body_at + 4);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 9780;
  std::string sort = "cost";  // cost | pressure | latency | msgs
  int interval_s = 2;
  bool once = false;
  bool json = false;       // top --json: raw combined JSON, single shot
  std::size_t limit = 5;   // trace --limit: max traces rendered
};

struct HiveRow {
  std::uint64_t hive = 0;
  double score = 100.0;
  double pressure = 0.0;
  double retx = 0.0;
  std::uint64_t p99_us = 0;
  std::uint64_t runq = 0;
  std::uint64_t ringq = 0;  ///< ring-occupancy hwm, last window (§12)
  std::uint64_t queue = 0;
  std::uint64_t cost_us = 0;
  double shed_per_s = 0.0;  ///< overload sheds per second, last window
  long long credits = -1;   ///< tightest remaining link credit (-1 = unlimited)
  bool degraded = false;
  bool suspected = false;
};

struct ShardRow {
  std::uint64_t shard = 0;
  std::uint64_t ops = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t lock_wait_us = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t lease_term = 0;
};

struct BeeRow {
  std::uint64_t bee = 0;
  std::string app;
  std::uint64_t hive = 0;
  std::uint64_t cells = 0;
  std::uint64_t queue = 0;
  std::uint64_t msgs = 0;
  std::uint64_t cost_us = 0;
  std::uint64_t p99_us = 0;
  bool pinned = false;
};

double bee_sort_key(const BeeRow& b, const std::string& sort,
                    const std::map<std::uint64_t, double>& hive_pressure) {
  if (sort == "pressure") {
    auto it = hive_pressure.find(b.hive);
    return it == hive_pressure.end() ? 0.0 : it->second;
  }
  if (sort == "latency") return static_cast<double>(b.p99_us);
  if (sort == "msgs") return static_cast<double>(b.msgs);
  return static_cast<double>(b.cost_us);  // "cost"
}

/// Renders one frame. Returns the number of rows shown (hives + bees) so
/// --once can exit non-zero on an empty view.
std::size_t render_frame(const Options& opt, bool clear_screen) {
  int health_status = 0;
  int status_status = 0;
  const std::string health_body =
      http_get(opt.host, opt.port, "/health.json", health_status);
  const std::string status_body =
      http_get(opt.host, opt.port, "/status.json", status_status);

  std::vector<HiveRow> hives;
  std::vector<ShardRow> shards;
  std::map<std::uint64_t, double> hive_pressure;
  double min_score = 100.0;
  if (health_status == 200) {
    Json root;
    if (JsonParser(health_body).parse(root)) {
      min_score = root.number("min_score", 100.0);
      if (const Json* arr = root.find("registry_shards");
          arr != nullptr && arr->kind == Json::Kind::kArray) {
        for (const Json& s : arr->items) {
          ShardRow row;
          row.shard = static_cast<std::uint64_t>(s.number("shard"));
          row.ops = static_cast<std::uint64_t>(s.number("ops"));
          row.lock_waits =
              static_cast<std::uint64_t>(s.number("lock_waits"));
          row.lock_wait_us =
              static_cast<std::uint64_t>(s.number("lock_wait_us"));
          row.invalidations =
              static_cast<std::uint64_t>(s.number("invalidations"));
          row.lease_term =
              static_cast<std::uint64_t>(s.number("lease_term"));
          shards.push_back(row);
        }
      }
      if (const Json* arr = root.find("hives");
          arr != nullptr && arr->kind == Json::Kind::kArray) {
        for (const Json& h : arr->items) {
          HiveRow row;
          row.hive = static_cast<std::uint64_t>(h.number("hive"));
          row.score = h.number("score", 100.0);
          row.pressure = h.number("pressure");
          row.retx = h.number("retransmit_rate");
          row.p99_us = static_cast<std::uint64_t>(h.number("handler_p99_us"));
          row.runq = static_cast<std::uint64_t>(h.number("runq_depth"));
          row.ringq = static_cast<std::uint64_t>(h.number("ringq_hwm"));
          row.queue = static_cast<std::uint64_t>(h.number("queue_depth"));
          row.cost_us =
              static_cast<std::uint64_t>(h.number("cost_us_window"));
          row.shed_per_s = h.number("shed_per_s");
          row.credits = static_cast<long long>(h.number("credits", -1.0));
          row.degraded = h.boolean("degraded");
          row.suspected = h.boolean("suspected");
          hive_pressure[row.hive] = row.pressure;
          hives.push_back(row);
        }
      }
    }
  }

  std::vector<BeeRow> bees;
  if (status_status == 200) {
    Json root;
    if (JsonParser(status_body).parse(root)) {
      if (const Json* arr = root.find("bees");
          arr != nullptr && arr->kind == Json::Kind::kArray) {
        for (const Json& b : arr->items) {
          BeeRow row;
          row.bee = static_cast<std::uint64_t>(b.number("bee"));
          row.app = b.text("app_name");
          if (row.app.empty()) {
            // Older server: only the numeric app id is available.
            row.app = std::to_string(
                static_cast<std::uint64_t>(b.number("app")));
          }
          row.hive = static_cast<std::uint64_t>(b.number("hive"));
          row.cells = static_cast<std::uint64_t>(b.number("cells"));
          row.queue = static_cast<std::uint64_t>(b.number("queue_depth"));
          row.msgs = static_cast<std::uint64_t>(b.number("msgs_in_window"));
          row.cost_us = static_cast<std::uint64_t>(b.number("cost_us"));
          row.p99_us =
              static_cast<std::uint64_t>(b.number("handler_p99_us"));
          row.pinned = b.boolean("pinned");
          bees.push_back(row);
        }
      }
      // Health endpoint down (older server / detached): fall back to the
      // status report's hive rows so the view still shows something.
      if (hives.empty()) {
        if (const Json* arr = root.find("hives");
            arr != nullptr && arr->kind == Json::Kind::kArray) {
          for (const Json& h : arr->items) {
            HiveRow row;
            row.hive = static_cast<std::uint64_t>(h.number("hive"));
            row.pressure = h.number("pressure");
            row.p99_us =
                static_cast<std::uint64_t>(h.number("e2e_p99_us"));
            row.queue = static_cast<std::uint64_t>(h.number("queue_depth"));
            row.cost_us = static_cast<std::uint64_t>(h.number("cost_us"));
            row.shed_per_s = h.number("shed_per_s");
            row.credits = static_cast<long long>(h.number("credits", -1.0));
            row.degraded = h.boolean("degraded");
            row.suspected = h.boolean("suspected");
            hive_pressure[row.hive] = row.pressure;
            hives.push_back(row);
          }
        }
      }
    }
  }

  std::sort(hives.begin(), hives.end(),
            [](const HiveRow& a, const HiveRow& b) {
              return a.score != b.score ? a.score < b.score
                                        : a.hive < b.hive;
            });
  std::sort(bees.begin(), bees.end(),
            [&](const BeeRow& a, const BeeRow& b) {
              const double ka = bee_sort_key(a, opt.sort, hive_pressure);
              const double kb = bee_sort_key(b, opt.sort, hive_pressure);
              return ka != kb ? ka > kb : a.bee < b.bee;
            });

  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);
  std::printf("beectl top — %s:%u   sort=%s   min_score=%.1f", opt.host.c_str(),
              opt.port, opt.sort.c_str(), min_score);
  if (health_status != 200) {
    std::printf("   [/health.json: %s]",
                health_status == 0 ? "unreachable"
                                   : std::to_string(health_status).c_str());
  }
  if (status_status != 200) {
    std::printf("   [/status.json: %s]",
                status_status == 0 ? "unreachable"
                                   : std::to_string(status_status).c_str());
  }
  std::printf("\n\n");

  std::printf("%-5s %7s %9s %8s %9s %6s %6s %6s %10s %8s %8s %s\n", "HIVE",
              "SCORE", "PRESSURE", "RETX", "P99_US", "RUNQ", "RINGQ",
              "QUEUE", "COST_US", "SHED/S", "CREDITS", "");
  for (const HiveRow& h : hives) {
    char credits[24];
    if (h.credits < 0) {
      std::snprintf(credits, sizeof(credits), "%8s", "-");
    } else {
      std::snprintf(credits, sizeof(credits), "%8lld", h.credits);
    }
    std::string flags;
    if (h.degraded) flags += "DEGRADED";
    if (h.suspected) flags += flags.empty() ? "SUSPECTED" : " SUSPECTED";
    std::printf("%-5llu %7.1f %9.3f %8.3f %9llu %6llu %6llu %6llu %10llu "
                "%8.1f %s %s\n",
                static_cast<unsigned long long>(h.hive), h.score, h.pressure,
                h.retx, static_cast<unsigned long long>(h.p99_us),
                static_cast<unsigned long long>(h.runq),
                static_cast<unsigned long long>(h.ringq),
                static_cast<unsigned long long>(h.queue),
                static_cast<unsigned long long>(h.cost_us), h.shed_per_s,
                credits, flags.c_str());
  }
  if (hives.empty()) std::printf("  (no hive rows yet)\n");

  if (!shards.empty()) {
    // Registry contention by shard (DESIGN.md §13): a single hot shard
    // (lock waits piling up) is the signal to re-hash or raise the count.
    std::printf("\n%-5s %12s %8s %10s %8s %6s\n", "SHARD", "OPS", "LOCKW",
                "WAIT_US", "INVAL", "LEASE");
    for (const ShardRow& s : shards) {
      std::printf("%-5llu %12llu %8llu %10llu %8llu %6llu\n",
                  static_cast<unsigned long long>(s.shard),
                  static_cast<unsigned long long>(s.ops),
                  static_cast<unsigned long long>(s.lock_waits),
                  static_cast<unsigned long long>(s.lock_wait_us),
                  static_cast<unsigned long long>(s.invalidations),
                  static_cast<unsigned long long>(s.lease_term));
    }
  }

  std::printf("\n%-20s %-18s %5s %6s %6s %8s %10s %9s %s\n", "BEE", "APP",
              "HIVE", "CELLS", "QUEUE", "MSGS/W", "COST_US", "P99_US", "");
  for (const BeeRow& b : bees) {
    std::printf("%-20llu %-18.18s %5llu %6llu %6llu %8llu %10llu %9llu %s\n",
                static_cast<unsigned long long>(b.bee), b.app.c_str(),
                static_cast<unsigned long long>(b.hive),
                static_cast<unsigned long long>(b.cells),
                static_cast<unsigned long long>(b.queue),
                static_cast<unsigned long long>(b.msgs),
                static_cast<unsigned long long>(b.cost_us),
                static_cast<unsigned long long>(b.p99_us),
                b.pinned ? "pinned" : "");
  }
  if (bees.empty()) std::printf("  (no bee rows yet)\n");
  std::fflush(stdout);
  return hives.size() + bees.size();
}

/// `top --json`: one combined machine-readable snapshot. The endpoint
/// bodies are already JSON, so they are embedded verbatim — scripts get
/// exactly what the server said, not this tool's re-interpretation.
int render_top_json(const Options& opt) {
  int health_status = 0;
  int status_status = 0;
  const std::string health_body =
      http_get(opt.host, opt.port, "/health.json", health_status);
  const std::string status_body =
      http_get(opt.host, opt.port, "/status.json", status_status);
  std::string out = "{\"health\": ";
  out += health_status == 200 ? health_body : std::string("null");
  out += ", \"status\": ";
  out += status_status == 200 ? status_body : std::string("null");
  out += "}\n";
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
  return (health_status == 200 || status_status == 200) ? 0 : 2;
}

// ---------------------------------------------------------------------------
// beectl trace — waterfall + blame rendering of /traces.json
// ---------------------------------------------------------------------------

constexpr int kWaterfallWidth = 44;

/// One waterfall lane: offset spaces + a duration bar ('#', instants '|')
/// positioned proportionally inside the trace's [0, e2e] window.
std::string waterfall_bar(double t_us, double dur_us, double e2e_us) {
  std::string lane(kWaterfallWidth, ' ');
  if (e2e_us <= 0) return lane;
  int off = static_cast<int>(t_us / e2e_us * kWaterfallWidth);
  off = std::max(0, std::min(off, kWaterfallWidth - 1));
  if (dur_us <= 0) {
    lane[static_cast<std::size_t>(off)] = '|';
    return lane;
  }
  int len = static_cast<int>(dur_us / e2e_us * kWaterfallWidth + 0.5);
  len = std::max(1, std::min(len, kWaterfallWidth - off));
  for (int i = 0; i < len; ++i) lane[static_cast<std::size_t>(off + i)] = '#';
  return lane;
}

const char* const kBlameBuckets[] = {"queue_us",      "handler_us",
                                     "serialize_us",  "wire_us",
                                     "retransmit_us", "stall_us"};

void print_blame_line(const char* prefix, const Json& blame, double denom) {
  std::printf("%s", prefix);
  for (const char* bucket : kBlameBuckets) {
    const double us = blame.number(bucket);
    std::string name(bucket);
    name.resize(name.size() - 3);  // drop "_us"
    std::printf(" %s=%.0fus", name.c_str(), us);
    if (denom > 0 && us > 0) std::printf(" (%.0f%%)", us / denom * 100.0);
  }
  std::printf("\n");
}

int run_trace(const Options& opt) {
  int status = 0;
  const std::string body =
      http_get(opt.host, opt.port, "/traces.json", status);
  if (status != 200) {
    std::fprintf(stderr, "beectl trace: GET /traces.json -> %s\n",
                 status == 0 ? "unreachable"
                             : std::to_string(status).c_str());
    return 1;
  }
  Json root;
  if (!JsonParser(body).parse(root)) {
    std::fprintf(stderr, "beectl trace: malformed /traces.json body\n");
    return 1;
  }
  const Json* traces = root.find("traces");
  if (traces == nullptr || traces->kind != Json::Kind::kArray ||
      traces->items.empty()) {
    std::printf("no assembled traces yet — the tail sampler retains only "
                "slow, shed or failed traces\n");
    return 2;
  }

  std::printf("beectl trace — %s:%u   %zu assembled trace(s), slowest "
              "first\n",
              opt.host.c_str(), opt.port, traces->items.size());
  if (const Json* totals = root.find("blame_totals"); totals != nullptr) {
    double denom = 0;
    for (const char* bucket : kBlameBuckets) denom += totals->number(bucket);
    print_blame_line("cluster blame (slowest traces):", *totals, denom);
  }

  std::size_t shown = 0;
  for (const Json& t : traces->items) {
    if (shown++ == opt.limit) {
      std::printf("\n... %zu more (raise --limit)\n",
                  traces->items.size() - opt.limit);
      break;
    }
    const double e2e = t.number("e2e_us");
    std::printf("\ntrace %.0f  e2e=%.0fus  hops=%.0f  spans=%.0f%s%s\n",
                t.number("trace_id"), e2e, t.number("hops"),
                t.number("spans"), t.boolean("shed") ? "  SHED" : "",
                t.boolean("failed") ? "  FAILED" : "");
    if (const Json* blame = t.find("blame"); blame != nullptr) {
      print_blame_line("  blame:", *blame, e2e);
      const double un = t.number("unattributed_us");
      if (un > 0) std::printf("  unattributed: %.0fus\n", un);
    }
    if (const Json* rows = t.find("rows");
        rows != nullptr && rows->kind == Json::Kind::kArray) {
      std::printf("  %8s %8s %-5s %-*s %s\n", "T_US", "DUR_US", "HIVE",
                  kWaterfallWidth, "WATERFALL", "SEGMENT (* = critical path)");
      for (const Json& r : rows->items) {
        const std::string lane =
            waterfall_bar(r.number("t_us"), r.number("dur_us"), e2e);
        std::printf("  %8.0f %8.0f %-5.0f %s %c%s %s\n", r.number("t_us"),
                    r.number("dur_us"), r.number("hive"), lane.c_str(),
                    r.boolean("critical") ? '*' : ' ',
                    r.text("kind").c_str(), r.text("label").c_str());
      }
    }
  }
  std::fflush(stdout);
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s top [--host H] [--port P] "
               "[--sort cost|pressure|latency|msgs] [--interval SECONDS] "
               "[--once] [--json]\n"
               "       %s trace [--host H] [--port P] [--limit N]\n"
               "\n"
               "  top: --sort pressure ranks bees by their hive's\n"
               "  queue-pressure score. Hive rows also show the\n"
               "  overload-control fields (DESIGN.md §10): SHED/S\n"
               "  (messages/frames dropped per second by shed policies),\n"
               "  CREDITS (tightest remaining link credit; '-' =\n"
               "  uncredited links), and a DEGRADED flag when the hive\n"
               "  advertises reduced credit. Sourced from /health.json\n"
               "  with /status.json as fallback. --json emits both raw\n"
               "  bodies as one JSON object and exits.\n"
               "\n"
               "  trace: renders /traces.json (DESIGN.md §11) — the\n"
               "  tail-sampled slowest traces as ASCII waterfalls with\n"
               "  critical-path blame per bucket (queue, handler,\n"
               "  serialize, wire, retransmit, stall). Exits 2 when no\n"
               "  traces are assembled yet.\n",
               argv0, argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string cmd = "top";
  int i = 1;
  if (i < argc && argv[i][0] != '-') cmd = argv[i++];
  if (cmd != "top" && cmd != "trace") return usage(argv[0]);
  for (; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--sort") == 0) {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "cost") != 0 && std::strcmp(v, "pressure") != 0 &&
           std::strcmp(v, "latency") != 0 && std::strcmp(v, "msgs") != 0)) {
        return usage(argv[0]);
      }
      opt.sort = v;
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage(argv[0]);
      opt.interval_s = std::atoi(v);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      opt.once = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
      opt.once = true;
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage(argv[0]);
      opt.limit = static_cast<std::size_t>(std::atoi(v));
    } else {
      return usage(argv[0]);
    }
  }

  if (cmd == "trace") return run_trace(opt);
  if (opt.json) return render_top_json(opt);
  if (opt.once) {
    return render_frame(opt, /*clear_screen=*/false) == 0 ? 2 : 0;
  }
  while (true) {
    render_frame(opt, /*clear_screen=*/true);
    std::this_thread::sleep_for(std::chrono::seconds(opt.interval_s));
  }
}
