// Microbenchmarks of the cell registry (the Chubby-substitute lock
// service): resolution throughput, cache hit vs. miss cost, merge cost,
// and invalidation fan-out.
#include <benchmark/benchmark.h>

#include "cluster/registry.h"

namespace beehive {
namespace {

constexpr AppId kApp = 1;

void BM_ResolveCreate(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  std::uint64_t i = 0;
  for (auto _ : state) {
    registry.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++)), 1, false, 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ResolveCreate);

void BM_ResolveExisting(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  const auto population = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < population; ++i) {
    registry.resolve_or_create(kApp, CellSet::single("d", std::to_string(i)),
                               1, false, 0);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    registry.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++ % population)), 2,
        false, 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ResolveExisting)->Arg(100)->Arg(10000);

void BM_ClientCacheHit(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  RegistryService::Client client(registry, 2);
  CellSet cells = CellSet::single("d", "hot");
  client.resolve_or_create(kApp, cells, false, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = client.resolve_or_create(kApp, cells, false, 0);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ClientCacheHit);

void BM_ClientCacheMissNewKeys(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  RegistryService::Client client(registry, 2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = client.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++)), false, 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ClientCacheMissNewKeys);

void BM_MergeNBeesIntoOne(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ChannelMeter meter(4);
    RegistryService registry(4, &meter);
    CellSet all;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = std::to_string(i);
      registry.resolve_or_create(kApp, CellSet::single("d", key), 1, false,
                                 0);
      all.insert({"d", key});
    }
    state.ResumeTiming();
    auto out = registry.resolve_or_create(kApp, all, 2, false, 0);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MergeNBeesIntoOne)->Arg(10)->Arg(100)->Arg(400);

void BM_WholeDictAbsorb(benchmark::State& state) {
  // The naive-TE centralization event: (D, "*") absorbing N per-key bees.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ChannelMeter meter(4);
    RegistryService registry(4, &meter);
    for (std::uint64_t i = 0; i < n; ++i) {
      registry.resolve_or_create(
          kApp, CellSet::single("d", std::to_string(i)), 1, false, 0);
    }
    state.ResumeTiming();
    auto out =
        registry.resolve_or_create(kApp, CellSet::whole_dict("d"), 0, false,
                                   0);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WholeDictAbsorb)->Arg(10)->Arg(100)->Arg(400);

void BM_HiveOfLookup(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  auto out =
      registry.resolve_or_create(kApp, CellSet::single("d", "k"), 1, false,
                                 0);
  for (auto _ : state) {
    auto hive = registry.hive_of(out.bee);
    benchmark::DoNotOptimize(hive);
  }
}
BENCHMARK(BM_HiveOfLookup);

}  // namespace
}  // namespace beehive

BENCHMARK_MAIN();
