// Microbenchmarks of the cell registry (the Chubby-substitute lock
// service): resolution throughput, cache hit vs. miss cost, merge cost,
// and invalidation fan-out.
//
// Two modes:
//   micro_registry [gbench flags]          google-benchmark micro numbers
//   micro_registry --contention [--small] [--threads N] [--json PATH]
//     Multi-threaded shard-contention sweep: T threads hammer
//     service-level resolves over a pre-created key population at shard
//     counts {1,2,4,8,16}, plus a client resolve-cache section. Emits
//     BENCH_registry.json via bench_json.h (ops/s by shard count, per-shard
//     lock-wait totals, cache hit rate) for CI's scale-smoke diff.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/registry_contention.h"
#include "cluster/registry.h"

namespace beehive {
namespace {

constexpr AppId kApp = 1;

void BM_ResolveCreate(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  std::uint64_t i = 0;
  for (auto _ : state) {
    registry.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++)), 1, false, 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ResolveCreate);

void BM_ResolveExisting(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  const auto population = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < population; ++i) {
    registry.resolve_or_create(kApp, CellSet::single("d", std::to_string(i)),
                               1, false, 0);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    registry.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++ % population)), 2,
        false, 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ResolveExisting)->Arg(100)->Arg(10000);

void BM_ClientCacheHit(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  RegistryService::Client client(registry, 2);
  CellSet cells = CellSet::single("d", "hot");
  client.resolve_or_create(kApp, cells, false, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = client.resolve_or_create(kApp, cells, false, 0);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ClientCacheHit);

void BM_ClientCacheMissNewKeys(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  RegistryService::Client client(registry, 2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = client.resolve_or_create(
        kApp, CellSet::single("d", std::to_string(i++)), false, 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ClientCacheMissNewKeys);

void BM_MergeNBeesIntoOne(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ChannelMeter meter(4);
    RegistryService registry(4, &meter);
    CellSet all;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = std::to_string(i);
      registry.resolve_or_create(kApp, CellSet::single("d", key), 1, false,
                                 0);
      all.insert({"d", key});
    }
    state.ResumeTiming();
    auto out = registry.resolve_or_create(kApp, all, 2, false, 0);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MergeNBeesIntoOne)->Arg(10)->Arg(100)->Arg(400);

void BM_WholeDictAbsorb(benchmark::State& state) {
  // The naive-TE centralization event: (D, "*") absorbing N per-key bees.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ChannelMeter meter(4);
    RegistryService registry(4, &meter);
    for (std::uint64_t i = 0; i < n; ++i) {
      registry.resolve_or_create(
          kApp, CellSet::single("d", std::to_string(i)), 1, false, 0);
    }
    state.ResumeTiming();
    auto out =
        registry.resolve_or_create(kApp, CellSet::whole_dict("d"), 0, false,
                                   0);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WholeDictAbsorb)->Arg(10)->Arg(100)->Arg(400);

void BM_HiveOfLookup(benchmark::State& state) {
  ChannelMeter meter(4);
  RegistryService registry(4, &meter);
  auto out =
      registry.resolve_or_create(kApp, CellSet::single("d", "k"), 1, false,
                                 0);
  for (auto _ : state) {
    auto hive = registry.hive_of(out.bee);
    benchmark::DoNotOptimize(hive);
  }
}
BENCHMARK(BM_HiveOfLookup);

// ---------------------------------------------------------------------------
// --contention: multi-threaded shard sweep (DESIGN.md §13)
// ---------------------------------------------------------------------------

int run_contention_suite(int argc, char** argv) {
  bench::ContentionParams params;
  std::string json_path = "BENCH_registry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--contention") == 0) {
      continue;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      params.n_keys = 10'000;
      params.n_threads = 4;
      params.duration_ms = 250;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      params.n_threads = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (params.n_threads == 0) params.n_threads = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown flag for --contention mode: %s\n"
                   "usage: micro_registry --contention [--small] "
                   "[--threads N] [--json PATH]\n",
                   argv[i]);
      return 2;
    }
  }

  std::printf("registry contention sweep: %zu threads, %zu keys, %d ms "
              "per shard count\n\n",
              params.n_threads, params.n_keys, params.duration_ms);
  std::printf("%-7s %14s %12s %12s\n", "shards", "ops/s", "lock_waits",
              "wait_us");

  bench::JsonReport report("micro_registry");
  double base_ops = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u, 16u}) {
    const bench::ContentionResult r =
        bench::run_registry_contention(shards, params);
    if (shards == 1) base_ops = r.ops_per_sec;
    std::printf("%-7zu %14.0f %12llu %12llu\n", shards, r.ops_per_sec,
                static_cast<unsigned long long>(r.lock_waits),
                static_cast<unsigned long long>(r.lock_wait_us));
    const std::string section = "contention." + std::to_string(shards);
    report.integer(section, "shards", shards);
    report.integer(section, "threads", params.n_threads);
    report.integer(section, "keys", params.n_keys);
    report.integer(section, "ops", r.ops);
    report.number(section, "ops_per_sec", r.ops_per_sec);
    report.integer(section, "lock_waits", r.lock_waits);
    report.integer(section, "lock_wait_us", r.lock_wait_us);
    report.number(section, "speedup_vs_1shard",
                  base_ops > 0.0 ? r.ops_per_sec / base_ops : 0.0);
  }

  // Client resolve-cache hit rate under a skewed (mostly-hot) workload:
  // the number the per-shard memo stamps protect. 90% of lookups hit 64
  // hot keys; the rest sweep the cold population and keep missing.
  {
    ChannelMeter meter(params.n_hives);
    RegistryService registry(params.n_hives, &meter, 0, 8);
    RegistryService::Client client(registry, 1);
    std::vector<CellSet> hot;
    for (std::size_t i = 0; i < 64; ++i) {
      hot.push_back(CellSet::single("switches", "hot" + std::to_string(i)));
    }
    const std::size_t lookups = params.n_keys;
    std::size_t cold = 0;
    for (std::size_t i = 0; i < lookups; ++i) {
      const CellSet& cells =
          (i % 10 != 0) ? hot[i % hot.size()]
                        : (++cold,
                           CellSet::single("switches",
                                           "cold" + std::to_string(cold)));
      auto out = client.resolve_or_create(kApp, cells, false, 0);
      benchmark::DoNotOptimize(out);
    }
    const double hit_rate =
        static_cast<double>(client.cache_hits()) /
        static_cast<double>(client.cache_hits() + client.cache_misses());
    std::printf("\nresolve cache: %llu hits / %llu misses (%.1f%% hit "
                "rate)\n",
                static_cast<unsigned long long>(client.cache_hits()),
                static_cast<unsigned long long>(client.cache_misses()),
                100.0 * hit_rate);
    report.integer("resolve_cache", "lookups", lookups);
    report.integer("resolve_cache", "hits", client.cache_hits());
    report.integer("resolve_cache", "misses", client.cache_misses());
    report.number("resolve_cache", "hit_rate", hit_rate);
  }

  if (!report.write_file(json_path)) {
    std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace beehive

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--contention") == 0) {
      return beehive::run_contention_suite(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
