// Fault-tolerance bench (extension; paper §7 future work): measures
//   1. the control-channel overhead of synchronous state replication on
//      the decoupled TE workload, and
//   2. recovery from a hive crash: bees failed over, state recovered, and
//      whether the control loop keeps functioning afterwards.
#include <cstdio>

#include "apps/discovery.h"
#include "apps/te_decoupled.h"
#include "cluster/sim.h"
#include "instrument/collector.h"
#include "net/driver.h"
#include "net/fabric.h"

using namespace beehive;

namespace {

struct RunResult {
  std::uint64_t wire_bytes = 0;
  std::uint64_t flow_mods = 0;
  std::size_t bees = 0;
};

RunResult run_te(bool replication, bool crash) {
  constexpr std::size_t kHives = 10;
  constexpr std::size_t kSwitches = 100;

  AppSet apps;
  TreeTopology topology(kSwitches, 4, kHives);
  NetworkFabric fabric{TreeTopology(topology)};
  apps.emplace<OpenFlowDriverApp>(&fabric);
  apps.emplace<DiscoveryApp>(&topology);
  apps.emplace<TEDecoupledApp>();
  apps.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), kHives);

  ClusterConfig config;
  config.n_hives = kHives;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 20 * kSecond;
  config.hive.replication = replication;
  SimCluster sim(config, apps);
  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });

  if (crash) {
    sim.run_until(8 * kSecond);
    // Crash hive 5 (masters switches 50..59) mid-run and fail over.
    sim.fail_hive(5);
    std::size_t recovered = sim.recover_hive(5);
    std::printf("  crash at t=8s: hive 5 down, %zu bees recovered with "
                "replicated state\n",
                recovered);
  }
  sim.run_until(20 * kSecond);
  sim.run_to_idle();

  RunResult result;
  result.wire_bytes = sim.meter().total_bytes();
  result.flow_mods = fabric.total_flow_mods();
  result.bees = sim.registry().live_bee_count();
  return result;
}

}  // namespace

int main() {
  std::printf("Fault tolerance: decoupled TE, 10 hives, 100 switches, "
              "20 s simulated\n\n");

  std::printf("[1/3] baseline (no replication):\n");
  RunResult base = run_te(/*replication=*/false, /*crash=*/false);
  std::printf("  control bytes: %.1f KB, flow mods: %llu\n\n",
              static_cast<double>(base.wire_bytes) / 1024.0,
              static_cast<unsigned long long>(base.flow_mods));

  std::printf("[2/3] with synchronous replication:\n");
  RunResult repl = run_te(/*replication=*/true, /*crash=*/false);
  double overhead =
      100.0 * (static_cast<double>(repl.wire_bytes) /
                   static_cast<double>(base.wire_bytes) -
               1.0);
  std::printf("  control bytes: %.1f KB (replication overhead: +%.0f%%), "
              "flow mods: %llu\n\n",
              static_cast<double>(repl.wire_bytes) / 1024.0, overhead,
              static_cast<unsigned long long>(repl.flow_mods));

  std::printf("[3/3] replication + hive crash at t=8s + failover:\n");
  RunResult crash = run_te(/*replication=*/true, /*crash=*/true);
  std::printf("  control bytes: %.1f KB, flow mods: %llu, live bees: %zu\n",
              static_cast<double>(crash.wire_bytes) / 1024.0,
              static_cast<unsigned long long>(crash.flow_mods), crash.bees);

  bool ok = crash.flow_mods >= base.flow_mods * 8 / 10;
  std::printf("\n[%s] control loop survived the crash (flow mods within "
              "80%% of baseline)\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
