// Shared harness for the Traffic Engineering experiments (paper §5).
//
// Builds the paper's evaluation setup — N controllers, M switches in a
// simple tree, 100 fixed-rate flows per switch with 10% above the
// re-routing threshold — runs one of the three TE designs on it, and
// extracts the Figure 4 artifacts: the inter-hive traffic matrix and the
// control-channel bandwidth series.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/discovery.h"
#include "apps/te_decoupled.h"
#include "apps/te_naive.h"
#include "bench/bench_json.h"
#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/histogram.h"
#include "instrument/trace.h"
#include "net/driver.h"
#include "net/fabric.h"
#include "placement/strategy.h"

namespace beehive::bench {

enum class TEMode {
  kNaive,      // Figure 4 a/d: shared S, whole-dict Route
  kDecoupled,  // Figure 4 b/e: alarms decouple Route from Collect/Query
  kOptimized,  // Figure 4 c/f: decoupled + cells pinned to hive 1 at start
               // + greedy runtime optimization
};

struct TEParams {
  std::size_t n_hives = 40;
  std::size_t n_switches = 400;
  std::size_t tree_fanout = 4;
  std::size_t flows_per_switch = 100;
  double delta_kbps = 1000.0;
  double frac_above = 0.10;
  Duration duration = 30 * kSecond;
  Duration optimize_period = 5 * kSecond;
  std::uint64_t seed = 42;
  /// Hive that artificially receives all stat cells in kOptimized mode
  /// ("we artificially assign the cells of all switches to the bees on the
  /// first hive", paper §5).
  HiveId pin_hive = 1;
  /// Record span events; when `trace_path` is set, export them as Chrome
  /// trace-event JSON (load in Perfetto / chrome://tracing).
  bool tracing = false;
  std::string trace_path;
};

struct TEResult {
  std::size_t n_hives = 0;
  /// matrix[i][j]: control bytes i -> j; diagonal = locally routed
  /// messages' logical bytes (message processing that never left hive i).
  std::vector<std::vector<std::uint64_t>> matrix;
  std::vector<double> kbps;          ///< cluster control BW per second
  double hotspot_share = 0.0;        ///< busiest hive's share of wire bytes
  double locality = 0.0;             ///< local deliveries / all deliveries
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t flow_mods = 0;       ///< FlowMods applied by switches
  std::uint64_t migrations = 0;      ///< bee migrations executed
  std::size_t te_bees = 0;           ///< live bees of the TE app
  std::string heatmap;               ///< ASCII rendering of the matrix
  /// Steady-state metrics over the final third of the run — after joins,
  /// initial merges and (in kOptimized) the migration wave have settled.
  double tail_locality = 0.0;
  double tail_kbps = 0.0;
  /// Latency distributions merged across every hive (microseconds).
  LatencyHistogram queue_latency;    ///< emission -> handler start
  LatencyHistogram handler_latency;  ///< handler duration (0 in sim)
  LatencyHistogram e2e_latency;      ///< trace ingress -> terminal handler
  /// The optimizer's explained decision rounds ("stats.decisions"), oldest
  /// first; empty unless the strategy considered at least one candidate.
  std::vector<PlacementRound> decision_rounds;
};

inline TEResult run_te_scenario(TEMode mode, const TEParams& params) {
  AppSet apps;
  TreeTopology topology(params.n_switches, params.tree_fanout,
                        params.n_hives);
  FabricConfig fabric_config;
  fabric_config.sw.n_flows = params.flows_per_switch;
  fabric_config.sw.delta_kbps = params.delta_kbps;
  fabric_config.sw.frac_above = params.frac_above;
  fabric_config.seed = params.seed;
  NetworkFabric fabric(topology, fabric_config);

  apps.emplace<OpenFlowDriverApp>(&fabric);
  apps.emplace<DiscoveryApp>(&topology);

  TEConfig te_config;
  te_config.delta_kbps = params.delta_kbps;
  std::string te_name;
  std::string stats_dict;
  if (mode == TEMode::kNaive) {
    apps.emplace<TENaiveApp>(te_config);
    te_name = "te.naive";
    stats_dict = std::string(TENaiveApp::kStatsDict);
  } else {
    apps.emplace<TEDecoupledApp>(te_config);
    te_name = "te.decoupled";
    stats_dict = std::string(TEDecoupledApp::kStatsDict);
  }

  std::shared_ptr<PlacementStrategy> strategy;
  if (mode == TEMode::kOptimized) {
    strategy = std::make_shared<GreedyFollowSources>(
        GreedyConfig{.majority_fraction = 0.5, .min_messages = 2});
  } else {
    strategy = std::make_shared<NoopStrategy>();
  }
  apps.emplace<CollectorApp>(strategy, params.n_hives,
                             CollectorConfig{params.optimize_period});

  ClusterConfig cluster_config;
  cluster_config.n_hives = params.n_hives;
  cluster_config.seed = params.seed;
  cluster_config.tracing = params.tracing;
  cluster_config.hive.metrics_period = kSecond;
  cluster_config.hive.timers_until = params.duration;
  SimCluster sim(cluster_config, apps);

  if (mode == TEMode::kOptimized) {
    const AppId te_id = apps.find_by_name(te_name)->id();
    const HiveId pin = params.pin_hive;
    sim.registry().set_placement_hook(
        [te_id, pin, stats_dict](AppId app, const CellSet& cells,
                                 HiveId requester) -> HiveId {
          if (app == te_id && !cells.empty() &&
              cells.begin()->dict == stats_dict) {
            return pin;
          }
          return requester;
        });
  }

  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });

  // Run to the 2/3 mark, snapshot routing counters, then finish: the delta
  // gives steady-state (tail) locality after startup transients.
  const TimePoint tail_from = params.duration * 2 / 3;
  sim.run_until(tail_from);
  std::uint64_t local_at_mark = 0;
  std::uint64_t remote_at_mark = 0;
  for (HiveId i = 0; i < params.n_hives; ++i) {
    local_at_mark += sim.hive(i).counters().routed_local;
    remote_at_mark += sim.hive(i).counters().routed_remote;
  }
  sim.run_until(params.duration);
  sim.run_to_idle();

  // -- Extract the Figure 4 artifacts -------------------------------------
  TEResult result;
  result.n_hives = params.n_hives;
  result.matrix.assign(params.n_hives,
                       std::vector<std::uint64_t>(params.n_hives, 0));
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  for (HiveId i = 0; i < params.n_hives; ++i) {
    for (HiveId j = 0; j < params.n_hives; ++j) {
      result.matrix[i][j] = sim.meter().matrix_bytes(i, j);
    }
    const Hive::Counters& counters = sim.hive(i).counters();
    // Diagonal: messages processed without leaving the hive.
    result.matrix[i][i] = counters.routed_local;
    local += counters.routed_local;
    remote += counters.routed_remote;
    result.migrations += counters.migrations_in;
  }
  result.kbps = sim.meter().bandwidth_kbps();
  result.hotspot_share = sim.meter().hotspot_share();
  result.locality = (local + remote) == 0
                        ? 0.0
                        : static_cast<double>(local) /
                              static_cast<double>(local + remote);
  result.wire_bytes = sim.meter().total_bytes();
  result.wire_messages = sim.meter().total_messages();
  result.flow_mods = fabric.total_flow_mods();
  result.heatmap = sim.meter().ascii_heatmap(20);

  const std::uint64_t tail_local = local - local_at_mark;
  const std::uint64_t tail_remote = remote - remote_at_mark;
  result.tail_locality =
      (tail_local + tail_remote) == 0
          ? 1.0
          : static_cast<double>(tail_local) /
                static_cast<double>(tail_local + tail_remote);
  const std::size_t tail_bucket =
      static_cast<std::size_t>(tail_from / kSecond);
  double tail_sum = 0.0;
  std::size_t tail_n = 0;
  for (std::size_t t = tail_bucket; t < result.kbps.size(); ++t) {
    tail_sum += result.kbps[t];
    ++tail_n;
  }
  result.tail_kbps = tail_n == 0 ? 0.0 : tail_sum / static_cast<double>(tail_n);

  const AppId te_id = apps.find_by_name(te_name)->id();
  const AppId collector_id = apps.find_by_name("platform.collector")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == te_id) ++result.te_bees;
    if (rec.app == collector_id) {
      // The collector centralizes on one bee; its store holds the
      // explained decision log.
      if (Bee* bee = sim.hive(rec.hive).find_bee(rec.id)) {
        auto rounds = CollectorApp::decisions_from_store(bee->store());
        if (!rounds.empty()) result.decision_rounds = std::move(rounds);
      }
    }
  }

  for (HiveId i = 0; i < params.n_hives; ++i) {
    result.queue_latency.merge(sim.hive(i).queue_latency());
    result.handler_latency.merge(sim.hive(i).handler_latency());
    result.e2e_latency.merge(sim.hive(i).e2e_latency());
  }
  if (params.tracing && !params.trace_path.empty()) {
    if (!write_chrome_trace(params.trace_path, sim.trace_events())) {
      std::fprintf(stderr, "warning: failed to write trace to %s\n",
                   params.trace_path.c_str());
    }
  }
  return result;
}

inline void print_series(const char* label, const std::vector<double>& kbps) {
  std::printf("%s: t(s) -> control-channel KB/s\n", label);
  for (std::size_t t = 0; t < kbps.size(); ++t) {
    std::printf("  %2zu  %10.1f\n", t, kbps[t]);
  }
}

inline void print_latency(const char* label, const TEResult& r) {
  std::printf(
      "%s latency (us): queue p50=%llu p99=%llu | handler p50=%llu "
      "p99=%llu | e2e p50=%llu p99=%llu (n=%llu)\n",
      label, static_cast<unsigned long long>(r.queue_latency.p50()),
      static_cast<unsigned long long>(r.queue_latency.p99()),
      static_cast<unsigned long long>(r.handler_latency.p50()),
      static_cast<unsigned long long>(r.handler_latency.p99()),
      static_cast<unsigned long long>(r.e2e_latency.p50()),
      static_cast<unsigned long long>(r.e2e_latency.p99()),
      static_cast<unsigned long long>(r.e2e_latency.count()));
}

/// Prints the optimizer's explained decisions: why each candidate bee was
/// migrated or left in place (paper §4's "optimizer" made auditable).
inline void print_decisions(const TEResult& r, std::size_t max_rows = 12) {
  if (r.decision_rounds.empty()) {
    std::printf("decision log: empty (no optimization candidates)\n");
    return;
  }
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (const PlacementRound& round : r.decision_rounds) {
    for (const PlacementDecision& d : round.decisions) {
      (d.accepted ? accepted : rejected) += 1;
    }
  }
  std::printf("decision log: %zu round(s), %zu accepted, %zu rejected\n",
              r.decision_rounds.size(), accepted, rejected);
  std::size_t rows = 0;
  for (const PlacementRound& round : r.decision_rounds) {
    for (const PlacementDecision& d : round.decisions) {
      if (rows++ >= max_rows) return;
      std::printf(
          "  round %llu t=%.1fs bee %llu: hive %u -> %u %s (%s, "
          "%llu/%llu msgs from target, score %.2f)\n",
          static_cast<unsigned long long>(round.round),
          static_cast<double>(round.at) / static_cast<double>(kSecond),
          static_cast<unsigned long long>(d.bee), d.from, d.to,
          d.accepted ? "MIGRATE" : "stay", d.reason.c_str(),
          static_cast<unsigned long long>(d.msgs_from_target),
          static_cast<unsigned long long>(d.msgs_total), d.score);
    }
  }
}

inline void print_summary(const char* label, const TEResult& r) {
  double avg_kbps = 0.0;
  double peak = 0.0;
  for (double v : r.kbps) {
    avg_kbps += v;
    if (v > peak) peak = v;
  }
  if (!r.kbps.empty()) avg_kbps /= static_cast<double>(r.kbps.size());
  std::printf(
      "%s: wire=%.1f MB msgs=%llu avg=%.1f KB/s peak=%.1f KB/s "
      "tail=%.1f KB/s hotspot=%.2f locality=%.2f tail_locality=%.2f "
      "te_bees=%zu flow_mods=%llu migrations=%llu\n",
      label, static_cast<double>(r.wire_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(r.wire_messages), avg_kbps, peak,
      r.tail_kbps, r.hotspot_share, r.locality, r.tail_locality, r.te_bees,
      static_cast<unsigned long long>(r.flow_mods),
      static_cast<unsigned long long>(r.migrations));
  print_latency(label, r);
}

/// Fills one JSON report section with a scenario's headline numbers —
/// throughput, latency percentiles, bytes on the control channel, and the
/// decision-log tally (the BENCH_observability.json schema).
inline void report_te(JsonReport& report, const std::string& section,
                      const TEResult& r, const TEParams& params) {
  const double seconds = static_cast<double>(params.duration) /
                         static_cast<double>(kSecond);
  double avg_kbps = 0.0;
  double peak_kbps = 0.0;
  for (double v : r.kbps) {
    avg_kbps += v;
    if (v > peak_kbps) peak_kbps = v;
  }
  if (!r.kbps.empty()) avg_kbps /= static_cast<double>(r.kbps.size());

  report.integer(section, "wire_bytes", r.wire_bytes);
  report.integer(section, "wire_messages", r.wire_messages);
  report.number(section, "avg_kbps", avg_kbps);
  report.number(section, "peak_kbps", peak_kbps);
  report.number(section, "tail_kbps", r.tail_kbps);
  report.number(section, "hotspot_share", r.hotspot_share);
  report.number(section, "locality", r.locality);
  report.number(section, "tail_locality", r.tail_locality);
  report.number(section, "throughput_msgs_per_s",
                seconds == 0.0
                    ? 0.0
                    : static_cast<double>(r.e2e_latency.count()) / seconds);
  report.integer(section, "e2e_count", r.e2e_latency.count());
  report.integer(section, "e2e_p50_us", r.e2e_latency.p50());
  report.integer(section, "e2e_p99_us", r.e2e_latency.p99());
  report.integer(section, "queue_p50_us", r.queue_latency.p50());
  report.integer(section, "queue_p99_us", r.queue_latency.p99());
  report.integer(section, "te_bees", r.te_bees);
  report.integer(section, "flow_mods", r.flow_mods);
  report.integer(section, "migrations", r.migrations);

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (const PlacementRound& round : r.decision_rounds) {
    for (const PlacementDecision& d : round.decisions) {
      (d.accepted ? accepted : rejected) += 1;
    }
  }
  report.integer(section, "decision_rounds", r.decision_rounds.size());
  report.integer(section, "decisions_accepted", accepted);
  report.integer(section, "decisions_rejected", rejected);
}

}  // namespace beehive::bench
