// Machine-readable bench output.
//
// Each bench binary appends its headline numbers into one shared JSON
// report (BENCH_observability.json by default) so CI can archive a single
// artifact per run and diff throughput / latency / channel-byte regressions
// across commits without scraping stdout.
//
// The report is a flat two-level object: sections (one per scenario or
// bench) of key -> number/string/bool/array leaves, written in insertion
// order. Deliberately tiny — no external JSON dependency exists in this
// repo, and the writer side needs only rendering, never parsing.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace beehive::bench {

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void number(const std::string& section, const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    set(section, key, buf);
  }
  void integer(const std::string& section, const std::string& key,
               std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    set(section, key, buf);
  }
  void boolean(const std::string& section, const std::string& key, bool v) {
    set(section, key, v ? "true" : "false");
  }
  void text(const std::string& section, const std::string& key,
            const std::string& v) {
    std::string out = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
    set(section, key, out);
  }
  void array(const std::string& section, const std::string& key,
             const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
      if (i != 0) out += ", ";
      out += buf;
    }
    out += "]";
    set(section, key, out);
  }

  /// Writes `{"bench": ..., "<section>": {...}, ...}`. Returns false on
  /// I/O failure (benches warn but do not fail the run on it).
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\"", bench_name_.c_str());
    for (const Section& s : sections_) {
      std::fprintf(f, ",\n  \"%s\": {\n", s.name.c_str());
      for (std::size_t i = 0; i < s.leaves.size(); ++i) {
        std::fprintf(f, "    \"%s\": %s%s\n", s.leaves[i].first.c_str(),
                     s.leaves[i].second.c_str(),
                     i + 1 < s.leaves.size() ? "," : "");
      }
      std::fprintf(f, "  }");
    }
    std::fprintf(f, "\n}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, std::string>> leaves;
  };

  void set(const std::string& section, const std::string& key,
           std::string rendered) {
    for (Section& s : sections_) {
      if (s.name != section) continue;
      for (auto& leaf : s.leaves) {
        if (leaf.first == key) {
          leaf.second = std::move(rendered);
          return;
        }
      }
      s.leaves.emplace_back(key, std::move(rendered));
      return;
    }
    sections_.push_back(Section{section, {{key, std::move(rendered)}}});
  }

  std::string bench_name_;
  std::vector<Section> sections_;
};

}  // namespace beehive::bench
