// Kandoo emulation bench (paper §1: Beehive "covers a variety of
// scenarios ranging from implementing different network applications to
// emulating existing distributed controllers (such as ONIX and Kandoo)").
//
// Reproduces Kandoo's elephant-flow experiment shape: compare
//   (a) kandoo-style  — local detector per switch + centralized rerouter
//       fed by rare ElephantDetected events;
//   (b) centralized   — every FlowStatReply streams to one root app.
// Kandoo's claim, which must reproduce here: the local design keeps the
// frequent stats traffic off the control channel, so channel bytes stay
// roughly flat in (a) and grow with the network in (b).
#include <cstdio>
#include <memory>

#include "apps/kandoo_elephant.h"
#include "apps/te_common.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "net/driver.h"
#include "net/fabric.h"

using namespace beehive;

namespace {

/// The strawman: a root app that ingests every stats reply centrally.
class CentralElephantApp : public App {
 public:
  CentralElephantApp() : App("central.elephant") {
    register_app_messages();
    const std::string dict = "central";

    on<SwitchJoined>(
        [dict](const SwitchJoined&) { return CellSet::whole_dict(dict); },
        [dict](AppContext& ctx, const SwitchJoined& m) {
          FlowSeriesEntry entry;
          entry.sw = m.sw;
          ctx.state().put_as(dict, switch_key(m.sw), entry);
        });

    every_foreach(kSecond, dict,
                  [dict](AppContext& ctx, const MessageEnvelope&) {
                    std::vector<SwitchId> switches;
                    ctx.state().for_each(
                        dict,
                        [&switches](const std::string&, const Bytes& v) {
                          switches.push_back(
                              decode_from_bytes<FlowSeriesEntry>(v).sw);
                        });
                    for (SwitchId sw : switches) {
                      ctx.emit(FlowStatQuery{sw});
                    }
                  });

    on<FlowStatReply>(
        [dict](const FlowStatReply&) { return CellSet::whole_dict(dict); },
        [dict](AppContext& ctx, const FlowStatReply& m) {
          auto entry =
              ctx.state().get_as<FlowSeriesEntry>(dict, switch_key(m.sw));
          if (!entry) return;
          entry->latest = m.stats;
          for (const FlowStat& stat : m.stats) {
            if (stat.rate_kbps > 1000.0 && !entry->is_flagged(stat.flow)) {
              entry->flag(stat.flow);
              ctx.emit(FlowMod{m.sw, stat.flow, 1});
            }
          }
          ctx.state().put_as(dict, switch_key(m.sw), *entry);
        });
  }
};

struct Row {
  std::uint64_t wire_kb = 0;
  std::uint64_t flow_mods = 0;
  double locality = 0.0;
};

Row run(bool kandoo, std::size_t n_hives, std::size_t n_switches) {
  AppSet apps;
  TreeTopology topology(n_switches, 4, n_hives);
  NetworkFabric fabric{TreeTopology(topology)};
  apps.emplace<OpenFlowDriverApp>(&fabric);
  if (kandoo) {
    apps.emplace<ElephantDetectorApp>();
    apps.emplace<ElephantRerouteApp>();
  } else {
    apps.emplace<CentralElephantApp>();
  }

  ClusterConfig config;
  config.n_hives = n_hives;
  config.hive.metrics_period = 0;
  config.hive.timers_until = 15 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });
  sim.run_until(15 * kSecond);
  sim.run_to_idle();

  Row row;
  row.wire_kb = sim.meter().total_bytes() / 1024;
  row.flow_mods = fabric.total_flow_mods();
  std::uint64_t local = 0, remote = 0;
  for (HiveId h = 0; h < n_hives; ++h) {
    local += sim.hive(h).counters().routed_local;
    remote += sim.hive(h).counters().routed_remote;
  }
  row.locality = (local + remote) == 0
                     ? 0.0
                     : static_cast<double>(local) /
                           static_cast<double>(local + remote);
  return row;
}

}  // namespace

int main() {
  std::printf("Kandoo emulation: elephant detection, local vs centralized "
              "(15 s simulated, 10 switches/hive)\n\n");
  std::printf("%-12s %7s %9s %12s %12s %10s\n", "design", "hives",
              "switches", "wire(KB)", "flow_mods", "locality");

  const std::size_t sizes[][2] = {{4, 40}, {8, 80}, {16, 160}};
  std::uint64_t kandoo_kb[3] = {0, 0, 0};
  std::uint64_t central_kb[3] = {0, 0, 0};
  for (bool kandoo : {true, false}) {
    for (std::size_t i = 0; i < 3; ++i) {
      Row row = run(kandoo, sizes[i][0], sizes[i][1]);
      std::printf("%-12s %7zu %9zu %12llu %12llu %10.2f\n",
                  kandoo ? "kandoo-local" : "centralized", sizes[i][0],
                  sizes[i][1], static_cast<unsigned long long>(row.wire_kb),
                  static_cast<unsigned long long>(row.flow_mods),
                  row.locality);
      (kandoo ? kandoo_kb : central_kb)[i] = row.wire_kb;
    }
    std::printf("\n");
  }

  // Kandoo's claim, compared at matched network sizes: local detection
  // must beat centralized streaming by a wide margin everywhere.
  bool ok = true;
  for (std::size_t i = 0; i < 3; ++i) {
    double ratio = static_cast<double>(central_kb[i]) /
                   static_cast<double>(std::max<std::uint64_t>(1, kandoo_kb[i]));
    std::printf("[%s] %zu switches: centralized uses %.1fx the control "
                "bytes of kandoo-local\n",
                ratio > 4.0 ? "PASS" : "FAIL", sizes[i][1], ratio);
    ok &= ratio > 4.0;
  }
  return ok ? 0 : 1;
}
