// Microbenchmarks of the OpenFlow 1.0 codec: encode/decode throughput per
// message type and stream reassembly under small-chunk delivery.
#include <benchmark/benchmark.h>

#include "net/openflow.h"
#include "util/rng.h"

namespace beehive::of {
namespace {

void BM_OfEncodeFlowMod(benchmark::State& state) {
  FlowModMsg m;
  m.actions.push_back({1, 0xffff});
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes wire = encode(m);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OfEncodeFlowMod);

void BM_OfDecodeFlowMod(benchmark::State& state) {
  FlowModMsg m;
  m.actions.push_back({1, 0xffff});
  Bytes wire = encode(m);
  std::size_t bytes = 0;
  for (auto _ : state) {
    Message back = decode(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OfDecodeFlowMod);

void BM_OfEncodeStatsReply(benchmark::State& state) {
  FlowStatReply logical;
  logical.stats.resize(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < logical.stats.size(); ++i) {
    logical.stats[i] = {static_cast<std::uint32_t>(i), 100.0, 1 << 20};
  }
  FlowStatsReplyMsg m = to_openflow(logical, 1);
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes wire = encode(m);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OfEncodeStatsReply)->Arg(10)->Arg(100)->Arg(1000);

void BM_OfDecodeStatsReply(benchmark::State& state) {
  FlowStatReply logical;
  logical.stats.resize(static_cast<std::size_t>(state.range(0)));
  Bytes wire = encode(to_openflow(logical, 1));
  std::size_t bytes = 0;
  for (auto _ : state) {
    Message back = decode(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OfDecodeStatsReply)->Arg(10)->Arg(100)->Arg(1000);

void BM_OfStreamReassembly(benchmark::State& state) {
  // A realistic connection mix, delivered in chunks of the given size.
  const auto chunk = static_cast<std::size_t>(state.range(0));
  Bytes joined;
  Xoshiro256 rng(1);
  for (int i = 0; i < 64; ++i) {
    if (rng.next_below(2) == 0) {
      FlowModMsg m;
      m.actions.push_back({1, 0xffff});
      joined += encode(m);
    } else {
      PacketInMsg m;
      m.payload = Bytes(64 + rng.next_below(128), 'p');
      joined += encode(m);
    }
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    StreamReassembler stream;
    std::size_t frames = 0;
    for (std::size_t pos = 0; pos < joined.size(); pos += chunk) {
      stream.feed(std::string_view(joined).substr(
          pos, std::min(chunk, joined.size() - pos)));
      while (auto frame = stream.poll()) {
        ++frames;
        benchmark::DoNotOptimize(*frame);
      }
    }
    bytes += joined.size();
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OfStreamReassembly)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace beehive::of

BENCHMARK_MAIN();
