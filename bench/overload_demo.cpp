// Overload-control demo: a fast producer against a slow consumer.
//
// Two ThreadCluster hives. A SlowConsumer app is pinned to hive 1 (its
// handler burns ~1 ms per message); the driver injects on hive 0 roughly
// an order of magnitude faster than the consumer can drain. With a credit
// window on the link (DESIGN.md §10) the sender's transport stalls once
// the window fills, and what happens next is the `--policy` under test:
//
//   block       frames queue without loss; the producer throttles on
//               Hive::overloaded() (sender-side admission). Expect zero
//               sheds and the credit gauge pinned at 0.
//   shed-newest the stalled queue tail-drops app batches past the stall
//               limit. Expect a monotone shed_total and no producer stall.
//   shed-oldest head-drop variant: freshest data survives.
//   priority    like shed-newest, but control frames always queue (they
//               do under every policy — this makes it explicit).
//
// Under every policy resident memory must stay bounded (the CI smoke
// asserts peak < 2x idle). The demo prints a one-line JSON object on
// stdout with the evidence:
//
//   {"policy":..., "seconds":..., "produced":..., "delivered":...,
//    "shed_total":..., "credits_min":..., "stalled_max":...,
//    "rss_idle_mb":..., "rss_peak_mb":...}
//
// Usage: overload_demo [--policy block|shed-newest|shed-oldest|priority]
//                      [--seconds N]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "cluster/thread_cluster.h"
#include "core/overload.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::Incr;

std::atomic<std::uint64_t> g_consumed{0};

/// One cell, one bee on hive 1: every Incr costs ~1 ms of handler time,
/// so the consumer drains at most ~1k msgs/s no matter the offered load.
class SlowConsumerApp : public App {
 public:
  SlowConsumerApp() : App("demo.slow_consumer") {
    on<Incr>(
        [](const Incr& m) { return CellSet::single("slow", m.key); },
        [](AppContext&, const Incr&) {
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
          while (std::chrono::steady_clock::now() < until) {
          }
          g_consumed.fetch_add(1, std::memory_order_relaxed);
        });
  }
};

/// Resident set size from /proc/self/statm, in MiB (0 if unreadable).
double rss_mb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vm_pages = 0, rss_pages = 0;
  if (!(statm >> vm_pages >> rss_pages)) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(rss_pages) * static_cast<double>(page) /
         (1024.0 * 1024.0);
}

int run(int argc, char** argv) {
  OverloadPolicy policy = OverloadPolicy::kShedNewest;
  int seconds = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      if (auto p = overload_policy_from_string(argv[++i])) {
        policy = *p;
      } else {
        std::fprintf(stderr, "unknown policy '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
      if (seconds <= 0) seconds = 1;
    } else {
      std::fprintf(stderr,
                   "usage: overload_demo [--policy "
                   "block|shed-newest|shed-oldest|priority] [--seconds N]\n");
      return 2;
    }
  }

  AppSet apps;
  SlowConsumerApp& consumer = apps.emplace<SlowConsumerApp>();
  consumer.set_overload(
      {.bounded = true, .mailbox_limit = 256, .policy = policy});

  ThreadClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.metrics_period = 50 * kMillisecond;
  cfg.hive.transport.enabled = true;
  cfg.hive.transport.credit_window = 8;
  cfg.hive.transport.stall_limit = 64;
  cfg.hive.transport.overload = policy;
  // The consumer is *supposed* to sit on its frames for a long time; keep
  // the retransmit machinery from abandoning the link in the meantime.
  cfg.hive.transport.rto_initial = 50 * kMillisecond;
  cfg.hive.transport.rto_max = 500 * kMillisecond;
  cfg.hive.transport.max_rounds = 100000;
  ThreadCluster cluster(cfg, apps);
  cluster.registry().set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
  cluster.start();

  // Warm the route (registry resolve + bee creation) before measuring the
  // idle footprint so RSS growth reflects queued traffic, not setup.
  cluster.post(0, [&cluster] {
    cluster.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, cluster.now()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double rss_idle = rss_mb();
  double rss_peak = rss_idle;

  const bool admission = policy == OverloadPolicy::kBlockSender;
  std::uint64_t produced = 1;  // the warmup message
  std::int64_t credits_min = INT64_MAX;
  std::uint64_t stalled_max = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    // ~8k msgs/s offered vs ~1k/s drained: a burst of 8 every millisecond.
    if (!admission || !cluster.hive(0).overloaded()) {
      cluster.post(0, [&cluster] {
        MessageEnvelope msg =
            MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, cluster.now());
        for (int i = 0; i < 8; ++i) cluster.hive(0).inject(msg);
      });
      produced += 8;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

    const HiveHealth h = cluster.hive(0).health();
    if (h.credits >= 0 && h.credits < credits_min) credits_min = h.credits;
    if (h.stalled > stalled_max) stalled_max = h.stalled;
    const double rss = rss_mb();
    if (rss > rss_peak) rss_peak = rss;
  }

  const std::uint64_t shed = cluster.hive(0).counters().shed_total.get() +
                             cluster.hive(1).counters().shed_total.get();
  const std::uint64_t delivered = g_consumed.load(std::memory_order_relaxed);
  cluster.stop();
  if (credits_min == INT64_MAX) credits_min = -1;

  const std::string policy_name(to_string(policy));
  std::fprintf(stderr,
               "policy=%s produced=%llu delivered=%llu shed=%llu "
               "credits_min=%lld stalled_max=%llu rss=%.1f->%.1f MiB\n",
               policy_name.c_str(), static_cast<unsigned long long>(produced),
               static_cast<unsigned long long>(delivered),
               static_cast<unsigned long long>(shed),
               static_cast<long long>(credits_min),
               static_cast<unsigned long long>(stalled_max), rss_idle,
               rss_peak);
  std::printf(
      "{\"policy\":\"%s\",\"seconds\":%d,\"produced\":%llu,"
      "\"delivered\":%llu,\"shed_total\":%llu,\"credits_min\":%lld,"
      "\"stalled_max\":%llu,\"rss_idle_mb\":%.2f,\"rss_peak_mb\":%.2f}\n",
      policy_name.c_str(), seconds,
      static_cast<unsigned long long>(produced),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(shed),
      static_cast<long long>(credits_min),
      static_cast<unsigned long long>(stalled_max), rss_idle, rss_peak);
  return 0;
}

}  // namespace
}  // namespace beehive

int main(int argc, char** argv) { return beehive::run(argc, argv); }
