// Scalability sweep (extension beyond Figure 4): how the three TE designs
// behave as the cluster grows. For each hive count we report control-plane
// wire traffic, locality, hotspot share and TE bee count. Expected shape:
// naive stays centralized (hotspot ~1.0 regardless of hives), decoupled
// and optimized keep locality high as the cluster grows — the platform's
// scaling argument in one table.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/te_harness.h"

int main(int argc, char** argv) {
  using namespace beehive;
  using namespace beehive::bench;

  // --small trims the sweep for CI smoke runs; --json <path> appends the
  // machine-readable table.
  std::vector<std::size_t> hive_counts = {5, 10, 20, 40, 80};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      hive_counts = {5, 10};
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("TE scaling sweep: 10 switches per hive, 100 flows/switch, "
              "20 s simulated\n\n");
  std::printf("%-10s %6s %12s %10s %9s %9s %8s\n", "design", "hives",
              "wire(KB)", "KB/s avg", "hotspot", "locality", "te_bees");

  JsonReport report("scale_sweep");
  for (TEMode mode :
       {TEMode::kNaive, TEMode::kDecoupled, TEMode::kOptimized}) {
    const char* name = mode == TEMode::kNaive       ? "naive"
                       : mode == TEMode::kDecoupled ? "decoupled"
                                                    : "optimized";
    for (std::size_t hives : hive_counts) {
      TEParams params;
      params.n_hives = hives;
      params.n_switches = hives * 10;
      params.duration = 20 * kSecond;
      TEResult r = run_te_scenario(mode, params);
      double avg = 0.0;
      for (double v : r.kbps) avg += v;
      if (!r.kbps.empty()) avg /= static_cast<double>(r.kbps.size());
      std::printf("%-10s %6zu %12.1f %10.1f %9.2f %9.2f %8zu\n", name, hives,
                  static_cast<double>(r.wire_bytes) / 1024.0, avg,
                  r.hotspot_share, r.locality, r.te_bees);
      report_te(report, std::string(name) + "." + std::to_string(hives), r,
                params);
    }
    std::printf("\n");
  }
  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: failed to write %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
