// Scalability sweep (extension beyond Figure 4): how the three TE designs
// behave as the cluster grows, and how the control plane itself holds up
// at 100k bees (DESIGN.md §13).
//
// Default mode sweeps the TE designs over hive counts: for each hive count
// we report control-plane wire traffic, locality, hotspot share and TE bee
// count. Expected shape: naive stays centralized (hotspot ~1.0 regardless
// of hives), decoupled and optimized keep locality high as the cluster
// grows — the platform's scaling argument in one table.
//
// --control-plane instead measures the control plane at scale:
//   * optimizer round latency, full vs incremental, at 100k bees / 64
//     hives for every strategy — with a move-equality check (the
//     incremental round must pick exactly the moves the full round picks);
//   * registry resolve throughput by shard count under multi-threaded
//     contention (shared workload with micro_registry --contention);
//   * client resolve-cache hit rate under the sharded service.
// The JSON it writes is the committed BENCH_scale.json baseline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/registry_contention.h"
#include "bench/te_harness.h"
#include "placement/strategy.h"
#include "util/rng.h"

namespace beehive::bench {
namespace {

int usage(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s [--small] [--json PATH] [--control-plane]\n"
      "  --small          trim the sweep for CI smoke runs\n"
      "  --json PATH      append the machine-readable table to PATH\n"
      "  --control-plane  measure the control plane at scale instead of\n"
      "                   the TE designs: optimizer full-vs-incremental\n"
      "                   round latency at 100k bees (with move-equality\n"
      "                   verification), registry ops/s by shard count\n"
      "                   under threaded contention, resolve-cache hit\n"
      "                   rate. Writes the BENCH_scale.json baseline.\n",
      argv0);
  return code;
}

struct Args {
  bool small = false;
  bool control_plane = false;
  std::string json_path;
};

/// Deterministic synthetic cluster view: `n_bees` bees over `n_hives`
/// hives, of which `dirty_fraction` were active this window (traffic +
/// cost + a skewed inbound row); the rest are idle. Mirrors what the
/// collector assembles: the full view carries every bee with dirty flags,
/// the incremental view carries ONLY the dirty bees (clean rows are never
/// even decoded in an incremental round).
ClusterView synth_view(std::uint64_t seed, std::size_t n_bees,
                       std::size_t n_hives, double dirty_fraction,
                       RoundMode mode) {
  Xoshiro256 rng(seed);
  ClusterView view;
  view.n_hives = n_hives;
  view.mode = mode;
  for (HiveId h = 0; h < n_hives; ++h) {
    view.hive_cells[h] = 0;
    view.hive_pressure[h] = 0.3 * rng.next_double();
  }
  for (std::size_t i = 0; i < n_bees; ++i) {
    const bool active = rng.next_double() < dirty_fraction;
    BeeView bee;
    bee.bee = static_cast<BeeId>(i + 1);
    bee.app = 1;
    bee.hive = static_cast<HiveId>(i % n_hives);
    bee.cells = 1 + rng.next_below(4);
    view.hive_cells[bee.hive] += bee.cells;
    bee.dirty = active;
    if (active) {
      bee.msgs_in = 16 + rng.next_below(1024);
      bee.cost_us = rng.next_below(4) == 0 ? bee.msgs_in * 3 : 0;
      bee.handler_invocations = bee.msgs_in;
      // Skewed inbound row: a majority source plus two minor ones, so
      // greedy/costpressure find real candidates.
      const auto major = static_cast<HiveId>(rng.next_below(n_hives));
      bee.inbound_by_hive[major] = (bee.msgs_in * 3) / 4;
      bee.inbound_by_hive[static_cast<HiveId>(rng.next_below(n_hives))] +=
          bee.msgs_in / 8;
      bee.inbound_by_hive[bee.hive] += bee.msgs_in / 8;
    }
    if (mode == RoundMode::kIncremental && !active) continue;
    view.bees.push_back(std::move(bee));
  }
  return view;
}

std::uint64_t run_strategy_us(PlacementStrategy& strategy,
                              const ClusterView& view,
                              std::vector<MigrationDecision>* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = strategy.decide(view);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

int run_control_plane(const Args& args) {
  const std::size_t n_bees = args.small ? 10'000 : 100'000;
  const std::size_t n_hives = args.small ? 16 : 64;
  const double dirty_fraction = 0.02;
  constexpr std::uint64_t kSeed = 0xbee5ca1eULL;
  JsonReport report("scale_control_plane");

  std::printf("optimizer rounds: %zu bees, %zu hives, %.0f%% dirty\n\n",
              n_bees, n_hives, 100.0 * dirty_fraction);
  std::printf("%-14s %10s %12s %9s %7s %7s %s\n", "strategy", "full_us",
              "incr_us", "speedup", "moves", "scored", "equal");

  GreedyFollowSources greedy;
  CostPressureStrategy costpressure;
  LoadBalanceStrategy loadbalance;
  const std::pair<const char*, PlacementStrategy*> strategies[] = {
      {"greedy", &greedy},
      {"costpressure", &costpressure},
      {"loadbalance", &loadbalance},
  };
  bool all_equal = true;
  for (const auto& [name, strategy] : strategies) {
    const ClusterView full =
        synth_view(kSeed, n_bees, n_hives, dirty_fraction, RoundMode::kFull);
    const ClusterView incr = synth_view(kSeed, n_bees, n_hives,
                                        dirty_fraction,
                                        RoundMode::kIncremental);
    std::vector<MigrationDecision> full_moves;
    std::vector<MigrationDecision> incr_moves;
    // Warm one throwaway round so first-touch page faults don't land in
    // the full-round figure.
    std::vector<MigrationDecision> warm;
    run_strategy_us(*strategy, incr, &warm);
    const std::uint64_t full_us =
        run_strategy_us(*strategy, full, &full_moves);
    const std::uint64_t incr_us =
        run_strategy_us(*strategy, incr, &incr_moves);
    const bool equal = full_moves == incr_moves;
    all_equal = all_equal && equal;
    const double speedup =
        incr_us > 0 ? static_cast<double>(full_us) /
                          static_cast<double>(incr_us)
                    : static_cast<double>(full_us);
    std::printf("%-14s %10llu %12llu %8.1fx %7zu %7zu %s\n", name,
                static_cast<unsigned long long>(full_us),
                static_cast<unsigned long long>(incr_us), speedup,
                full_moves.size(), incr.bees.size(),
                equal ? "yes" : "NO (BUG)");
    const std::string section = std::string("placement.") + name;
    report.integer(section, "bees", n_bees);
    report.integer(section, "hives", n_hives);
    report.number(section, "dirty_fraction", dirty_fraction);
    report.integer(section, "full_us", full_us);
    report.integer(section, "incremental_us", incr_us);
    report.number(section, "speedup", speedup);
    report.integer(section, "moves", full_moves.size());
    report.integer(section, "scored_incremental", incr.bees.size());
    report.boolean(section, "moves_equal", equal);
  }

  // Registry contention: same workload as micro_registry --contention so
  // the two committed baselines corroborate each other.
  ContentionParams params;
  if (args.small) {
    params.n_keys = 10'000;
    params.n_threads = 4;
    params.duration_ms = 250;
  }
  std::printf("\nregistry contention: %zu threads, %zu keys, %d ms per "
              "shard count\n\n",
              params.n_threads, params.n_keys, params.duration_ms);
  std::printf("%-7s %14s %12s %12s %8s\n", "shards", "ops/s", "lock_waits",
              "wait_us", "speedup");
  double base_ops = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ContentionResult r = run_registry_contention(shards, params);
    if (shards == 1) base_ops = r.ops_per_sec;
    const double speedup = base_ops > 0.0 ? r.ops_per_sec / base_ops : 0.0;
    std::printf("%-7zu %14.0f %12llu %12llu %7.1fx\n", shards,
                r.ops_per_sec,
                static_cast<unsigned long long>(r.lock_waits),
                static_cast<unsigned long long>(r.lock_wait_us), speedup);
    const std::string section = "registry." + std::to_string(shards);
    report.integer(section, "shards", shards);
    report.integer(section, "threads", params.n_threads);
    report.integer(section, "keys", params.n_keys);
    report.number(section, "ops_per_sec", r.ops_per_sec);
    report.integer(section, "lock_waits", r.lock_waits);
    report.integer(section, "lock_wait_us", r.lock_wait_us);
    report.number(section, "speedup_vs_1shard", speedup);
  }

  // Resolve-cache hit rate under the sharded service: 90% of lookups hit
  // a small hot set, the rest keep creating cold keys and missing.
  {
    ChannelMeter meter(params.n_hives);
    RegistryService registry(params.n_hives, &meter, 0, 8);
    RegistryService::Client client(registry, 1);
    std::vector<CellSet> hot;
    for (std::size_t i = 0; i < 64; ++i) {
      hot.push_back(CellSet::single("switches", "hot" + std::to_string(i)));
    }
    std::size_t cold = 0;
    for (std::size_t i = 0; i < params.n_keys; ++i) {
      const CellSet cells =
          (i % 10 != 0)
              ? hot[i % hot.size()]
              : CellSet::single("switches", "cold" + std::to_string(++cold));
      auto out = client.resolve_or_create(1, cells, false, 0);
      (void)out;
    }
    const double hit_rate =
        static_cast<double>(client.cache_hits()) /
        static_cast<double>(client.cache_hits() + client.cache_misses());
    std::printf("\nresolve cache: %llu hits / %llu misses (%.1f%% hit "
                "rate)\n",
                static_cast<unsigned long long>(client.cache_hits()),
                static_cast<unsigned long long>(client.cache_misses()),
                100.0 * hit_rate);
    report.integer("resolve_cache", "lookups", params.n_keys);
    report.integer("resolve_cache", "hits", client.cache_hits());
    report.integer("resolve_cache", "misses", client.cache_misses());
    report.number("resolve_cache", "hit_rate", hit_rate);
  }

  if (!args.json_path.empty()) {
    if (!report.write_file(args.json_path)) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  if (!all_equal) {
    std::fprintf(stderr,
                 "error: incremental rounds picked different moves than "
                 "full rounds\n");
    return 1;
  }
  return 0;
}

int run_te_sweep(const Args& args) {
  std::vector<std::size_t> hive_counts = {5, 10, 20, 40, 80};
  if (args.small) hive_counts = {5, 10};

  std::printf("TE scaling sweep: 10 switches per hive, 100 flows/switch, "
              "20 s simulated\n\n");
  std::printf("%-10s %6s %12s %10s %9s %9s %8s\n", "design", "hives",
              "wire(KB)", "KB/s avg", "hotspot", "locality", "te_bees");

  JsonReport report("scale_sweep");
  for (TEMode mode :
       {TEMode::kNaive, TEMode::kDecoupled, TEMode::kOptimized}) {
    const char* name = mode == TEMode::kNaive       ? "naive"
                       : mode == TEMode::kDecoupled ? "decoupled"
                                                    : "optimized";
    for (std::size_t hives : hive_counts) {
      TEParams params;
      params.n_hives = hives;
      params.n_switches = hives * 10;
      params.duration = 20 * kSecond;
      TEResult r = run_te_scenario(mode, params);
      double avg = 0.0;
      for (double v : r.kbps) avg += v;
      if (!r.kbps.empty()) avg /= static_cast<double>(r.kbps.size());
      std::printf("%-10s %6zu %12.1f %10.1f %9.2f %9.2f %8zu\n", name, hives,
                  static_cast<double>(r.wire_bytes) / 1024.0, avg,
                  r.hotspot_share, r.locality, r.te_bees);
      report_te(report, std::string(name) + "." + std::to_string(hives), r,
                params);
    }
    std::printf("\n");
  }
  if (!args.json_path.empty()) {
    if (!report.write_file(args.json_path)) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace beehive::bench

int main(int argc, char** argv) {
  using namespace beehive::bench;
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      args.small = true;
    } else if (std::strcmp(argv[i], "--control-plane") == 0) {
      args.control_plane = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires a path\n");
        return usage(argv[0], 2);
      }
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return usage(argv[0], 2);
    }
  }
  return args.control_plane ? run_control_plane(args) : run_te_sweep(args);
}
