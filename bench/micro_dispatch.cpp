// Dispatch fast-path microbenchmark.
//
// Measures the platform's per-message cost on the two steady-state routes
// of paper §3's "Life of a Message":
//   local  — a 1-hive cluster where every injected message maps to a cell
//            owned by a local bee (resolve + deliver + handler, no wire);
//   remote — a 2-hive cluster with placement pinned to hive 1 while the
//            driver injects on hive 0, so every message pays resolve +
//            envelope serialization + frame + delivery on the far side.
//
// Alongside wall-clock throughput it reports allocations per delivered
// message, counted by replacing global operator new for this binary (same
// harness as tests/test_introspection.cpp). Results land in
// BENCH_dispatch.json so CI can archive and diff them across commits.
//
// Each route runs as a profiler-off / profiler-on A/B: `--reps` repetitions
// of each variant, interleaved (off, on, off, on, ...) so drift in machine
// load hits both sides equally, with the *median* rep reported per variant
// and the profiler's overhead as a percentage. The cost profiler's design
// budget is <3% on the local route (DESIGN.md §9); CI warns past that.
//
// A third local variant, `local_bounded`, runs the same route with overload
// control armed (bounded mailbox + transport credit window, DESIGN.md §10);
// its A/B against plain `local` is the cost of the credit/bound bookkeeping
// and must stay ≤3%. `--bounded` restricts the run to just that pair.
//
// A fourth pair, `local_spans` / `local_traced`, prices tracing (DESIGN.md
// §11): spans-only vs spans + the tail sampler at the default 20ms
// threshold. Local sim traffic never crosses the threshold, so the
// spans-vs-tail A/B isolates exactly the unsampled decision path
// (note_trace_end latency check, no retention) — budgeted ≤3% — while
// local-vs-spans reports the PR-1 span-recording cost (off by default).
// `--traced` restricts the run to just these.
//
// A fifth series, `local_batched`, drives the same route through
// Hive::inject_batch (batched handler activation, DESIGN.md §12) and is
// compared against `local` by the CI perf-smoke job.
//
// `--pin N` pins the benchmark to core N (Linux) so the numbers aren't
// blurred by the scheduler migrating the process mid-rep — the measurement
// analogue of HiveConfig::pin_cpu on the threaded runtime.
//
// Usage: micro_dispatch [--json PATH] [--messages N] [--reps N] [--bounded]
//                       [--traced] [--pin N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "cluster/sim.h"
#include "tests/test_helpers.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

// ---------------------------------------------------------------------------
// Counting allocator (see tests/test_introspection.cpp for the rationale,
// including why the nothrow variants must be replaced too).
// ---------------------------------------------------------------------------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  return std::aligned_alloc(a, rounded == 0 ? a : rounded);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return ::operator new(n, al, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

constexpr std::size_t kWarmup = 10'000;
constexpr std::size_t kBatch = 4096;  // bounds the sim event queue (remote)

struct RunResult {
  double msgs_per_sec = 0;
  double allocs_per_msg = 0;
  std::uint64_t delivered = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

ClusterConfig base_config(std::size_t n_hives, bool profiler) {
  ClusterConfig cfg;
  cfg.n_hives = n_hives;
  cfg.hive.metrics_period = 0;  // keep the report timer off the hot path
  cfg.hive.profiler.enabled = profiler;
  cfg.hive.profiler.sample_every = 64;  // the production default
  return cfg;
}

/// One hive, one key: every message resolves to a local bee. The envelope
/// is built once and re-injected, so the loop measures dispatch + handler
/// cost, not message construction.
RunResult run_local(std::size_t n_messages, bool profiler) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(base_config(1, profiler), apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (std::size_t i = 0; i < kWarmup; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();

  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_messages; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  const std::uint64_t delivered =
      sim.hive(0).counters().handler_runs - runs_before;
  if (delivered != n_messages) {
    throw std::runtime_error("local: delivered " + std::to_string(delivered) +
                             " of " + std::to_string(n_messages));
  }
  RunResult r;
  r.delivered = delivered;
  r.msgs_per_sec = static_cast<double>(delivered) / secs;
  r.allocs_per_msg = static_cast<double>(allocs) / delivered;
  return r;
}

/// run_local through the batched ingress (DESIGN.md §12): the same route,
/// but messages arrive kInjectBatch at a time via Hive::inject_batch, so
/// runs that hit the dispatch memo share one activation (validation, bind,
/// policy, counters once per run; Map and the transaction still per
/// message). The A/B against `local` prices batched handler activation.
RunResult run_local_batched(std::size_t n_messages, bool profiler) {
  constexpr std::size_t kInjectBatch = 256;
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(base_config(1, profiler), apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  // The batch is built once and re-submitted: inject_batch borrows the
  // envelopes, so the loop measures batched dispatch, not construction.
  std::vector<MessageEnvelope> batch(kInjectBatch, msg);
  for (std::size_t i = 0; i < kWarmup; i += kInjectBatch) {
    sim.hive(0).inject_batch(batch);
  }
  sim.run_to_idle();

  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::size_t n_batches = n_messages / kInjectBatch;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_batches; ++i) {
    sim.hive(0).inject_batch(batch);
  }
  sim.run_to_idle();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  const std::uint64_t delivered =
      sim.hive(0).counters().handler_runs - runs_before;
  if (delivered != n_batches * kInjectBatch) {
    throw std::runtime_error(
        "local_batched: delivered " + std::to_string(delivered) + " of " +
        std::to_string(n_batches * kInjectBatch));
  }
  RunResult r;
  r.delivered = delivered;
  r.msgs_per_sec = static_cast<double>(delivered) / secs;
  r.allocs_per_msg = static_cast<double>(allocs) / delivered;
  return r;
}

/// run_local with overload control armed (DESIGN.md §10): the app carries a
/// bounded mailbox and the transport a credit window, so every message pays
/// whatever the bound/credit bookkeeping costs on the local fast path — the
/// A/B against run_local is the price of turning `--bounded` on.
RunResult run_local_bounded(std::size_t n_messages, bool profiler) {
  AppSet apps;
  CounterApp& app = apps.emplace<CounterApp>();
  app.set_overload({.bounded = true,
                    .mailbox_limit = 1024,
                    .policy = OverloadPolicy::kShedNewest});
  ClusterConfig cfg = base_config(1, profiler);
  cfg.hive.transport.credit_window = 8;
  SimCluster sim(cfg, apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (std::size_t i = 0; i < kWarmup; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();

  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_messages; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  const std::uint64_t delivered =
      sim.hive(0).counters().handler_runs - runs_before;
  if (delivered != n_messages) {
    throw std::runtime_error("local_bounded: delivered " +
                             std::to_string(delivered) + " of " +
                             std::to_string(n_messages));
  }
  RunResult r;
  r.delivered = delivered;
  r.msgs_per_sec = static_cast<double>(delivered) / secs;
  r.allocs_per_msg = static_cast<double>(allocs) / delivered;
  return r;
}

/// run_local with span recording on, and optionally the tail sampler
/// armed on top (DESIGN.md §11). With the sampler armed every message
/// additionally pays the note_trace_end fast path; nothing is ever
/// retained (virtual-time e2e is far below the 20ms threshold), so the
/// A/B of with_tail=true against with_tail=false isolates the always-on
/// cost of tail sampling — the number the ≤3% budget gates. (Span
/// recording itself — 4 ring writes per local message — is PR-1
/// machinery, costs ~10-15% on this microbench, and is off by default;
/// its cost is reported separately as tracing_overhead.)
RunResult run_local_traced(std::size_t n_messages, bool profiler,
                           bool with_tail) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg = base_config(1, profiler);
  cfg.tracing = true;
  cfg.tail.enabled = with_tail;  // default latency threshold (20ms)
  SimCluster sim(cfg, apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (std::size_t i = 0; i < kWarmup; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();

  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_messages; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  const std::uint64_t delivered =
      sim.hive(0).counters().handler_runs - runs_before;
  if (delivered != n_messages) {
    throw std::runtime_error("local_traced: delivered " +
                             std::to_string(delivered) + " of " +
                             std::to_string(n_messages));
  }
  RunResult r;
  r.delivered = delivered;
  r.msgs_per_sec = static_cast<double>(delivered) / secs;
  r.allocs_per_msg = static_cast<double>(allocs) / delivered;
  return r;
}

/// Two hives with placement pinned to hive 1; the driver injects on hive 0,
/// so every message crosses the control channel after resolve.
RunResult run_remote(std::size_t n_messages, bool profiler) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(base_config(2, profiler), apps);
  sim.registry().set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (std::size_t i = 0; i < kWarmup; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();

  const std::uint64_t runs_before = sim.hive(1).counters().handler_runs;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t sent = 0; sent < n_messages;) {
    const std::size_t burst = std::min(kBatch, n_messages - sent);
    for (std::size_t i = 0; i < burst; ++i) sim.hive(0).inject(msg);
    sim.run_to_idle();
    sent += burst;
  }
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  const std::uint64_t delivered =
      sim.hive(1).counters().handler_runs - runs_before;
  if (delivered != n_messages) {
    throw std::runtime_error("remote: delivered " + std::to_string(delivered) +
                             " of " + std::to_string(n_messages));
  }
  RunResult r;
  r.delivered = delivered;
  r.msgs_per_sec = static_cast<double>(delivered) / secs;
  r.allocs_per_msg = static_cast<double>(allocs) / delivered;
  return r;
}

/// The rep with the median msgs_per_sec (odd rep counts pick the true
/// middle; even ones the lower middle — stable, no averaging of reps).
RunResult median_by_throughput(std::vector<RunResult> reps) {
  std::sort(reps.begin(), reps.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.msgs_per_sec < b.msgs_per_sec;
            });
  return reps[(reps.size() - 1) / 2];
}

void print_result(const char* label, const RunResult& r) {
  std::printf("%-15s %12.0f msgs/s  %6.2f allocs/msg  (%llu delivered)\n",
              label, r.msgs_per_sec, r.allocs_per_msg,
              static_cast<unsigned long long>(r.delivered));
}

void report_group(bench::JsonReport& report, const std::string& group,
                  const RunResult& r) {
  report.integer(group, "messages", r.delivered);
  report.number(group, "msgs_per_sec", r.msgs_per_sec);
  report.number(group, "allocs_per_msg", r.allocs_per_msg);
}

/// Percentage throughput lost with the profiler on (negative = faster).
double overhead_pct(const RunResult& off, const RunResult& on) {
  if (off.msgs_per_sec <= 0) return 0.0;
  return (off.msgs_per_sec - on.msgs_per_sec) / off.msgs_per_sec * 100.0;
}

int run(int argc, char** argv) {
  std::string json_path = "BENCH_dispatch.json";
  std::size_t n_messages = 200'000;
  std::size_t reps = 5;
  bool bounded_only = false;
  bool traced_only = false;
  int pin = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      n_messages = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--bounded") == 0) {
      bounded_only = true;
    } else if (std::strcmp(argv[i], "--traced") == 0) {
      traced_only = true;
    } else if (std::strcmp(argv[i], "--pin") == 0 && i + 1 < argc) {
      pin = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_dispatch [--json PATH] [--messages N] "
                   "[--reps N] [--bounded] [--traced] [--pin N]\n"
                   "  --bounded  run only the unbounded-vs-bounded local A/B\n"
                   "             (overload control armed, DESIGN.md §10)\n"
                   "  --traced   run only the local tracing/tail-sampler A/Bs\n"
                   "             (tail sampling armed, DESIGN.md §11)\n"
                   "  --pin N    pin the benchmark to core N (Linux only)\n");
      return 2;
    }
  }

  if (pin >= 0) {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(pin), &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
      std::fprintf(stderr, "warning: could not pin to core %d\n", pin);
    }
#else
    std::fprintf(stderr, "warning: --pin is Linux-only, ignoring\n");
#endif
  }

  // Interleave the A/B variants within every rep so slow machine phases
  // (thermal, noisy neighbors) bias both sides the same way. The bounded
  // and traced variants ride in the same interleave so their A/Bs against
  // plain local are fair; --bounded / --traced restrict the run to just
  // that pair.
  std::vector<RunResult> local_off, local_on, remote_off, remote_on;
  std::vector<RunResult> local_bat, local_bnd, local_spn, local_trc;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    local_off.push_back(run_local(n_messages, /*profiler=*/false));
    if (!bounded_only && !traced_only) {
      local_bat.push_back(run_local_batched(n_messages, /*profiler=*/false));
    }
    if (!traced_only) {
      local_bnd.push_back(run_local_bounded(n_messages, /*profiler=*/false));
    }
    if (!bounded_only) {
      local_spn.push_back(
          run_local_traced(n_messages, /*profiler=*/false, /*tail=*/false));
      local_trc.push_back(
          run_local_traced(n_messages, /*profiler=*/false, /*tail=*/true));
    }
    if (bounded_only || traced_only) continue;
    local_on.push_back(run_local(n_messages, /*profiler=*/true));
    remote_off.push_back(run_remote(n_messages, /*profiler=*/false));
    remote_on.push_back(run_remote(n_messages, /*profiler=*/true));
  }
  const RunResult local = median_by_throughput(std::move(local_off));

  print_result("local", local);

  bench::JsonReport report("micro_dispatch");
  report_group(report, "local", local);

  if (!bounded_only && !traced_only) {
    const RunResult localbat = median_by_throughput(std::move(local_bat));
    print_result("local+batched", localbat);
    // Negative overhead = batching is a speedup; reported from the same
    // convention so the CI comparator can reuse its threshold logic.
    const double batch_gain = -overhead_pct(local, localbat);
    std::printf("batched activation gain (median of %zu reps): "
                "local %+.2f%%\n",
                reps, batch_gain);
    report_group(report, "local_batched", localbat);
    report.integer("batch_gain", "reps", reps);
    report.number("batch_gain", "local_pct", batch_gain);
  }

  if (!traced_only) {
    const RunResult localb = median_by_throughput(std::move(local_bnd));
    print_result("local+bounded", localb);
    const double bounded_oh = overhead_pct(local, localb);
    std::printf("bounded overhead (median of %zu reps): local %+.2f%%\n",
                reps, bounded_oh);
    report_group(report, "local_bounded", localb);
    report.integer("bounded_overhead", "reps", reps);
    report.number("bounded_overhead", "local_pct", bounded_oh);
  }

  if (!bounded_only) {
    const RunResult locals = median_by_throughput(std::move(local_spn));
    const RunResult localt = median_by_throughput(std::move(local_trc));
    print_result("local+spans", locals);
    print_result("local+spans+tail", localt);
    // Two numbers with different owners: tracing_overhead is the PR-1
    // span-recording cost (off by default, informational); traced_overhead
    // is the tail sampler's increment on top of span recording — the
    // always-on decision logic the ≤3% budget gates (DESIGN.md §11).
    const double tracing_oh = overhead_pct(local, locals);
    const double traced_oh = overhead_pct(locals, localt);
    std::printf("tracing overhead (median of %zu reps): local %+.2f%%\n",
                reps, tracing_oh);
    std::printf("tail-sampler overhead (median of %zu reps, vs spans-only): "
                "local %+.2f%%\n",
                reps, traced_oh);
    report_group(report, "local_spans", locals);
    report_group(report, "local_traced", localt);
    report.integer("tracing_overhead", "reps", reps);
    report.number("tracing_overhead", "local_pct", tracing_oh);
    report.integer("traced_overhead", "reps", reps);
    report.number("traced_overhead", "local_pct", traced_oh);
  }

  if (!bounded_only && !traced_only) {
    const RunResult localp = median_by_throughput(std::move(local_on));
    const RunResult remote = median_by_throughput(std::move(remote_off));
    const RunResult remotep = median_by_throughput(std::move(remote_on));

    print_result("local+profiler", localp);
    print_result("remote", remote);
    print_result("remote+profiler", remotep);
    const double local_oh = overhead_pct(local, localp);
    const double remote_oh = overhead_pct(remote, remotep);
    std::printf("profiler overhead (median of %zu reps): local %+.2f%%  "
                "remote %+.2f%%\n",
                reps, local_oh, remote_oh);

    report_group(report, "remote", remote);
    report_group(report, "local_profiler", localp);
    report_group(report, "remote_profiler", remotep);
    report.integer("profiler_overhead", "reps", reps);
    report.number("profiler_overhead", "local_pct", local_oh);
    report.number("profiler_overhead", "remote_pct", remote_oh);
  }
  if (!report.write_file(json_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace beehive

int main(int argc, char** argv) { return beehive::run(argc, argv); }
