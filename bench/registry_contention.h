// Shared multi-threaded registry contention runner (DESIGN.md §13):
// T threads resolve pre-existing single-cell keys as fast as they can for
// a fixed wall time against a service with a given shard count. With one
// shard every resolve serializes on one mutex (the convoy the partitioning
// removes); with N shards resolves of keys hashing to different shards
// never touch the same lock. Used by micro_registry --contention and
// scale_sweep --control-plane so the committed BENCH_registry.json and
// BENCH_scale.json measure the same workload.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cluster/registry.h"

namespace beehive::bench {

struct ContentionParams {
  std::size_t n_hives = 64;
  std::size_t n_keys = 100'000;
  std::size_t n_threads = 8;
  int duration_ms = 1000;
};

struct ContentionResult {
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  std::uint64_t lock_waits = 0;
  std::uint64_t lock_wait_us = 0;
  /// Fold of returned bee ids: defeats dead-code elimination and gives a
  /// cheap cross-run sanity value (same population -> same set of bees).
  std::uint64_t checksum = 0;
};

inline ContentionResult run_registry_contention(std::size_t n_shards,
                                                const ContentionParams& p) {
  constexpr AppId kApp = 1;
  ChannelMeter meter(p.n_hives);
  RegistryService registry(p.n_hives, &meter, 0, n_shards);
  std::vector<CellSet> keys;
  keys.reserve(p.n_keys);
  for (std::size_t i = 0; i < p.n_keys; ++i) {
    keys.push_back(CellSet::single("switches", std::to_string(i)));
    registry.resolve_or_create(kApp, keys.back(),
                               static_cast<HiveId>(i % p.n_hives), false, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> workers;
  workers.reserve(p.n_threads);
  for (std::size_t t = 0; t < p.n_threads; ++t) {
    workers.emplace_back([&, t] {
      // Per-thread stride so threads walk the key space out of phase —
      // shard collisions happen by hash, not by lockstep iteration.
      std::uint64_t ops = 0;
      std::uint64_t sum = 0;
      std::size_t i = t * 7919;  // prime offset
      while (!stop.load(std::memory_order_relaxed)) {
        const CellSet& cells = keys[i % keys.size()];
        i += p.n_threads;
        sum += registry
                   .resolve_or_create(kApp, cells,
                                      static_cast<HiveId>(t % p.n_hives),
                                      false, 0)
                   .bee;
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
      checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(p.duration_ms));
  stop.store(true);
  for (std::thread& w : workers) w.join();

  ContentionResult r;
  r.ops = total_ops.load();
  r.ops_per_sec = static_cast<double>(r.ops) / (p.duration_ms / 1000.0);
  r.checksum = checksum.load();
  for (std::uint32_t s = 0; s < registry.shard_count(); ++s) {
    const RegistryShardStats stats = registry.shard_stats(s);
    r.lock_waits += stats.lock_waits;
    r.lock_wait_us += stats.lock_wait_ns / 1000;
  }
  return r;
}

}  // namespace beehive::bench
