// Application analytics report (paper §3, "Runtime Instrumentation"): the
// provenance/causation table the collector derives — "we store that packet
// out messages are emitted by the learning switch application upon
// receiving 80% of packet in's". We run the decoupled TE pipeline and a
// learning-switch workload, then print emissions-per-input for every
// (app, input type, output type) edge the collector observed.
#include <cstdio>

#include "apps/discovery.h"
#include "apps/learning_switch.h"
#include "apps/te_decoupled.h"
#include "cluster/sim.h"
#include "instrument/collector.h"
#include "net/driver.h"
#include "net/fabric.h"
#include "util/rng.h"

using namespace beehive;

int main() {
  constexpr std::size_t kHives = 8;
  constexpr std::size_t kSwitches = 40;

  AppSet apps;
  TreeTopology topology(kSwitches, 4, kHives);
  NetworkFabric fabric{TreeTopology(topology)};
  apps.emplace<OpenFlowDriverApp>(&fabric);
  apps.emplace<DiscoveryApp>(&topology);
  apps.emplace<TEDecoupledApp>();
  apps.emplace<LearningSwitchApp>();
  apps.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), kHives);

  ClusterConfig config;
  config.n_hives = kHives;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 15 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });

  // A dataplane packet workload: 20% unknown destinations (floods).
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    auto sw = static_cast<SwitchId>(rng.next_below(kSwitches));
    std::uint64_t src = rng.next_below(32);
    std::uint64_t dst = rng.next_below(40);  // some never learned
    fabric.punt_packet(sw, src, dst, static_cast<std::uint16_t>(src),
                       [&sim](HiveId hive, MessageEnvelope env) {
                         sim.hive(hive).inject(std::move(env));
                       },
                       sim.now());
  }
  sim.run_until(15 * kSecond);
  sim.run_to_idle();

  // Locate the collector bee and pull its analytics state.
  AppId collector_id = apps.find_by_name("platform.collector")->id();
  const StateStore* store = nullptr;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != collector_id) continue;
    if (Bee* bee = sim.hive(rec.hive).find_bee(rec.id)) {
      store = &bee->store();
    }
  }
  if (store == nullptr) {
    std::printf("no collector bee found\n");
    return 1;
  }

  auto rows = CollectorApp::causation_from_store(*store);
  const auto& registry = MsgTypeRegistry::instance();
  auto app_name = [&apps](AppId id) -> std::string {
    const App* app = apps.find(id);
    return app != nullptr ? app->name() : std::to_string(id);
  };

  std::printf("Causation analytics (emissions per received input):\n\n");
  std::printf("%-16s %-24s -> %-24s %9s %9s %7s\n", "app", "on receiving",
              "emits", "inputs", "emitted", "ratio");
  for (const auto& row : rows) {
    std::printf("%-16s %-24.*s -> %-24.*s %9llu %9llu %7.2f\n",
                app_name(row.app).c_str(),
                static_cast<int>(registry.name_of(row.in).size()),
                registry.name_of(row.in).data(),
                static_cast<int>(registry.name_of(row.out).size()),
                registry.name_of(row.out).data(),
                static_cast<unsigned long long>(row.inputs),
                static_cast<unsigned long long>(row.emitted), row.ratio);
  }
  std::printf("\n(%zu causation edges observed; timer-driven emissions "
              "attribute to platform.timer_tick)\n",
              rows.size());
  return 0;
}
