// Use-case application benchmark (paper §4): throughput and placement
// locality of the four application archetypes running on the platform —
// Kandoo-style local app (learning switch), ONIX NIB, per-VN network
// virtualization, and per-prefix routing. For each we drive a fixed
// workload across a multi-hive cluster and report events/sec of simulated
// processing, locality, and the bee population the platform derived.
#include <cstdio>

#include "apps/learning_switch.h"
#include "apps/messages.h"
#include "apps/netvirt.h"
#include "apps/nib.h"
#include "apps/routing.h"
#include "cluster/sim.h"
#include "util/rng.h"

namespace {

using namespace beehive;

struct Row {
  const char* app;
  std::size_t events;
  std::uint64_t wire_bytes;
  double locality;
  std::size_t bees;
  double sim_seconds;
};

Row run_case(const char* name, const std::function<void(SimCluster&)>& drive,
             const AppSet& apps, AppId app_id) {
  ClusterConfig config;
  config.n_hives = 8;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  drive(sim);
  sim.run_to_idle();

  Row row{};
  row.app = name;
  std::uint64_t local = 0, remote = 0;
  for (HiveId h = 0; h < 8; ++h) {
    local += sim.hive(h).counters().routed_local;
    remote += sim.hive(h).counters().routed_remote;
    row.events += sim.hive(h).counters().handler_runs;
  }
  row.locality = (local + remote) == 0
                     ? 0.0
                     : static_cast<double>(local) /
                           static_cast<double>(local + remote);
  row.wire_bytes = sim.meter().total_bytes();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == app_id) ++row.bees;
  }
  row.sim_seconds =
      static_cast<double>(sim.now()) / static_cast<double>(kSecond);
  return row;
}

}  // namespace

int main() {
  std::printf("Use-case applications on an 8-hive cluster (paper §4)\n\n");
  std::printf("%-16s %10s %12s %10s %6s %10s\n", "app", "handlers",
              "wire(KB)", "locality", "bees", "sim(s)");

  constexpr int kEvents = 20000;

  {
    AppSet apps;
    apps.emplace<LearningSwitchApp>();
    AppId id = apps.find_by_name("learning_switch")->id();
    Row row = run_case(
        "learning_switch",
        [](SimCluster& sim) {
          Xoshiro256 rng(1);
          for (int i = 0; i < kEvents; ++i) {
            auto sw = static_cast<SwitchId>(rng.next_below(64));
            auto hive = static_cast<HiveId>(sw / 8);  // master-local punt
            PacketIn pkt{sw, rng.next_below(32), rng.next_below(32),
                         static_cast<std::uint16_t>(rng.next_below(48))};
            sim.hive(hive).inject(MessageEnvelope::make(
                pkt, 0, kNoBee, hive, sim.now()));
            if (i % 256 == 0) sim.run_to_idle();
          }
        },
        apps, id);
    std::printf("%-16s %10zu %12.1f %10.2f %6zu %10.2f\n", row.app,
                row.events, static_cast<double>(row.wire_bytes) / 1024.0,
                row.locality, row.bees, row.sim_seconds);
  }

  {
    AppSet apps;
    apps.emplace<NibApp>();
    AppId id = apps.find_by_name("nib")->id();
    Row row = run_case(
        "onix_nib",
        [](SimCluster& sim) {
          Xoshiro256 rng(2);
          for (int i = 0; i < kEvents; ++i) {
            auto node = static_cast<NodeId>(rng.next_below(512));
            auto hive = static_cast<HiveId>(rng.next_below(8));
            if (i % 3 == 0) {
              sim.hive(hive).inject(MessageEnvelope::make(
                  NibLinkAdd{node, rng.next_below(512)}, 0, kNoBee, hive,
                  sim.now()));
            } else {
              sim.hive(hive).inject(MessageEnvelope::make(
                  NibNodeUpdate{node, "a", std::to_string(i)}, 0, kNoBee,
                  hive, sim.now()));
            }
            if (i % 256 == 0) sim.run_to_idle();
          }
        },
        apps, id);
    std::printf("%-16s %10zu %12.1f %10.2f %6zu %10.2f\n", row.app,
                row.events, static_cast<double>(row.wire_bytes) / 1024.0,
                row.locality, row.bees, row.sim_seconds);
  }

  {
    AppSet apps;
    apps.emplace<NetVirtApp>();
    AppId id = apps.find_by_name("netvirt")->id();
    Row row = run_case(
        "netvirt",
        [](SimCluster& sim) {
          Xoshiro256 rng(3);
          for (VnId vn = 0; vn < 128; ++vn) {
            auto hive = static_cast<HiveId>(vn % 8);
            sim.hive(hive).inject(MessageEnvelope::make(
                VnCreate{vn}, 0, kNoBee, hive, sim.now()));
          }
          sim.run_to_idle();
          for (int i = 0; i < kEvents; ++i) {
            auto vn = static_cast<VnId>(rng.next_below(128));
            auto hive = static_cast<HiveId>(vn % 8);  // VN affinity
            VnAttach attach{vn, static_cast<SwitchId>(rng.next_below(64)),
                            static_cast<std::uint16_t>(rng.next_below(16)),
                            rng.next()};
            sim.hive(hive).inject(MessageEnvelope::make(
                attach, 0, kNoBee, hive, sim.now()));
            if (i % 256 == 0) sim.run_to_idle();
          }
        },
        apps, id);
    std::printf("%-16s %10zu %12.1f %10.2f %6zu %10.2f\n", row.app,
                row.events, static_cast<double>(row.wire_bytes) / 1024.0,
                row.locality, row.bees, row.sim_seconds);
  }

  {
    AppSet apps;
    apps.emplace<RoutingApp>();
    AppId id = apps.find_by_name("routing")->id();
    Row row = run_case(
        "routing",
        [](SimCluster& sim) {
          Xoshiro256 rng(4);
          for (int i = 0; i < kEvents; ++i) {
            auto octet = static_cast<std::uint32_t>(rng.next_below(64));
            auto hive = static_cast<HiveId>(octet % 8);
            std::uint32_t prefix =
                (octet << 24) |
                (static_cast<std::uint32_t>(rng.next_below(256)) << 16);
            if (i % 4 == 0) {
              sim.hive(hive).inject(MessageEnvelope::make(
                  RouteQuery{prefix | 0x0101u, static_cast<std::uint64_t>(i)},
                  0, kNoBee, hive, sim.now()));
            } else {
              sim.hive(hive).inject(MessageEnvelope::make(
                  RouteAnnounce{prefix, 16,
                                static_cast<std::uint32_t>(rng.next()), 1},
                  0, kNoBee, hive, sim.now()));
            }
            if (i % 256 == 0) sim.run_to_idle();
          }
        },
        apps, id);
    std::printf("%-16s %10zu %12.1f %10.2f %6zu %10.2f\n", row.app,
                row.events, static_cast<double>(row.wire_bytes) / 1024.0,
                row.locality, row.bees, row.sim_seconds);
  }

  return 0;
}
