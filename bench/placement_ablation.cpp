// Ablation of the placement strategy (paper §3 notes the heuristic is
// pluggable): decoupled TE with cells pinned to one hive at start, then
// three optimizers compared — none, random moves, and the paper's greedy
// follow-the-sources. Expected shape: greedy recovers locality and cuts
// control bandwidth; random does not (it just spends migration traffic);
// none stays stuck on the pinned hive.
#include <cstdio>
#include <memory>

#include "bench/te_harness.h"

namespace {

using namespace beehive;
using namespace beehive::bench;

// Variant of run_te_scenario that always pins stat cells to one hive and
// takes an arbitrary strategy.
TEResult run_pinned(std::shared_ptr<PlacementStrategy> strategy,
                    const TEParams& params) {
  AppSet apps;
  TreeTopology topology(params.n_switches, params.tree_fanout,
                        params.n_hives);
  FabricConfig fabric_config;
  fabric_config.sw.n_flows = params.flows_per_switch;
  fabric_config.sw.delta_kbps = params.delta_kbps;
  fabric_config.seed = params.seed;
  NetworkFabric fabric(topology, fabric_config);

  apps.emplace<OpenFlowDriverApp>(&fabric);
  apps.emplace<DiscoveryApp>(&topology);
  TEConfig te_config;
  te_config.delta_kbps = params.delta_kbps;
  apps.emplace<TEDecoupledApp>(te_config);
  apps.emplace<CollectorApp>(strategy, params.n_hives,
                             CollectorConfig{params.optimize_period});

  ClusterConfig cluster_config;
  cluster_config.n_hives = params.n_hives;
  cluster_config.seed = params.seed;
  cluster_config.hive.metrics_period = kSecond;
  cluster_config.hive.timers_until = params.duration;
  SimCluster sim(cluster_config, apps);

  const AppId te_id = apps.find_by_name("te.decoupled")->id();
  const std::string stats_dict(TEDecoupledApp::kStatsDict);
  sim.registry().set_placement_hook(
      [te_id, &params, stats_dict](AppId app, const CellSet& cells,
                                   HiveId requester) -> HiveId {
        if (app == te_id && !cells.empty() &&
            cells.begin()->dict == stats_dict) {
          return params.pin_hive;
        }
        return requester;
      });

  sim.start();
  fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });
  sim.run_until(params.duration);
  sim.run_to_idle();

  TEResult result;
  result.n_hives = params.n_hives;
  std::uint64_t local = 0, remote = 0;
  for (HiveId i = 0; i < params.n_hives; ++i) {
    local += sim.hive(i).counters().routed_local;
    remote += sim.hive(i).counters().routed_remote;
    result.migrations += sim.hive(i).counters().migrations_in;
  }
  result.kbps = sim.meter().bandwidth_kbps();
  result.hotspot_share = sim.meter().hotspot_share();
  result.locality = (local + remote) == 0
                        ? 0.0
                        : static_cast<double>(local) /
                              static_cast<double>(local + remote);
  result.wire_bytes = sim.meter().total_bytes();
  result.flow_mods = fabric.total_flow_mods();
  return result;
}

}  // namespace

int main() {
  TEParams params;
  params.n_hives = 20;
  params.n_switches = 200;
  params.duration = 30 * kSecond;

  struct Row {
    const char* name;
    std::shared_ptr<PlacementStrategy> strategy;
  };
  Row rows[] = {
      {"none", std::make_shared<NoopStrategy>()},
      {"random", std::make_shared<RandomStrategy>(7, 0.2)},
      {"loadbal", std::make_shared<LoadBalanceStrategy>(
                      LoadBalanceConfig{.min_messages = 2})},
      {"greedy", std::make_shared<GreedyFollowSources>(
                     GreedyConfig{.majority_fraction = 0.5,
                                  .min_messages = 2})},
  };

  std::printf("Placement ablation: decoupled TE, stat cells pinned to hive "
              "%u at start; %zu hives, %zu switches, 30 s\n\n",
              params.pin_hive, params.n_hives, params.n_switches);
  std::printf("%-8s %12s %10s %10s %12s %12s\n", "policy", "wire(KB)",
              "locality", "hotspot", "migrations", "tailKB/s");

  for (Row& row : rows) {
    TEResult r = run_pinned(row.strategy, params);
    // Mean of the last third of the series: steady state after migrations.
    double tail = 0.0;
    std::size_t n = r.kbps.size();
    std::size_t from = 2 * n / 3;
    for (std::size_t i = from; i < n; ++i) tail += r.kbps[i];
    if (n > from) tail /= static_cast<double>(n - from);
    std::printf("%-8s %12.1f %10.2f %10.2f %12llu %12.1f\n", row.name,
                static_cast<double>(r.wire_bytes) / 1024.0, r.locality,
                r.hotspot_share,
                static_cast<unsigned long long>(r.migrations), tail);
  }
  return 0;
}
