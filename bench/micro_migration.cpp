// Microbenchmark: live-migration cost as a function of the migrating
// bee's state size (cells x value size), measured end-to-end on the
// simulator — snapshot, transfer frame, re-instantiation, registry commit,
// ack and holdback drain.
#include <benchmark/benchmark.h>

#include "cluster/sim.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::Incr;

void BM_MigrationEndToEnd(benchmark::State& state) {
  const auto n_cells = static_cast<std::uint64_t>(state.range(0));
  AppSet apps;
  apps.emplace<CounterApp>();

  std::uint64_t moved_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ClusterConfig config;
    config.n_hives = 2;
    config.hive.metrics_period = 0;
    SimCluster sim(config, apps);
    sim.start();
    // One bee with n_cells cells: seed one key, then force collocation by
    // a whole-dict query... cheaper: use PairIncr chains? Simply touch one
    // key per message from the same hive then merge via SumQuery.
    for (std::uint64_t i = 0; i < n_cells; ++i) {
      sim.hive(0).inject(MessageEnvelope::make(
          Incr{"k" + std::to_string(i), 1}, 0, kNoBee, 0, sim.now()));
    }
    sim.hive(0).inject(MessageEnvelope::make(testing::SumQuery{1}, 0, kNoBee,
                                             0, sim.now()));
    sim.run_to_idle();
    AppId app = apps.find_by_name("test.counter")->id();
    BeeId bee = kNoBee;
    std::uint64_t state_bytes = 0;
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app == app) {
        bee = rec.id;
        if (Bee* b = sim.hive(rec.hive).find_bee(rec.id)) {
          state_bytes = b->store().byte_size();
        }
      }
    }
    state.ResumeTiming();

    sim.hive(0).request_migration(bee, 1);
    sim.run_to_idle();
    moved_bytes += state_bytes;
    benchmark::DoNotOptimize(sim.registry().hive_of(bee));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(moved_bytes));
  state.counters["cells"] = static_cast<double>(n_cells);
}
BENCHMARK(BM_MigrationEndToEnd)->Arg(1)->Arg(16)->Arg(128)->Arg(1024)->Iterations(10);

void BM_MigrationWithInflightTraffic(benchmark::State& state) {
  // Holdback + drain cost: messages arriving while the bee is frozen.
  const auto inflight = static_cast<std::uint64_t>(state.range(0));
  AppSet apps;
  apps.emplace<CounterApp>();
  for (auto _ : state) {
    state.PauseTiming();
    ClusterConfig config;
    config.n_hives = 2;
    config.hive.metrics_period = 0;
    SimCluster sim(config, apps);
    sim.start();
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
    sim.run_to_idle();
    AppId app = apps.find_by_name("test.counter")->id();
    BeeId bee = sim.registry().live_bees()[0].id;
    (void)app;
    state.ResumeTiming();

    sim.hive(0).request_migration(bee, 1);
    for (std::uint64_t i = 0; i < inflight; ++i) {
      sim.hive(0).inject(
          MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
    }
    sim.run_to_idle();
  }
  state.counters["inflight"] = static_cast<double>(inflight);
}
BENCHMARK(BM_MigrationWithInflightTraffic)->Arg(0)->Arg(64)->Arg(512)->Iterations(20);

}  // namespace
}  // namespace beehive

BENCHMARK_MAIN();
