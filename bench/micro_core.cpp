// Microbenchmarks of the platform's hot paths: codec throughput, Map
// evaluation + registry resolution, end-to-end message dispatch, state
// transactions, and state snapshots (the unit of migration cost).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/messages.h"
#include "apps/te_common.h"
#include "bench/bench_json.h"
#include "cluster/sim.h"
#include "instrument/registry.h"
#include "state/txn.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

void BM_CodecEncodeFlowStatReply(benchmark::State& state) {
  FlowStatReply reply;
  reply.sw = 7;
  reply.stats.resize(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < reply.stats.size(); ++i) {
    reply.stats[i] = {static_cast<std::uint32_t>(i), 123.4, 1 << 20};
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes b = encode_to_bytes(reply);
    bytes += b.size();
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CodecEncodeFlowStatReply)->Arg(10)->Arg(100)->Arg(1000);

void BM_CodecDecodeFlowStatReply(benchmark::State& state) {
  FlowStatReply reply;
  reply.sw = 7;
  reply.stats.resize(static_cast<std::size_t>(state.range(0)));
  Bytes wire = encode_to_bytes(reply);
  std::size_t bytes = 0;
  for (auto _ : state) {
    FlowStatReply back = decode_from_bytes<FlowStatReply>(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CodecDecodeFlowStatReply)->Arg(10)->Arg(100)->Arg(1000);

void BM_EnvelopeWireRoundTrip(benchmark::State& state) {
  auto env = MessageEnvelope::make(Incr{"some-counter-key", 42});
  for (auto _ : state) {
    MessageEnvelope back = MessageEnvelope::from_wire(env.to_wire());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_EnvelopeWireRoundTrip);

// ---------------------------------------------------------------------------
// State transactions
// ---------------------------------------------------------------------------

void BM_TxnPutCommit(benchmark::State& state) {
  StateStore store;
  std::int64_t i = 0;
  for (auto _ : state) {
    Txn txn(store, AccessPolicy::all());
    txn.put_as("d", "key", I64{i++});
    txn.commit();
  }
}
BENCHMARK(BM_TxnPutCommit);

void BM_TxnRollback(benchmark::State& state) {
  StateStore store;
  store.dict("d").put_as("key", I64{1});
  for (auto _ : state) {
    Txn txn(store, AccessPolicy::all());
    txn.put_as("d", "key", I64{2});
    txn.rollback();
  }
}
BENCHMARK(BM_TxnRollback);

void BM_StateSnapshot(benchmark::State& state) {
  StateStore store;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    FlowSeriesEntry entry;
    entry.sw = static_cast<SwitchId>(i);
    entry.latest.resize(100);
    store.dict("S").put_as(std::to_string(i), entry);
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes snap = store.snapshot();
    bytes += snap.size();
    benchmark::DoNotOptimize(snap);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StateSnapshot)->Arg(1)->Arg(10)->Arg(100);

// ---------------------------------------------------------------------------
// End-to-end dispatch on a live single-hive cluster
// ---------------------------------------------------------------------------

void BM_LocalDispatch(benchmark::State& state) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 1;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
    sim.run_to_idle();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalDispatch);

void BM_RemoteDispatch(benchmark::State& state) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  // Bee lives on hive 0; inject at hive 1 so every message crosses.
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim.hive(1).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 1, sim.now()));
    sim.run_to_idle();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RemoteDispatch);

void BM_LocalDispatchTraced(benchmark::State& state) {
  // Same as BM_LocalDispatch with span recording on: the delta is the
  // tracing overhead per message.
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 1;
  config.hive.metrics_period = 0;
  config.tracing = true;
  SimCluster sim(config, apps);
  sim.start();
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
    sim.run_to_idle();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalDispatchTraced);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram h;
  Duration v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2654435761u + 1) & ((1 << 22) - 1);  // cheap value spread
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

// ---------------------------------------------------------------------------
// Metrics-registry hot paths: the scrape-safe cells hives update per
// message / per window. All must stay O(1) and allocation-free.
// ---------------------------------------------------------------------------

void BM_MetricsCounterInc(benchmark::State& state) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bench_counter", {{"hive", "0"}});
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("bench_hist", {{"hive", "0"}});
  Duration v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2654435761u + 1) & ((1 << 22) - 1);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_TimeSeriesRingPush(benchmark::State& state) {
  MetricsRegistry reg;
  TimeSeriesRing& ring = reg.ring("bench_ring", {{"hive", "0"}});
  TimePoint t = 0;
  for (auto _ : state) {
    ring.push(t, 1.0);
    t += kSecond;
    benchmark::DoNotOptimize(ring);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesRingPush);

void BM_PrometheusScrape(benchmark::State& state) {
  // Cost of rendering one exposition page for a mid-size cluster's worth
  // of series (scrape side, off the hive hot path).
  MetricsRegistry reg;
  const auto hives = static_cast<std::size_t>(state.range(0));
  for (std::size_t h = 0; h < hives; ++h) {
    MetricLabels labels{{"hive", std::to_string(h)}};
    reg.counter("beehive_messages_total", labels).inc(h * 1000);
    reg.gauge("beehive_queue_depth", labels).set(static_cast<double>(h));
    reg.histogram("beehive_e2e_latency_us", labels).record(200);
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string page = reg.prometheus_text();
    bytes += page.size();
    benchmark::DoNotOptimize(page);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PrometheusScrape)->Arg(4)->Arg(40);

void BM_DispatchFanout(benchmark::State& state) {
  // Cost of one injected message as the number of distinct cells grows:
  // routing stays O(1) per message regardless of cell population.
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  const auto keys = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < keys; ++i) {
    sim.hive(i % 4).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i), 1}, 0, kNoBee,
        static_cast<HiveId>(i % 4), sim.now()));
  }
  sim.run_to_idle();
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim.hive(0).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(n % keys), 1}, 0, kNoBee, 0, sim.now()));
    sim.run_to_idle();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchFanout)->Arg(16)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------------
// Latency probe: a small 2-hive workload with tracing on, reporting the
// platform's own histogram percentiles (virtual-clock microseconds).
// ---------------------------------------------------------------------------

void run_latency_probe(const std::string& json_path) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  config.tracing = true;
  SimCluster sim(config, apps);
  sim.start();
  // Odd key modulus vs. alternating ingress hive: roughly half the
  // messages land on the other hive's bee and cross the wire, so the
  // distribution mixes instant local hops with 200us channel hops.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const HiveId at = static_cast<HiveId>(i % 2);
    sim.hive(at).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i % 7), 1}, 0, kNoBee, at, sim.now()));
    sim.run_for(100 * kMicrosecond);
  }
  sim.run_to_idle();

  LatencyHistogram queue, handler, e2e;
  for (HiveId h = 0; h < 2; ++h) {
    queue.merge(sim.hive(h).queue_latency());
    handler.merge(sim.hive(h).handler_latency());
    e2e.merge(sim.hive(h).e2e_latency());
  }
  std::printf(
      "\nlatency probe (2 hives, 1000 msgs, sim us): "
      "queue p50=%llu p99=%llu | handler p50=%llu p99=%llu | "
      "e2e p50=%llu p99=%llu (n=%llu)\n",
      static_cast<unsigned long long>(queue.p50()),
      static_cast<unsigned long long>(queue.p99()),
      static_cast<unsigned long long>(handler.p50()),
      static_cast<unsigned long long>(handler.p99()),
      static_cast<unsigned long long>(e2e.p50()),
      static_cast<unsigned long long>(e2e.p99()),
      static_cast<unsigned long long>(e2e.count()));

  if (json_path.empty()) return;
  const double seconds =
      static_cast<double>(sim.now()) / static_cast<double>(kSecond);
  bench::JsonReport report("micro_core");
  const std::string s = "latency_probe";
  report.number(s, "throughput_msgs_per_s",
                seconds == 0.0
                    ? 0.0
                    : static_cast<double>(e2e.count()) / seconds);
  report.integer(s, "e2e_count", e2e.count());
  report.integer(s, "e2e_p50_us", e2e.p50());
  report.integer(s, "e2e_p99_us", e2e.p99());
  report.integer(s, "queue_p50_us", queue.p50());
  report.integer(s, "queue_p99_us", queue.p99());
  report.integer(s, "wire_bytes", sim.meter().total_bytes());
  report.integer(s, "wire_messages", sim.meter().total_messages());
  if (report.write_file(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: failed to write %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace beehive

int main(int argc, char** argv) {
  // Strip our own --json flag before google-benchmark sees the arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  beehive::run_latency_probe(json_path);
  return 0;
}
