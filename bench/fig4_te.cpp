// Regenerates Figure 4 of the paper — the entire evaluation section.
//
//   (a)/(d): naive TE      — inter-hive traffic matrix / control BW (KB/s)
//   (b)/(e): decoupled TE  — same artifacts after the design fix
//   (c)/(f): optimized TE  — stat cells start pinned on one hive, the
//            greedy runtime optimizer migrates them next to the drivers
//
// Paper setup: 40 controllers, 400 switches in a simple tree, 100
// fixed-rate flows per switch, 10% above the re-routing threshold delta.
// Expected shapes (EXPERIMENTS.md records the measured values):
//   - (a) one hive involved in ~all wire traffic (hotspot_share -> 1)
//   - (b) mostly-diagonal matrix (high locality), one Route cross
//   - (c) starts like a hotspot on the pinned hive, converges to (b)
//   - (d) >> (e); (f) spikes during migration then settles near (e)
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/te_harness.h"

namespace {

bool g_write_csv = false;

/// Optional CSV export (--csv): fig4<panel>_matrix.csv with one
/// "from,to,bytes" row per hive pair, and fig4<panel>_bw.csv with one
/// "second,kbps" row per bucket — the raw series behind each panel.
void maybe_write_csv(const char* matrix_panel, const char* bw_panel,
                     const beehive::bench::TEResult& r) {
  if (!g_write_csv) return;
  {
    std::string path = std::string("fig4") + matrix_panel + "_matrix.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "from_hive,to_hive,bytes\n");
    for (std::size_t i = 0; i < r.n_hives; ++i) {
      for (std::size_t j = 0; j < r.n_hives; ++j) {
        std::fprintf(f, "%zu,%zu,%llu\n", i, j,
                     static_cast<unsigned long long>(r.matrix[i][j]));
      }
    }
    std::fclose(f);
  }
  {
    std::string path = std::string("fig4") + bw_panel + "_bw.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "second,kbps\n");
    for (std::size_t t = 0; t < r.kbps.size(); ++t) {
      std::fprintf(f, "%zu,%.3f\n", t, r.kbps[t]);
    }
    std::fclose(f);
  }
}

using beehive::bench::JsonReport;
using beehive::bench::print_decisions;
using beehive::bench::print_series;
using beehive::bench::print_summary;
using beehive::bench::report_te;
using beehive::bench::run_te_scenario;
using beehive::bench::TEMode;
using beehive::bench::TEParams;
using beehive::bench::TEResult;

void print_matrix_panel(const char* panel, const char* title,
                        const TEResult& r) {
  std::printf("\n--- Fig 4%s: %s — inter-hive traffic matrix ---\n", panel,
              title);
  std::printf("(20x20 downsampled heat map of %zux%zu hive pairs; darker = "
              "more bytes)\n%s",
              r.n_hives, r.n_hives, r.heatmap.c_str());
  // Row/column marginals of the wire-byte matrix, coarse (8 bins).
  constexpr std::size_t kBins = 8;
  std::vector<std::uint64_t> out_bin(kBins, 0), in_bin(kBins, 0);
  for (std::size_t i = 0; i < r.n_hives; ++i) {
    for (std::size_t j = 0; j < r.n_hives; ++j) {
      if (i == j) continue;
      out_bin[i * kBins / r.n_hives] += r.matrix[i][j];
      in_bin[j * kBins / r.n_hives] += r.matrix[i][j];
    }
  }
  std::printf("outbound bytes by hive octile:");
  for (auto v : out_bin) std::printf(" %8llu", (unsigned long long)v);
  std::printf("\ninbound  bytes by hive octile:");
  for (auto v : in_bin) std::printf(" %8llu", (unsigned long long)v);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  TEParams params;
  // --small keeps CI / smoke runs quick (defaults match the paper);
  // --csv additionally exports the raw matrices and series;
  // --trace additionally records spans and writes one Chrome trace-event
  // JSON per scenario (fig4_<scenario>_trace.json, Perfetto-loadable).
  bool trace = false;
  std::string json_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      params.n_hives = 8;
      params.n_switches = 80;
      params.duration = 12 * beehive::kSecond;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      g_write_csv = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
      params.tracing = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("Beehive Figure 4 reproduction: %zu hives, %zu switches, "
              "%zu flows/switch, delta=%.0f kbps, %.0f s simulated\n",
              params.n_hives, params.n_switches, params.flows_per_switch,
              params.delta_kbps,
              static_cast<double>(params.duration) /
                  static_cast<double>(beehive::kSecond));

  std::printf("\n=== scenario 1/3: naive TE (Fig 4 a, d) ===\n");
  if (trace) params.trace_path = "fig4_naive_trace.json";
  TEResult naive = run_te_scenario(TEMode::kNaive, params);
  print_matrix_panel("a", "naive TE", naive);
  print_series("\nFig 4d: naive TE", naive.kbps);
  print_summary("fig4.naive", naive);
  maybe_write_csv("a", "d", naive);

  std::printf("\n=== scenario 2/3: decoupled TE (Fig 4 b, e) ===\n");
  if (trace) params.trace_path = "fig4_decoupled_trace.json";
  TEResult decoupled = run_te_scenario(TEMode::kDecoupled, params);
  print_matrix_panel("b", "decoupled TE", decoupled);
  print_series("\nFig 4e: decoupled TE", decoupled.kbps);
  print_summary("fig4.decoupled", decoupled);
  maybe_write_csv("b", "e", decoupled);

  std::printf("\n=== scenario 3/3: runtime-optimized TE (Fig 4 c, f) ===\n");
  if (trace) params.trace_path = "fig4_optimized_trace.json";
  TEResult optimized = run_te_scenario(TEMode::kOptimized, params);
  print_matrix_panel("c", "optimized TE", optimized);
  print_series("\nFig 4f: optimized TE", optimized.kbps);
  print_summary("fig4.optimized", optimized);
  print_decisions(optimized);
  maybe_write_csv("c", "f", optimized);

  JsonReport report("fig4_te");
  report_te(report, "fig4.naive", naive, params);
  report_te(report, "fig4.decoupled", decoupled, params);
  report_te(report, "fig4.optimized", optimized, params);
  if (report.write_file(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: failed to write %s\n", json_path.c_str());
  }

  // -- Shape checks: the paper's qualitative claims ------------------------
  std::printf("\n=== shape checks (paper's qualitative claims) ===\n");
  auto check = [](const char* what, bool ok) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
    return ok;
  };
  bool all = true;
  all &= check("naive TE is effectively centralized (hotspot share > 0.9)",
               naive.hotspot_share > 0.9);
  all &= check("naive TE collapses to a single TE bee", naive.te_bees == 1);
  all &= check("decoupled TE distributes TE bees (> n_hives)",
               decoupled.te_bees > params.n_hives);
  all &= check("decoupled TE is dominantly local in steady state (> 0.8)",
               decoupled.tail_locality > 0.8);
  all &= check("decoupled control BW well below naive (< 50%)",
               decoupled.wire_bytes * 2 < naive.wire_bytes);
  all &= check("optimizer actually migrated bees",
               optimized.migrations > 0);
  all &= check("optimized steady-state locality matches decoupled (>= 90%)",
               optimized.tail_locality >= 0.9 * decoupled.tail_locality);
  all &= check("optimized steady-state BW near decoupled's (<= 1.5x)",
               optimized.tail_kbps <= 1.5 * decoupled.tail_kbps + 1.0);
  double opt_head = 0.0;
  std::size_t n = optimized.kbps.size();
  for (std::size_t i = 0; i < n / 3; ++i) opt_head += optimized.kbps[i];
  opt_head /= static_cast<double>(n / 3 == 0 ? 1 : n / 3);
  all &= check("optimized BW declines after migrations (tail < head)",
               optimized.tail_kbps < opt_head);
  all &= check("every scenario re-routed the hot flows (FlowMods > 0)",
               naive.flow_mods > 0 && decoupled.flow_mods > 0 &&
                   optimized.flow_mods > 0);
  std::printf("%s\n", all ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECK FAILED");
  return all ? 0 : 1;
}
