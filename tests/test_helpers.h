// Shared fixtures and toy applications for the Beehive test suites.
#pragma once

#include <string>
#include <vector>

#include "core/app.h"
#include "core/context.h"
#include "msg/codec.h"
#include "state/cell.h"

namespace beehive::testing {

// ---------------------------------------------------------------------------
// Toy messages
// ---------------------------------------------------------------------------

/// Increment a named counter.
struct Incr {
  static constexpr std::string_view kTypeName = "test.incr";
  std::string key;
  std::int64_t amount = 1;

  void encode(ByteWriter& w) const {
    w.str(key);
    w.i64(amount);
  }
  static Incr decode(ByteReader& r) {
    Incr m;
    m.key = r.str();
    m.amount = r.i64();
    return m;
  }
};

/// Ask for the value of one counter; answered with CounterValue.
struct CounterQuery {
  static constexpr std::string_view kTypeName = "test.counter_query";
  std::string key;

  void encode(ByteWriter& w) const { w.str(key); }
  static CounterQuery decode(ByteReader& r) { return {r.str()}; }
};

struct CounterValue {
  static constexpr std::string_view kTypeName = "test.counter_value";
  std::string key;
  std::int64_t value = 0;

  void encode(ByteWriter& w) const {
    w.str(key);
    w.i64(value);
  }
  static CounterValue decode(ByteReader& r) {
    CounterValue m;
    m.key = r.str();
    m.value = r.i64();
    return m;
  }
};

/// Touches two counters at once (collocation trigger).
struct PairIncr {
  static constexpr std::string_view kTypeName = "test.pair_incr";
  std::string key_a;
  std::string key_b;

  void encode(ByteWriter& w) const {
    w.str(key_a);
    w.str(key_b);
  }
  static PairIncr decode(ByteReader& r) {
    PairIncr m;
    m.key_a = r.str();
    m.key_b = r.str();
    return m;
  }
};

/// Whole-dictionary read: sums every counter; answered with CounterValue
/// under key "*sum*".
struct SumQuery {
  static constexpr std::string_view kTypeName = "test.sum_query";
  std::uint32_t nonce = 0;

  void encode(ByteWriter& w) const { w.u32(nonce); }
  static SumQuery decode(ByteReader& r) { return {r.u32()}; }
};

/// A message whose handler always throws (transaction-rollback tests).
struct Poison {
  static constexpr std::string_view kTypeName = "test.poison";
  std::string key;

  void encode(ByteWriter& w) const { w.str(key); }
  static Poison decode(ByteReader& r) { return {r.str()}; }
};

/// An int64 cell value.
struct I64 {
  static constexpr std::string_view kTypeName = "test.i64";
  std::int64_t v = 0;

  void encode(ByteWriter& w) const { w.i64(v); }
  static I64 decode(ByteReader& r) { return {r.i64()}; }
};

// ---------------------------------------------------------------------------
// CounterApp: per-key cells, a pair handler forcing collocation, a
// whole-dict handler forcing centralization, and a poison handler that
// writes then throws.
// ---------------------------------------------------------------------------

class CounterApp : public App {
 public:
  static constexpr std::string_view kDict = "cnt";

  CounterApp() : App("test.counter") {
    const std::string dict(kDict);

    on<Incr>(
        [dict](const Incr& m) { return CellSet::single(dict, m.key); },
        [dict](AppContext& ctx, const Incr& m) {
          I64 v = ctx.state().get_as<I64>(dict, m.key).value_or(I64{});
          v.v += m.amount;
          ctx.state().put_as(dict, m.key, v);
        });

    on<CounterQuery>(
        [dict](const CounterQuery& m) {
          return CellSet::single(dict, m.key);
        },
        [dict](AppContext& ctx, const CounterQuery& m) {
          I64 v = ctx.state().get_as<I64>(dict, m.key).value_or(I64{});
          ctx.emit(CounterValue{m.key, v.v});
        });

    on<PairIncr>(
        [dict](const PairIncr& m) {
          return CellSet{{dict, m.key_a}, {dict, m.key_b}};
        },
        [dict](AppContext& ctx, const PairIncr& m) {
          I64 a = ctx.state().get_as<I64>(dict, m.key_a).value_or(I64{});
          a.v += 1;
          ctx.state().put_as(dict, m.key_a, a);
          if (m.key_b == m.key_a) return;  // one increment per key
          I64 b = ctx.state().get_as<I64>(dict, m.key_b).value_or(I64{});
          b.v += 1;
          ctx.state().put_as(dict, m.key_b, b);
        });

    on<SumQuery>(
        [dict](const SumQuery&) { return CellSet::whole_dict(dict); },
        [dict](AppContext& ctx, const SumQuery&) {
          std::int64_t sum = 0;
          ctx.state().for_each(
              dict, [&sum](const std::string&, const Bytes& v) {
                sum += decode_from_bytes<I64>(v).v;
              });
          ctx.emit(CounterValue{"*sum*", sum});
        });

    on<Poison>(
        [dict](const Poison& m) { return CellSet::single(dict, m.key); },
        [dict](AppContext& ctx, const Poison& m) {
          ctx.state().put_as(dict, m.key, I64{9999});
          ctx.emit(CounterValue{"never", -1});
          throw std::runtime_error("poisoned handler");
        });
  }
};

/// Sink that records every CounterValue it sees (maps all to one cell).
class SinkApp : public App {
 public:
  static constexpr std::string_view kDict = "sink";

  SinkApp() : App("test.sink") {
    const std::string dict(kDict);
    on<CounterValue>(
        [dict](const CounterValue&) { return CellSet::whole_dict(dict); },
        [dict](AppContext& ctx, const CounterValue& m) {
          I64 n = ctx.state().get_as<I64>(dict, "n").value_or(I64{});
          n.v += 1;
          ctx.state().put_as(dict, "n", n);
          ctx.state().put_as(dict, "last:" + m.key, I64{m.value});
        });
  }
};

}  // namespace beehive::testing
