// Tests for the §4 use-case applications: learning switch (Kandoo-style
// local app), distributed routing, network virtualization, and the ONIX
// NIB emulation — each running distributed on the simulator.
#include <gtest/gtest.h>

#include "apps/learning_switch.h"
#include "apps/messages.h"
#include "apps/netvirt.h"
#include "apps/nib.h"
#include "apps/routing.h"
#include "cluster/sim.h"
#include "net/driver.h"
#include "net/fabric.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

constexpr std::uint32_t ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

/// Records every message of type M in a whole-dict cell (query sinks).
template <typename M>
class RecorderApp : public App {
 public:
  explicit RecorderApp(std::string name) : App(std::move(name)) {
    on<M>(
        [](const M&) { return CellSet::whole_dict("rec"); },
        [](AppContext& ctx, const M& m) {
          testing::I64 n =
              ctx.state().template get_as<testing::I64>("rec", "n").value_or(
                  testing::I64{});
          n.v += 1;
          ctx.state().put_as("rec", "n", n);
          ctx.state().put_as("rec", "last", m);
        });
  }

  struct Captured {
    std::int64_t count = 0;
    std::optional<M> last;
  };

  static Captured captured(SimCluster& sim, AppId app) {
    Captured out;
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto n = bee->store().dict("rec").get_as<testing::I64>("n")) {
        out.count = n->v;
      }
      out.last = bee->store().dict("rec").template get_as<M>("last");
    }
    return out;
  }
};

template <typename M>
void send(SimCluster& sim, HiveId hive, M msg) {
  sim.hive(hive).inject(
      MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
  sim.run_to_idle();
}

SimCluster make_sim(const AppSet& apps, std::size_t n_hives) {
  ClusterConfig config;
  config.n_hives = n_hives;
  config.hive.metrics_period = 0;
  return SimCluster(config, apps);
}

// ---------------------------------------------------------------------------
// Learning switch
// ---------------------------------------------------------------------------

class LearningSwitchTest : public ::testing::Test {
 protected:
  LearningSwitchTest() {
    apps_.emplace<LearningSwitchApp>();
    recorder_ = &apps_.emplace<RecorderApp<PacketOut>>("test.pkt_rec");
  }
  AppSet apps_;
  RecorderApp<PacketOut>* recorder_ = nullptr;
};

TEST_F(LearningSwitchTest, UnknownDestinationFloods) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, PacketIn{1, 0xaa, 0xbb, 3});
  auto captured = RecorderApp<PacketOut>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_EQ(captured.last->out_port, kFloodPort);
  EXPECT_EQ(captured.last->sw, 1u);
}

TEST_F(LearningSwitchTest, LearnedDestinationIsUnicast) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, PacketIn{1, 0xaa, 0xbb, 3});   // learn aa@3
  send(sim, 0, PacketIn{1, 0xbb, 0xaa, 7});   // learn bb@7, dst aa known
  auto captured = RecorderApp<PacketOut>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_EQ(captured.last->out_port, 3);
  EXPECT_EQ(captured.count, 2);
}

TEST_F(LearningSwitchTest, MacMovesUpdateThePort) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, PacketIn{1, 0xaa, 0x0, 3});
  send(sim, 0, PacketIn{1, 0xaa, 0x0, 9});  // aa moved to port 9
  send(sim, 0, PacketIn{1, 0xcc, 0xaa, 1});
  auto captured = RecorderApp<PacketOut>::captured(sim, recorder_->id());
  EXPECT_EQ(captured.last->out_port, 9);
}

TEST_F(LearningSwitchTest, TablesArePerSwitch) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, PacketIn{1, 0xaa, 0x0, 3});    // learn aa@3 on switch 1
  send(sim, 1, PacketIn{2, 0xbb, 0xaa, 5});   // switch 2 must not know aa
  auto captured = RecorderApp<PacketOut>::captured(sim, recorder_->id());
  EXPECT_EQ(captured.last->out_port, kFloodPort);
  // Two separate bees (one per switch), on the hives that saw the packets.
  AppId lsw = apps_.find_by_name("learning_switch")->id();
  std::size_t bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == lsw) ++bees;
  }
  EXPECT_EQ(bees, 2u);
}

TEST(MacTableUnit, LearnFindUpdate) {
  MacTable t;
  EXPECT_EQ(t.find(0xaa), nullptr);
  t.learn(0xaa, 1);
  t.learn(0xbb, 2);
  t.learn(0xaa, 5);
  ASSERT_NE(t.find(0xaa), nullptr);
  EXPECT_EQ(t.find(0xaa)->port, 5);
  EXPECT_EQ(t.entries.size(), 2u);
  // codec round-trip
  MacTable back = decode_from_bytes<MacTable>(encode_to_bytes(t));
  EXPECT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.find(0xbb)->port, 2);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() {
    apps_.emplace<RoutingApp>();
    recorder_ = &apps_.emplace<RecorderApp<RouteResult>>("test.rt_rec");
  }
  AppSet apps_;
  RecorderApp<RouteResult>* recorder_ = nullptr;
};

TEST_F(RoutingTest, LongestPrefixWins) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, RouteAnnounce{ip(10, 0, 0, 0), 8, 111, 10});
  send(sim, 0, RouteAnnounce{ip(10, 1, 0, 0), 16, 222, 10});
  send(sim, 1, RouteQuery{ip(10, 1, 2, 3), 42});
  auto captured = RecorderApp<RouteResult>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_TRUE(captured.last->found);
  EXPECT_EQ(captured.last->query_id, 42u);
  EXPECT_EQ(captured.last->mask_len, 16);
  EXPECT_EQ(captured.last->next_hop, 222u);
}

TEST_F(RoutingTest, MetricBreaksTiesAtEqualLength) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, RouteAnnounce{ip(10, 2, 0, 0), 16, 1, 20});
  send(sim, 0, RouteAnnounce{ip(10, 2, 0, 0), 16, 2, 20});  // replaces
  send(sim, 0, RouteQuery{ip(10, 2, 9, 9), 1});
  auto captured = RecorderApp<RouteResult>::captured(sim, recorder_->id());
  EXPECT_EQ(captured.last->next_hop, 2u);
}

TEST_F(RoutingTest, WithdrawRemovesRoute) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, RouteAnnounce{ip(10, 0, 0, 0), 8, 111, 10});
  send(sim, 0, RouteWithdraw{ip(10, 0, 0, 0), 8});
  send(sim, 0, RouteQuery{ip(10, 5, 5, 5), 7});
  auto captured = RecorderApp<RouteResult>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_FALSE(captured.last->found);
}

TEST_F(RoutingTest, ShardsDistributeByTopOctet) {
  SimCluster sim = make_sim(apps_, 4);
  sim.start();
  send(sim, 0, RouteAnnounce{ip(10, 0, 0, 0), 8, 1, 1});
  send(sim, 1, RouteAnnounce{ip(20, 0, 0, 0), 8, 2, 1});
  send(sim, 2, RouteAnnounce{ip(30, 0, 0, 0), 8, 3, 1});
  AppId rt = apps_.find_by_name("routing")->id();
  std::vector<HiveId> hives;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == rt) hives.push_back(rec.hive);
  }
  ASSERT_EQ(hives.size(), 3u);  // three /8 buckets, three bees
  std::sort(hives.begin(), hives.end());
  EXPECT_EQ(hives, (std::vector<HiveId>{0, 1, 2}));
}

TEST_F(RoutingTest, QueryMissingBucketReturnsNotFound) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, RouteQuery{ip(99, 0, 0, 1), 5});
  auto captured = RecorderApp<RouteResult>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_FALSE(captured.last->found);
}

TEST(PrefixTableUnit, LookupMaskLogic) {
  PrefixTable t;
  t.upsert({ip(10, 0, 0, 0), 8, 1, 0});
  t.upsert({ip(10, 128, 0, 0), 9, 2, 0});
  t.upsert({ip(0, 0, 0, 0), 0, 99, 0});  // default route
  EXPECT_EQ(t.lookup(ip(10, 200, 1, 1))->next_hop, 2u);
  EXPECT_EQ(t.lookup(ip(10, 1, 1, 1))->next_hop, 1u);
  EXPECT_EQ(t.lookup(ip(11, 1, 1, 1))->next_hop, 99u);
  EXPECT_TRUE(t.remove(ip(10, 0, 0, 0), 8));
  EXPECT_FALSE(t.remove(ip(10, 0, 0, 0), 8));
  EXPECT_EQ(t.lookup(ip(10, 1, 1, 1))->next_hop, 99u);
}

// ---------------------------------------------------------------------------
// Network virtualization
// ---------------------------------------------------------------------------

class NetVirtTest : public ::testing::Test {
 protected:
  NetVirtTest() {
    apps_.emplace<NetVirtApp>();
    recorder_ = &apps_.emplace<RecorderApp<TunnelInstall>>("test.nv_rec");
  }
  AppSet apps_;
  RecorderApp<TunnelInstall>* recorder_ = nullptr;
};

TEST_F(NetVirtTest, AttachMeshesNewSwitchWithExisting) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, VnCreate{5});
  send(sim, 0, VnAttach{5, 1, 1, 0xa});
  send(sim, 1, VnAttach{5, 2, 1, 0xb});
  send(sim, 1, VnAttach{5, 3, 1, 0xc});
  auto captured = RecorderApp<TunnelInstall>::captured(sim, recorder_->id());
  // sw2 meshes with {1}, sw3 with {1,2}: 3 tunnels total.
  EXPECT_EQ(captured.count, 3);
  EXPECT_EQ(captured.last->vn, 5u);
}

TEST_F(NetVirtTest, SecondMacOnSameSwitchAddsNoTunnel) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, VnCreate{1});
  send(sim, 0, VnAttach{1, 1, 1, 0xa});
  send(sim, 0, VnAttach{1, 2, 1, 0xb});
  send(sim, 0, VnAttach{1, 2, 2, 0xc});  // same switch, new mac
  auto captured = RecorderApp<TunnelInstall>::captured(sim, recorder_->id());
  EXPECT_EQ(captured.count, 1);
}

TEST_F(NetVirtTest, VnsAreIndependentCells) {
  SimCluster sim = make_sim(apps_, 4);
  sim.start();
  for (VnId vn = 0; vn < 4; ++vn) {
    send(sim, vn % 4, VnCreate{vn});
  }
  AppId nv = apps_.find_by_name("netvirt")->id();
  std::size_t bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == nv) ++bees;
  }
  EXPECT_EQ(bees, 4u);
}

TEST_F(NetVirtTest, DetachRemovesEndpoint) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, VnCreate{9});
  send(sim, 0, VnAttach{9, 1, 1, 0xa});
  send(sim, 0, VnDetach{9, 1, 0xa});
  AppId nv = apps_.find_by_name("netvirt")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != nv) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    auto state = bee->store().dict(NetVirtApp::kDict).get_as<VnState>("9");
    ASSERT_TRUE(state.has_value());
    EXPECT_TRUE(state->endpoints.empty());
  }
}

TEST_F(NetVirtTest, AttachToUnknownVnIsIgnored) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, VnAttach{77, 1, 1, 0xa});
  auto captured = RecorderApp<TunnelInstall>::captured(sim, recorder_->id());
  EXPECT_EQ(captured.count, 0);
}

// ---------------------------------------------------------------------------
// NIB
// ---------------------------------------------------------------------------

class NibTest : public ::testing::Test {
 protected:
  NibTest() {
    apps_.emplace<NibApp>();
    recorder_ = &apps_.emplace<RecorderApp<NibReply>>("test.nib_rec");
  }
  AppSet apps_;
  RecorderApp<NibReply>* recorder_ = nullptr;
};

TEST_F(NibTest, UpdateThenQueryReturnsAttrsAndNeighbors) {
  SimCluster sim = make_sim(apps_, 2);
  sim.start();
  send(sim, 0, NibNodeUpdate{100, "kind", "switch"});
  send(sim, 1, NibNodeUpdate{100, "dpid", "0xff"});
  send(sim, 0, NibLinkAdd{100, 200});
  send(sim, 0, NibLinkAdd{100, 300});
  send(sim, 1, NibQuery{100, 77});
  auto captured = RecorderApp<NibReply>::captured(sim, recorder_->id());
  ASSERT_TRUE(captured.last.has_value());
  EXPECT_TRUE(captured.last->found);
  EXPECT_EQ(captured.last->query_id, 77u);
  EXPECT_EQ(captured.last->attrs.size(), 2u);
  EXPECT_EQ(captured.last->neighbors,
            (std::vector<NodeId>{200, 300}));
}

TEST_F(NibTest, AttrOverwriteKeepsSingleEntry) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, NibNodeUpdate{1, "state", "up"});
  send(sim, 0, NibNodeUpdate{1, "state", "down"});
  send(sim, 0, NibQuery{1, 1});
  auto captured = RecorderApp<NibReply>::captured(sim, recorder_->id());
  ASSERT_EQ(captured.last->attrs.size(), 1u);
  EXPECT_EQ(captured.last->attrs[0], "state=down");
}

TEST_F(NibTest, QueryUnknownNodeNotFound) {
  SimCluster sim = make_sim(apps_, 1);
  sim.start();
  send(sim, 0, NibQuery{424242, 3});
  auto captured = RecorderApp<NibReply>::captured(sim, recorder_->id());
  EXPECT_FALSE(captured.last->found);
}

TEST_F(NibTest, NodesShardAcrossHives) {
  SimCluster sim = make_sim(apps_, 4);
  sim.start();
  for (NodeId n = 0; n < 8; ++n) {
    send(sim, static_cast<HiveId>(n % 4), NibNodeUpdate{n, "k", "v"});
  }
  AppId nib = apps_.find_by_name("nib")->id();
  std::size_t bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == nib) ++bees;
  }
  EXPECT_EQ(bees, 8u);
}

TEST(NibNodeUnit, DuplicateNeighborIgnored) {
  NibNode node;
  node.add_neighbor(5);
  node.add_neighbor(5);
  EXPECT_EQ(node.neighbors.size(), 1u);
  node.set_attr("a", "1");
  node.set_attr("a", "2");
  EXPECT_EQ(node.attrs.size(), 1u);
  NibNode back = decode_from_bytes<NibNode>(encode_to_bytes(node));
  EXPECT_EQ(back.neighbors.size(), 1u);
  EXPECT_EQ(back.attrs[0].second, "2");
}

}  // namespace
}  // namespace beehive
