// End-to-end tests of the OpenFlow channel endpoints: controller-side
// SwitchConnection wired to switch-side SwitchAgent over an in-memory
// byte pipe with TCP-like arbitrary chunking.
#include <gtest/gtest.h>

#include <deque>

#include "net/connection.h"
#include "util/rng.h"

namespace beehive::of {
namespace {

/// A bidirectional in-memory byte pipe that optionally re-chunks data
/// before delivering it (simulating TCP segmentation).
class Pipe {
 public:
  explicit Pipe(std::uint64_t seed = 0) : rng_(seed), chunked_(seed != 0) {}

  void connect(SwitchConnection* controller, SwitchAgent* agent) {
    controller_ = controller;
    agent_ = agent;
  }

  void to_agent(Bytes data) { a_inbox_.push_back(std::move(data)); }
  void to_controller(Bytes data) { c_inbox_.push_back(std::move(data)); }

  /// Delivers queued bytes in both directions until quiescent.
  void pump() {
    while (!a_inbox_.empty() || !c_inbox_.empty()) {
      if (!a_inbox_.empty()) {
        Bytes data = std::move(a_inbox_.front());
        a_inbox_.pop_front();
        deliver(data, [this](std::string_view chunk) {
          agent_->on_bytes(chunk);
        });
      }
      if (!c_inbox_.empty()) {
        Bytes data = std::move(c_inbox_.front());
        c_inbox_.pop_front();
        deliver(data, [this](std::string_view chunk) {
          controller_->on_bytes(chunk);
        });
      }
    }
  }

 private:
  void deliver(const Bytes& data,
               const std::function<void(std::string_view)>& sink) {
    if (!chunked_) {
      sink(data);
      return;
    }
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t n = 1 + rng_.next_below(11);
      n = std::min(n, data.size() - pos);
      sink(std::string_view(data).substr(pos, n));
      pos += n;
    }
  }

  Xoshiro256 rng_;
  bool chunked_;
  SwitchConnection* controller_ = nullptr;
  SwitchAgent* agent_ = nullptr;
  std::deque<Bytes> a_inbox_;
  std::deque<Bytes> c_inbox_;
};

class ConnectionTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ConnectionTest()
      : sim_switch_(7, SwitchConfig{}, rng_),
        pipe_(GetParam()),
        controller_(7, [this](Bytes b) { pipe_.to_agent(std::move(b)); }),
        agent_(&sim_switch_,
               [this](Bytes b) { pipe_.to_controller(std::move(b)); },
               [this]() { return now_; }) {
    pipe_.connect(&controller_, &agent_);
  }

  void handshake() {
    controller_.start();
    pipe_.pump();
    ASSERT_TRUE(controller_.ready());
    ASSERT_TRUE(agent_.ready());
  }

  Xoshiro256 rng_{42};
  SimSwitch sim_switch_;
  Pipe pipe_;
  SwitchConnection controller_;
  SwitchAgent agent_;
  TimePoint now_ = 5 * kSecond;
};

TEST_P(ConnectionTest, HandshakeCompletesBothSides) {
  bool ready_fired = false;
  controller_.on_ready = [&ready_fired]() { ready_fired = true; };
  handshake();
  EXPECT_TRUE(ready_fired);
  EXPECT_GT(controller_.tx_bytes(), 0u);
  EXPECT_GT(controller_.rx_bytes(), 0u);
}

TEST_P(ConnectionTest, StatsRequestRoundTrip) {
  handshake();
  std::optional<FlowStatReply> reply;
  controller_.on_stats = [&reply](const FlowStatReply& r) { reply = r; };
  std::uint32_t xid = controller_.request_stats();
  EXPECT_EQ(controller_.pending_stats_requests(), 1u);
  pipe_.pump();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sw, 7u);
  EXPECT_EQ(reply->stats.size(), sim_switch_.n_flows());
  EXPECT_EQ(controller_.pending_stats_requests(), 0u);
  (void)xid;
  // Byte counters survive the wire; flow ids are intact.
  auto local = sim_switch_.stats(now_);
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(reply->stats[i].flow, local[i].flow);
    EXPECT_EQ(reply->stats[i].bytes, local[i].bytes);
  }
}

TEST_P(ConnectionTest, FlowModReachesTheSwitch) {
  handshake();
  const SimFlow* before = sim_switch_.flow(3);
  ASSERT_EQ(before->path, 0u);
  controller_.send_flow_mod(FlowMod{7, 3, 2});
  pipe_.pump();
  EXPECT_EQ(sim_switch_.flow(3)->path, 2u);
  EXPECT_EQ(agent_.flow_mods_applied(), 1u);
  EXPECT_EQ(sim_switch_.flow_mods_applied(), 1u);
}

TEST_P(ConnectionTest, PacketPuntAndPacketOut) {
  handshake();
  std::optional<PacketIn> punted;
  controller_.on_packet_in = [&punted](const PacketIn& p) { punted = p; };
  agent_.punt(0xaabb, 0xccdd, 9);
  pipe_.pump();
  ASSERT_TRUE(punted.has_value());
  EXPECT_EQ(punted->sw, 7u);
  EXPECT_EQ(punted->src_mac, 0xaabbu);
  EXPECT_EQ(punted->dst_mac, 0xccddu);
  EXPECT_EQ(punted->in_port, 9);

  controller_.send_packet_out(PacketOut{7, 0xccdd, 4});
  pipe_.pump();
  EXPECT_EQ(agent_.packet_outs(), 1u);
  EXPECT_EQ(sim_switch_.packets_delivered(), 1u);
}

TEST_P(ConnectionTest, EchoKeepaliveBothDirections) {
  handshake();
  std::optional<std::uint32_t> replied;
  controller_.on_echo_reply = [&replied](std::uint32_t xid) {
    replied = xid;
  };
  std::uint32_t xid = controller_.send_echo_request();
  pipe_.pump();
  ASSERT_TRUE(replied.has_value());
  EXPECT_EQ(*replied, xid);
}

TEST_P(ConnectionTest, PuntBeforeHandshakeIsDropped) {
  agent_.punt(1, 2, 3);  // not ready: must not emit anything
  int packet_ins = 0;
  controller_.on_packet_in = [&packet_ins](const PacketIn&) {
    ++packet_ins;
  };
  handshake();
  pipe_.pump();
  EXPECT_EQ(packet_ins, 0);
}

TEST_P(ConnectionTest, ManyInterleavedOperations) {
  handshake();
  int stats_replies = 0;
  controller_.on_stats = [&stats_replies](const FlowStatReply&) {
    ++stats_replies;
  };
  int packet_ins = 0;
  controller_.on_packet_in = [&packet_ins](const PacketIn&) {
    ++packet_ins;
  };
  for (int round = 0; round < 10; ++round) {
    controller_.request_stats();
    controller_.send_flow_mod(
        FlowMod{7, static_cast<std::uint32_t>(round), 1});
    agent_.punt(round, round + 1, static_cast<std::uint16_t>(round));
    pipe_.pump();
  }
  EXPECT_EQ(stats_replies, 10);
  EXPECT_EQ(packet_ins, 10);
  EXPECT_EQ(agent_.flow_mods_applied(), 10u);
  EXPECT_EQ(controller_.rx_messages(), 1u + 10u + 10u);  // hello+stats+punts
}

// seed 0 = unchunked frames; others re-chunk into 1..11 byte segments.
INSTANTIATE_TEST_SUITE_P(Chunking, ConnectionTest,
                         ::testing::Values(0, 1, 17, 99));

}  // namespace
}  // namespace beehive::of
